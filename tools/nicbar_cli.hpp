// Command-line parsing for nicbar_run, separated from main() so the option
// grammar is unit-testable (tests/tools/cli_test.cpp). parse() never exits
// or prints: a bad command line comes back as std::nullopt plus a message,
// and main() decides what to do with it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "coll/runner.hpp"
#include "host/cluster.hpp"
#include "sim/trace.hpp"

namespace nicbar::cli {

struct Options {
  coll::ExperimentParams params;
  std::size_t dim = 2;
  bool sweep_dim = false;  // --dim 0: sweep 1..N-1 for the best dimension
  bool predict = false;
  bool breakdown = false;
  std::string metrics_path;
  std::string trace_path;
  /// --trace-mask LIST: restrict --trace-json output to the named
  /// sim::TraceCategory values (parsed eagerly so typos fail at the command
  /// line, not after the run). Defaults to everything.
  std::uint32_t trace_mask = static_cast<std::uint32_t>(sim::TraceCategory::kAll);
  bool have_trace_mask = false;
  /// --critical-path: enable causal tracing for a single run and print the
  /// exact critical path of the last completed barrier plus the per-segment
  /// attribution profile; non-zero exit if the span DAG is cyclic or the
  /// attribution does not telescope to the measured total.
  bool critical_path = false;
  /// --slo-report F: workload mode; run with SLO burn-rate accounting and
  /// write the wl::SloReport JSON to F (the ASCII table goes to stdout).
  std::string slo_report_path;
  std::string fault_plan_path;
  double loss = 0.0;
  double burst_enter = 0.0, burst_exit = 0.0, burst_rate = 0.0;
  bool have_burst = false;
  /// Worker threads for sweeps (--jobs): 1 = serial, 0 = one per hardware
  /// thread. Applies to the GB dimension sweep, the seed sweep, and the
  /// workload seed sweep; results are bit-identical for any value.
  unsigned jobs = 1;
  /// Number of consecutive seeds to run (--seeds), starting at --seed.
  std::size_t seeds = 1;
  /// --pdes-workers was given (the value lives in params.cluster): run the
  /// experiment on the partitioned engine. Needed to distinguish an explicit
  /// `--pdes-workers 1` (serial engine, no partitioning) from the default.
  bool pdes_given = false;

  /// `nicbar_run workload SPEC` — run a wl:: multi-tenant workload instead
  /// of a single barrier experiment. The spec file provides the cluster and
  /// job population; the command line contributes fault injection
  /// (--fault-plan/--loss/--burst-loss), seeds (--seed/--seeds), worker
  /// threads (--jobs), and output paths.
  bool workload = false;
  std::string workload_spec_path;
  /// --report-json F: write the wl::Report (or, with --seeds K, an array of
  /// per-seed reports) as JSON to F. Workload mode only.
  std::string report_path;
  /// --seed was given explicitly (workload mode: override the spec's seed).
  bool seed_given = false;

  /// `nicbar_run check` — run the sim::check validation pass: the
  /// differential oracle sweep plus the property/fuzz suite. --cases sets
  /// the number of random fuzz cases; --case-seed N replays exactly one
  /// fuzz case (the reproduction command printed with every fuzz failure).
  bool check = false;
  std::size_t check_cases = 50;
  std::uint64_t case_seed = 0;
  bool have_case_seed = false;
};

inline const char* usage_text() {
  return
      "  workload SPEC      run a multi-tenant workload from a spec file (see\n"
      "                     src/wl/spec.hpp for the grammar); composes with\n"
      "                     --seed/--seeds/--jobs/--fault-plan/--loss/--burst-loss,\n"
      "                     --metrics-json, and --report-json\n"
      "  --report-json F    workload mode: write the wl::Report as JSON to F\n"
      "  check              run the validation pass: differential oracle (closed\n"
      "                     forms vs simulator) + metamorphic property suite +\n"
      "                     random fuzz cases; non-zero exit on any failure\n"
      "  --cases N          check mode: number of random fuzz cases (default 50)\n"
      "  --case-seed S      check mode: replay a single fuzz case by its seed\n"
      "                     (printed with every fuzz failure)\n"
      "  --nodes N          group size (default 8)\n"
      "  --reps R           consecutive barriers to average (default 500)\n"
      "  --location L       nic | host (default nic)\n"
      "  --algorithm A      pe | gb | hier | host-dissem | host-tree (default pe;\n"
      "                     hier runs the two-level NIC family — best on a\n"
      "                     fat-tree/leaf-spine fabric; host-* run on the rma::\n"
      "                     one-sided layer and ignore --location)\n"
      "  --dim D            GB tree dimension / host-tree radix / hier intra-block\n"
      "                     dimension (default 2; 0 = sweep for best, GB only)\n"
      "  --nic MODEL        lanai43 | lanai72 (default lanai43)\n"
      "  --clock MHZ        override NIC clock\n"
      "  --topology T       switch | chain | tree | fat-tree | leaf-spine\n"
      "                     (default switch)\n"
      "  --radix R          fat-tree/leaf-spine switch radix (default 16)\n"
      "  --oversub Q        fat-tree/leaf-spine oversubscription ratio Q:1\n"
      "                     (default 1 = non-blocking)\n"
      "  --reliability M    unreliable | shared | separate (default unreliable)\n"
      "  --loss P           i.i.d. drop probability on every link (default 0)\n"
      "  --burst-loss E,X,L Gilbert-Elliott loss on every link: P(enter bad),\n"
      "                     P(exit bad), loss rate while bad\n"
      "  --fault-plan F     load a declarative fault plan (see sim/fault.hpp)\n"
      "  --rto M            adaptive | fixed retransmission timeout (default adaptive)\n"
      "  --deadline-us D    per-barrier abort deadline in us (default 0 = none)\n"
      "  --skew-us S        max random start skew in us (default 0)\n"
      "  --layer-us L       per-call software layer overhead in us (default 0)\n"
      "  --seed S           RNG seed (default 1)\n"
      "  --seeds K          run K consecutive seeds as one sweep (default 1)\n"
      "  --jobs N           worker threads for sweeps (default 1; 0 = all cores)\n"
      "  --pdes-workers N   run the single experiment on the conservative PDES\n"
      "                     engine: N leaf-aligned partitions on N worker threads\n"
      "                     (default 1 = serial). The timeline, counters, and\n"
      "                     causal record are bit-identical for every N; only\n"
      "                     wall-clock time changes. Not available with\n"
      "                     --breakdown/--trace-json (those collectors are\n"
      "                     single-lane) or the workload/check subcommands\n"
      "  --predict          also print the Eq. 1-3 analytic prediction\n"
      "  --breakdown        print the per-barrier Eq. 1-2 cost breakdown\n"
      "  --metrics-json F   write hardware counters/gauges as JSON to F\n"
      "  --trace-json F     write a Chrome trace-event file (Perfetto) to F\n"
      "  --trace-mask LIST  restrict --trace-json to a comma-separated category\n"
      "                     list (host,sdma,send,recv,rdma,net,barrier,reliab,all)\n"
      "  --critical-path    single run: trace causality and print the exact\n"
      "                     critical path + per-segment attribution (Eq. 1-2\n"
      "                     terms); fails if the DAG is cyclic or unattributed\n"
      "  --slo-report F     workload mode: compute per-class SLO burn rates and\n"
      "                     write the report as JSON to F (table on stdout)\n";
}

namespace detail {

inline const char* next_arg(int argc, char** argv, int& i) {
  if (++i >= argc) return nullptr;
  return argv[i];
}

/// Accepts both `--flag value` and `--flag=value`; returns nullptr if `a` is
/// not `flag` at all. Sets `missing` when the flag matched but has no value.
inline const char* flag_value(const std::string& a, const char* flag, int argc, char** argv,
                              int& i, bool& missing) {
  const std::size_t n = std::strlen(flag);
  if (a.compare(0, n, flag) != 0) return nullptr;
  if (a.size() == n) {
    const char* v = next_arg(argc, argv, i);
    missing = (v == nullptr);
    return v;
  }
  if (a[n] == '=') return a.c_str() + n + 1;
  return nullptr;
}

/// Strict non-negative integer parse; false on empty/garbage/negative input.
inline bool parse_unsigned(const char* s, unsigned long& out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  char* end = nullptr;
  out = std::strtoul(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace detail

/// Parses the nicbar_run command line. Returns std::nullopt and a message in
/// `error` when the arguments are malformed (an empty message means the
/// caller should just print usage).
inline std::optional<Options> parse(int argc, char** argv, std::string& error) {
  using detail::flag_value;
  using detail::next_arg;
  using detail::parse_unsigned;

  Options o;
  o.params.nodes = 8;
  o.params.reps = 500;
  o.params.spec.location = coll::Location::kNic;
  o.params.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  error.clear();

  auto fail = [&error](const std::string& msg) {
    error = msg;
    return std::nullopt;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (!a.empty() && a[0] != '-') {
      // Positionals: the `workload`/`check` subcommands, then (for
      // workload) its spec file.
      if (!o.workload && !o.check && a == "workload") {
        o.workload = true;
      } else if (!o.workload && !o.check && a == "check") {
        o.check = true;
      } else if (o.workload && o.workload_spec_path.empty()) {
        o.workload_spec_path = a;
      } else {
        return fail("unexpected argument " + a);
      }
      continue;
    }
    bool missing = false;
    if (const char* v = flag_value(a, "--metrics-json", argc, argv, i, missing)) {
      o.metrics_path = v;
      continue;
    }
    if (missing) return fail("--metrics-json needs a file path");
    if (const char* v = flag_value(a, "--trace-json", argc, argv, i, missing)) {
      o.trace_path = v;
      continue;
    }
    if (missing) return fail("--trace-json needs a file path");
    if (const char* v = flag_value(a, "--trace-mask", argc, argv, i, missing)) {
      const std::optional<std::uint32_t> mask = sim::parse_trace_mask(v);
      if (!mask) {
        return fail(std::string("--trace-mask: unknown category in \"") + v +
                    "\" (expected a comma-separated subset of " + sim::trace_mask_names() + ")");
      }
      o.trace_mask = *mask;
      o.have_trace_mask = true;
      continue;
    }
    if (missing) return fail("--trace-mask needs a category list");
    if (const char* v = flag_value(a, "--slo-report", argc, argv, i, missing)) {
      o.slo_report_path = v;
      continue;
    }
    if (missing) return fail("--slo-report needs a file path");
    if (const char* v = flag_value(a, "--report-json", argc, argv, i, missing)) {
      o.report_path = v;
      continue;
    }
    if (missing) return fail("--report-json needs a file path");

    auto value = [&](const char* flag) -> const char* {
      return a == flag ? next_arg(argc, argv, i) : nullptr;
    };
    if (a == "--nodes") {
      const char* v = value("--nodes");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--nodes needs a positive integer");
      o.params.nodes = static_cast<std::size_t>(n);
    } else if (a == "--reps") {
      const char* v = value("--reps");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--reps needs a positive integer");
      o.params.reps = static_cast<int>(n);
    } else if (a == "--jobs") {
      const char* v = value("--jobs");
      unsigned long n = 0;
      if (!parse_unsigned(v, n)) return fail("--jobs needs a non-negative integer");
      o.jobs = static_cast<unsigned>(n);
    } else if (a == "--pdes-workers") {
      const char* v = value("--pdes-workers");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--pdes-workers needs a positive integer");
      o.params.cluster.pdes_partitions = static_cast<std::size_t>(n);
      o.params.cluster.pdes_workers = static_cast<unsigned>(n);
      o.pdes_given = true;
    } else if (a == "--seeds") {
      const char* v = value("--seeds");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--seeds needs a positive integer");
      o.seeds = static_cast<std::size_t>(n);
    } else if (a == "--location") {
      const char* v = value("--location");
      if (v == nullptr) return fail("--location needs a value");
      const std::string s = v;
      if (s == "nic") {
        o.params.spec.location = coll::Location::kNic;
      } else if (s == "host") {
        o.params.spec.location = coll::Location::kHost;
      } else {
        return fail("--location must be nic or host");
      }
    } else if (a == "--algorithm") {
      const char* v = value("--algorithm");
      if (v == nullptr) return fail("--algorithm needs a value");
      const std::string s = v;
      if (s == "pe") {
        o.params.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
      } else if (s == "gb") {
        o.params.spec.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
      } else if (s == "hier") {
        // Two-level NIC family; --dim doubles as the intra-block dimension.
        o.params.spec.hierarchical = true;
      } else if (s == "host-dissem") {
        o.params.spec.rdma = coll::RdmaAlgorithm::kDissemination;
      } else if (s == "host-tree") {
        // --dim doubles as the tree radix for this family.
        o.params.spec.rdma = coll::RdmaAlgorithm::kTreePut;
      } else {
        return fail("--algorithm must be pe, gb, hier, host-dissem, or host-tree");
      }
    } else if (a == "--dim") {
      const char* v = value("--dim");
      unsigned long n = 0;
      if (!parse_unsigned(v, n)) return fail("--dim needs a non-negative integer");
      o.dim = static_cast<std::size_t>(n);
      o.sweep_dim = (n == 0);
    } else if (a == "--nic") {
      const char* v = value("--nic");
      if (v == nullptr) return fail("--nic needs a value");
      const std::string s = v;
      if (s == "lanai43") {
        o.params.cluster.nic = nic::lanai43();
      } else if (s == "lanai72") {
        o.params.cluster.nic = nic::lanai72();
      } else {
        return fail("--nic must be lanai43 or lanai72");
      }
    } else if (a == "--clock") {
      const char* v = value("--clock");
      if (v == nullptr) return fail("--clock needs a value");
      o.params.cluster.nic.clock_mhz = std::atof(v);
    } else if (a == "--topology") {
      const char* v = value("--topology");
      if (v == nullptr) return fail("--topology needs a value");
      const std::string s = v;
      if (s == "switch") {
        o.params.cluster.topology = host::Topology::kSingleSwitch;
      } else if (s == "chain") {
        o.params.cluster.topology = host::Topology::kSwitchChain;
      } else if (s == "tree") {
        o.params.cluster.topology = host::Topology::kSwitchTree;
      } else if (s == "fat-tree") {
        o.params.cluster.topology = host::Topology::kFatTree;
      } else if (s == "leaf-spine") {
        o.params.cluster.topology = host::Topology::kLeafSpine;
      } else {
        return fail("--topology must be switch, chain, tree, fat-tree, or leaf-spine");
      }
    } else if (a == "--radix") {
      const char* v = value("--radix");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--radix needs a positive integer");
      o.params.cluster.fabric_radix = static_cast<std::size_t>(n);
    } else if (a == "--oversub") {
      const char* v = value("--oversub");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--oversub needs a positive integer");
      o.params.cluster.fabric_oversub = static_cast<std::size_t>(n);
    } else if (a == "--reliability") {
      const char* v = value("--reliability");
      if (v == nullptr) return fail("--reliability needs a value");
      const std::string s = v;
      if (s == "unreliable") {
        o.params.cluster.nic.barrier_reliability = nic::BarrierReliability::kUnreliable;
      } else if (s == "shared") {
        o.params.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
      } else if (s == "separate") {
        o.params.cluster.nic.barrier_reliability = nic::BarrierReliability::kSeparateAcks;
      } else {
        return fail("--reliability must be unreliable, shared, or separate");
      }
    } else if (a == "--loss") {
      const char* v = value("--loss");
      if (v == nullptr) return fail("--loss needs a value");
      o.loss = std::atof(v);
    } else if (a == "--burst-loss") {
      const char* v = value("--burst-loss");
      if (v == nullptr ||
          std::sscanf(v, "%lf,%lf,%lf", &o.burst_enter, &o.burst_exit, &o.burst_rate) != 3) {
        return fail("--burst-loss needs ENTER,EXIT,LOSSRATE");
      }
      o.have_burst = true;
    } else if (a == "--fault-plan") {
      const char* v = value("--fault-plan");
      if (v == nullptr) return fail("--fault-plan needs a file path");
      o.fault_plan_path = v;
    } else if (a == "--rto") {
      const char* v = value("--rto");
      if (v == nullptr) return fail("--rto needs a value");
      const std::string s = v;
      if (s == "adaptive") {
        o.params.cluster.nic.adaptive_rto = true;
      } else if (s == "fixed") {
        o.params.cluster.nic.adaptive_rto = false;
      } else {
        return fail("--rto must be adaptive or fixed");
      }
    } else if (a == "--deadline-us") {
      const char* v = value("--deadline-us");
      if (v == nullptr) return fail("--deadline-us needs a value");
      o.params.spec.deadline = sim::microseconds(std::atof(v));
    } else if (a == "--skew-us") {
      const char* v = value("--skew-us");
      if (v == nullptr) return fail("--skew-us needs a value");
      o.params.max_start_skew = sim::microseconds(std::atof(v));
    } else if (a == "--layer-us") {
      const char* v = value("--layer-us");
      if (v == nullptr) return fail("--layer-us needs a value");
      o.params.cluster.gm.layer_overhead = sim::microseconds(std::atof(v));
    } else if (a == "--seed") {
      const char* v = value("--seed");
      unsigned long n = 0;
      if (!parse_unsigned(v, n)) return fail("--seed needs a non-negative integer");
      o.params.seed = n;
      o.seed_given = true;
    } else if (a == "--cases") {
      const char* v = value("--cases");
      unsigned long n = 0;
      if (!parse_unsigned(v, n) || n == 0) return fail("--cases needs a positive integer");
      o.check_cases = static_cast<std::size_t>(n);
    } else if (a == "--case-seed") {
      const char* v = value("--case-seed");
      unsigned long n = 0;
      if (!parse_unsigned(v, n)) return fail("--case-seed needs a non-negative integer");
      o.case_seed = n;
      o.have_case_seed = true;
    } else if (a == "--predict") {
      o.predict = true;
    } else if (a == "--breakdown") {
      o.breakdown = true;
    } else if (a == "--critical-path") {
      o.critical_path = true;
    } else {
      return fail("unknown option " + a);
    }
  }
  o.params.spec.gb_dimension = o.dim;

  if (o.params.spec.hierarchical) {
    if (o.params.spec.rdma != coll::RdmaAlgorithm::kNone) {
      return fail("--algorithm may be given once: hier and host-* are different families");
    }
    if (o.params.spec.location != coll::Location::kNic) {
      return fail("--algorithm hier is the two-level NIC family; it requires --location nic");
    }
    if (o.sweep_dim) {
      return fail("--dim 0 sweeps the flat GB tree dimension; hier needs an "
                  "explicit intra-block dimension (--dim >= 1)");
    }
    if (o.predict) {
      return fail("--predict evaluates the paper's flat Eq. 1-3 models; "
                  "no closed form is fitted for the hierarchical family");
    }
  }

  if (o.params.spec.rdma != coll::RdmaAlgorithm::kNone) {
    if (o.sweep_dim) {
      return fail("--dim 0 sweeps the GB tree dimension; host-tree needs an "
                  "explicit radix (--dim >= 1)");
    }
    if (o.predict) {
      return fail("--predict evaluates the paper's Eq. 1-2 NIC/host models; "
                  "no closed form is fitted for the host-RDMA family");
    }
  }

  if (o.pdes_given && o.params.cluster.pdes_partitions > 1 &&
      (o.breakdown || !o.trace_path.empty())) {
    return fail("--breakdown/--trace-json collectors are single-lane; not available "
                "with --pdes-workers > 1 (--critical-path and --metrics-json are)");
  }
  if (o.pdes_given && (o.workload || o.check)) {
    return fail("--pdes-workers applies to a single barrier experiment; not "
                "available with the workload/check subcommands");
  }
  if (o.seeds > 1 && (o.breakdown || !o.trace_path.empty() || o.critical_path)) {
    return fail("--breakdown/--trace-json/--critical-path describe a single run; "
                "not available with --seeds");
  }
  if (o.workload && o.workload_spec_path.empty()) {
    return fail("workload needs a spec file path");
  }
  if (o.workload && (o.predict || o.breakdown || !o.trace_path.empty() || o.critical_path)) {
    return fail("--predict/--breakdown/--trace-json/--critical-path describe a single "
                "barrier experiment; not available with workload");
  }
  if (o.have_trace_mask && o.trace_path.empty()) {
    return fail("--trace-mask filters --trace-json output; give --trace-json a path");
  }
  if (!o.workload && !o.report_path.empty()) {
    return fail("--report-json is only meaningful with the workload subcommand");
  }
  if (!o.workload && !o.slo_report_path.empty()) {
    return fail("--slo-report is only meaningful with the workload subcommand");
  }
  if (!o.check && (o.check_cases != 50 || o.have_case_seed)) {
    return fail("--cases/--case-seed are only meaningful with the check subcommand");
  }
  if (o.check && (o.predict || o.breakdown || o.critical_path || !o.trace_path.empty() ||
                  !o.metrics_path.empty() || o.seeds > 1)) {
    return fail("check runs a fixed validation suite; it only composes with "
                "--cases and --case-seed");
  }
  return o;
}

}  // namespace nicbar::cli
