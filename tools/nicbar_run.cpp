// nicbar_run — command-line experiment driver.
//
// Runs one barrier experiment on the simulated cluster and prints the mean
// latency plus NIC counters. Everything the figure benches do, but with the
// knobs on the command line, for interactive exploration:
//
//   nicbar_run --nodes 16 --location nic --algorithm pe
//   nicbar_run --nodes 8 --nic lanai72 --location host --algorithm gb --dim 3
//   nicbar_run --nodes 64 --topology tree --reps 100 --skew-us 200
//   nicbar_run --nodes 8 --reliability separate --loss 0.02
//   nicbar_run --nodes 16 --breakdown --trace-json trace.json --metrics-json m.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "coll/runner.hpp"
#include "model/timing.hpp"
#include "sim/fault.hpp"
#include "sim/telemetry.hpp"

namespace {

using namespace nicbar;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N          group size (default 8)\n"
      "  --reps R           consecutive barriers to average (default 500)\n"
      "  --location L       nic | host (default nic)\n"
      "  --algorithm A      pe | gb (default pe)\n"
      "  --dim D            GB tree dimension (default 2; 0 = sweep for best)\n"
      "  --nic MODEL        lanai43 | lanai72 (default lanai43)\n"
      "  --clock MHZ        override NIC clock\n"
      "  --topology T       switch | chain | tree (default switch)\n"
      "  --reliability M    unreliable | shared | separate (default unreliable)\n"
      "  --loss P           i.i.d. drop probability on every link (default 0)\n"
      "  --burst-loss E,X,L Gilbert-Elliott loss on every link: P(enter bad),\n"
      "                     P(exit bad), loss rate while bad\n"
      "  --fault-plan F     load a declarative fault plan (see sim/fault.hpp)\n"
      "  --rto M            adaptive | fixed retransmission timeout (default adaptive)\n"
      "  --deadline-us D    per-barrier abort deadline in us (default 0 = none)\n"
      "  --skew-us S        max random start skew in us (default 0)\n"
      "  --layer-us L       per-call software layer overhead in us (default 0)\n"
      "  --seed S           RNG seed (default 1)\n"
      "  --predict          also print the Eq. 1-3 analytic prediction\n"
      "  --breakdown        print the per-barrier Eq. 1-2 cost breakdown\n"
      "  --metrics-json F   write hardware counters/gauges as JSON to F\n"
      "  --trace-json F     write a Chrome trace-event file (Perfetto) to F\n",
      argv0);
  std::exit(2);
}

const char* next_arg(int argc, char** argv, int& i, const char* argv0) {
  if (++i >= argc) usage(argv0);
  return argv[i];
}

/// Accepts both `--flag value` and `--flag=value`; returns nullptr if `a` is
/// not `flag` at all.
const char* flag_value(const std::string& a, const char* flag, int argc, char** argv, int& i,
                       const char* argv0) {
  const std::size_t n = std::strlen(flag);
  if (a.compare(0, n, flag) != 0) return nullptr;
  if (a.size() == n) return next_arg(argc, argv, i, argv0);
  if (a[n] == '=') return a.c_str() + n + 1;
  return nullptr;
}

template <typename Writer>
bool write_file(const std::string& path, Writer&& writer) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  writer(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  coll::ExperimentParams p;
  p.nodes = 8;
  p.reps = 500;
  p.spec.location = coll::Location::kNic;
  p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  std::size_t dim = 2;
  bool sweep_dim = false;
  bool predict = false;
  bool breakdown = false;
  std::string metrics_path;
  std::string trace_path;
  std::string fault_plan_path;
  double loss = 0.0;
  double burst_enter = 0.0, burst_exit = 0.0, burst_rate = 0.0;
  bool have_burst = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (const char* v = flag_value(a, "--metrics-json", argc, argv, i, argv[0])) {
      metrics_path = v;
      continue;
    }
    if (const char* v = flag_value(a, "--trace-json", argc, argv, i, argv[0])) {
      trace_path = v;
      continue;
    }
    if (a == "--nodes") {
      p.nodes = static_cast<std::size_t>(std::atoll(next_arg(argc, argv, i, argv[0])));
    } else if (a == "--reps") {
      p.reps = std::atoi(next_arg(argc, argv, i, argv[0]));
    } else if (a == "--location") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (v == "nic") {
        p.spec.location = coll::Location::kNic;
      } else if (v == "host") {
        p.spec.location = coll::Location::kHost;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--algorithm") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (v == "pe") {
        p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
      } else if (v == "gb") {
        p.spec.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--dim") {
      dim = static_cast<std::size_t>(std::atoll(next_arg(argc, argv, i, argv[0])));
      sweep_dim = (dim == 0);
    } else if (a == "--nic") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (v == "lanai43") {
        p.cluster.nic = nic::lanai43();
      } else if (v == "lanai72") {
        p.cluster.nic = nic::lanai72();
      } else {
        usage(argv[0]);
      }
    } else if (a == "--clock") {
      p.cluster.nic.clock_mhz = std::atof(next_arg(argc, argv, i, argv[0]));
    } else if (a == "--topology") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (v == "switch") {
        p.cluster.topology = host::Topology::kSingleSwitch;
      } else if (v == "chain") {
        p.cluster.topology = host::Topology::kSwitchChain;
      } else if (v == "tree") {
        p.cluster.topology = host::Topology::kSwitchTree;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--reliability") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (v == "unreliable") {
        p.cluster.nic.barrier_reliability = nic::BarrierReliability::kUnreliable;
      } else if (v == "shared") {
        p.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
      } else if (v == "separate") {
        p.cluster.nic.barrier_reliability = nic::BarrierReliability::kSeparateAcks;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--loss") {
      loss = std::atof(next_arg(argc, argv, i, argv[0]));
    } else if (a == "--burst-loss") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (std::sscanf(v.c_str(), "%lf,%lf,%lf", &burst_enter, &burst_exit, &burst_rate) != 3) {
        usage(argv[0]);
      }
      have_burst = true;
    } else if (a == "--fault-plan") {
      fault_plan_path = next_arg(argc, argv, i, argv[0]);
    } else if (a == "--rto") {
      const std::string v = next_arg(argc, argv, i, argv[0]);
      if (v == "adaptive") {
        p.cluster.nic.adaptive_rto = true;
      } else if (v == "fixed") {
        p.cluster.nic.adaptive_rto = false;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--deadline-us") {
      p.spec.deadline = sim::microseconds(std::atof(next_arg(argc, argv, i, argv[0])));
    } else if (a == "--skew-us") {
      p.max_start_skew = sim::microseconds(std::atof(next_arg(argc, argv, i, argv[0])));
    } else if (a == "--layer-us") {
      p.cluster.gm.layer_overhead = sim::microseconds(std::atof(next_arg(argc, argv, i, argv[0])));
    } else if (a == "--seed") {
      p.seed = static_cast<std::uint64_t>(std::atoll(next_arg(argc, argv, i, argv[0])));
    } else if (a == "--predict") {
      predict = true;
    } else if (a == "--breakdown") {
      breakdown = true;
    } else {
      usage(argv[0]);
    }
  }
  p.spec.gb_dimension = dim;

  if (!fault_plan_path.empty()) {
    std::ifstream in(fault_plan_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read fault plan %s\n", fault_plan_path.c_str());
      return 1;
    }
    try {
      p.cluster.faults = sim::fault::parse_fault_plan(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", fault_plan_path.c_str(), e.what());
      return 1;
    }
  } else {
    p.cluster.faults.seed = p.seed;
  }
  if (loss > 0.0) p.cluster.faults.loss.push_back({"", loss});
  if (have_burst) p.cluster.faults.bursts.push_back({"", burst_enter, burst_exit, 0.0, burst_rate});

  double mean_us = 0.0;
  if (sweep_dim && p.spec.algorithm == nic::BarrierAlgorithm::kGatherBroadcast) {
    const auto [best, us] = coll::best_gb_dimension(p);
    std::printf("best GB dimension: %zu\n", best);
    mean_us = us;
    p.spec.gb_dimension = best;
  }

  // Telemetry is attached only to the final (reported) run, after any
  // dimension sweep, so the artifacts describe exactly one experiment.
  sim::telemetry::Telemetry telemetry;
  const bool want_telemetry = breakdown || !metrics_path.empty() || !trace_path.empty();
  if (want_telemetry) {
    if (!trace_path.empty()) telemetry.enable_trace();
    if (breakdown) telemetry.enable_breakdown();
    p.cluster.telemetry = &telemetry;
  }

  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  if (mean_us == 0.0) mean_us = r.mean_us;

  std::printf("nodes=%zu reps=%d %s-%s dim=%zu nic=%s @%.0fMHz\n", p.nodes, p.reps,
              p.spec.location == coll::Location::kNic ? "NIC" : "host",
              p.spec.algorithm == nic::BarrierAlgorithm::kPairwiseExchange ? "PE" : "GB",
              p.spec.gb_dimension, p.cluster.nic.model.c_str(), p.cluster.nic.clock_mhz);
  if (r.stalled_members > 0) {
    // An unreliable barrier on a lossy fabric hangs when a barrier packet is
    // dropped (the paper's measured config assumes a lossless fabric) — the
    // mean would be meaningless, so say what actually happened.
    std::printf("mean barrier latency :    STALLED (%llu member%s never finished; try "
                "--reliability shared|separate or --deadline-us)\n",
                static_cast<unsigned long long>(r.stalled_members),
                r.stalled_members == 1 ? "" : "s");
  } else {
    std::printf("mean barrier latency : %10.2f us\n", mean_us);
  }
  std::printf("barriers completed   : %10llu\n",
              static_cast<unsigned long long>(r.barriers_completed));
  std::printf("barrier packets sent : %10llu\n",
              static_cast<unsigned long long>(r.barrier_packets_sent));
  std::printf("unexpected recorded  : %10llu (bit collisions: %llu)\n",
              static_cast<unsigned long long>(r.unexpected_recorded),
              static_cast<unsigned long long>(r.bit_collisions));
  std::printf("retransmissions      : %10llu\n",
              static_cast<unsigned long long>(r.retransmissions));
  if (!p.cluster.faults.empty()) {
    std::printf("fault injection      : %10llu link drops, %llu crc drops\n",
                static_cast<unsigned long long>(r.link_packets_dropped),
                static_cast<unsigned long long>(r.crc_drops));
    std::printf("recovery             : %10llu timeouts, %llu backoffs, %llu rtt samples\n",
                static_cast<unsigned long long>(r.retransmit_timeouts),
                static_cast<unsigned long long>(r.rto_backoffs),
                static_cast<unsigned long long>(r.rtt_samples));
    std::printf("failures             : %10llu aborted members, %llu dead connections, "
                "%llu crashes (%llu restarts)\n",
                static_cast<unsigned long long>(r.barrier_failures),
                static_cast<unsigned long long>(r.connections_failed),
                static_cast<unsigned long long>(r.nic_crashes),
                static_cast<unsigned long long>(r.nic_restarts));
  }

  if (predict) {
    const model::PhaseTimes t = model::derive_phases(p.cluster.nic, p.cluster.gm,
                                                     p.cluster.link, p.cluster.sw);
    const double eq = p.spec.location == coll::Location::kNic
                          ? model::nic_barrier_us(t, p.nodes)
                          : model::host_barrier_us(t, p.nodes);
    std::printf("Eq.%d prediction (PE) : %10.2f us (%.1f%% off)\n",
                p.spec.location == coll::Location::kNic ? 2 : 1, eq,
                100.0 * (mean_us - eq) / eq);
  }

  if (breakdown) {
    const auto* bc = telemetry.breakdown();
    const sim::telemetry::CostBreakdown b = bc->mean();
    if (bc->barriers() == 0) {
      std::printf(
          "\nno cost breakdown: --breakdown instruments the NIC barrier token "
          "path;\nhost-based barriers are ordinary message loops with no "
          "post/complete hook.\n");
    } else {
      std::printf("\ncost breakdown (mean over %llu member-barriers, Eq. 1-2 terms):\n",
                  static_cast<unsigned long long>(bc->barriers()));
      std::printf("  host software      : %10.3f us\n", b.host_us);
      std::printf("  NIC processing     : %10.3f us\n", b.nic_us);
      std::printf("  DMA (PCI)          : %10.3f us\n", b.dma_us);
      std::printf("  wire (network)     : %10.3f us\n", b.wire_us);
      std::printf("  wait (peer skew)   : %10.3f us\n", b.wait_us);
      std::printf("  total              : %10.3f us\n", b.total_us);
    }
  }
  if (!metrics_path.empty()) {
    if (!write_file(metrics_path,
                    [&](std::ostream& os) { telemetry.metrics().write_json(os); })) {
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!write_file(trace_path, [&](std::ostream& os) { telemetry.trace()->write_json(os); })) {
      return 1;
    }
    std::printf("trace written to %s (open in https://ui.perfetto.dev)\n", trace_path.c_str());
  }
  return 0;
}
