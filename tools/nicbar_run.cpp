// nicbar_run — command-line experiment driver.
//
// Runs barrier experiments on the simulated cluster and prints the mean
// latency plus NIC counters. Everything the figure benches do, but with the
// knobs on the command line, for interactive exploration:
//
//   nicbar_run --nodes 16 --location nic --algorithm pe
//   nicbar_run --nodes 8 --nic lanai72 --location host --algorithm gb --dim 3
//   nicbar_run --nodes 64 --topology tree --reps 100 --skew-us 200
//   nicbar_run --nodes 8 --reliability separate --loss 0.02
//   nicbar_run --nodes 16 --breakdown --trace-json trace.json --metrics-json m.json
//   nicbar_run --nodes 16 --loss 0.01 --reliability shared --seeds 5 --jobs 5
//
// Option parsing lives in nicbar_cli.hpp so it can be unit-tested; sweeps
// (GB dimension, multi-seed) go through coll::SweepPlan and are sharded
// across --jobs worker threads with bit-identical results.
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "check/oracle.hpp"
#include "check/property.hpp"
#include "coll/sweep.hpp"
#include "model/timing.hpp"
#include "nicbar_cli.hpp"
#include "sim/causal.hpp"
#include "sim/fault.hpp"
#include "sim/telemetry.hpp"
#include "wl/driver.hpp"
#include "wl/slo.hpp"

namespace {

using namespace nicbar;

/// "NIC"/"host" engine label; the host-RDMA family runs on the host no
/// matter what --location said.
const char* engine_label(const coll::BarrierSpec& spec) {
  if (spec.rdma != coll::RdmaAlgorithm::kNone) return "host";
  return spec.location == coll::Location::kNic ? "NIC" : "host";
}

const char* algorithm_label(const coll::BarrierSpec& spec) {
  switch (spec.rdma) {
    case coll::RdmaAlgorithm::kDissemination: return "RDMA-dissem";
    case coll::RdmaAlgorithm::kTreePut: return "RDMA-tree";
    case coll::RdmaAlgorithm::kNone: break;
  }
  if (spec.hierarchical) return "hier";
  return spec.algorithm == nic::BarrierAlgorithm::kPairwiseExchange ? "PE" : "GB";
}

template <typename Writer>
bool write_file(const std::string& path, Writer&& writer) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  writer(out);
  return true;
}

/// --seeds K: one SweepPlan case per seed, sharded across --jobs workers.
/// Prints a per-seed table plus the aggregate mean, so lossy configurations
/// can be characterised across RNG draws in one command.
int run_seed_sweep(const cli::Options& o) {
  coll::SweepPlan plan;
  const bool gb_sweep =
      o.sweep_dim && o.params.spec.algorithm == nic::BarrierAlgorithm::kGatherBroadcast;
  for (std::size_t k = 0; k < o.seeds; ++k) {
    coll::ExperimentParams p = o.params;
    p.seed = o.params.seed + k;
    if (o.fault_plan_path.empty()) p.cluster.faults.seed = p.seed;
    if (gb_sweep) {
      plan.add_gb_sweep("seed" + std::to_string(p.seed), std::move(p));
    } else {
      plan.add("seed" + std::to_string(p.seed), std::move(p));
    }
  }

  coll::SweepOptions opts;
  opts.workers = o.jobs;
  std::unique_ptr<coll::MetricsSink> sink;
  if (!o.metrics_path.empty()) {
    sink = std::make_unique<coll::MetricsSink>(o.metrics_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "error: cannot write %s\n", o.metrics_path.c_str());
      return 1;
    }
    opts.instrument = true;
    opts.sink = sink.get();
  }
  coll::SweepResult r;
  try {
    r = plan.run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("seed sweep: %zu seeds from %llu, nodes=%zu reps=%d %s-%s nic=%s, jobs=%u\n",
              o.seeds, static_cast<unsigned long long>(o.params.seed), o.params.nodes,
              o.params.reps, engine_label(o.params.spec), algorithm_label(o.params.spec),
              o.params.cluster.nic.model.c_str(), o.jobs);
  std::printf("%8s %6s %12s %10s %10s %10s %9s\n", "seed", gb_sweep ? "dim" : "", "mean_us",
              "retrans", "drops", "timeouts", "failures");
  double sum_us = 0.0;
  std::size_t stalled = 0;
  for (std::size_t k = 0; k < r.cases.size(); ++k) {
    const coll::CaseResult& c = r.cases[k];
    char dim_buf[16] = "";
    if (gb_sweep) std::snprintf(dim_buf, sizeof dim_buf, "%zu", c.gb_dimension);
    if (c.result.stalled_members > 0) {
      std::printf("%8llu %6s %12s\n", static_cast<unsigned long long>(o.params.seed + k), dim_buf,
                  "STALLED");
      ++stalled;
      continue;
    }
    std::printf("%8llu %6s %12.2f %10llu %10llu %10llu %9llu\n",
                static_cast<unsigned long long>(o.params.seed + k), dim_buf, c.result.mean_us,
                static_cast<unsigned long long>(c.result.retransmissions),
                static_cast<unsigned long long>(c.result.link_packets_dropped),
                static_cast<unsigned long long>(c.result.retransmit_timeouts),
                static_cast<unsigned long long>(c.result.barrier_failures));
    sum_us += c.result.mean_us;
  }
  const std::size_t finished = r.cases.size() - stalled;
  if (finished > 0) {
    std::printf("mean over %zu seed%s   : %10.2f us\n", finished, finished == 1 ? "" : "s",
                sum_us / static_cast<double>(finished));
  }
  if (stalled > 0) {
    std::printf("stalled seeds        : %10zu (try --reliability shared|separate or "
                "--deadline-us)\n",
                stalled);
  }
  std::printf("wall clock           : %10.1f ms\n", r.wall_ms);
  if (sink) std::printf("metrics written to %s\n", o.metrics_path.c_str());
  return 0;
}

/// --critical-path: prints the exact critical path of the last completed
/// barrier plus the aggregated per-segment attribution, then asserts the two
/// structural invariants — the span graph is acyclic and the attribution
/// telescopes to the measured total to the picosecond. Non-zero exit on a
/// violation, so CI can gate on this output.
int print_critical_path(const sim::causal::CausalTracer& causal) {
  namespace cz = sim::causal;
  if (!causal.verify_acyclic()) {
    std::fprintf(stderr, "error: causal span graph violates the parent-id < span-id "
                         "invariant (cycle)\n");
    return 1;
  }
  if (causal.completed().empty()) {
    std::printf("\nno critical path: no NIC barrier completed (host-based barriers are "
                "ordinary\nmessage loops with no completion event to trace)\n");
    return 0;
  }
  const cz::CompletedBarrier& last = causal.completed().back();
  const cz::CriticalPath path = causal.critical_path(last.sink);
  std::printf("\ncritical path, last completed barrier (node %u port %u epoch %u; "
              "%zu spans, %.3f us):\n",
              last.node, last.port, last.epoch, path.steps.size(), path.total.us());
  std::printf("  %-4s %-10s %-16s %12s %12s\n", "node", "segment", "span", "self_us",
              "queue_us");
  for (const cz::PathStep& s : path.steps) {
    std::printf("  %-4u %-10s %-16s %12.4f %12.4f\n", s.node, cz::to_string(s.seg), s.label,
                s.self.us(), s.queue.us());
  }

  const cz::PathProfile prof = causal.profile();
  const double n = static_cast<double>(prof.barriers);
  std::printf("\ncritical-path attribution (mean over %llu completed barriers):\n",
              static_cast<unsigned long long>(prof.barriers));
  const double denom = prof.total.us();
  for (std::size_t s = 0; s < cz::kSegmentCount; ++s) {
    const double self_us = prof.self[s].us();
    const double queue_us = prof.queue[s].us();
    std::printf("  %-10s self %10.4f us  queue %10.4f us  (%5.1f%% of path)\n",
                cz::to_string(static_cast<cz::Segment>(s)), self_us / n, queue_us / n,
                denom > 0.0 ? 100.0 * (self_us + queue_us) / denom : 0.0);
  }
  std::printf("  %-10s      %10.4f us\n", "total", denom / n);

  if (path.attributed() != path.total || prof.attributed() != prof.total) {
    std::fprintf(stderr, "error: critical-path attribution does not telescope to the "
                         "measured total\n");
    return 1;
  }
  std::printf("causal DAG           : %zu spans, acyclic, fully attributed\n",
              causal.span_count());
  return 0;
}

void print_tail(const char* name, const wl::TailStats& t) {
  std::printf("%-14s count=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f us\n", name,
              static_cast<unsigned long long>(t.count), t.mean_us, t.p50_us, t.p95_us, t.p99_us,
              t.max_us);
}

void print_workload_report(const wl::Report& rep) {
  std::printf("%4s %-12s %6s %12s %12s %12s %12s %9s\n", "job", "class", "nodes", "arrival_us",
              "start_us", "end_us", "mean_us", "failures");
  for (const wl::JobReport& j : rep.jobs) {
    std::printf("%4zu %-12s %6zu %12.1f %12.1f %12.1f %12.2f %9llu\n", j.job, j.klass.c_str(),
                j.nodes, j.arrival_us, j.start_us, j.end_us, j.experiment_mean_us,
                static_cast<unsigned long long>(j.failures));
  }
  std::printf("\nper-collective latency:\n");
  for (std::size_t k = 0; k < wl::kCollectiveKindCount; ++k) {
    if (rep.per_kind[k].count == 0) continue;
    print_tail(wl::to_string(static_cast<wl::CollectiveKind>(k)), rep.per_kind[k]);
  }
  print_tail("overall", rep.overall);
  std::printf("\nmakespan             : %10.1f us\n", rep.makespan_us);
  std::printf("fabric               : link util mean %.3f / max %.3f, NIC occupancy mean %.3f "
              "/ max %.3f, PCI util mean %.3f\n",
              rep.mean_link_utilisation, rep.max_link_utilisation, rep.mean_nic_occupancy,
              rep.max_nic_occupancy, rep.mean_pci_utilisation);
  std::printf("counters             : %llu barriers, %llu reduces, %llu retransmissions, "
              "%llu link stalls, %llu drops\n",
              static_cast<unsigned long long>(rep.barriers_completed),
              static_cast<unsigned long long>(rep.reduces_completed),
              static_cast<unsigned long long>(rep.retransmissions),
              static_cast<unsigned long long>(rep.link_stalls),
              static_cast<unsigned long long>(rep.link_packets_dropped));
  if (rep.total_failures > 0) {
    std::printf("failures             : %10llu\n",
                static_cast<unsigned long long>(rep.total_failures));
  }
}

/// `nicbar_run workload SPEC`: the spec file provides cluster and jobs; the
/// command line provides seeds, fault injection, worker threads, and output
/// paths. With --seeds K every seed is one SweepPlan custom case, sharded
/// across --jobs workers with bit-identical reports.
int run_workload_cmd(const cli::Options& o) {
  std::ifstream in(o.workload_spec_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read workload spec %s\n", o.workload_spec_path.c_str());
    return 1;
  }
  wl::WorkloadSpec spec;
  try {
    spec = wl::parse_workload_spec(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", o.workload_spec_path.c_str(), e.what());
    return 1;
  }
  if (o.seed_given) spec.seed = o.params.seed;

  if (!o.fault_plan_path.empty()) {
    std::ifstream fin(o.fault_plan_path);
    if (!fin) {
      std::fprintf(stderr, "error: cannot read fault plan %s\n", o.fault_plan_path.c_str());
      return 1;
    }
    try {
      spec.cluster.faults = sim::fault::parse_fault_plan(fin);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", o.fault_plan_path.c_str(), e.what());
      return 1;
    }
  } else {
    spec.cluster.faults.seed = spec.seed;
  }
  if (o.loss > 0.0) spec.cluster.faults.loss.push_back({"", o.loss});
  if (o.have_burst) {
    spec.cluster.faults.bursts.push_back({"", o.burst_enter, o.burst_exit, 0.0, o.burst_rate});
  }

  // Every seed is one custom case; each run builds its own cluster, so the
  // sweep shards cleanly and a single seed is just a one-case plan.
  coll::SweepPlan plan;
  std::vector<wl::Report> reports(o.seeds);
  std::vector<wl::SloReport> slo_reports(o.seeds);
  const bool want_slo = !o.slo_report_path.empty();
  for (std::size_t k = 0; k < o.seeds; ++k) {
    wl::WorkloadSpec s = spec;
    s.seed = spec.seed + k;
    if (o.fault_plan_path.empty()) s.cluster.faults.seed = s.seed;
    wl::Report* out = &reports[k];
    wl::SloReport* slo_out = want_slo ? &slo_reports[k] : nullptr;
    plan.add_custom("workload-seed" + std::to_string(s.seed),
                    [s = std::move(s), out, slo_out](sim::telemetry::Telemetry* t) {
                      wl::WorkloadSpec run_spec = s;
                      run_spec.cluster.telemetry = t;
                      if (slo_out != nullptr) {
                        auto [rep, slo] = wl::Driver(run_spec).run_with_slo();
                        *out = std::move(rep);
                        *slo_out = std::move(slo);
                      } else {
                        *out = wl::run_workload(run_spec);
                      }
                      coll::ExperimentResult res;
                      res.nodes = run_spec.cluster_nodes;
                      res.mean_us = out->overall.mean_us;
                      res.total_us = out->makespan_us;
                      res.barrier_failures = out->total_failures;
                      return res;
                    });
  }

  coll::SweepOptions opts;
  opts.workers = o.jobs;
  std::unique_ptr<coll::MetricsSink> sink;
  if (!o.metrics_path.empty()) {
    sink = std::make_unique<coll::MetricsSink>(o.metrics_path);
    if (!sink->ok()) {
      std::fprintf(stderr, "error: cannot write %s\n", o.metrics_path.c_str());
      return 1;
    }
    opts.instrument = true;
    opts.sink = sink.get();
  }

  coll::SweepResult sweep;
  try {
    sweep = plan.run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", o.workload_spec_path.c_str(), e.what());
    return 1;
  }

  std::printf("workload %s: %zu job%s over %zu nodes, placement=%s, arrival=%s, seed=%llu%s\n",
              o.workload_spec_path.c_str(), spec.total_jobs(), spec.total_jobs() == 1 ? "" : "s",
              spec.cluster_nodes, wl::to_string(spec.placement),
              wl::to_string(spec.arrival.kind), static_cast<unsigned long long>(spec.seed),
              o.seeds > 1 ? (" (+" + std::to_string(o.seeds - 1) + " more)").c_str() : "");
  if (o.seeds == 1) {
    print_workload_report(reports.front());
  } else {
    std::printf("%8s %10s %10s %10s %10s %12s %9s\n", "seed", "p50_us", "p95_us", "p99_us",
                "mean_us", "makespan_us", "failures");
    for (std::size_t k = 0; k < o.seeds; ++k) {
      const wl::Report& r = reports[k];
      std::printf("%8llu %10.2f %10.2f %10.2f %10.2f %12.1f %9llu\n",
                  static_cast<unsigned long long>(spec.seed + k), r.overall.p50_us,
                  r.overall.p95_us, r.overall.p99_us, r.overall.mean_us, r.makespan_us,
                  static_cast<unsigned long long>(r.total_failures));
    }
  }
  std::printf("wall clock           : %10.1f ms\n", sweep.wall_ms);

  if (!o.report_path.empty()) {
    const bool ok = write_file(o.report_path, [&](std::ostream& os) {
      if (o.seeds == 1) {
        reports.front().write_json(os);
      } else {
        os << "[\n";
        for (std::size_t k = 0; k < o.seeds; ++k) {
          reports[k].write_json(os);
          if (k + 1 < o.seeds) os << ",\n";
        }
        os << "]\n";
      }
    });
    if (!ok) return 1;
    std::printf("report written to %s\n", o.report_path.c_str());
  }
  if (want_slo) {
    std::ostringstream ascii;
    for (std::size_t k = 0; k < o.seeds; ++k) {
      if (o.seeds > 1) {
        ascii << "seed " << spec.seed + k << ":\n";
      }
      slo_reports[k].write_ascii(ascii);
    }
    std::printf("\n%s", ascii.str().c_str());
    const bool ok = write_file(o.slo_report_path, [&](std::ostream& os) {
      if (o.seeds == 1) {
        slo_reports.front().write_json(os);
      } else {
        os << "[\n";
        for (std::size_t k = 0; k < o.seeds; ++k) {
          slo_reports[k].write_json(os);
          if (k + 1 < o.seeds) os << ",\n";
        }
        os << "]\n";
      }
    });
    if (!ok) return 1;
    std::printf("SLO report written to %s\n", o.slo_report_path.c_str());
  }
  if (sink) std::printf("metrics written to %s\n", o.metrics_path.c_str());
  return 0;
}

/// `nicbar_run check`: the differential oracle plus the property/fuzz suite;
/// `--case-seed N` replays a single fuzz case instead (the reproduction
/// command printed with every fuzz failure).
int run_check_cmd(const cli::Options& o) {
  namespace chk = sim::check;
  if (o.have_case_seed) {
    const chk::PropertyReport rep = chk::run_fuzz_case(o.case_seed);
    std::string summary;
    (void)chk::generate_fuzz_case(o.case_seed, &summary);
    std::printf("fuzz %s: %s\n", summary.c_str(), rep.ok() ? "ok" : "FAILED");
    for (const auto& f : rep.failures) {
      std::printf("  [%s] %s\n", f.property.c_str(), f.detail.c_str());
    }
    return rep.ok() ? 0 : 1;
  }

  const chk::OracleReport oracle = chk::run_differential_oracle();
  std::printf("differential oracle  : %zu cases (%zu exact), max rel error %.3f over the "
              "tolerance cases\n",
              oracle.checked, oracle.exact_cases, oracle.max_rel_error);
  for (const auto& c : oracle.outcomes) {
    if (c.pass) continue;
    std::printf("  FAIL %-26s predicted=%lld ps simulated=%lld ps (%s, rel error %.3f)\n",
                c.label.c_str(), static_cast<long long>(c.predicted.ps()),
                static_cast<long long>(c.simulated.ps()),
                c.exact ? "must match exactly" : "tolerance exceeded", c.rel_error);
  }

  const chk::PropertyReport props =
      chk::run_property_suite({.seed = o.params.seed, .cases = o.check_cases});
  std::printf("property suite       : %zu metamorphic properties, %zu fuzz cases (seed %llu)\n",
              props.properties_run, props.fuzz_cases_run,
              static_cast<unsigned long long>(o.params.seed));
  for (const auto& f : props.failures) {
    std::printf("  FAIL [%s] %s\n", f.property.c_str(), f.detail.c_str());
    if (f.case_seed != 0) {
      std::printf("       reproduce with: nicbar_run check --case-seed %llu\n",
                  static_cast<unsigned long long>(f.case_seed));
    }
  }

  const bool ok = oracle.ok() && props.ok();
  std::printf("check                : %s\n", ok ? "all green" : "FAILURES (see above)");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::optional<cli::Options> parsed = cli::parse(argc, argv, error);
  if (!parsed) {
    if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
    std::printf("usage: %s [workload SPEC | check] [options]\n%s", argv[0], cli::usage_text());
    return 2;
  }
  cli::Options& o = *parsed;
  if (o.check) return run_check_cmd(o);
  if (o.workload) return run_workload_cmd(o);
  coll::ExperimentParams& p = o.params;

  if (!o.fault_plan_path.empty()) {
    std::ifstream in(o.fault_plan_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read fault plan %s\n", o.fault_plan_path.c_str());
      return 1;
    }
    try {
      p.cluster.faults = sim::fault::parse_fault_plan(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", o.fault_plan_path.c_str(), e.what());
      return 1;
    }
  } else {
    p.cluster.faults.seed = p.seed;
  }
  if (o.loss > 0.0) p.cluster.faults.loss.push_back({"", o.loss});
  if (o.have_burst) {
    p.cluster.faults.bursts.push_back({"", o.burst_enter, o.burst_exit, 0.0, o.burst_rate});
  }

  if (o.seeds > 1) return run_seed_sweep(o);

  double mean_us = 0.0;
  if (o.sweep_dim && p.spec.algorithm == nic::BarrierAlgorithm::kGatherBroadcast) {
    const auto [best, us] = coll::best_gb_dimension(p, o.jobs);
    std::printf("best GB dimension: %zu\n", best);
    mean_us = us;
    p.spec.gb_dimension = best;
  }

  // Telemetry is attached only to the final (reported) run, after any
  // dimension sweep, so the artifacts describe exactly one experiment.
  sim::telemetry::Telemetry telemetry;
  const bool want_telemetry =
      o.breakdown || !o.metrics_path.empty() || !o.trace_path.empty() || o.critical_path;
  if (want_telemetry) {
    if (!o.trace_path.empty()) telemetry.enable_trace().set_mask(o.trace_mask);
    if (o.breakdown) telemetry.enable_breakdown();
    if (o.critical_path) telemetry.enable_causal();
    p.cluster.telemetry = &telemetry;
  }

  coll::ExperimentResult r;
  try {
    r = coll::run_barrier_experiment(p);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (mean_us == 0.0) mean_us = r.mean_us;

  std::printf("nodes=%zu reps=%d %s-%s dim=%zu nic=%s @%.0fMHz\n", p.nodes, p.reps,
              engine_label(p.spec), algorithm_label(p.spec), p.spec.gb_dimension,
              p.cluster.nic.model.c_str(), p.cluster.nic.clock_mhz);
  if (r.stalled_members > 0) {
    // An unreliable barrier on a lossy fabric hangs when a barrier packet is
    // dropped (the paper's measured config assumes a lossless fabric) — the
    // mean would be meaningless, so say what actually happened.
    std::printf("mean barrier latency :    STALLED (%llu member%s never finished; try "
                "--reliability shared|separate or --deadline-us)\n",
                static_cast<unsigned long long>(r.stalled_members),
                r.stalled_members == 1 ? "" : "s");
  } else {
    std::printf("mean barrier latency : %10.2f us\n", mean_us);
  }
  std::printf("barriers completed   : %10llu\n",
              static_cast<unsigned long long>(r.barriers_completed));
  std::printf("barrier packets sent : %10llu\n",
              static_cast<unsigned long long>(r.barrier_packets_sent));
  std::printf("unexpected recorded  : %10llu (bit collisions: %llu)\n",
              static_cast<unsigned long long>(r.unexpected_recorded),
              static_cast<unsigned long long>(r.bit_collisions));
  std::printf("retransmissions      : %10llu\n",
              static_cast<unsigned long long>(r.retransmissions));
  if (!p.cluster.faults.empty()) {
    std::printf("fault injection      : %10llu link drops, %llu crc drops\n",
                static_cast<unsigned long long>(r.link_packets_dropped),
                static_cast<unsigned long long>(r.crc_drops));
    std::printf("recovery             : %10llu timeouts, %llu backoffs, %llu rtt samples\n",
                static_cast<unsigned long long>(r.retransmit_timeouts),
                static_cast<unsigned long long>(r.rto_backoffs),
                static_cast<unsigned long long>(r.rtt_samples));
    std::printf("failures             : %10llu aborted members, %llu dead connections, "
                "%llu crashes (%llu restarts)\n",
                static_cast<unsigned long long>(r.barrier_failures),
                static_cast<unsigned long long>(r.connections_failed),
                static_cast<unsigned long long>(r.nic_crashes),
                static_cast<unsigned long long>(r.nic_restarts));
  }

  if (o.predict) {
    const model::PhaseTimes t = model::derive_phases(p.cluster.nic, p.cluster.gm,
                                                     p.cluster.link, p.cluster.sw);
    const double eq = p.spec.location == coll::Location::kNic
                          ? model::nic_barrier_us(t, p.nodes)
                          : model::host_barrier_us(t, p.nodes);
    std::printf("Eq.%d prediction (PE) : %10.2f us (%.1f%% off)\n",
                p.spec.location == coll::Location::kNic ? 2 : 1, eq,
                100.0 * (mean_us - eq) / eq);
  }

  if (o.breakdown) {
    const auto* bc = telemetry.breakdown();
    const sim::telemetry::CostBreakdown b = bc->mean();
    if (bc->barriers() == 0) {
      std::printf(
          "\nno cost breakdown: --breakdown instruments the NIC barrier token "
          "path;\nhost-based barriers are ordinary message loops with no "
          "post/complete hook.\n");
    } else {
      std::printf("\ncost breakdown (mean over %llu member-barriers, Eq. 1-2 terms):\n",
                  static_cast<unsigned long long>(bc->barriers()));
      std::printf("  host software      : %10.3f us\n", b.host_us);
      std::printf("  NIC processing     : %10.3f us\n", b.nic_us);
      std::printf("  DMA (PCI)          : %10.3f us\n", b.dma_us);
      std::printf("  wire (network)     : %10.3f us\n", b.wire_us);
      std::printf("  wait (peer skew)   : %10.3f us\n", b.wait_us);
      std::printf("  total              : %10.3f us\n", b.total_us);
    }
  }
  int rc = 0;
  if (o.critical_path) rc = print_critical_path(*telemetry.causal());
  if (!o.metrics_path.empty()) {
    if (!write_file(o.metrics_path,
                    [&](std::ostream& os) { telemetry.metrics().write_json(os); })) {
      return 1;
    }
    std::printf("metrics written to %s\n", o.metrics_path.c_str());
  }
  if (!o.trace_path.empty()) {
    if (!write_file(o.trace_path,
                    [&](std::ostream& os) { telemetry.trace()->write_json(os); })) {
      return 1;
    }
    std::printf("trace written to %s (open in https://ui.perfetto.dev)\n", o.trace_path.c_str());
  }
  return rc;
}
