#!/usr/bin/env python3
"""Schema-drift guard for the BENCH_*.json and SLO-report artifacts.

Every bench emits one document via bench::BenchSummary with the shape

    {
      "schema": "nicbar-bench-v1",
      "bench": "<name>",
      "rows": [
        {"label": "<case>", "metrics": {"<key>": <number>, ...}},
        ...
      ]
    }

`nicbar_run workload ... --slo-report FILE` emits an SLO burn-rate report
(schema "nicbar-slo-v1"; a JSON array of such documents under --seeds):

    {
      "schema": "nicbar-slo-v1",
      "violating_jobs": <int>,
      "jobs": [
        {"job": <int>, "class": "...", "slo_us": ..., "target": ...,
         "samples": ..., "violations": ..., "compliance": ...,
         "burn_rate": ..., "max_window_burn_rate": ..., "violating": bool,
         "windows": [{"start_us", "end_us", "samples", "violations",
                      "burn_rate"}, ...],
         "critical_path": {"barriers": ..., "dominant_segment": "...",
                           "segments": [{"segment", "self_us",
                                         "queue_us"}, ...]}},
        ...
      ]
    }

bench/rma_barrier emits a crossover-study variant (schema "nicbar-rma-v1"):
the same bench/rows/label/metrics shape where every row must carry finite
positive latencies for all four families on the same axes (nic_pe_us,
nic_gb_us, host_dissem_us, host_tree_us) plus exact_match == 1 (the
contention-free NIC-PE column re-measured through an independent plan must
agree to the last bit).

bench/hier_barrier emits a crossover-study variant (schema "nicbar-hier-v1"):
the same bench/rows/label/metrics shape where every grid row must carry
finite positive latencies for all four families on the same axes (nodes,
nic_pe_us, nic_gb_us, host_dissem_us, hier_us, hier_vs_pe_improvement),
grid rows must ascend in node count, and exactly one "crossover" row must
report crossover_nodes >= 0 (the smallest N where the hierarchical family
beats flat NIC-PE; 0 = never on the measured grid).

bench/pdes_speedup emits an engine-scaling variant (schema "nicbar-pdes-v1"):
the same bench/rows/label/metrics shape with exactly one "host" row carrying
hw_threads >= 1, and grid rows (label "n<N>_w<W>") each carrying nodes,
workers, partitions, sim_total_us, wall_ms, speedup, bit_identical. Every
row must have bit_identical == 1 (the partitioned engine reproduced the
serial timeline exactly); within one node count, all sim_total_us must be
equal; and the speedup claim is conditional on the host: with hw_threads
>= 4, some row with workers >= 4 must show speedup > 1, while on smaller
hosts (CI containers) the rows only document partition-count overhead and
no speedup is required.

bench/churn emits a lifecycle-counter variant (schema "nicbar-churn-v1"):
the same bench/rows/label/metrics shape plus a top-level "cluster_nodes",
where every row's metrics must carry the lifecycle keys (groups_created,
groups_destroyed, groups_per_sec, fallback_fraction, slot_rejections,
slot_high_water, promotions, stale_fenced, failures) with
fallback_fraction in [0, 1], groups_created == groups_destroyed (no group
may leak across a run), and failures == 0 (admission pressure degrades,
it must never fail a job).

The checker dispatches on the "schema" field. CI runs it over the artifacts
so a refactor that silently changes the serialisation (renamed keys,
string-typed numbers, empty row sets) fails the build instead of producing
trajectory files nobody can diff.

Usage: check_bench_json.py FILE [FILE...]   (exit 0 iff every file conforms)
"""

import json
import math
import sys

SCHEMA = "nicbar-bench-v1"
SLO_SCHEMA = "nicbar-slo-v1"
CHURN_SCHEMA = "nicbar-churn-v1"
RMA_SCHEMA = "nicbar-rma-v1"
HIER_SCHEMA = "nicbar-hier-v1"
PDES_SCHEMA = "nicbar-pdes-v1"

# Every rma_barrier row puts all four barrier families on the same axes.
RMA_METRICS = [
    "nic_pe_us", "nic_gb_us", "host_dissem_us", "host_tree_us", "exact_match",
]

# Every hier_barrier grid row puts all four families on the same axes; the
# final "crossover" row reports where the hierarchical family overtakes
# flat NIC-PE (0 = never on the measured grid).
HIER_METRICS = [
    "nodes", "nic_pe_us", "nic_gb_us", "host_dissem_us", "hier_us",
    "hier_vs_pe_improvement",
]

# Every pdes_speedup grid row puts one (nodes, workers) engine point on
# common axes; "host" rows carry hw_threads only.
PDES_METRICS = [
    "nodes", "workers", "partitions", "sim_total_us", "wall_ms", "speedup",
    "bit_identical",
]

# Every churn row must carry exactly these lifecycle counters.
CHURN_METRICS = [
    "slots", "groups_created", "groups_destroyed", "groups_per_sec",
    "fallback_fraction", "slot_rejections", "slot_high_water", "promotions",
    "stale_fenced", "failures",
]

# The sim::causal segments, in enum order ("rep" marks the hierarchical
# barrier's representative hop between levels).
SEGMENTS = ["host", "sdma", "send", "wire", "switch", "recv", "firmware", "rdma", "rep"]

# Benches whose rows are improvement-factor figures (Fig. 5b/5d: host/NIC
# latency ratios). Each of their rows must carry at least one *improvement*
# metric, and any improvement factor anywhere must be a sane finite ratio —
# a NaN or 0.0 here means a division by an unmeasured (zero) latency upstream,
# which json.load would otherwise wave through (it accepts NaN/Infinity).
IMPROVEMENT_BENCHES = {"fig5b", "fig5d"}
IMPROVEMENT_MAX = 1000.0


def is_number(v):
    """A finite JSON number (bool is an int subclass; reject it)."""
    return not isinstance(v, bool) and isinstance(v, (int, float)) and math.isfinite(v)


def check_slo_doc(doc, where=""):
    """Validates one nicbar-slo-v1 document. Returns a list of problems."""
    problems = []
    if doc.get("schema") != SLO_SCHEMA:
        problems.append("%sschema must be %r, got %r" % (where, SLO_SCHEMA, doc.get("schema")))
    jobs = doc.get("jobs")
    if not isinstance(jobs, list):
        problems.append("%sjobs must be an array" % where)
        return problems
    violating = 0
    for i, job in enumerate(jobs):
        jw = "%sjobs[%d]" % (where, i)
        if not isinstance(job, dict):
            problems.append("%s must be an object" % jw)
            continue
        if not isinstance(job.get("class"), str) or not job.get("class"):
            problems.append("%s.class must be a non-empty string" % jw)
        for key in ("slo_us", "target", "samples", "violations", "compliance",
                    "burn_rate", "max_window_burn_rate"):
            if not is_number(job.get(key)):
                problems.append("%s.%s must be a finite number" % (jw, key))
        if is_number(job.get("compliance")) and not 0.0 <= job["compliance"] <= 1.0:
            problems.append("%s.compliance must be in [0, 1]" % jw)
        if is_number(job.get("burn_rate")) and job["burn_rate"] < 0.0:
            problems.append("%s.burn_rate must be non-negative" % jw)
        if not isinstance(job.get("violating"), bool):
            problems.append("%s.violating must be a bool" % jw)
        elif job["violating"]:
            violating += 1
        windows = job.get("windows", [])
        if not isinstance(windows, list):
            problems.append("%s.windows must be an array" % jw)
            windows = []
        win_samples = 0
        for k, win in enumerate(windows):
            ww = "%s.windows[%d]" % (jw, k)
            if not isinstance(win, dict):
                problems.append("%s must be an object" % ww)
                continue
            for key in ("start_us", "end_us", "samples", "violations", "burn_rate"):
                if not is_number(win.get(key)):
                    problems.append("%s.%s must be a finite number" % (ww, key))
            if is_number(win.get("samples")):
                win_samples += win["samples"]
        if windows and is_number(job.get("samples")) and win_samples != job["samples"]:
            problems.append(
                "%s: window samples sum to %s, job has %s" % (jw, win_samples, job["samples"])
            )
        cp = job.get("critical_path")
        if cp is not None:
            cw = "%s.critical_path" % jw
            if not isinstance(cp, dict):
                problems.append("%s must be an object" % cw)
            else:
                segs = cp.get("segments")
                names = [s.get("segment") for s in segs] if isinstance(segs, list) else []
                if names != SEGMENTS:
                    problems.append("%s.segments must list %s in order" % (cw, SEGMENTS))
                else:
                    for s in segs:
                        if not is_number(s.get("self_us")) or not is_number(s.get("queue_us")):
                            problems.append("%s.segments entries need self_us/queue_us" % cw)
                            break
                if cp.get("dominant_segment") not in SEGMENTS:
                    problems.append(
                        "%s.dominant_segment must be one of %s" % (cw, SEGMENTS)
                    )
    if is_number(doc.get("violating_jobs")) and doc["violating_jobs"] != violating:
        problems.append(
            "%sviolating_jobs says %s but %d jobs are flagged"
            % (where, doc["violating_jobs"], violating)
        )
    elif not is_number(doc.get("violating_jobs")):
        problems.append("%sviolating_jobs must be a number" % where)
    return problems


def check_churn_doc(doc):
    """Validates one nicbar-churn-v1 document. Returns a list of problems."""
    problems = []
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    if not is_number(doc.get("cluster_nodes")) or doc.get("cluster_nodes") <= 0:
        problems.append("cluster_nodes must be a positive number")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty array")
        return problems
    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        if not isinstance(row.get("label"), str) or not row.get("label"):
            problems.append("%s.label must be a non-empty string" % where)
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            problems.append("%s.metrics must be an object" % where)
            continue
        missing = [k for k in CHURN_METRICS if not is_number(metrics.get(k))]
        if missing:
            problems.append(
                "%s.metrics missing finite numbers for %s" % (where, missing)
            )
            continue
        if not 0.0 <= metrics["fallback_fraction"] <= 1.0:
            problems.append(
                "%s.metrics.fallback_fraction must be in [0, 1], got %r"
                % (where, metrics["fallback_fraction"])
            )
        if metrics["groups_created"] != metrics["groups_destroyed"]:
            problems.append(
                "%s: %s groups created but %s destroyed (a group leaked)"
                % (where, metrics["groups_created"], metrics["groups_destroyed"])
            )
        if metrics["failures"] != 0:
            problems.append(
                "%s: churn must degrade gracefully, but %s collectives failed"
                % (where, metrics["failures"])
            )
    labels = [r.get("label") for r in rows if isinstance(r, dict)]
    if len(labels) != len(set(labels)):
        problems.append("row labels must be unique")
    return problems


def check_rma_doc(doc):
    """Validates one nicbar-rma-v1 document. Returns a list of problems."""
    problems = []
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty array")
        return problems
    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        if not isinstance(row.get("label"), str) or not row.get("label"):
            problems.append("%s.label must be a non-empty string" % where)
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            problems.append("%s.metrics must be an object" % where)
            continue
        missing = [k for k in RMA_METRICS if not is_number(metrics.get(k))]
        if missing:
            problems.append(
                "%s.metrics missing finite numbers for %s" % (where, missing)
            )
            continue
        for key in RMA_METRICS[:-1]:
            if metrics[key] <= 0.0:
                problems.append(
                    "%s.metrics[%r] must be a positive latency, got %r"
                    % (where, key, metrics[key])
                )
        if metrics["exact_match"] != 1:
            problems.append(
                "%s: NIC-PE re-measurement diverged from the fig5a grid "
                "(exact_match=%r; determinism regression)"
                % (where, metrics["exact_match"])
            )
    labels = [r.get("label") for r in rows if isinstance(r, dict)]
    if len(labels) != len(set(labels)):
        problems.append("row labels must be unique")
    return problems


def check_hier_doc(doc):
    """Validates one nicbar-hier-v1 document. Returns a list of problems."""
    problems = []
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty array")
        return problems
    grid_nodes = []
    crossover_rows = 0
    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        label = row.get("label")
        if not isinstance(label, str) or not label:
            problems.append("%s.label must be a non-empty string" % where)
            continue
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            problems.append("%s.metrics must be an object" % where)
            continue
        if label == "crossover":
            crossover_rows += 1
            if not is_number(metrics.get("crossover_nodes")) or metrics["crossover_nodes"] < 0:
                problems.append(
                    "%s.metrics.crossover_nodes must be a non-negative number" % where
                )
            continue
        missing = [k for k in HIER_METRICS if not is_number(metrics.get(k))]
        if missing:
            problems.append("%s.metrics missing finite numbers for %s" % (where, missing))
            continue
        for key in HIER_METRICS:
            if metrics[key] <= 0.0:
                problems.append(
                    "%s.metrics[%r] must be positive, got %r" % (where, key, metrics[key])
                )
        grid_nodes.append(metrics["nodes"])
    if crossover_rows != 1:
        problems.append("exactly one 'crossover' row expected, found %d" % crossover_rows)
    if not grid_nodes:
        problems.append("at least one grid row (label 'n<N>') expected")
    elif grid_nodes != sorted(grid_nodes):
        problems.append("grid rows must be in ascending node order, got %s" % grid_nodes)
    labels = [r.get("label") for r in rows if isinstance(r, dict)]
    if len(labels) != len(set(labels)):
        problems.append("row labels must be unique")
    return problems


def check_pdes_doc(doc):
    """Validates one nicbar-pdes-v1 document. Returns a list of problems."""
    problems = []
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty array")
        return problems
    hw_threads = None
    host_rows = 0
    sim_total_by_nodes = {}
    best_speedup_4w = 0.0
    grid_rows = 0
    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        label = row.get("label")
        if not isinstance(label, str) or not label:
            problems.append("%s.label must be a non-empty string" % where)
            continue
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            problems.append("%s.metrics must be an object" % where)
            continue
        if label == "host":
            host_rows += 1
            if not is_number(metrics.get("hw_threads")) or metrics["hw_threads"] < 1:
                problems.append("%s.metrics.hw_threads must be >= 1" % where)
            else:
                hw_threads = metrics["hw_threads"]
            continue
        grid_rows += 1
        missing = [k for k in PDES_METRICS if not is_number(metrics.get(k))]
        if missing:
            problems.append("%s.metrics missing finite numbers for %s" % (where, missing))
            continue
        if metrics["bit_identical"] != 1:
            problems.append(
                "%s: the partitioned engine diverged from the serial timeline "
                "(bit_identical=%r; determinism regression)" % (where, metrics["bit_identical"])
            )
        n = metrics["nodes"]
        if n in sim_total_by_nodes and sim_total_by_nodes[n] != metrics["sim_total_us"]:
            problems.append(
                "%s: sim_total_us %r differs from an earlier n=%s row's %r "
                "(the simulated timeline must not depend on the engine)"
                % (where, metrics["sim_total_us"], n, sim_total_by_nodes[n])
            )
        sim_total_by_nodes.setdefault(n, metrics["sim_total_us"])
        if metrics["workers"] >= 4 and metrics["speedup"] > best_speedup_4w:
            best_speedup_4w = metrics["speedup"]
    if host_rows != 1:
        problems.append("exactly one 'host' row expected, found %d" % host_rows)
    if grid_rows == 0:
        problems.append("at least one grid row (label 'n<N>_w<W>') expected")
    # The speedup claim only binds on hosts that can express it.
    if hw_threads is not None and hw_threads >= 4 and best_speedup_4w <= 1.0:
        problems.append(
            "host has %g threads but no row with workers >= 4 shows speedup > 1 "
            "(best %g)" % (hw_threads, best_speedup_4w)
        )
    labels = [r.get("label") for r in rows if isinstance(r, dict)]
    if len(labels) != len(set(labels)):
        problems.append("row labels must be unique")
    return problems


def check(path):
    """Returns a list of problems (empty = conforming)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["unreadable or invalid JSON: %s" % e]

    # --slo-report artifacts: one document, or an array of them under --seeds.
    if isinstance(doc, list):
        if not doc:
            return ["top-level array must not be empty"]
        for i, sub in enumerate(doc):
            if not isinstance(sub, dict):
                problems.append("[%d] must be an object" % i)
                continue
            problems.extend(check_slo_doc(sub, "[%d]." % i))
        return problems
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") == SLO_SCHEMA:
        return check_slo_doc(doc)
    if doc.get("schema") == CHURN_SCHEMA:
        return check_churn_doc(doc)
    if doc.get("schema") == RMA_SCHEMA:
        return check_rma_doc(doc)
    if doc.get("schema") == HIER_SCHEMA:
        return check_hier_doc(doc)
    if doc.get("schema") == PDES_SCHEMA:
        return check_pdes_doc(doc)
    if doc.get("schema") != SCHEMA:
        problems.append("schema must be %r, got %r" % (SCHEMA, doc.get("schema")))
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty array")
        return problems

    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        if not isinstance(row.get("label"), str) or not row.get("label"):
            problems.append("%s.label must be a non-empty string" % where)
        metrics = row.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append("%s.metrics must be a non-empty object" % where)
            continue
        improvement_keys = 0
        for key, value in metrics.items():
            # bool is an int subclass in Python; reject it explicitly.
            if not isinstance(key, str) or isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                problems.append("%s.metrics[%r] must map a string to a number" % (where, key))
                continue
            if "improvement" in key:
                improvement_keys += 1
                if not math.isfinite(value):
                    problems.append("%s.metrics[%r] must be finite, got %r" % (where, key, value))
                elif not 0.0 < value < IMPROVEMENT_MAX:
                    problems.append(
                        "%s.metrics[%r] must be a ratio in (0, %g), got %r"
                        % (where, key, IMPROVEMENT_MAX, value)
                    )
            # bench/critical_path writes exact_match=0 when a per-segment
            # attribution drifts off the Eq. 2 closed form; fail the artifact
            # even when the bench's own exit code is not checked.
            if key == "exact_match" and value != 1:
                problems.append(
                    "%s.metrics[%r] must be 1 (ps-exact attribution), got %r"
                    % (where, key, value)
                )
        if doc.get("bench") in IMPROVEMENT_BENCHES and improvement_keys == 0:
            problems.append(
                "%s: bench %r rows must carry at least one *improvement* metric"
                % (where, doc.get("bench"))
            )

    labels = [r.get("label") for r in rows if isinstance(r, dict)]
    if len(labels) != len(set(labels)):
        problems.append("row labels must be unique")
    return problems


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py FILE [FILE...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        problems = check(path)
        if problems:
            failed = True
            for p in problems:
                print("%s: %s" % (path, p), file=sys.stderr)
        else:
            print("%s: ok" % path)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
