#!/usr/bin/env python3
"""Schema-drift guard for the BENCH_*.json artifacts.

Every bench emits one document via bench::BenchSummary with the shape

    {
      "schema": "nicbar-bench-v1",
      "bench": "<name>",
      "rows": [
        {"label": "<case>", "metrics": {"<key>": <number>, ...}},
        ...
      ]
    }

CI runs this checker over the artifacts so a refactor that silently changes
the serialisation (renamed keys, string-typed numbers, empty row sets) fails
the build instead of producing trajectory files nobody can diff.

Usage: check_bench_json.py FILE [FILE...]   (exit 0 iff every file conforms)
"""

import json
import math
import sys

SCHEMA = "nicbar-bench-v1"

# Benches whose rows are improvement-factor figures (Fig. 5b/5d: host/NIC
# latency ratios). Each of their rows must carry at least one *improvement*
# metric, and any improvement factor anywhere must be a sane finite ratio —
# a NaN or 0.0 here means a division by an unmeasured (zero) latency upstream,
# which json.load would otherwise wave through (it accepts NaN/Infinity).
IMPROVEMENT_BENCHES = {"fig5b", "fig5d"}
IMPROVEMENT_MAX = 1000.0


def check(path):
    """Returns a list of problems (empty = conforming)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["unreadable or invalid JSON: %s" % e]

    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("schema") != SCHEMA:
        problems.append("schema must be %r, got %r" % (SCHEMA, doc.get("schema")))
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append("bench must be a non-empty string")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty array")
        return problems

    for i, row in enumerate(rows):
        where = "rows[%d]" % i
        if not isinstance(row, dict):
            problems.append("%s must be an object" % where)
            continue
        if not isinstance(row.get("label"), str) or not row.get("label"):
            problems.append("%s.label must be a non-empty string" % where)
        metrics = row.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append("%s.metrics must be a non-empty object" % where)
            continue
        improvement_keys = 0
        for key, value in metrics.items():
            # bool is an int subclass in Python; reject it explicitly.
            if not isinstance(key, str) or isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                problems.append("%s.metrics[%r] must map a string to a number" % (where, key))
                continue
            if "improvement" in key:
                improvement_keys += 1
                if not math.isfinite(value):
                    problems.append("%s.metrics[%r] must be finite, got %r" % (where, key, value))
                elif not 0.0 < value < IMPROVEMENT_MAX:
                    problems.append(
                        "%s.metrics[%r] must be a ratio in (0, %g), got %r"
                        % (where, key, IMPROVEMENT_MAX, value)
                    )
        if doc.get("bench") in IMPROVEMENT_BENCHES and improvement_keys == 0:
            problems.append(
                "%s: bench %r rows must carry at least one *improvement* metric"
                % (where, doc.get("bench"))
            )

    labels = [r.get("label") for r in rows if isinstance(r, dict)]
    if len(labels) != len(set(labels)):
        problems.append("row labels must be unique")
    return problems


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py FILE [FILE...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        problems = check(path)
        if problems:
            failed = True
            for p in problems:
                print("%s: %s" % (path, p), file=sys.stderr)
        else:
            print("%s: ok" % path)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
