// BSP-style 1-D stencil (the paper's motivation: low-latency barriers enable
// *finer-grained* parallel computation).
//
// Each of 16 nodes owns a strip of a 1-D array. Every superstep it exchanges
// halo cells with its neighbours (ordinary GM messages), computes, and joins
// a barrier. We sweep the computation grain and report parallel efficiency
// with the host-based vs the NIC-based barrier: as grain shrinks, the
// barrier dominates and the NIC-based version sustains efficiency at grains
// where the host-based one collapses — the paper's §1 argument made
// concrete.
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

using namespace nicbar;

namespace {

constexpr std::size_t kNodes = 16;
constexpr int kSupersteps = 12;

sim::Task stencil_proc(coll::BarrierMember& member, gm::Port& port, net::NodeId me,
                       sim::Duration grain, sim::SimTime* done, sim::Simulator& sim) {
  const gm::Endpoint left{static_cast<net::NodeId>((me + kNodes - 1) % kNodes), 2};
  const gm::Endpoint right{static_cast<net::NodeId>((me + 1) % kNodes), 2};
  const std::int64_t halo_bytes = 256;

  // Pinned halo buffers for both neighbours, double-buffered.
  for (int i = 0; i < 4; ++i) co_await port.provide_receive_buffer(halo_bytes);

  int halos_pending = 0;
  for (int step = 0; step < kSupersteps; ++step) {
    // Exchange halos with both neighbours.
    co_await port.send(left, halo_bytes, 1);
    co_await port.send(right, halo_bytes, 1);
    halos_pending += 2;
    while (halos_pending > 0) {
      const gm::GmEvent ev = co_await port.receive();
      if (ev.type == gm::GmEventType::kRecv) {
        --halos_pending;
        co_await port.provide_receive_buffer(halo_bytes);
      }
    }
    // Local stencil update.
    co_await port.compute(grain);
    // Superstep barrier.
    co_await member.run();
  }
  *done = sim.now();
}

double run(coll::Location loc, sim::Duration grain) {
  host::ClusterParams params;
  params.nodes = kNodes;
  params.nic = nic::lanai43();
  host::Cluster cluster(params);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kNodes; ++i) group.push_back(gm::Endpoint{i, 2});
  coll::BarrierSpec spec;
  spec.location = loc;
  spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  std::vector<sim::SimTime> done(kNodes);
  for (net::NodeId i = 0; i < kNodes; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group, spec));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    cluster.sim().spawn(stencil_proc(*members[i], *ports[i], static_cast<net::NodeId>(i),
                                     grain, &done[i], cluster.sim()));
  }
  cluster.sim().run();
  sim::SimTime last{0};
  for (const sim::SimTime& t : done) {
    if (t > last) last = t;
  }
  return last.us();
}

}  // namespace

int main() {
  std::printf("BSP 1-D stencil, %zu nodes, %d supersteps, LANai 4.3\n", kNodes, kSupersteps);
  std::printf("%12s %12s %12s %10s %10s %10s\n", "grain(us)", "host(us)", "NIC(us)",
              "eff.host", "eff.NIC", "speedup");
  for (double grain_us : {1000.0, 300.0, 100.0, 50.0, 20.0}) {
    const sim::Duration grain = sim::microseconds(grain_us);
    const double host_us = run(coll::Location::kHost, grain);
    const double nic_us = run(coll::Location::kNic, grain);
    const double compute = kSupersteps * grain_us;  // ideal: compute only
    std::printf("%12.0f %12.1f %12.1f %9.0f%% %9.0f%% %9.2fx\n", grain_us, host_us, nic_us,
                100.0 * compute / host_us, 100.0 * compute / nic_us, host_us / nic_us);
  }
  std::printf("\nexpected: at coarse grain both barriers are negligible; at fine grain\n"
              "the NIC-based barrier sustains much higher parallel efficiency (§1)\n");
  return 0;
}
