// Fuzzy barrier (paper §2.1, Gupta '89): because the barrier algorithm runs
// on the NIC, the host processor is free to compute while polling for
// completion. This example contrasts three ways of spending 8 iterations of
// a compute+barrier loop on 8 nodes:
//
//   host-based barrier ... compute, then drive the barrier from the host
//   NIC, blocking ........ compute, initiate, poll idle until complete
//   NIC, fuzzy ........... initiate first, fold the compute into the wait
//
// With per-iteration compute comparable to the barrier latency, the fuzzy
// variant hides nearly the whole barrier.
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

using namespace nicbar;

namespace {

constexpr int kIterations = 8;
constexpr double kComputeUs = 120.0;  // per-iteration work, comparable to a barrier

enum class Mode { kHostBarrier, kNicBlocking, kNicFuzzy };

sim::Task worker(sim::Simulator& sim, coll::BarrierMember& member, Mode mode,
                 gm::Port& port, sim::SimTime* done) {
  const sim::Duration work = sim::microseconds(kComputeUs);
  for (int it = 0; it < kIterations; ++it) {
    switch (mode) {
      case Mode::kHostBarrier:
      case Mode::kNicBlocking:
        co_await port.compute(work);
        co_await member.run();
        break;
      case Mode::kNicFuzzy: {
        // Initiate the barrier, then do this iteration's work in chunks
        // while the NIC exchanges messages; finish any remainder after.
        const sim::Duration chunk = sim::microseconds(10.0);
        const std::uint64_t overlapped = co_await member.run_fuzzy(chunk);
        const sim::Duration left = work - chunk * static_cast<std::int64_t>(overlapped);
        if (!left.is_negative() && !left.is_zero()) co_await port.compute(left);
        break;
      }
    }
  }
  *done = sim.now();
}

double run(Mode mode) {
  host::ClusterParams params;
  params.nodes = 8;
  params.nic = nic::lanai43();
  host::Cluster cluster(params);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < 8; ++i) group.push_back(gm::Endpoint{i, 2});

  coll::BarrierSpec spec;
  spec.location = mode == Mode::kHostBarrier ? coll::Location::kHost : coll::Location::kNic;
  spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  std::vector<sim::SimTime> done(8);
  for (net::NodeId i = 0; i < 8; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group, spec));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    cluster.sim().spawn(worker(cluster.sim(), *members[i], mode, *ports[i], &done[i]));
  }
  cluster.sim().run();
  sim::SimTime last{0};
  for (const sim::SimTime& t : done) {
    if (t > last) last = t;
  }
  return last.us();
}

}  // namespace

int main() {
  std::printf("8 nodes, %d iterations of (%.0fus compute + barrier), LANai 4.3\n\n",
              kIterations, kComputeUs);
  const double host_us = run(Mode::kHostBarrier);
  const double nic_us = run(Mode::kNicBlocking);
  const double fuzzy_us = run(Mode::kNicFuzzy);
  const double ideal = kIterations * kComputeUs;  // compute only, no barrier cost

  std::printf("host-based barrier : %8.1f us total\n", host_us);
  std::printf("NIC, blocking wait : %8.1f us total\n", nic_us);
  std::printf("NIC, fuzzy overlap : %8.1f us total\n", fuzzy_us);
  std::printf("pure compute bound : %8.1f us\n\n", ideal);
  std::printf("fuzzy barrier hides %.0f%% of the NIC barrier cost\n",
              100.0 * (nic_us - fuzzy_us) / (nic_us - ideal));
  return 0;
}
