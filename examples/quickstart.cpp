// Quickstart: build a 4-node simulated Myrinet cluster, run one NIC-based
// barrier, and print what happened.
//
//   $ ./build/examples/quickstart
//
// The flow mirrors the paper's API: each process computes its schedule slice
// on the host, calls gm_provide_barrier_buffer + gm_barrier_send_with_
// callback (Port::provide_barrier_buffer / Port::barrier_send via
// BarrierMember), and polls gm_receive for GM_BARRIER_COMPLETED_EVENT.
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

using namespace nicbar;

namespace {

sim::Task one_barrier(sim::Simulator& sim, coll::BarrierMember& member, int rank) {
  // Stagger entry so the synchronization is visible.
  co_await sim.delay(sim::microseconds(25.0 * rank));
  std::printf("[%8.2f us] rank %d enters the barrier\n", sim.now().us(), rank);
  co_await member.run();
  std::printf("[%8.2f us] rank %d leaves the barrier\n", sim.now().us(), rank);
}

}  // namespace

int main() {
  // 1. A cluster: 4 nodes, LANai 4.3 NICs, one 16-port switch.
  host::ClusterParams params;
  params.nodes = 4;
  params.nic = nic::lanai43();
  host::Cluster cluster(params);

  // 2. One GM port per node; the barrier group is (node i, port 2) for all i.
  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < 4; ++i) group.push_back(gm::Endpoint{i, 2});

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  coll::BarrierSpec spec;
  spec.location = coll::Location::kNic;  // the paper's contribution
  spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  for (net::NodeId i = 0; i < 4; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group, spec));
  }

  // 3. One process per node.
  for (int i = 0; i < 4; ++i) {
    cluster.sim().spawn(one_barrier(cluster.sim(), *members[static_cast<std::size_t>(i)], i));
  }
  cluster.sim().run();

  // 4. No rank may leave before the last one (rank 3 at 75us) entered —
  //    check the timestamps above. The NIC counters show the firmware work:
  std::printf("\nNIC counters (node 0): barrier packets sent=%llu received=%llu, "
              "unexpected recorded=%llu\n",
              static_cast<unsigned long long>(cluster.nic(0).stats().barrier_packets_sent),
              static_cast<unsigned long long>(cluster.nic(0).stats().barrier_packets_received),
              static_cast<unsigned long long>(cluster.nic(0).stats().unexpected_recorded));
  std::printf("simulated time: %.2f us, events executed: %llu\n", cluster.sim().now().us(),
              static_cast<unsigned long long>(cluster.sim().events_executed()));
  return 0;
}
