# Mixed barrier-family tenancy: half the tenants synchronize through the
# NIC firmware (PE / GB), half through the host-driven rma:: one-sided
# layer (dissemination and tree-put over rput flags). All four classes
# share NICs via overlapping placement, so the host-RDMA tenants' put
# streams contend with the NIC-resident barriers' token traffic on the
# same send/recv engines — the interference the crossover study in
# EXPERIMENTS.md measures in isolation.
#
#   nicbar_run workload examples/workloads/rma_mix.wl
#   nicbar_run workload examples/workloads/rma_mix.wl --seeds 3 --jobs 3
cluster-nodes 16
nic lanai43
topology switch
placement overlapping
arrival poisson 400
seed 11
hist-max-us 8000

job nic-pe
  count 2
  nodes 8
  iters 100
  mix barrier=1
  compute-us 40
  imbalance 0.3

job nic-gb
  count 1
  nodes 8
  iters 100
  mix barrier=1
  compute-us 40
  imbalance 0.3
  algorithm gb 2

job rdma-dissem
  count 2
  nodes 8
  iters 100
  mix barrier=1
  compute-us 40
  imbalance 0.3
  algorithm host-dissem

job rdma-tree
  count 1
  nodes 8
  iters 100
  mix barrier=1
  compute-us 40
  imbalance 0.3
  algorithm host-tree 2
