# Tail-latency study: four identical 8-process tenants on 32 nodes with
# overlapping placement — each job shares half its nodes with the next, so
# every co-located pair contends for the same LANai processors. Compare with
# `placement disjoint` (edit this line) to isolate the interference:
# disjoint tenants reproduce the single-tenant percentiles exactly.
#
#   nicbar_run workload examples/workloads/tail.wl --report-json tail.json
#   nicbar_run workload examples/workloads/tail.wl --seeds 5 --jobs 5
cluster-nodes 32
nic lanai43
topology switch
placement overlapping
arrival poisson 2000
seed 7
hist-max-us 4000

job tenant
  count 4
  nodes 8
  iters 200
  mix barrier=1
  compute-us 30
  imbalance 0.4
