# Hierarchical fabric workload: a 96-node radix-8 fat-tree at 3:1 leaf
# oversubscription (6 hosts per leaf), with one big BSP job running the
# two-level hierarchical barrier next to a flat-PE job that keeps the
# oversubscribed trunk busy — the contention regime where the hierarchical
# family earns its keep (see EXPERIMENTS.md, hierarchical crossover).
cluster-nodes 96
nic lanai43
topology fat-tree 8 3
placement disjoint
reliability shared
arrival poisson 250
seed 3
hist-max-us 10000

job bsp                # leaf-local gather/release; reps cross the core
  count 1
  nodes 48
  iters 60
  mix barrier=1
  compute-us 30
  imbalance 0.2
  algorithm hier 2

job trunkload          # flat PE: every round crosses the oversubscribed trunk
  count 2
  nodes 24
  iters 40
  mix barrier=0.8 allreduce=0.2
  compute-us 25
  algorithm pe
