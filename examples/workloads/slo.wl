# SLO study: two latency-sensitive tenants with a declared service-level
# objective (95% of barriers under 150 µs, burn rate windowed over 2 ms)
# sharing NICs with two batch tenants via overlapping placement. The report
# names each violating tenant with its burn rate per window and the dominant
# critical-path segment — under LANai contention that is usually the recv
# engine or firmware queueing, not the wire.
#
#   nicbar_run workload examples/workloads/slo.wl --slo-report slo.json
#   nicbar_run workload examples/workloads/slo.wl --seeds 3 --slo-report slo.json
cluster-nodes 16
nic lanai43
topology switch
placement overlapping
arrival poisson 500
seed 3
hist-max-us 4000

job latency-sensitive
  count 2
  nodes 8
  iters 100
  mix barrier=1
  compute-us 30
  imbalance 0.4
  slo-us 150
  slo-target 0.95
  slo-window-us 2000

job batch
  count 2
  nodes 8
  iters 100
  mix barrier=1
  compute-us 50
  imbalance 0.2
