# CI smoke workload: three tenant classes with different collective mixes on
# a shared 16-node fabric, deliberately overlapping so co-located jobs
# contend for LANai processors. Small iteration counts keep it fast under
# ASan; the seed matrix in CI reruns it with --seed 1..5.
cluster-nodes 16
nic lanai43
topology switch
placement overlapping
reliability shared     # CI layers --loss on top; fuzzy needs retransmission
arrival poisson 300
seed 1
hist-max-us 5000

job stencil            # BSP-style: compute with stragglers, then barrier
  count 2
  nodes 8
  iters 40
  mix barrier=1
  compute-us 40
  imbalance 0.3
  skew-us 10

job solver             # communicator path: mixed collectives + layer cost
  count 2
  nodes 4
  iters 30
  mix barrier=0.5 allreduce=0.3 bcast=0.2
  compute-us 20
  layer-us 4

job pipeline           # fuzzy barriers overlap the wait with useful work
  count 1
  nodes 4
  iters 25
  mix fuzzy=1
  compute-us 15
  fuzzy-chunk-us 5
