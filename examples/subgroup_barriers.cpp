// Concurrent sub-group barriers (paper §3.4): one NIC serves up to eight GM
// ports, and each port can run an independent barrier because the barrier
// state lives in the per-port send token.
//
// Scenario: an 8-node cluster runs two independent parallel applications.
// App A uses port 2 on all 8 nodes (global barrier); app B uses port 3 on
// nodes 0-3 (sub-group barrier). Both iterate concurrently; neither blocks
// the other, and a third actor streams ordinary data messages across the
// same NICs to show barriers and data coexist.
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

using namespace nicbar;

namespace {

sim::Task app_proc(sim::Simulator& sim, coll::BarrierMember& member, const char* app,
                   int rank, int iterations, sim::Duration work) {
  for (int it = 0; it < iterations; ++it) {
    co_await member.run();
    if (rank == 0) {
      std::printf("[%9.2f us] app %s finished barrier %d\n", sim.now().us(), app, it + 1);
    }
    co_await sim.delay(work);
  }
}

sim::Task data_stream(gm::Port& src, gm::Endpoint dst, int messages) {
  for (int i = 0; i < messages; ++i) {
    co_await src.send(dst, 1024, static_cast<std::uint64_t>(i));
  }
}

sim::Task data_sink(gm::Port& port, int messages) {
  for (int i = 0; i < messages; ++i) co_await port.provide_receive_buffer(1024);
  for (int i = 0; i < messages; ++i) {
    (void)co_await port.receive();
  }
}

}  // namespace

int main() {
  host::ClusterParams params;
  params.nodes = 8;
  params.nic = nic::lanai43();
  host::Cluster cluster(params);

  // App A: global 8-node barrier on port 2.
  std::vector<gm::Endpoint> group_a;
  for (net::NodeId i = 0; i < 8; ++i) group_a.push_back(gm::Endpoint{i, 2});
  // App B: 4-node sub-group barrier on port 3 (GB tree, dimension 3).
  std::vector<gm::Endpoint> group_b;
  for (net::NodeId i = 0; i < 4; ++i) group_b.push_back(gm::Endpoint{i, 3});

  coll::BarrierSpec spec_a;
  spec_a.location = coll::Location::kNic;
  spec_a.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  coll::BarrierSpec spec_b;
  spec_b.location = coll::Location::kNic;
  spec_b.algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
  spec_b.gb_dimension = 3;

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (net::NodeId i = 0; i < 8; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group_a, spec_a));
    cluster.sim().spawn(app_proc(cluster.sim(), *members.back(), "A(8 nodes, PE)", i, 4,
                                 sim::microseconds(40.0)));
  }
  for (net::NodeId i = 0; i < 4; ++i) {
    ports.push_back(cluster.open_port(i, 3));
    members.push_back(std::make_unique<coll::BarrierMember>(*ports.back(), group_b, spec_b));
    cluster.sim().spawn(app_proc(cluster.sim(), *members.back(), "B(4 nodes, GB)", i, 6,
                                 sim::microseconds(15.0)));
  }
  // Background data traffic between ports 4 on nodes 6 and 7.
  auto src = cluster.open_port(6, 4);
  auto dst = cluster.open_port(7, 4);
  cluster.sim().spawn(data_sink(*dst, 40));
  cluster.sim().spawn(data_stream(*src, gm::Endpoint{7, 4}, 40));

  cluster.sim().run();

  std::printf("\nall apps finished at %.2f us\n", cluster.sim().now().us());
  std::printf("node 0 ran %llu barriers across 2 ports; node 6 NIC also moved %llu data "
              "packets\n",
              static_cast<unsigned long long>(cluster.nic(0).stats().barriers_completed),
              static_cast<unsigned long long>(cluster.nic(6).stats().data_sent));
  return 0;
}
