// An MPI-style mini-application: iterative distributed dot product.
//
// Each of 16 ranks owns a slice of two vectors. Every iteration it computes
// its partial dot product (host compute) and calls MPI_Allreduce to combine;
// a convergence flag is then broadcast from rank 0. Run twice — with the
// collectives executing on the host and on the NIC — this shows the paper's
// bottom line at application level: NIC-resident collectives raise the
// sustainable iteration rate of a communication-bound solver.
#include <cstdio>
#include <memory>
#include <vector>

#include "host/cluster.hpp"
#include "mpi/communicator.hpp"

using namespace nicbar;

namespace {

constexpr std::size_t kRanks = 16;
constexpr int kIterations = 20;
constexpr double kComputeUsPerIter = 60.0;  // partial-dot kernel time

sim::Task solver(mpi::Communicator& comm, std::int64_t my_partial, sim::SimTime* done,
                 std::int64_t* final_dot, sim::Simulator& sim) {
  std::int64_t dot = 0;
  for (int it = 0; it < kIterations; ++it) {
    co_await comm.compute(sim::microseconds(kComputeUsPerIter));       // local kernel
    dot = co_await comm.allreduce(my_partial + it, nic::ReduceOp::kSum);  // global dot
    const std::int64_t converged = co_await comm.bcast(dot > 0 ? 1 : 0);  // rank 0 decides
    (void)converged;
  }
  *final_dot = dot;
  *done = sim.now();
}

double run(coll::Location loc, std::int64_t* dot_out) {
  host::ClusterParams params;
  params.nodes = kRanks;
  params.nic = nic::lanai43();
  host::Cluster cluster(params);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < kRanks; ++i) group.push_back(gm::Endpoint{i, 2});
  mpi::CommConfig cfg;
  cfg.collective_location = loc;
  cfg.per_call_overhead = sim::microseconds(6.0);  // MPI matching/progress cost

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;
  std::vector<sim::SimTime> done(kRanks);
  std::vector<std::int64_t> dots(kRanks);
  for (net::NodeId i = 0; i < kRanks; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    comms.push_back(std::make_unique<mpi::Communicator>(*ports.back(), group, cfg));
  }
  for (std::size_t i = 0; i < kRanks; ++i) {
    cluster.sim().spawn(solver(*comms[i], static_cast<std::int64_t>(i * i), &done[i],
                               &dots[i], cluster.sim()));
  }
  cluster.sim().run();
  *dot_out = dots[0];
  sim::SimTime last{0};
  for (auto t : done) {
    if (t > last) last = t;
  }
  return last.us();
}

}  // namespace

int main() {
  std::printf("MPI dot-product solver: %zu ranks, %d iterations, %.0fus kernel, LANai 4.3\n\n",
              kRanks, kIterations, kComputeUsPerIter);
  std::int64_t dot_host = 0, dot_nic = 0;
  const double host_us = run(coll::Location::kHost, &dot_host);
  const double nic_us = run(coll::Location::kNic, &dot_nic);
  const double ideal = kIterations * kComputeUsPerIter;

  std::printf("host-based collectives : %9.1f us  (%.1f us/iter)\n", host_us,
              host_us / kIterations);
  std::printf("NIC-based collectives  : %9.1f us  (%.1f us/iter)\n", nic_us,
              nic_us / kIterations);
  std::printf("compute-only bound     : %9.1f us\n\n", ideal);
  std::printf("same numerical result either way: %lld == %lld\n",
              static_cast<long long>(dot_host), static_cast<long long>(dot_nic));
  std::printf("NIC collectives speed the solver up %.2fx\n", host_us / nic_us);
  return dot_host == dot_nic ? 0 : 1;
}
