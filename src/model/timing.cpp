#include "model/timing.hpp"

namespace nicbar::model {

std::size_t log2_ceil(std::size_t n) {
  std::size_t r = 0;
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
    ++r;
  }
  return r;
}

PhaseTimes derive_phases(const nic::NicConfig& nic, const gm::GmConfig& gm,
                         const net::LinkParams& link, const net::SwitchParams& sw,
                         std::int64_t payload_bytes, std::size_t switch_hops) {
  PhaseTimes t;
  const double layer = gm.layer_overhead.us();

  t.send_us = (gm.host_send_overhead).us() + layer + nic.cycles(nic.sdma_detect_cycles).us();

  const double pci_xfer =
      nic.pci_setup.us() +
      sim::transfer_time(payload_bytes, nic.pci_bandwidth_mbps).us();
  t.sdma_us = nic.cycles(nic.sdma_setup_cycles + nic.sdma_prepare_cycles).us() + pci_xfer;

  // Wire time on the terminal uplink and downlink plus per-switch latency;
  // source-route bytes ride in the header.
  const std::int64_t wire_bytes =
      link.header_bytes + static_cast<std::int64_t>(switch_hops) + payload_bytes;
  const double wire = sim::transfer_time(wire_bytes, link.bandwidth_mbps).us();
  t.network_us = 2.0 * (wire + link.propagation.us()) +
                 static_cast<double>(switch_hops) * sw.routing_latency.us() +
                 nic.cycles(nic.send_cycles).us();

  t.recv_us = nic.cycles(nic.recv_cycles).us();
  t.recv_nic_pe_us = nic.cycles(nic.recv_cycles + nic.barrier_pe_cycles).us();
  t.recv_nic_gb_us = nic.cycles(nic.recv_cycles + nic.barrier_gb_cycles).us();

  t.rdma_us = nic.cycles(nic.rdma_setup_cycles).us() + pci_xfer;
  t.hrecv_us = gm.host_recv_overhead.us() + layer;
  return t;
}

double host_barrier_us(const PhaseTimes& t, std::size_t n) {
  return static_cast<double>(log2_ceil(n)) * t.host_message_us();
}

double nic_barrier_us(const PhaseTimes& t, std::size_t n) {
  return t.send_us +
         static_cast<double>(log2_ceil(n)) * (t.network_us + t.recv_nic_pe_us) +
         t.rdma_us + t.hrecv_us;
}

double improvement_factor(const PhaseTimes& t, std::size_t n) {
  return host_barrier_us(t, n) / nic_barrier_us(t, n);
}

}  // namespace nicbar::model
