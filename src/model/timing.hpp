// The paper's analytic timing model (§2.2, Fig. 2, Equations 1-3).
//
// One message passes through seven phases: Send (host initiates until the
// NIC detects the token), SDMA (host->NIC payload DMA + packet prep), Xmit/
// Network (wire + switch), Recv (NIC receive processing), RDMA (NIC->host
// DMA), HRecv (host event processing). The paper derives:
//
//   Eq.1:  T_host = log2(N) * (Send + SDMA + Network + Recv + RDMA + HRecv)
//   Eq.2:  T_nic  = Send + log2(N) * (Network + Recv_nic) + RDMA + HRecv
//   Eq.3:  improvement = T_host / T_nic
//
// derive_phases() extracts the phase times from a simulator configuration so
// the benches can print predicted-vs-simulated side by side.
#pragma once

#include <cstddef>

#include "gm/config.hpp"
#include "net/link.hpp"
#include "net/xswitch.hpp"
#include "nic/config.hpp"

namespace nicbar::model {

struct PhaseTimes {
  double send_us = 0;      // host call + NIC token detect
  double sdma_us = 0;      // DMA setup/transfer + packet prep
  double network_us = 0;   // wire (both hops) + switch latency
  double recv_us = 0;      // NIC receive processing (data path)
  double recv_nic_pe_us = 0;  // NIC receive + PE barrier firmware handling
  double recv_nic_gb_us = 0;  // NIC receive + GB barrier firmware handling
  double rdma_us = 0;      // NIC->host DMA + token return
  double hrecv_us = 0;     // host event processing

  [[nodiscard]] double host_message_us() const {
    return send_us + sdma_us + network_us + recv_us + rdma_us + hrecv_us;
  }
};

/// Phase times implied by a simulator configuration, for a message of
/// `payload_bytes` through one switch.
[[nodiscard]] PhaseTimes derive_phases(const nic::NicConfig& nic, const gm::GmConfig& gm,
                                       const net::LinkParams& link,
                                       const net::SwitchParams& sw,
                                       std::int64_t payload_bytes = 8,
                                       std::size_t switch_hops = 1);

/// log2(N) rounded up (the paper's round count for PE).
[[nodiscard]] std::size_t log2_ceil(std::size_t n);

/// Eq. 1: host-based PE barrier latency for N processes.
[[nodiscard]] double host_barrier_us(const PhaseTimes& t, std::size_t n);

/// Eq. 2: NIC-based PE barrier latency for N processes.
[[nodiscard]] double nic_barrier_us(const PhaseTimes& t, std::size_t n);

/// Eq. 3: predicted factor of improvement.
[[nodiscard]] double improvement_factor(const PhaseTimes& t, std::size_t n);

}  // namespace nicbar::model
