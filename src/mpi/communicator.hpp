// A thin MPI-like layer over GM (the paper's §8 future work #1: "study the
// effects of our NIC-based barrier operation on higher communication layers,
// such as MPI" — pursued by the authors in their CAC'01 follow-up).
//
// Every call pays a fixed software overhead on top of GM (matching, queue
// walks, datatype handling), which is exactly the `Send`/`HRecv` inflation
// the paper's Eq. 3 says *raises* the NIC barrier's factor of improvement.
// Collectives dispatch either to the host-based or the NIC-based
// implementations, so an application can be re-run with one flag flipped.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "coll/reduce.hpp"
#include "gm/port.hpp"
#include "sim/task.hpp"

namespace nicbar::mpi {

struct Message {
  int source = -1;
  std::int64_t bytes = 0;
  std::uint64_t tag = 0;
};

struct CommConfig {
  /// Software cost the MPI layer adds to every call (progress engine,
  /// matching, argument checking). The knob of the paper's Eq. 3 argument.
  sim::Duration per_call_overhead = sim::microseconds(8.0);
  /// Where collectives run: the host-based algorithms, or the NIC firmware.
  coll::Location collective_location = coll::Location::kNic;
  nic::BarrierAlgorithm barrier_algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  std::size_t gb_dimension = 2;
  /// Deadline applied to every barrier() (zero = wait forever). The backstop
  /// for ranks with no direct connection to a failed node.
  sim::Duration barrier_deadline{0};
};

/// One rank's communicator; wraps a GM port whose endpoint must appear in
/// `group` (rank = its index there).
class Communicator {
 public:
  Communicator(gm::Port& port, std::vector<gm::Endpoint> group, CommConfig config = {});

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  [[nodiscard]] const CommConfig& config() const { return config_; }

  /// MPI_Send (eager, asynchronous completion as in GM).
  [[nodiscard]] sim::Task send(int dst_rank, std::int64_t bytes, std::uint64_t tag = 0);

  /// MPI_Recv: blocks until a message from `src_rank` arrives (messages from
  /// other ranks are queued for their own receives).
  [[nodiscard]] sim::ValueTask<Message> recv(int src_rank);

  /// MPI_Barrier. kOk on completion; kPeerDead/kDeadline mean the barrier
  /// aborted and this communicator is failed (MPI_ERR_PROC_FAILED-style):
  /// collective results can no longer be trusted. Point-to-point recv() from
  /// a dead peer still blocks — use the barrier deadline to detect failure.
  [[nodiscard]] sim::ValueTask<coll::BarrierStatus> barrier();

  /// True once a group member's connection died or a barrier aborted.
  [[nodiscard]] bool failed() const { return failed_; }

  /// MPI_Allreduce on a single int64.
  [[nodiscard]] sim::ValueTask<std::int64_t> allreduce(std::int64_t value, nic::ReduceOp op);

  /// MPI_Bcast of a single int64 from rank 0. Built on the reduction tree:
  /// non-roots contribute the operator identity (bitwise OR with 0).
  [[nodiscard]] sim::ValueTask<std::int64_t> bcast(std::int64_t value);

  /// Pure computation on the host CPU (for application kernels).
  [[nodiscard]] sim::Task compute(sim::Duration d) { return port_.compute(d); }

 private:
  sim::Task ensure_provisioned();
  sim::Task send_impl(int dst_rank, std::int64_t bytes, std::uint64_t tag);
  sim::ValueTask<Message> recv_impl(int src_rank);
  int rank_of(gm::Endpoint e) const;
  bool group_has_node(net::NodeId node) const;
  void note_peer_dead(net::NodeId node);

  gm::Port& port_;
  std::vector<gm::Endpoint> group_;
  CommConfig config_;
  int rank_ = -1;
  std::unique_ptr<coll::BarrierMember> barrier_;
  std::unique_ptr<coll::ReduceMember> reducer_;
  std::map<int, std::deque<Message>> pending_;
  bool provisioned_ = false;
  bool failed_ = false;
  std::int64_t recv_buffer_bytes_ = 64 * 1024;
};

}  // namespace nicbar::mpi
