// A thin MPI-like layer over GM (the paper's §8 future work #1: "study the
// effects of our NIC-based barrier operation on higher communication layers,
// such as MPI" — pursued by the authors in their CAC'01 follow-up).
//
// Every call pays a fixed software overhead on top of GM (matching, queue
// walks, datatype handling), which is exactly the `Send`/`HRecv` inflation
// the paper's Eq. 3 says *raises* the NIC barrier's factor of improvement.
// Collectives dispatch either to the host-based or the NIC-based
// implementations, so an application can be re-run with one flag flipped.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "coll/group.hpp"
#include "coll/reduce.hpp"
#include "gm/port.hpp"
#include "sim/task.hpp"

namespace nicbar::mpi {

struct Message {
  int source = -1;
  std::int64_t bytes = 0;
  std::uint64_t tag = 0;
  /// 64-bit immediate carried with the message (GmEvent::value).
  std::int64_t value = 0;
};

struct CommConfig {
  /// Software cost the MPI layer adds to every call (progress engine,
  /// matching, argument checking). The knob of the paper's Eq. 3 argument.
  sim::Duration per_call_overhead = sim::microseconds(8.0);
  /// Where collectives run: the host-based algorithms, or the NIC firmware.
  coll::Location collective_location = coll::Location::kNic;
  nic::BarrierAlgorithm barrier_algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  std::size_t gb_dimension = 2;
  /// Deadline applied to every barrier() (zero = wait forever). The backstop
  /// for ranks with no direct connection to a failed node.
  sim::Duration barrier_deadline{0};
};

/// One rank's communicator; wraps a GM port whose endpoint must appear in
/// `group` (rank = its index there).
class Communicator {
 public:
  Communicator(gm::Port& port, std::vector<gm::Endpoint> group, CommConfig config = {});

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(group_.size()); }
  [[nodiscard]] const CommConfig& config() const { return config_; }

  /// MPI_Send (eager, asynchronous completion as in GM). `value` is a 64-bit
  /// immediate carried with the message (delivered in Message::value).
  [[nodiscard]] sim::Task send(int dst_rank, std::int64_t bytes, std::uint64_t tag = 0,
                               std::int64_t value = 0);

  /// MPI_Recv: blocks until a message from `src_rank` arrives (messages from
  /// other ranks are queued for their own receives).
  [[nodiscard]] sim::ValueTask<Message> recv(int src_rank);

  /// MPI_Barrier. kOk on completion; kPeerDead/kDeadline mean the barrier
  /// aborted and this communicator is failed (MPI_ERR_PROC_FAILED-style):
  /// collective results can no longer be trusted. Point-to-point recv() from
  /// a dead peer still blocks — use the barrier deadline to detect failure.
  [[nodiscard]] sim::ValueTask<coll::BarrierStatus> barrier();

  /// True once a group member's connection died or a barrier aborted.
  [[nodiscard]] bool failed() const { return failed_; }

  /// MPI_Allreduce on a single int64.
  [[nodiscard]] sim::ValueTask<std::int64_t> allreduce(std::int64_t value, nic::ReduceOp op);

  /// MPI_Bcast of a single int64 from rank 0. Built on the reduction tree:
  /// non-roots contribute the operator identity (bitwise OR with 0).
  [[nodiscard]] sim::ValueTask<std::int64_t> bcast(std::int64_t value);

  /// MPI_Comm_split: collective over this communicator. Ranks with the same
  /// non-negative `color` form a child communicator, ordered by (key, parent
  /// rank); a negative color opts out (MPI_UNDEFINED) and yields nullptr.
  ///
  /// The child is a *managed* barrier group (coll::GroupMember): its
  /// barrier() is NIC-offloaded only while every member NIC grants a
  /// barrier-state slot, and transparently degrades to host-driven barriers
  /// (kOkDegraded) under slot exhaustion. Check child->failed() — creation
  /// can abort if a member dies mid-handshake. The child must not outlive
  /// its parent, and should be free()d when done to release NIC slots.
  [[nodiscard]] sim::ValueTask<std::unique_ptr<Communicator>> split(int color, int key);

  /// MPI_Comm_free for a communicator made by split(): drains and destroys
  /// the managed group, releasing this member's NIC slot. Collective over
  /// the child. Throws on a root communicator.
  [[nodiscard]] sim::ValueTask<coll::BarrierStatus> free();

  /// The managed-group handle behind a split() communicator (state, degraded
  /// counters); nullptr on a root communicator.
  [[nodiscard]] coll::GroupMember* group_member() { return managed_.get(); }

  /// Pure computation on the host CPU (for application kernels).
  [[nodiscard]] sim::Task compute(sim::Duration d) { return port_.compute(d); }

  ~Communicator();
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

 private:
  /// Child-communicator constructor (split() path): wraps a managed group.
  Communicator(gm::Port& port, std::vector<gm::Endpoint> group, CommConfig config,
               Communicator* parent, std::uint64_t group_id);

  sim::Task ensure_provisioned();
  sim::Task send_impl(int dst_rank, std::int64_t bytes, std::uint64_t tag, std::int64_t value);
  sim::ValueTask<Message> recv_impl(int src_rank);
  sim::ValueTask<std::unique_ptr<Communicator>> split_impl(int color, int key);
  int rank_of(gm::Endpoint e) const;
  bool group_has_node(net::NodeId node) const;
  void note_peer_dead(net::NodeId node);
  /// Sink for a child communicator's collectives: queue own-group traffic,
  /// route control messages via the root registry, cascade the rest up.
  void on_foreign_event(const nic::GmEvent& ev);
  // Child-group registry (root communicator only): control messages drained
  // anywhere in the tree are routed to the owning GroupMember; messages for
  // a group a peer created before we did are parked until registration.
  void route_ctrl(const nic::GmEvent& ev);
  void register_group(coll::GroupMember* g);
  void unregister_group(std::uint64_t id);

  gm::Port& port_;
  std::vector<gm::Endpoint> group_;
  CommConfig config_;
  int rank_ = -1;
  std::unique_ptr<coll::BarrierMember> barrier_;   // root: anonymous barriers
  std::unique_ptr<coll::GroupMember> managed_;     // child: managed group
  std::unique_ptr<coll::ReduceMember> reducer_;
  std::map<int, std::deque<Message>> pending_;
  bool provisioned_ = false;
  bool failed_ = false;
  std::int64_t recv_buffer_bytes_ = 64 * 1024;

  // Communicator-tree bookkeeping (split()).
  Communicator* parent_ = nullptr;
  Communicator* root_ = this;
  std::uint64_t group_id_ = 0;  // 0 = the root's anonymous group
  int split_seq_ = 0;
  int owed_buffers_ = 0;  // receive buffers consumed by sink-routed messages
  std::map<std::uint64_t, coll::GroupMember*> child_groups_;  // root only
  std::vector<nic::GmEvent> unrouted_ctrl_;                   // root only
};

}  // namespace nicbar::mpi
