#include "mpi/communicator.hpp"

#include <stdexcept>
#include <utility>

namespace nicbar::mpi {

using nic::GmEvent;
using nic::GmEventType;

Communicator::Communicator(gm::Port& port, std::vector<gm::Endpoint> group, CommConfig config)
    : port_(port), group_(std::move(group)), config_(config) {
  rank_ = rank_of(port_.endpoint());
  if (rank_ < 0) throw std::invalid_argument("port's endpoint is not in the communicator");
  // The MPI layer's matching/progress cost applies to every GM call made
  // through this port — that is what makes host-based collectives pay
  // log2(N) times the overhead while NIC-based ones pay it ~once (Eq. 3).
  port_.set_layer_overhead(config_.per_call_overhead);

  coll::BarrierSpec bspec;
  bspec.location = config_.collective_location;
  bspec.algorithm = config_.barrier_algorithm;
  bspec.gb_dimension = config_.gb_dimension;
  bspec.deadline = config_.barrier_deadline;
  barrier_ = std::make_unique<coll::BarrierMember>(port_, group_, bspec);
  reducer_ = std::make_unique<coll::ReduceMember>(port_, group_, config_.collective_location,
                                                  nic::ReduceOp::kSum, config_.gb_dimension);

  // The collectives and this layer share one event stream: anything a
  // collective drains that is not its own gets funnelled back here, and
  // vice versa (recv() forwards completions into the members).
  auto sink = [this](const GmEvent& ev) {
    switch (ev.type) {
      case GmEventType::kRecv: {
        const int src = rank_of(ev.peer);
        if (src >= 0) pending_[src].push_back(Message{src, ev.bytes, ev.tag});
        break;
      }
      case GmEventType::kBarrierComplete:
        barrier_->note_completion();
        break;
      case GmEventType::kReduceComplete:
        reducer_->note_result(ev.value);
        break;
      case GmEventType::kPeerDead:
        note_peer_dead(ev.peer.node);
        break;
      case GmEventType::kSent:
        break;
    }
  };
  barrier_->set_event_sink(sink);
  reducer_->set_event_sink(sink);
}

int Communicator::rank_of(gm::Endpoint e) const {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == e) return static_cast<int>(i);
  }
  return -1;
}

bool Communicator::group_has_node(net::NodeId node) const {
  for (const gm::Endpoint& ep : group_) {
    if (ep.node == node) return true;
  }
  return false;
}

void Communicator::note_peer_dead(net::NodeId node) {
  barrier_->note_peer_dead(node);
  if (group_has_node(node)) failed_ = true;
}

sim::Task Communicator::ensure_provisioned() {
  if (provisioned_) co_return;
  provisioned_ = true;
  for (int i = 0; i < 2 * size() + 2; ++i) {
    co_await port_.provide_receive_buffer(recv_buffer_bytes_);
  }
}

sim::Task Communicator::send(int dst_rank, std::int64_t bytes, std::uint64_t tag) {
  // Validate eagerly: a lazy coroutine would defer the throw until awaited.
  if (dst_rank < 0 || dst_rank >= size()) throw std::out_of_range("bad destination rank");
  return send_impl(dst_rank, bytes, tag);
}

sim::Task Communicator::send_impl(int dst_rank, std::int64_t bytes, std::uint64_t tag) {
  // per-GM-call layer cost is charged by the port itself
  co_await port_.send(group_[static_cast<std::size_t>(dst_rank)], bytes, tag);
}

sim::ValueTask<Message> Communicator::recv(int src_rank) {
  if (src_rank < 0 || src_rank >= size()) throw std::out_of_range("bad source rank");
  return recv_impl(src_rank);
}

sim::ValueTask<Message> Communicator::recv_impl(int src_rank) {
  co_await ensure_provisioned();
  // per-GM-call layer cost is charged by the port itself
  auto it = pending_.find(src_rank);
  if (it != pending_.end() && !it->second.empty()) {
    Message m = it->second.front();
    it->second.pop_front();
    co_return m;
  }
  for (;;) {
    const GmEvent ev = co_await port_.receive();
    switch (ev.type) {
      case GmEventType::kRecv: {
        co_await port_.provide_receive_buffer(recv_buffer_bytes_);
        const int src = rank_of(ev.peer);
        if (src < 0) break;  // not a member of this communicator
        Message m{src, ev.bytes, ev.tag};
        if (src == src_rank) co_return m;
        pending_[src].push_back(m);
        break;
      }
      case GmEventType::kBarrierComplete:
        barrier_->note_completion();
        break;
      case GmEventType::kReduceComplete:
        reducer_->note_result(ev.value);
        break;
      case GmEventType::kPeerDead:
        note_peer_dead(ev.peer.node);
        break;
      case GmEventType::kSent:
        break;
    }
  }
}

sim::ValueTask<coll::BarrierStatus> Communicator::barrier() {
  co_await ensure_provisioned();
  // per-GM-call layer cost is charged by the port itself
  const coll::BarrierStatus st = co_await barrier_->run();
  if (st != coll::BarrierStatus::kOk) failed_ = true;
  co_return st;
}

sim::ValueTask<std::int64_t> Communicator::allreduce(std::int64_t value, nic::ReduceOp op) {
  co_await ensure_provisioned();
  // per-GM-call layer cost is charged by the port itself
  if (op == nic::ReduceOp::kSum) {
    co_return co_await reducer_->allreduce(value);
  }
  // Non-sum operators get a dedicated member (cheap: schedules only).
  coll::ReduceMember red(port_, group_, config_.collective_location, op,
                         config_.gb_dimension);
  red.set_event_sink([this](const GmEvent& ev) {
    if (ev.type == GmEventType::kRecv) {
      const int src = rank_of(ev.peer);
      if (src >= 0) pending_[src].push_back(Message{src, ev.bytes, ev.tag});
    } else if (ev.type == GmEventType::kBarrierComplete) {
      barrier_->note_completion();
    } else if (ev.type == GmEventType::kPeerDead) {
      note_peer_dead(ev.peer.node);
    }
  });
  co_return co_await red.allreduce(value);
}

sim::ValueTask<std::int64_t> Communicator::bcast(std::int64_t value) {
  // OR-reduction with identity 0 everywhere except the root delivers the
  // root's value to every rank over the same combining tree.
  co_return co_await allreduce(rank_ == 0 ? value : 0, nic::ReduceOp::kBitOr);
}

}  // namespace nicbar::mpi
