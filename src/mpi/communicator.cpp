#include "mpi/communicator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/check.hpp"

namespace nicbar::mpi {

using nic::GmEvent;
using nic::GmEventType;

namespace {

// split() exchanges (color, key) pairs as one packed immediate.
std::int64_t encode_split(int color, int key) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)) << 32) |
      static_cast<std::uint32_t>(key));
}
int split_color(std::int64_t v) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(v) >> 32);
}
int split_key(std::int64_t v) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(v) & 0xffffffffull);
}

}  // namespace

Communicator::Communicator(gm::Port& port, std::vector<gm::Endpoint> group, CommConfig config)
    : port_(port), group_(std::move(group)), config_(config) {
  rank_ = rank_of(port_.endpoint());
  if (rank_ < 0) throw std::invalid_argument("port's endpoint is not in the communicator");
  // The MPI layer's matching/progress cost applies to every GM call made
  // through this port — that is what makes host-based collectives pay
  // log2(N) times the overhead while NIC-based ones pay it ~once (Eq. 3).
  port_.set_layer_overhead(config_.per_call_overhead);

  coll::BarrierSpec bspec;
  bspec.location = config_.collective_location;
  bspec.algorithm = config_.barrier_algorithm;
  bspec.gb_dimension = config_.gb_dimension;
  bspec.deadline = config_.barrier_deadline;
  barrier_ = std::make_unique<coll::BarrierMember>(port_, group_, bspec);
  reducer_ = std::make_unique<coll::ReduceMember>(port_, group_, config_.collective_location,
                                                  nic::ReduceOp::kSum, config_.gb_dimension);

  // The collectives and this layer share one event stream: anything a
  // collective drains that is not its own gets funnelled back here, and
  // vice versa (recv() forwards completions into the members).
  auto sink = [this](const GmEvent& ev) {
    switch (ev.type) {
      case GmEventType::kRecv: {
        if (ev.tag == nic::kGroupCtrlMsgTag) {
          // A child group's handshake message drained during one of our
          // collectives; its buffer is repaid at the next GM call we make.
          ++owed_buffers_;
          route_ctrl(ev);
          break;
        }
        const int src = rank_of(ev.peer);
        if (src >= 0) pending_[src].push_back(Message{src, ev.bytes, ev.tag, ev.value});
        break;
      }
      case GmEventType::kBarrierComplete:
        barrier_->note_completion();
        break;
      case GmEventType::kReduceComplete:
        reducer_->note_result(ev.value);
        break;
      case GmEventType::kPeerDead:
        note_peer_dead(ev.peer.node);
        break;
      case GmEventType::kSent:
        break;
    }
  };
  barrier_->set_event_sink(sink);
  reducer_->set_event_sink(sink);
}

Communicator::Communicator(gm::Port& port, std::vector<gm::Endpoint> group, CommConfig config,
                           Communicator* parent, std::uint64_t group_id)
    : port_(port),
      group_(std::move(group)),
      config_(config),
      parent_(parent),
      root_(parent->root_),
      group_id_(group_id) {
  rank_ = rank_of(port_.endpoint());
  if (rank_ < 0) throw std::invalid_argument("port's endpoint is not in the communicator");

  coll::GroupConfig gc;
  gc.id = group_id;
  gc.algorithm = config_.barrier_algorithm;
  gc.gb_dimension = config_.gb_dimension;
  gc.deadline = config_.barrier_deadline;
  // The barrier deadline doubles as the handshake backstop: a coordinator
  // waiting on a crashed member may have no traffic in flight to it, so no
  // kPeerDead ever arrives — only this deadline ends the wait.
  gc.ctrl_deadline = config_.barrier_deadline;
  managed_ = std::make_unique<coll::GroupMember>(port_, group_, gc);
  reducer_ = std::make_unique<coll::ReduceMember>(port_, group_, config_.collective_location,
                                                  nic::ReduceOp::kSum, config_.gb_dimension);

  auto sink = [this](const GmEvent& ev) { on_foreign_event(ev); };
  managed_->set_event_sink(sink);
  reducer_->set_event_sink(sink);
  root_->register_group(managed_.get());
}

Communicator::~Communicator() {
  if (managed_ != nullptr && root_ != this) root_->unregister_group(managed_->id());
}

void Communicator::on_foreign_event(const GmEvent& ev) {
  switch (ev.type) {
    case GmEventType::kRecv:
      if (ev.tag == nic::kGroupCtrlMsgTag) {
        ++owed_buffers_;
        root_->route_ctrl(ev);
        break;
      }
      {
        const int src = rank_of(ev.peer);
        if (src >= 0) {
          pending_[src].push_back(Message{src, ev.bytes, ev.tag, ev.value});
          break;
        }
      }
      // Not addressed to this child group: parent-level traffic.
      if (parent_ != nullptr) parent_->on_foreign_event(ev);
      break;
    case GmEventType::kBarrierComplete:
      // The managed group's barriers consume their own completions inside
      // their waits; one surfacing here is a stale (cancelled-epoch) event.
      port_.count_stale_completion();
      break;
    case GmEventType::kReduceComplete:
      reducer_->note_result(ev.value);
      break;
    case GmEventType::kPeerDead:
      note_peer_dead(ev.peer.node);
      break;
    case GmEventType::kSent:
      break;
  }
}

void Communicator::route_ctrl(const GmEvent& ev) {
  const std::uint64_t gid = coll::ctrl_message_group(ev.value);
  auto it = child_groups_.find(gid);
  if (it != child_groups_.end()) {
    it->second->note_ctrl(ev);
    return;
  }
  // A peer finished its split() exchange before we did and its handshake
  // message overtook ours: park it until the group registers locally.
  unrouted_ctrl_.push_back(ev);
}

void Communicator::register_group(coll::GroupMember* g) {
  child_groups_[g->id()] = g;
  auto it = unrouted_ctrl_.begin();
  while (it != unrouted_ctrl_.end()) {
    if (coll::ctrl_message_group(it->value) == g->id()) {
      g->note_ctrl(*it);
      it = unrouted_ctrl_.erase(it);
    } else {
      ++it;
    }
  }
}

void Communicator::unregister_group(std::uint64_t id) { child_groups_.erase(id); }

int Communicator::rank_of(gm::Endpoint e) const {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == e) return static_cast<int>(i);
  }
  return -1;
}

bool Communicator::group_has_node(net::NodeId node) const {
  for (const gm::Endpoint& ep : group_) {
    if (ep.node == node) return true;
  }
  return false;
}

void Communicator::note_peer_dead(net::NodeId node) {
  if (barrier_ != nullptr) barrier_->note_peer_dead(node);
  if (managed_ != nullptr) managed_->note_peer_dead(node);
  if (group_has_node(node)) failed_ = true;
  // A dead node poisons every communicator that contains it, up the tree.
  if (parent_ != nullptr) parent_->note_peer_dead(node);
}

sim::Task Communicator::ensure_provisioned() {
  if (!provisioned_) {
    provisioned_ = true;
    for (int i = 0; i < 2 * size() + 2; ++i) {
      co_await port_.provide_receive_buffer(recv_buffer_bytes_);
    }
  }
  // Repay buffers consumed by sink-routed control messages (the sink itself
  // cannot co_await). Always 0 when split() is never used.
  while (owed_buffers_ > 0) {
    --owed_buffers_;
    co_await port_.provide_receive_buffer(recv_buffer_bytes_);
  }
}

sim::Task Communicator::send(int dst_rank, std::int64_t bytes, std::uint64_t tag,
                             std::int64_t value) {
  // Validate eagerly: a lazy coroutine would defer the throw until awaited.
  if (dst_rank < 0 || dst_rank >= size()) throw std::out_of_range("bad destination rank");
  return send_impl(dst_rank, bytes, tag, value);
}

sim::Task Communicator::send_impl(int dst_rank, std::int64_t bytes, std::uint64_t tag,
                                  std::int64_t value) {
  // per-GM-call layer cost is charged by the port itself
  co_await port_.send(group_[static_cast<std::size_t>(dst_rank)], bytes, tag, value);
}

sim::ValueTask<Message> Communicator::recv(int src_rank) {
  if (src_rank < 0 || src_rank >= size()) throw std::out_of_range("bad source rank");
  return recv_impl(src_rank);
}

sim::ValueTask<Message> Communicator::recv_impl(int src_rank) {
  co_await ensure_provisioned();
  // per-GM-call layer cost is charged by the port itself
  auto it = pending_.find(src_rank);
  if (it != pending_.end() && !it->second.empty()) {
    Message m = it->second.front();
    it->second.pop_front();
    co_return m;
  }
  for (;;) {
    const GmEvent ev = co_await port_.receive();
    switch (ev.type) {
      case GmEventType::kRecv: {
        co_await port_.provide_receive_buffer(recv_buffer_bytes_);
        if (ev.tag == nic::kGroupCtrlMsgTag) {
          root_->route_ctrl(ev);  // a child group's handshake message
          break;
        }
        const int src = rank_of(ev.peer);
        if (src < 0) {
          // Parent-level traffic drained while working in a child.
          if (parent_ != nullptr) parent_->on_foreign_event(ev);
          break;
        }
        Message m{src, ev.bytes, ev.tag, ev.value};
        if (src == src_rank) co_return m;
        pending_[src].push_back(m);
        break;
      }
      case GmEventType::kBarrierComplete:
        if (barrier_ != nullptr) {
          barrier_->note_completion();
        } else {
          // Managed groups consume their own completions inside barrier();
          // one surfacing here is a stale (cancelled-epoch) event.
          port_.count_stale_completion();
        }
        break;
      case GmEventType::kReduceComplete:
        reducer_->note_result(ev.value);
        break;
      case GmEventType::kPeerDead:
        note_peer_dead(ev.peer.node);
        break;
      case GmEventType::kSent:
        break;
    }
  }
}

sim::ValueTask<coll::BarrierStatus> Communicator::barrier() {
  co_await ensure_provisioned();
  // per-GM-call layer cost is charged by the port itself
  const coll::BarrierStatus st = managed_ != nullptr ? co_await managed_->run_barrier()
                                                     : co_await barrier_->run();
  if (!coll::is_success(st)) failed_ = true;
  co_return st;
}

sim::ValueTask<std::int64_t> Communicator::allreduce(std::int64_t value, nic::ReduceOp op) {
  co_await ensure_provisioned();
  // per-GM-call layer cost is charged by the port itself
  if (op == nic::ReduceOp::kSum) {
    co_return co_await reducer_->allreduce(value);
  }
  // Non-sum operators get a dedicated member (cheap: schedules only).
  coll::ReduceMember red(port_, group_, config_.collective_location, op,
                         config_.gb_dimension);
  red.set_event_sink([this](const GmEvent& ev) {
    if (ev.type == GmEventType::kRecv) {
      const int src = rank_of(ev.peer);
      if (src >= 0) pending_[src].push_back(Message{src, ev.bytes, ev.tag});
    } else if (ev.type == GmEventType::kBarrierComplete) {
      barrier_->note_completion();
    } else if (ev.type == GmEventType::kPeerDead) {
      note_peer_dead(ev.peer.node);
    }
  });
  co_return co_await red.allreduce(value);
}

sim::ValueTask<std::int64_t> Communicator::bcast(std::int64_t value) {
  // OR-reduction with identity 0 everywhere except the root delivers the
  // root's value to every rank over the same combining tree.
  co_return co_await allreduce(rank_ == 0 ? value : 0, nic::ReduceOp::kBitOr);
}

sim::ValueTask<std::unique_ptr<Communicator>> Communicator::split(int color, int key) {
  // Child group ids only need to be unique among groups that can share a GM
  // port — i.e. among descendants of one communicator tree — and every rank
  // runs the same collective sequence, so (parent id, split #, color)
  // identifies the child deterministically everywhere. 10 bits each for the
  // split counter and the color keep three levels of nesting inside the
  // 47-bit id space.
  if (color >= (1 << 10) - 1) throw std::out_of_range("split color too large");
  return split_impl(color, key);
}

sim::ValueTask<std::unique_ptr<Communicator>> Communicator::split_impl(int color, int key) {
  co_await ensure_provisioned();
  // Phase 1: all-to-all (color, key) exchange over point-to-point sends.
  const std::int64_t mine = encode_split(color, key);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    co_await send_impl(r, 8, nic::kCommSplitMsgTag, mine);
  }
  std::vector<std::int64_t> vals(static_cast<std::size_t>(size()));
  vals[static_cast<std::size_t>(rank_)] = mine;
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    const Message m = co_await recv_impl(r);
    NICBAR_CHECK(m.tag == nic::kCommSplitMsgTag, "mpi.split", port_.simulator().now(),
                 "rank %d sent tag 0x%llx during a split — point-to-point traffic must "
                 "not overlap the collective",
                 r, static_cast<unsigned long long>(m.tag));
    vals[static_cast<std::size_t>(r)] = m.value;
  }
  const int seq = ++split_seq_;
  if (color < 0) co_return nullptr;  // MPI_UNDEFINED: not in any child

  // Phase 2: identical child computation on every member — my color's ranks,
  // ordered by (key, parent rank).
  std::vector<int> members;
  for (int r = 0; r < size(); ++r) {
    if (split_color(vals[static_cast<std::size_t>(r)]) == color) members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return split_key(vals[static_cast<std::size_t>(a)]) <
           split_key(vals[static_cast<std::size_t>(b)]);
  });
  std::vector<gm::Endpoint> child_eps;
  child_eps.reserve(members.size());
  for (int r : members) child_eps.push_back(group_[static_cast<std::size_t>(r)]);

  const std::uint64_t child_id = (group_id_ << 20) |
                                 (static_cast<std::uint64_t>(seq) << 10) |
                                 static_cast<std::uint64_t>(color + 1);
  std::unique_ptr<Communicator> child(
      new Communicator(port_, std::move(child_eps), config_, this, child_id));

  // Phase 3: the managed-group admission handshake (slot allocation on every
  // member NIC, or degraded host-fallback mode).
  const coll::BarrierStatus st = co_await child->managed_->run_create();
  if (!coll::is_success(st)) child->failed_ = true;
  co_return child;
}

sim::ValueTask<coll::BarrierStatus> Communicator::free() {
  if (managed_ == nullptr) throw std::logic_error("free() on a root communicator");
  return [](Communicator& self) -> sim::ValueTask<coll::BarrierStatus> {
    const coll::BarrierStatus st = co_await self.managed_->run_destroy();
    self.root_->unregister_group(self.managed_->id());
    co_return st;
  }(*this);
}

}  // namespace nicbar::mpi
