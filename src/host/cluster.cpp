#include "host/cluster.hpp"

#include <utility>

namespace nicbar::host {

Cluster::Cluster(ClusterParams params) : params_(std::move(params)) {
  net_ = std::make_unique<net::Network>(sim_, params_.link, params_.sw);
  switch (params_.topology) {
    case Topology::kSingleSwitch:
      net::build_single_switch(*net_, params_.nodes);
      break;
    case Topology::kSwitchChain:
      net::build_switch_chain(*net_, params_.nodes, params_.chain_per_switch);
      break;
    case Topology::kSwitchTree:
      net::build_switch_tree(*net_, params_.nodes, params_.tree_radix);
      break;
  }
  nodes_.reserve(params_.nodes);
  for (std::size_t i = 0; i < params_.nodes; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    auto n = std::make_unique<Node>(sim_, params_.host_cpus, id);
    n->nic = std::make_unique<nic::Nic>(sim_, *net_, id, params_.nic, n->pci);
    nic::Nic* nic_ptr = n->nic.get();
    net_->set_deliver(id, [nic_ptr](net::Packet p) { nic_ptr->rx_packet(std::move(p)); });
    nodes_.push_back(std::move(n));
  }
}

std::unique_ptr<gm::Port> Cluster::make_port(net::NodeId node_id, nic::PortId port) {
  Node& n = *nodes_.at(node_id);
  return std::make_unique<gm::Port>(sim_, n.host_cpu, *n.nic, port, params_.gm);
}

std::unique_ptr<gm::Port> Cluster::open_port(net::NodeId node_id, nic::PortId port) {
  auto p = make_port(node_id, port);
  p->open();
  return p;
}

}  // namespace nicbar::host
