#include "host/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace nicbar::host {

Cluster::Cluster(ClusterParams params) : params_(std::move(params)) {
  // The network is always built on the serial simulator; setup_partitions()
  // rebinds every element onto its lane afterwards, so the build simulator
  // is never ticked in a partitioned cluster.
  net_ = std::make_unique<net::Network>(sim_, params_.link, params_.sw);
  switch (params_.topology) {
    case Topology::kSingleSwitch:
      net::build_single_switch(*net_, params_.nodes);
      break;
    case Topology::kSwitchChain:
      net::build_switch_chain(*net_, params_.nodes, params_.chain_per_switch);
      break;
    case Topology::kSwitchTree:
      net::build_switch_tree(*net_, params_.nodes, params_.tree_radix);
      break;
    case Topology::kFatTree:
      fabric_ = fabric::build_fat_tree(*net_, params_.nodes, params_.fabric_radix,
                                       params_.fabric_oversub);
      break;
    case Topology::kLeafSpine:
      fabric_ = fabric::build_leaf_spine(*net_, params_.nodes, params_.fabric_radix,
                                         params_.fabric_oversub);
      break;
  }
  setup_partitions();
  nodes_.reserve(params_.nodes);
  for (std::size_t i = 0; i < params_.nodes; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    sim::Simulator& lane = sim_for(id);
    auto n = std::make_unique<Node>(lane, params_.host_cpus, id);
    n->nic = std::make_unique<nic::Nic>(lane, *net_, id, params_.nic, n->pci);
    nic::Nic* nic_ptr = n->nic.get();
    net_->set_deliver(id, [nic_ptr](net::Packet p) { nic_ptr->rx_packet(std::move(p)); });
    nodes_.push_back(std::move(n));
  }
  if (params_.telemetry != nullptr) {
    if (pdes_ != nullptr && params_.telemetry->trace() != nullptr) {
      throw std::invalid_argument(
          "pdes: the chrome trace sink records in global wall order and is "
          "not shardable; run traced experiments with pdes_partitions = 1");
    }
    if (pdes_ != nullptr && params_.telemetry->breakdown() != nullptr) {
      throw std::invalid_argument(
          "pdes: the latency-breakdown collector accumulates into shared "
          "histograms; run breakdown experiments with pdes_partitions = 1");
    }
    for (auto& n : nodes_) n->nic->set_telemetry(params_.telemetry);
    net_->set_trace_sink(params_.telemetry->trace());
    net_->set_causal(params_.telemetry->causal());
    if (pdes_ != nullptr && params_.telemetry->causal() != nullptr) {
      // One span arena per lane; the worker binds its lane's shard before
      // every window, and run_all() canonicalizes the shards back into the
      // exact ids a serial recording would have produced.
      sim::causal::CausalTracer* tracer = params_.telemetry->causal();
      tracer->enable_sharding(pdes_->partitions());
      pdes_->set_lane_prologue(
          [](std::size_t lane) { sim::causal::CausalTracer::set_current_shard(lane); });
    }
  }
  arm_faults();
}

void Cluster::setup_partitions() {
  std::size_t want = std::max<std::size_t>(1, params_.pdes_partitions);
  // A partition with no nodes would be a lane that only ever idles; clamp to
  // the natural grain: one leaf block (fabrics) or one node (flat).
  want = std::min(want, fabric_ ? fabric_->num_leaves : params_.nodes);
  if (want <= 1) return;

  node_partition_.assign(params_.nodes, 0);
  switch_partition_.assign(net_->switch_count(), 0);
  if (fabric_) {
    // Leaf-aligned blocks: a node shares a lane with its leaf switch, so the
    // dense host↔leaf traffic is lane-local and only switch↔switch links
    // cross partitions. Leaves are switch ids 0..num_leaves-1 (the builders
    // add them first); spine/agg/core stay on lane 0.
    const std::size_t leaves = fabric_->num_leaves;
    for (std::size_t i = 0; i < params_.nodes; ++i) {
      node_partition_[i] = static_cast<int>(fabric_->leaf_of(static_cast<net::NodeId>(i)) *
                                            want / leaves);
    }
    for (std::size_t s = 0; s < leaves && s < switch_partition_.size(); ++s) {
      switch_partition_[s] = static_cast<int>(s * want / leaves);
    }
  } else {
    // Flat topologies: contiguous node blocks; the switch column stays on
    // lane 0, so every terminal link outside block 0 is a partition crossing
    // and the lookahead is the terminal link's propagation delay.
    for (std::size_t i = 0; i < params_.nodes; ++i) {
      node_partition_[i] = static_cast<int>(i * want / params_.nodes);
    }
  }

  pdes_ = std::make_unique<sim::pdes::PartitionedSimulator>(want, params_.link.propagation,
                                                            params_.pdes_workers);
  net::PartitionMap map;
  map.terminal_partition = node_partition_;
  map.switch_partition = switch_partition_;
  const sim::Duration cross = net_->apply_partitioning(*pdes_, map);
  // All links share params_.link, so the minimum cross-partition propagation
  // either matches the lookahead the lanes were built with or no link
  // crosses at all (single populated partition — still safe, windows just
  // never exchange messages).
  if (cross.ps() != 0 && cross != params_.link.propagation) {
    throw std::logic_error("pdes: cross-partition propagation disagrees with lookahead");
  }
}

std::uint64_t Cluster::run_all(sim::SimTime until) {
  if (pdes_ == nullptr) return sim_.run(until);
  const std::uint64_t n = pdes_->run(until);
  if (params_.telemetry != nullptr && params_.telemetry->causal() != nullptr) {
    sim::causal::CausalTracer* tracer = params_.telemetry->causal();
    tracer->canonicalize();
    // Re-shard so a follow-up run keeps recording race-free; the canonical
    // spans live on in shard 0 and the next canonicalize folds them back in.
    tracer->enable_sharding(pdes_->partitions());
  }
  return n;
}

void Cluster::arm_faults() {
  const sim::fault::FaultPlan& plan = params_.faults;
  if (plan.empty()) return;

  const auto matches = [](const std::string& pattern, const std::string& name) {
    return pattern.empty() || pattern == "*" || name.find(pattern) != std::string::npos;
  };
  // Stable stream counter: each armed (feature, link) pair consumes one
  // index, in deterministic arming order, so streams never collide.
  std::uint64_t stream = 0;
  const auto derive_seed = [&plan, &stream] {
    ++stream;
    return plan.seed + 0x9e3779b97f4a7c15ULL * stream;
  };

  for (const sim::fault::UniformLoss& f : plan.loss) {
    net_->for_each_link([&](net::Link& l) {
      if (matches(f.link, l.name())) l.set_drop_probability(f.prob, derive_seed());
    });
  }
  for (const sim::fault::BurstLoss& f : plan.bursts) {
    net_->for_each_link([&](net::Link& l) {
      if (matches(f.link, l.name())) {
        l.set_burst_loss(f.p_enter_bad, f.p_exit_bad, f.loss_good, f.loss_bad, derive_seed());
      }
    });
  }
  for (const sim::fault::Corruption& f : plan.corruption) {
    net_->for_each_link([&](net::Link& l) {
      if (matches(f.link, l.name())) l.set_corrupt_probability(f.prob, derive_seed());
    });
  }
  for (const sim::fault::LinkDownWindow& f : plan.link_down) {
    net_->for_each_link([&](net::Link& l) {
      if (!matches(f.link, l.name())) return;
      net::Link* lp = &l;
      // l.sim() is the owning lane after partitioning (the serial engine
      // otherwise), so the transition executes where the link lives.
      l.sim().schedule_at(f.from, [lp] { lp->set_down(true); });
      if (f.until != sim::SimTime::max()) {
        l.sim().schedule_at(f.until, [lp] { lp->set_down(false); });
      }
    });
  }
  const auto where = [](int line) {
    return line > 0 ? " (fault-plan line " + std::to_string(line) + ")" : std::string();
  };
  for (const sim::fault::NicCrash& f : plan.nic_crashes) {
    if (f.node >= nodes_.size()) {
      // Silently skipping would turn a typo'd node id into a fault-free run
      // that "passes"; name the offending plan line instead.
      throw std::invalid_argument("fault plan: nic-crash node " + std::to_string(f.node) +
                                  " does not exist (cluster has " +
                                  std::to_string(nodes_.size()) + " nodes)" + where(f.line));
    }
    nic::Nic* nic_ptr = nodes_[f.node]->nic.get();
    sim::Simulator& lane = sim_for(static_cast<net::NodeId>(f.node));
    lane.schedule_at(f.at, [nic_ptr] { nic_ptr->crash(); });
    if (f.restart_at != sim::SimTime::max()) {
      lane.schedule_at(f.restart_at, [nic_ptr] { nic_ptr->restart(); });
    }
  }
  for (const sim::fault::SwitchPortDown& f : plan.switch_ports_down) {
    if (f.switch_id >= net_->switch_count()) {
      throw std::invalid_argument("fault plan: switch-port-down switch " +
                                  std::to_string(f.switch_id) + " does not exist (topology has " +
                                  std::to_string(net_->switch_count()) + " switches)" +
                                  where(f.line));
    }
    net::Switch* sw = &net_->switch_at(static_cast<int>(f.switch_id));
    const std::size_t port = f.port;
    sim::Simulator& lane = sim_for_switch(f.switch_id);
    lane.schedule_at(f.from, [sw, port] { sw->set_port_down(port, true); });
    if (f.until != sim::SimTime::max()) {
      lane.schedule_at(f.until, [sw, port] { sw->set_port_down(port, false); });
    }
  }
}

void Cluster::snapshot_metrics() {
  if (params_.telemetry == nullptr) return;
  sim::telemetry::MetricsRegistry& m = params_.telemetry->metrics();

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = *nodes_[i];
    nic::Nic& nic = *n.nic;
    const std::string pfx = "nic" + std::to_string(i) + ".";

    const nic::NicStats& s = nic.stats();
    m.counter(pfx + "data_sent") = s.data_sent;
    m.counter(pfx + "data_received") = s.data_received;
    m.counter(pfx + "acks_sent") = s.acks_sent;
    m.counter(pfx + "nacks_sent") = s.nacks_sent;
    m.counter(pfx + "acks_received") = s.acks_received;
    m.counter(pfx + "nacks_received") = s.nacks_received;
    m.counter(pfx + "retransmissions") = s.retransmissions;
    m.counter(pfx + "duplicates_dropped") = s.duplicates_dropped;
    m.counter(pfx + "out_of_order_dropped") = s.out_of_order_dropped;
    m.counter(pfx + "no_token_drops") = s.no_token_drops;
    m.counter(pfx + "closed_port_drops") = s.closed_port_drops;
    m.counter(pfx + "barrier_packets_sent") = s.barrier_packets_sent;
    m.counter(pfx + "barrier_packets_received") = s.barrier_packets_received;
    m.counter(pfx + "barriers_started") = s.barriers_started;
    m.counter(pfx + "barriers_completed") = s.barriers_completed;
    m.counter(pfx + "reduces_started") = s.reduces_started;
    m.counter(pfx + "reduces_completed") = s.reduces_completed;
    m.counter(pfx + "multicasts_sent") = s.multicasts_sent;
    m.counter(pfx + "unexpected_recorded") = s.unexpected_recorded;
    m.counter(pfx + "bit_collisions") = s.bit_collisions;
    m.counter(pfx + "barrier_nacks_sent") = s.barrier_nacks_sent;
    m.counter(pfx + "barrier_resends") = s.barrier_resends;
    m.counter(pfx + "barrier_loopback_msgs") = s.barrier_loopback_msgs;
    m.counter(pfx + "events_delivered") = s.events_delivered;
    m.counter(pfx + "barrier_pe_rounds") = s.barrier_pe_rounds;
    m.counter(pfx + "barrier_gathers_sent") = s.barrier_gathers_sent;
    m.counter(pfx + "barrier_bcasts_entered") = s.barrier_bcasts_entered;
    m.counter(pfx + "barrier_hier_gathers") = s.barrier_hier_gathers;

    // Fault / recovery counters (PR 2).
    m.counter(pfx + "crc_drops") = s.crc_drops;
    m.counter(pfx + "retransmit_timeouts") = s.retransmit_timeouts;
    m.counter(pfx + "rto_backoffs") = s.rto_backoffs;
    m.counter(pfx + "rtt_samples") = s.rtt_samples;
    m.counter(pfx + "connections_failed") = s.connections_failed;
    m.counter(pfx + "dead_peer_drops") = s.dead_peer_drops;
    m.counter(pfx + "nic_crashes") = s.nic_crashes;
    m.counter(pfx + "nic_restarts") = s.nic_restarts;
    m.counter(pfx + "rx_dropped_crashed") = s.rx_dropped_crashed;
    m.counter(pfx + "tx_dropped_crashed") = s.tx_dropped_crashed;
    m.counter(pfx + "barriers_cancelled") = s.barriers_cancelled;

    // Barrier-group lifecycle: slot admission and stale-packet fencing.
    const nic::SlotStats& sl = nic.slots().stats();
    m.counter(pfx + "slots.allocations") = sl.allocations;
    m.counter(pfx + "slots.rejections") = sl.rejections;
    m.counter(pfx + "slots.frees") = sl.frees;
    m.counter(pfx + "slots.generations") = sl.generations;
    m.counter(pfx + "slots.high_water") = static_cast<std::uint64_t>(sl.high_water);
    m.counter(pfx + "stale_group_fenced") = s.stale_group_fenced;

    // Per-engine occupancy of the shared LANai processor.
    const nic::EngineStats& e = nic.engine_stats();
    for (std::size_t k = 0; k < nic::kMcpEngineCount; ++k) {
      const auto eng = static_cast<nic::McpEngine>(k);
      const std::string epfx = pfx + "engine." + nic::to_string(eng) + ".";
      m.counter(epfx + "jobs") = e.jobs[k];
      m.counter(epfx + "cycles") = static_cast<std::uint64_t>(e.cycles[k]);
    }
    const sim::BusyServer& proc = nic.processor().stats();
    m.counter(pfx + "proc.jobs") = proc.jobs();
    m.counter(pfx + "proc.stalls") = proc.stalls();
    m.counter(pfx + "proc.busy_ps") = static_cast<std::uint64_t>(proc.busy_total().ps());
    m.gauge(pfx + "proc.utilisation") = proc.utilisation();

    // The node's PCI bus (SDMA + RDMA contend here).
    const std::string ppfx = "node" + std::to_string(i) + ".pci.";
    m.counter(ppfx + "jobs") = n.pci.jobs();
    m.counter(ppfx + "stalls") = n.pci.stalls();
    m.counter(ppfx + "busy_ps") = static_cast<std::uint64_t>(n.pci.busy_total().ps());
    m.gauge(ppfx + "utilisation") = n.pci.utilisation();
  }

  // Fabric: every directed link, plus per-switch forwarding totals. A
  // link's `stalls` counts packets that queued behind the wire — output-
  // port contention at the upstream switch.
  net_->for_each_link([&m](net::Link& l) {
    const std::string pfx = "link." + l.name() + ".";
    m.counter(pfx + "packets") = l.packets_sent();
    m.counter(pfx + "dropped") = l.packets_dropped();
    m.counter(pfx + "corrupted") = l.packets_corrupted();
    m.counter(pfx + "down_drops") = l.drops_while_down();
    m.counter(pfx + "down_time_ps") = static_cast<std::uint64_t>(l.down_time_total().ps());
    m.counter(pfx + "bytes") = static_cast<std::uint64_t>(l.bytes_sent());
    m.counter(pfx + "stalls") = l.wire().stalls();
    m.counter(pfx + "queue_delay_ps") =
        static_cast<std::uint64_t>(l.wire().queue_delay_total().ps());
    m.gauge(pfx + "utilisation") = l.wire().utilisation();
  });
  for (std::size_t sw = 0; sw < net_->switch_count(); ++sw) {
    const net::Switch& s = net_->switch_at(static_cast<int>(sw));
    const std::string pfx = "switch" + std::to_string(sw) + ".";
    m.counter(pfx + "forwarded") = s.packets_forwarded();
    m.counter(pfx + "misrouted") = s.packets_misrouted();
    m.counter(pfx + "port_down_drops") = s.packets_dropped_port_down();
  }
  m.counter("net.packets_injected") = net_->packets_injected();

  if (auto* bc = params_.telemetry->breakdown()) bc->snapshot(m);
}

std::unique_ptr<gm::Port> Cluster::make_port(net::NodeId node_id, nic::PortId port) {
  Node& n = *nodes_.at(node_id);
  return std::make_unique<gm::Port>(sim_for(node_id), n.host_cpu, *n.nic, port, params_.gm);
}

std::unique_ptr<gm::Port> Cluster::open_port(net::NodeId node_id, nic::PortId port) {
  auto p = make_port(node_id, port);
  p->open();
  return p;
}

}  // namespace nicbar::host
