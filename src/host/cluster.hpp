// Cluster assembly: simulator + fabric + per-node (host CPU, PCI bus, NIC),
// mirroring the paper's testbed of N hosts on one Myrinet switch.
//
// A Cluster owns everything; user code opens gm::Ports on nodes and spawns
// host processes (sim::Task coroutines) that use them.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include <optional>

#include "fabric/topology.hpp"
#include "gm/config.hpp"
#include "gm/port.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "nic/config.hpp"
#include "nic/nic.hpp"
#include "sim/fault.hpp"
#include "sim/pdes.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/telemetry.hpp"

namespace nicbar::host {

enum class Topology {
  kSingleSwitch,  // the paper's testbeds (8/16-port switch)
  kSwitchChain,
  kSwitchTree,
  kFatTree,    // fabric:: folded Clos, 2-3 levels, closed-form routing
  kLeafSpine,  // fabric:: strictly two-level variant
};

struct ClusterParams {
  std::size_t nodes = 2;
  nic::NicConfig nic = nic::lanai43();
  gm::GmConfig gm;
  net::LinkParams link;
  net::SwitchParams sw;
  Topology topology = Topology::kSingleSwitch;
  std::size_t tree_radix = 16;       // kSwitchTree
  std::size_t chain_per_switch = 8;  // kSwitchChain
  std::size_t fabric_radix = 16;     // kFatTree / kLeafSpine switch radix
  std::size_t fabric_oversub = 1;    // leaf oversubscription ratio q in q:1
  /// The paper's hosts were dual-processor Pentium II machines.
  std::size_t host_cpus = 2;
  /// Optional observability bundle (non-owning; must outlive the Cluster).
  /// When null — the default — every instrumentation hook is one untaken
  /// branch and the simulation timeline is bit-identical to no telemetry.
  sim::telemetry::Telemetry* telemetry = nullptr;
  /// Declarative fault schedule, armed at construction. An empty plan (the
  /// default) arms nothing and the timeline is bit-identical to a fault-free
  /// build — fault hooks cost zero when no plan is installed.
  sim::fault::FaultPlan faults;
  /// Conservative PDES (sim::pdes): number of model partitions. 1 — the
  /// default — uses the classic serial engine, untouched. > 1 splits nodes
  /// into contiguous blocks (leaf-aligned for kFatTree/kLeafSpine, so
  /// host↔leaf traffic never crosses a partition), each block on its own
  /// simulator lane synchronized by lookahead windows; the timeline is
  /// bit-identical to the serial engine. Clamped to the leaf count
  /// (fabrics) or node count (flat topologies). Requires
  /// link.propagation > 0 — that delay is the lookahead.
  std::size_t pdes_partitions = 1;
  /// Worker threads for the partitioned run. 0 — the default — uses the
  /// hardware concurrency; values beyond the partition count are harmless.
  /// Any worker count produces the same timeline; this knob is speed only.
  unsigned pdes_workers = 0;
};

/// One machine: host CPU(s), a PCI bus, and a programmable NIC.
struct Node {
  explicit Node(sim::Simulator& sim, std::size_t cpus, net::NodeId id)
      : host_cpu(sim, cpus), pci(sim, "pci" + std::to_string(id)) {}
  sim::Resource host_cpu;
  sim::BusyServer pci;
  std::unique_ptr<nic::Nic> nic;
};

class Cluster {
 public:
  explicit Cluster(ClusterParams params);

  /// The build/lane-0 simulator. Serial clusters own exactly one engine and
  /// this is it; partitioned clusters return lane 0, which is correct for
  /// global reads (now(), metric denominators) but NOT for spawning node
  /// work — use sim_for(node) so the process runs on the node's own lane.
  [[nodiscard]] sim::Simulator& sim() { return pdes_ ? pdes_->lane(0) : sim_; }

  /// The simulator lane that owns `id`'s host CPU, PCI bus, and NIC. Equal
  /// to sim() when the cluster is not partitioned.
  [[nodiscard]] sim::Simulator& sim_for(net::NodeId id) {
    return pdes_ ? pdes_->lane(node_partition_.at(id)) : sim_;
  }

  /// The partition owning node `id` (0 when not partitioned).
  [[nodiscard]] std::size_t partition_of(net::NodeId id) const {
    return node_partition_.empty() ? 0 : node_partition_.at(id);
  }

  /// The partitioned engine, or nullptr when pdes_partitions resolved to 1.
  [[nodiscard]] sim::pdes::PartitionedSimulator* pdes() { return pdes_.get(); }

  /// Runs the simulation to completion (or `until`) on whichever engine the
  /// params selected, and — on the partitioned engine — canonicalizes the
  /// causal tracer so span ids, critical paths, and completion records read
  /// identically to a serial run. Returns the number of events executed.
  std::uint64_t run_all(sim::SimTime until = sim::SimTime::max());

  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(net::NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] nic::Nic& nic(net::NodeId id) { return *nodes_.at(id)->nic; }
  [[nodiscard]] const ClusterParams& params() const { return params_; }

  /// The resolved fabric shape when the topology is kFatTree/kLeafSpine;
  /// nullptr for the flat `net::` topologies. The hierarchical barrier
  /// family reads leaf membership from this.
  [[nodiscard]] const fabric::Fabric* fabric() const {
    return fabric_.has_value() ? &*fabric_ : nullptr;
  }

  /// Creates and opens a GM port on `node`.
  [[nodiscard]] std::unique_ptr<gm::Port> open_port(net::NodeId node, nic::PortId port);

  /// Creates a port without opening it (for closed-port policy tests).
  [[nodiscard]] std::unique_ptr<gm::Port> make_port(net::NodeId node, nic::PortId port);

  /// Copies the cluster's hardware counters into the attached telemetry
  /// registry: per-NIC reliability/barrier counters, per-engine processor
  /// occupancy, PCI-bus and link utilisation, switch forwarding totals.
  /// No-op when no telemetry bundle is attached. Call after sim().run().
  void snapshot_metrics();

 private:
  /// Translates params_.faults into link/switch/NIC hooks and scheduled
  /// down/up, crash/restart transitions. Each (feature, link) pair gets its
  /// own RNG stream derived from the plan seed, so adding one fault never
  /// perturbs the draws of another. Under PDES each transition is scheduled
  /// on the owning element's lane.
  void arm_faults();

  /// Resolves pdes_partitions against the topology (leaf-aligned blocks for
  /// fabrics, contiguous node blocks otherwise), builds the partition maps,
  /// creates the lanes, and rebinds the already-built network onto them.
  /// No-op (serial engine) when the clamped partition count is 1.
  void setup_partitions();

  [[nodiscard]] sim::Simulator& sim_for_switch(std::size_t id) {
    return pdes_ ? pdes_->lane(static_cast<std::size_t>(switch_partition_.at(id))) : sim_;
  }

  ClusterParams params_;
  sim::Simulator sim_;
  std::unique_ptr<sim::pdes::PartitionedSimulator> pdes_;
  std::unique_ptr<net::Network> net_;
  std::optional<fabric::Fabric> fabric_;
  std::vector<int> node_partition_;    // empty when not partitioned
  std::vector<int> switch_partition_;  // empty when not partitioned
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace nicbar::host
