// Crossbar switch with cut-through (wormhole-like) forwarding.
//
// Myrinet switches are source-routed crossbars: the head of a packet is
// examined, the leading route byte selects the output port, and the packet
// streams through with a small pipeline latency. We model that as a fixed
// per-hop routing latency followed by transmission on the chosen output
// link; output contention is captured by the link's FIFO wire server.
//
// We do not model head-of-line wormhole blocking across switches: barrier
// packets are tens of bytes, the fabrics in the paper are one switch deep,
// and even the multi-switch scalability extension keeps links far from
// saturation, so store-through with output queueing is an accurate regime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace nicbar::net {

struct SwitchParams {
  sim::Duration routing_latency = sim::nanoseconds(300);
};

class Switch {
 public:
  Switch(sim::Simulator& sim, int id, std::size_t num_ports, SwitchParams params)
      : sim_(&sim), id_(id), params_(params), out_(num_ports, nullptr),
        port_down_(num_ports, false) {}

  /// Re-points the switch at the Simulator lane of its partition (PDES).
  /// Only legal before the simulation runs.
  void rebind_sim(sim::Simulator& sim) { sim_ = &sim; }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::size_t num_ports() const { return out_.size(); }

  /// Attaches the outgoing half of the cable plugged into `port`.
  void attach_out(std::size_t port, Link* link) { out_.at(port) = link; }

  [[nodiscard]] Link* out_link(std::size_t port) const { return out_.at(port); }

  /// A packet's head has arrived: consume the next route byte and forward.
  void accept(Packet p);

  /// Attaches a causal tracer: every forwarded packet gains a kSwitch span
  /// covering the routing latency. Nullptr detaches (default, zero-cost).
  void set_causal(sim::causal::CausalTracer* causal) { causal_ = causal; }

  /// Fault injection: a failed output port eats every packet routed to it
  /// (a stuck crossbar lane; the rest of the switch keeps forwarding).
  void set_port_down(std::size_t port, bool down) { port_down_.at(port) = down; }

  [[nodiscard]] bool is_port_down(std::size_t port) const { return port_down_.at(port); }

  [[nodiscard]] std::uint64_t packets_accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t packets_forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t packets_misrouted() const { return misrouted_; }
  [[nodiscard]] std::uint64_t packets_dropped_port_down() const { return port_down_drops_; }
  [[nodiscard]] std::uint64_t packets_in_pipeline() const { return in_pipeline_; }

  /// Packet conservation: every accepted packet is forwarded, misrouted, or
  /// dropped on a failed port; at quiescence the routing pipeline is empty.
  void verify_conservation() const;

 private:
  sim::Simulator* sim_;
  int id_;
  SwitchParams params_;
  std::vector<Link*> out_;
  std::vector<bool> port_down_;
  std::uint64_t accepted_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t misrouted_ = 0;
  std::uint64_t port_down_drops_ = 0;
  std::uint64_t in_pipeline_ = 0;
  sim::causal::CausalTracer* causal_ = nullptr;
};

}  // namespace nicbar::net
