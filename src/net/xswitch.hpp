// Crossbar switch with cut-through (wormhole-like) forwarding.
//
// Myrinet switches are source-routed crossbars: the head of a packet is
// examined, the leading route byte selects the output port, and the packet
// streams through with a small pipeline latency. We model that as a fixed
// per-hop routing latency followed by transmission on the chosen output
// link; output contention is captured by the link's FIFO wire server.
//
// We do not model head-of-line wormhole blocking across switches: barrier
// packets are tens of bytes, the fabrics in the paper are one switch deep,
// and even the multi-switch scalability extension keeps links far from
// saturation, so store-through with output queueing is an accurate regime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace nicbar::net {

struct SwitchParams {
  sim::Duration routing_latency = sim::nanoseconds(300);
};

class Switch {
 public:
  Switch(sim::Simulator& sim, int id, std::size_t num_ports, SwitchParams params)
      : sim_(sim), id_(id), params_(params), out_(num_ports, nullptr) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] std::size_t num_ports() const { return out_.size(); }

  /// Attaches the outgoing half of the cable plugged into `port`.
  void attach_out(std::size_t port, Link* link) { out_.at(port) = link; }

  [[nodiscard]] Link* out_link(std::size_t port) const { return out_.at(port); }

  /// A packet's head has arrived: consume the next route byte and forward.
  void accept(Packet p);

  [[nodiscard]] std::uint64_t packets_forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t packets_misrouted() const { return misrouted_; }

 private:
  sim::Simulator& sim_;
  int id_;
  SwitchParams params_;
  std::vector<Link*> out_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t misrouted_ = 0;
};

}  // namespace nicbar::net
