#include "net/network.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>

namespace nicbar::net {

Link* Network::new_link(std::string name) {
  links_.push_back(std::make_unique<Link>(sim_, link_params_, std::move(name)));
  return links_.back().get();
}

NodeId Network::add_terminal() {
  assert(!finalized_);
  terminals_.push_back(Terminal{});
  return static_cast<NodeId>(terminals_.size() - 1);
}

int Network::add_switch(std::size_t num_ports) {
  assert(!finalized_);
  const int id = static_cast<int>(switches_.size());
  switches_.push_back(std::make_unique<Switch>(sim_, id, num_ports, switch_params_));
  switch_adj_.emplace_back();
  return id;
}

void Network::connect_terminal(NodeId terminal, int switch_id, std::size_t port) {
  assert(!finalized_);
  Terminal& t = terminals_.at(terminal);
  Switch& sw = *switches_.at(static_cast<std::size_t>(switch_id));
  if (t.up != nullptr) throw std::logic_error("terminal already connected");

  t.attached_switch = switch_id;
  t.attached_port = port;
  t.up = new_link("t" + std::to_string(terminal) + "->sw" + std::to_string(switch_id));
  t.down = new_link("sw" + std::to_string(switch_id) + "->t" + std::to_string(terminal));

  // Uplink delivers into the switch; downlink hangs off the switch port.
  Switch* swp = &sw;
  t.up->set_deliver([swp](Packet p) { swp->accept(std::move(p)); });
  sw.attach_out(port, t.down);
  NodeId tid = terminal;
  Network* self = this;
  t.down->set_deliver([self, tid](Packet p) {
    Terminal& dst = self->terminals_.at(tid);
    if (dst.deliver) dst.deliver(std::move(p));
  });
}

void Network::connect_switches(int switch_a, std::size_t port_a, int switch_b,
                               std::size_t port_b) {
  assert(!finalized_);
  Switch& a = *switches_.at(static_cast<std::size_t>(switch_a));
  Switch& b = *switches_.at(static_cast<std::size_t>(switch_b));

  Link* ab = new_link("sw" + std::to_string(switch_a) + "->sw" + std::to_string(switch_b));
  Link* ba = new_link("sw" + std::to_string(switch_b) + "->sw" + std::to_string(switch_a));
  a.attach_out(port_a, ab);
  b.attach_out(port_b, ba);
  Switch* bp = &b;
  Switch* ap = &a;
  ab->set_deliver([bp](Packet p) { bp->accept(std::move(p)); });
  ba->set_deliver([ap](Packet p) { ap->accept(std::move(p)); });

  switch_adj_[static_cast<std::size_t>(switch_a)].push_back(
      SwitchEdge{switch_b, static_cast<std::uint8_t>(port_a)});
  switch_adj_[static_cast<std::size_t>(switch_b)].push_back(
      SwitchEdge{switch_a, static_cast<std::uint8_t>(port_b)});
}

void Network::finalize() {
  if (route_provider_) {
    // Closed-form routing: no all-pairs table. At 4096 terminals the BFS
    // table alone would hold 16.7M route vectors; the provider computes
    // each pair on demand and route() memoises the ones actually used.
    finalized_ = true;
    return;
  }
  const std::size_t n = terminals_.size();
  const std::size_t s = switches_.size();
  routes_.assign(n * n, {});

  // BFS over the switch graph from every switch: parent pointers give the
  // first switch-hop and the output port used to reach each switch.
  for (std::size_t src_sw = 0; src_sw < s; ++src_sw) {
    std::vector<int> parent(s, -1);
    std::vector<std::uint8_t> via_port(s, 0);
    std::vector<bool> seen(s, false);
    std::deque<int> frontier;
    frontier.push_back(static_cast<int>(src_sw));
    seen[src_sw] = true;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop_front();
      for (const SwitchEdge& e : switch_adj_[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(e.to_switch)]) continue;
        seen[static_cast<std::size_t>(e.to_switch)] = true;
        parent[static_cast<std::size_t>(e.to_switch)] = u;
        via_port[static_cast<std::size_t>(e.to_switch)] = e.out_port;
        frontier.push_back(e.to_switch);
      }
    }

    // Build routes for all terminal pairs whose source hangs off src_sw.
    for (NodeId a = 0; a < n; ++a) {
      if (terminals_[a].attached_switch != static_cast<int>(src_sw)) continue;
      for (NodeId b = 0; b < n; ++b) {
        if (a == b) continue;
        const Terminal& tb = terminals_[b];
        if (tb.attached_switch < 0) continue;
        if (!seen[static_cast<std::size_t>(tb.attached_switch)]) continue;  // unreachable

        // Walk dst_switch -> src_switch via parents, collecting the output
        // port taken *leaving* each switch on the forward path.
        std::vector<std::uint8_t> rev;
        int cur = tb.attached_switch;
        while (cur != static_cast<int>(src_sw)) {
          rev.push_back(via_port[static_cast<std::size_t>(cur)]);
          cur = parent[static_cast<std::size_t>(cur)];
        }
        std::vector<std::uint8_t>& r = routes_[a * n + b];
        r.assign(rev.rbegin(), rev.rend());
        r.push_back(static_cast<std::uint8_t>(tb.attached_port));  // exit to terminal
      }
    }
  }
  finalized_ = true;
}

void Network::set_deliver(NodeId terminal, DeliverFn fn) {
  terminals_.at(terminal).deliver = std::move(fn);
}

const std::vector<std::uint8_t>& Network::route(NodeId src, NodeId dst) const {
  assert(finalized_);
  if (route_provider_) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    auto it = route_cache_.find(key);
    if (it == route_cache_.end()) {
      it = route_cache_.emplace(key, route_provider_(src, dst)).first;
    }
    const std::vector<std::uint8_t>& r = it->second;
    if (r.empty() && src != dst) throw std::logic_error("no route between terminals");
    return r;
  }
  const std::vector<std::uint8_t>& r = routes_.at(src * terminals_.size() + dst);
  if (r.empty() && src != dst) throw std::logic_error("no route between terminals");
  return r;
}

sim::Duration Network::path_time(NodeId src, NodeId dst, std::int64_t payload_bytes) const {
  if (src == dst) return sim::Duration{0};
  const std::size_t hops = route(src, dst).size();  // switches traversed
  sim::Duration t{0};
  // The packet crosses hops+1 links; the route shrinks by one byte per
  // switch, so link k carries (hops - k) remaining route bytes.
  for (std::size_t k = 0; k <= hops; ++k) {
    const std::int64_t bytes = link_params_.header_bytes +
                               static_cast<std::int64_t>(hops - k) + payload_bytes;
    t += sim::transfer_time(bytes, link_params_.bandwidth_mbps) + link_params_.propagation;
  }
  t += switch_params_.routing_latency * static_cast<std::int64_t>(hops);
  return t;
}

sim::SimTime Network::inject(Packet p) {
  assert(finalized_);
  Terminal& t = terminals_.at(p.src_node);
  p.route = route(p.src_node, p.dst_node);
  p.hop = 0;
  p.injected_at = sim_.now();
  if (p.id == 0) p.id = next_packet_id_++;
  ++injected_;
  return t.up->transmit(std::move(p));
}

}  // namespace nicbar::net
