#include "net/network.hpp"

#include <cassert>
#include <deque>
#include <stdexcept>

namespace nicbar::net {

Link* Network::new_link(std::string name, LinkEnd tail, LinkEnd head) {
  links_.push_back(std::make_unique<Link>(sim_, link_params_, std::move(name)));
  Link* l = links_.back().get();
  // The uid doubles as the delivery ordering key's second word, so it must
  // be a pure function of construction order (which is deterministic).
  l->set_uid(static_cast<std::uint32_t>(links_.size() - 1));
  link_tail_.push_back(tail);
  link_head_.push_back(head);
  return l;
}

NodeId Network::add_terminal() {
  assert(!finalized_);
  terminals_.push_back(Terminal{});
  packet_seq_.push_back(0);
  return static_cast<NodeId>(terminals_.size() - 1);
}

int Network::add_switch(std::size_t num_ports) {
  assert(!finalized_);
  const int id = static_cast<int>(switches_.size());
  switches_.push_back(std::make_unique<Switch>(sim_, id, num_ports, switch_params_));
  switch_adj_.emplace_back();
  return id;
}

void Network::connect_terminal(NodeId terminal, int switch_id, std::size_t port) {
  assert(!finalized_);
  Terminal& t = terminals_.at(terminal);
  Switch& sw = *switches_.at(static_cast<std::size_t>(switch_id));
  if (t.up != nullptr) throw std::logic_error("terminal already connected");

  t.attached_switch = switch_id;
  t.attached_port = port;
  const LinkEnd term_end{false, static_cast<std::int64_t>(terminal)};
  const LinkEnd sw_end{true, switch_id};
  t.up = new_link("t" + std::to_string(terminal) + "->sw" + std::to_string(switch_id),
                  term_end, sw_end);
  t.down = new_link("sw" + std::to_string(switch_id) + "->t" + std::to_string(terminal),
                    sw_end, term_end);

  // Uplink delivers into the switch; downlink hangs off the switch port.
  Switch* swp = &sw;
  t.up->set_deliver([swp](Packet p) { swp->accept(std::move(p)); });
  sw.attach_out(port, t.down);
  NodeId tid = terminal;
  Network* self = this;
  t.down->set_deliver([self, tid](Packet p) {
    Terminal& dst = self->terminals_.at(tid);
    if (dst.deliver) dst.deliver(std::move(p));
  });
}

void Network::connect_switches(int switch_a, std::size_t port_a, int switch_b,
                               std::size_t port_b) {
  assert(!finalized_);
  Switch& a = *switches_.at(static_cast<std::size_t>(switch_a));
  Switch& b = *switches_.at(static_cast<std::size_t>(switch_b));

  const LinkEnd a_end{true, switch_a};
  const LinkEnd b_end{true, switch_b};
  Link* ab = new_link("sw" + std::to_string(switch_a) + "->sw" + std::to_string(switch_b),
                      a_end, b_end);
  Link* ba = new_link("sw" + std::to_string(switch_b) + "->sw" + std::to_string(switch_a),
                      b_end, a_end);
  a.attach_out(port_a, ab);
  b.attach_out(port_b, ba);
  Switch* bp = &b;
  Switch* ap = &a;
  ab->set_deliver([bp](Packet p) { bp->accept(std::move(p)); });
  ba->set_deliver([ap](Packet p) { ap->accept(std::move(p)); });

  switch_adj_[static_cast<std::size_t>(switch_a)].push_back(
      SwitchEdge{switch_b, static_cast<std::uint8_t>(port_a)});
  switch_adj_[static_cast<std::size_t>(switch_b)].push_back(
      SwitchEdge{switch_a, static_cast<std::uint8_t>(port_b)});
}

void Network::finalize() {
  if (route_provider_) {
    // Closed-form routing: no all-pairs table. At 4096 terminals the BFS
    // table alone would hold 16.7M route vectors; the provider computes
    // each pair on demand and route() memoises the ones actually used.
    finalized_ = true;
    return;
  }
  const std::size_t n = terminals_.size();
  const std::size_t s = switches_.size();
  routes_.assign(n * n, {});

  // BFS over the switch graph from every switch: parent pointers give the
  // first switch-hop and the output port used to reach each switch.
  for (std::size_t src_sw = 0; src_sw < s; ++src_sw) {
    std::vector<int> parent(s, -1);
    std::vector<std::uint8_t> via_port(s, 0);
    std::vector<bool> seen(s, false);
    std::deque<int> frontier;
    frontier.push_back(static_cast<int>(src_sw));
    seen[src_sw] = true;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop_front();
      for (const SwitchEdge& e : switch_adj_[static_cast<std::size_t>(u)]) {
        if (seen[static_cast<std::size_t>(e.to_switch)]) continue;
        seen[static_cast<std::size_t>(e.to_switch)] = true;
        parent[static_cast<std::size_t>(e.to_switch)] = u;
        via_port[static_cast<std::size_t>(e.to_switch)] = e.out_port;
        frontier.push_back(e.to_switch);
      }
    }

    // Build routes for all terminal pairs whose source hangs off src_sw.
    for (NodeId a = 0; a < n; ++a) {
      if (terminals_[a].attached_switch != static_cast<int>(src_sw)) continue;
      for (NodeId b = 0; b < n; ++b) {
        if (a == b) continue;
        const Terminal& tb = terminals_[b];
        if (tb.attached_switch < 0) continue;
        if (!seen[static_cast<std::size_t>(tb.attached_switch)]) continue;  // unreachable

        // Walk dst_switch -> src_switch via parents, collecting the output
        // port taken *leaving* each switch on the forward path.
        std::vector<std::uint8_t> rev;
        int cur = tb.attached_switch;
        while (cur != static_cast<int>(src_sw)) {
          rev.push_back(via_port[static_cast<std::size_t>(cur)]);
          cur = parent[static_cast<std::size_t>(cur)];
        }
        std::vector<std::uint8_t>& r = routes_[a * n + b];
        r.assign(rev.rbegin(), rev.rend());
        r.push_back(static_cast<std::uint8_t>(tb.attached_port));  // exit to terminal
      }
    }
  }
  finalized_ = true;
}

void Network::set_deliver(NodeId terminal, DeliverFn fn) {
  terminals_.at(terminal).deliver = std::move(fn);
}

const std::vector<std::uint8_t>& Network::route(NodeId src, NodeId dst) const {
  assert(finalized_);
  if (route_provider_) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    // Serialize cache insertion (lanes of a partitioned run route
    // concurrently); the node-stable reference outlives the lock.
    const std::lock_guard<std::mutex> lock(route_mu_);
    auto it = route_cache_.find(key);
    if (it == route_cache_.end()) {
      it = route_cache_.emplace(key, route_provider_(src, dst)).first;
    }
    const std::vector<std::uint8_t>& r = it->second;
    if (r.empty() && src != dst) throw std::logic_error("no route between terminals");
    return r;
  }
  const std::vector<std::uint8_t>& r = routes_.at(src * terminals_.size() + dst);
  if (r.empty() && src != dst) throw std::logic_error("no route between terminals");
  return r;
}

sim::Duration Network::path_time(NodeId src, NodeId dst, std::int64_t payload_bytes) const {
  if (src == dst) return sim::Duration{0};
  const std::size_t hops = route(src, dst).size();  // switches traversed
  sim::Duration t{0};
  // The packet crosses hops+1 links; the route shrinks by one byte per
  // switch, so link k carries (hops - k) remaining route bytes.
  for (std::size_t k = 0; k <= hops; ++k) {
    const std::int64_t bytes = link_params_.header_bytes +
                               static_cast<std::int64_t>(hops - k) + payload_bytes;
    t += sim::transfer_time(bytes, link_params_.bandwidth_mbps) + link_params_.propagation;
  }
  t += switch_params_.routing_latency * static_cast<std::int64_t>(hops);
  return t;
}

sim::SimTime Network::inject(Packet p) {
  assert(finalized_);
  Terminal& t = terminals_.at(p.src_node);
  p.route = route(p.src_node, p.dst_node);
  p.hop = 0;
  // The uplink is bound to the injecting node's lane, so its clock — not
  // the build lane's — is the packet's entry timestamp.
  p.injected_at = t.up->sim().now();
  if (p.id == 0) p.id = allocate_packet_id(p.src_node);
  injected_.fetch_add(1, std::memory_order_relaxed);
  return t.up->transmit(std::move(p));
}

sim::Duration Network::apply_partitioning(sim::pdes::PartitionedSimulator& pdes,
                                          const PartitionMap& map) {
  assert(finalized_);
  for (std::size_t s = 0; s < switches_.size(); ++s) {
    switches_[s]->rebind_sim(pdes.lane(
        static_cast<std::size_t>(map.switch_partition.at(s))));
  }
  sim::Duration min_cross{0};
  bool any_cross = false;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    Link* l = links_[i].get();
    const int tail = link_tail_[i].partition(map);
    const int head = link_head_[i].partition(map);
    // A link belongs to its *transmitting* element's lane: transmit() and
    // the wire server run there. Only the delivery crosses over.
    l->rebind_sim(pdes.lane(static_cast<std::size_t>(tail)));
    if (tail == head) continue;
    sim::pdes::PartitionedSimulator* p = &pdes;
    l->set_remote_post([p, tail, head](sim::SimTime at, sim::EventKey key,
                                       sim::EventQueue::Action action) {
      p->post(static_cast<std::size_t>(tail), static_cast<std::size_t>(head), at, key,
              std::move(action));
    });
    if (!any_cross || l->params().propagation < min_cross) {
      min_cross = l->params().propagation;
      any_cross = true;
    }
  }
  return min_cross;
}

}  // namespace nicbar::net
