#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace nicbar::net {

void build_single_switch(Network& net, std::size_t nodes) {
  const int sw = net.add_switch(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId t = net.add_terminal();
    net.connect_terminal(t, sw, i);
  }
  net.finalize();
}

void build_switch_chain(Network& net, std::size_t nodes, std::size_t per_switch) {
  if (per_switch == 0) throw std::invalid_argument("per_switch must be > 0");
  const std::size_t num_switches = (nodes + per_switch - 1) / per_switch;
  std::vector<int> sw;
  sw.reserve(num_switches);
  for (std::size_t i = 0; i < num_switches; ++i) {
    // per_switch host ports + up to two trunk ports to neighbours.
    sw.push_back(net.add_switch(per_switch + 2));
  }
  for (std::size_t i = 0; i + 1 < num_switches; ++i) {
    net.connect_switches(sw[i], per_switch, sw[i + 1], per_switch + 1);
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId t = net.add_terminal();
    net.connect_terminal(t, sw[i / per_switch], i % per_switch);
  }
  net.finalize();
}

void build_switch_tree(Network& net, std::size_t nodes, std::size_t radix) {
  if (radix < 2) throw std::invalid_argument("radix must be >= 2");
  const std::size_t leaf_capacity = radix - 1;  // one port reserved for uplink

  // Leaf switches.
  const std::size_t num_leaves = (nodes + leaf_capacity - 1) / leaf_capacity;
  std::vector<int> level;
  level.reserve(num_leaves);
  for (std::size_t i = 0; i < num_leaves; ++i) level.push_back(net.add_switch(radix));

  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId t = net.add_terminal();
    net.connect_terminal(t, level[i / leaf_capacity], i % leaf_capacity);
  }

  // Build parent levels until one switch remains. Parents dedicate
  // radix-1 ports to children and port radix-1 to their own uplink.
  while (level.size() > 1) {
    std::vector<int> parents;
    const std::size_t fanin = radix - 1;
    const std::size_t num_parents = (level.size() + fanin - 1) / fanin;
    parents.reserve(num_parents);
    for (std::size_t p = 0; p < num_parents; ++p) parents.push_back(net.add_switch(radix));
    for (std::size_t c = 0; c < level.size(); ++c) {
      const std::size_t p = c / fanin;
      const std::size_t parent_port = c % fanin;
      // Child's uplink lives on its last port (radix-1).
      net.connect_switches(level[c], radix - 1, parents[p], parent_port);
    }
    level = std::move(parents);
  }
  net.finalize();
}

}  // namespace nicbar::net
