// The network fabric: terminals (NIC attachment points), switches, cables,
// and source-route computation.
//
// Construction protocol:
//   1. add_terminal() for every NIC, add_switch() for every switch
//   2. connect_terminal() / connect_switches() to cable everything up
//   3. finalize() — computes shortest source routes for all terminal pairs
//   4. set_deliver() on each terminal, then inject() packets
//
// Every cable is full duplex and is modelled as two directed Links.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/xswitch.hpp"
#include "sim/pdes.hpp"
#include "sim/simulator.hpp"

namespace nicbar::net {

/// Assignment of every fabric element to a PDES partition. Terminals are
/// indexed by NodeId, switches by switch id; values are lane indices.
struct PartitionMap {
  std::vector<int> terminal_partition;
  std::vector<int> switch_partition;
};

class Network {
 public:
  using DeliverFn = std::function<void(Packet)>;

  explicit Network(sim::Simulator& sim, LinkParams link_params = {},
                   SwitchParams switch_params = {})
      : sim_(sim), link_params_(link_params), switch_params_(switch_params) {}

  // --- Construction ----------------------------------------------------------

  NodeId add_terminal();
  int add_switch(std::size_t num_ports);
  void connect_terminal(NodeId terminal, int switch_id, std::size_t port);
  void connect_switches(int switch_a, std::size_t port_a, int switch_b, std::size_t port_b);

  /// Computes all-pairs source routes. Must follow all connect_* calls.
  /// When a route provider is installed (hierarchical fabrics), the O(N²)
  /// all-pairs table is skipped entirely and routes come from the provider.
  void finalize();

  /// Closed-form routing for topologies whose routes are computable from
  /// (src, dst) alone. Returns the switch output-port sequence, terminal
  /// exit port included; empty only for src == dst. Install before
  /// finalize(). Routes are cached per pair on first use, so memory is
  /// O(pairs actually routed) rather than O(N²).
  using RouteProviderFn = std::function<std::vector<std::uint8_t>(NodeId, NodeId)>;
  void set_route_provider(RouteProviderFn fn) { route_provider_ = std::move(fn); }
  [[nodiscard]] bool has_route_provider() const { return static_cast<bool>(route_provider_); }

  // --- Use -------------------------------------------------------------------

  void set_deliver(NodeId terminal, DeliverFn fn);

  /// Injects `p` from its src_node terminal: stamps the route and id, then
  /// transmits on the terminal's uplink. Returns the time the sender's
  /// transmit channel frees up.
  sim::SimTime inject(Packet p);

  /// The precomputed route (switch output ports) from src to dst.
  [[nodiscard]] const std::vector<std::uint8_t>& route(NodeId src, NodeId dst) const;

  /// Number of switch hops between two terminals.
  [[nodiscard]] std::size_t hop_count(NodeId src, NodeId dst) const {
    return route(src, dst).size();
  }

  /// The deterministic end-to-end wire time of an uncontended packet of
  /// `payload_bytes` from src to dst: per-link serialisation + propagation
  /// plus per-switch routing latency. This is the "Network" term of the
  /// paper's Eq. 1-2, used by the telemetry cost breakdown. Zero for
  /// same-node (loopback) traffic, which never touches the fabric.
  [[nodiscard]] sim::Duration path_time(NodeId src, NodeId dst,
                                        std::int64_t payload_bytes) const;

  /// Attaches (or detaches, with nullptr) a trace sink to every link in the
  /// fabric. Call after the topology is fully built.
  void set_trace_sink(sim::telemetry::TraceEventSink* sink) {
    for (auto& l : links_) l->set_trace_sink(sink);
  }

  /// Attaches (or detaches, with nullptr) a causal tracer to every link and
  /// switch in the fabric. Call after the topology is fully built.
  void set_causal(sim::causal::CausalTracer* causal) {
    for (auto& l : links_) l->set_causal(causal);
    for (auto& s : switches_) s->set_causal(causal);
  }

  /// Reserves a fabric-unique packet id for traffic originating at `node`.
  /// NICs stamp ids at the SEND engine (before injection) so loopback
  /// packets and trace flow events share the same id space; inject() only
  /// stamps packets that don't have one yet. Ids are striped per node
  /// (seq * N + node + 1) rather than drawn from a global counter: each
  /// node allocates only from its own stripe, so the id of a packet depends
  /// only on that node's deterministic send order — never on how sends from
  /// different nodes (different PDES lanes) interleave in wall-clock time.
  [[nodiscard]] std::uint64_t allocate_packet_id(NodeId node) {
    return packet_seq_[node]++ * terminals_.size() + node + 1;
  }

  /// Binds every fabric element to its partition's lane and converts every
  /// link whose receiving end lives in a different partition than its
  /// transmitting end into a channel post (Link::set_remote_post). Call
  /// after the topology is fully built. Returns the minimum propagation
  /// delay among cross-partition links — the PDES lookahead — or
  /// Duration{0} when no link crosses a boundary.
  sim::Duration apply_partitioning(sim::pdes::PartitionedSimulator& pdes,
                                   const PartitionMap& map);

  // --- Introspection / fault injection ----------------------------------------

  [[nodiscard]] std::size_t terminal_count() const { return terminals_.size(); }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }
  [[nodiscard]] const LinkParams& link_params() const { return link_params_; }

  /// The directed link a terminal transmits on / receives from.
  [[nodiscard]] Link& uplink(NodeId terminal) { return *terminals_.at(terminal).up; }
  [[nodiscard]] Link& downlink(NodeId terminal) { return *terminals_.at(terminal).down; }

  [[nodiscard]] Switch& switch_at(int id) { return *switches_.at(static_cast<std::size_t>(id)); }

  /// Applies `fn` to every directed link in the fabric.
  void for_each_link(const std::function<void(Link&)>& fn) {
    for (auto& l : links_) fn(*l);
  }

  [[nodiscard]] std::uint64_t packets_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct Terminal {
    Link* up = nullptr;    // terminal -> first switch
    Link* down = nullptr;  // last switch -> terminal
    int attached_switch = -1;
    std::size_t attached_port = 0;
    DeliverFn deliver;
  };

  /// One end of a directed link: a terminal (NodeId) or a switch (id).
  struct LinkEnd {
    bool is_switch = false;
    std::int64_t id = 0;
    [[nodiscard]] int partition(const PartitionMap& map) const {
      return is_switch ? map.switch_partition.at(static_cast<std::size_t>(id))
                       : map.terminal_partition.at(static_cast<std::size_t>(id));
    }
  };

  Link* new_link(std::string name, LinkEnd tail, LinkEnd head);

  sim::Simulator& sim_;
  LinkParams link_params_;
  SwitchParams switch_params_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Terminal> terminals_;
  // routes_[src * terminals + dst]; empty when a route provider is installed.
  std::vector<std::vector<std::uint8_t>> routes_;
  RouteProviderFn route_provider_;
  // Lazy per-pair cache for provider-computed routes. route() hands out
  // references, so entries must be address-stable once inserted
  // (unordered_map nodes are). Partitioned runs call route() from several
  // lanes at once, so insertion is serialized by route_mu_; the returned
  // references stay valid after unlock.
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> route_cache_;
  mutable std::mutex route_mu_;
  bool finalized_ = false;
  std::atomic<std::uint64_t> injected_{0};  // bumped by every lane's sends
  std::vector<std::uint64_t> packet_seq_;   // per-node id stripes (one writer each)
  std::vector<LinkEnd> link_tail_;          // per link, transmitting element
  std::vector<LinkEnd> link_head_;          // per link, receiving element

  // Switch-level adjacency: for each switch, (port -> peer switch) entries.
  struct SwitchEdge {
    int to_switch;
    std::uint8_t out_port;
  };
  std::vector<std::vector<SwitchEdge>> switch_adj_;
};

}  // namespace nicbar::net
