#include "net/xswitch.hpp"

#include <memory>

namespace nicbar::net {

void Switch::accept(Packet p) {
  if (p.hop >= p.route.size()) {
    ++misrouted_;  // ran out of route bytes: drop (would be a CRC error on hw)
    return;
  }
  const std::uint8_t port = p.route[p.hop++];
  if (port >= out_.size() || out_[port] == nullptr) {
    ++misrouted_;
    return;
  }
  if (port_down_[port]) {
    ++port_down_drops_;
    return;
  }
  ++forwarded_;
  Link* link = out_[port];
  auto packet = std::make_shared<Packet>(std::move(p));
  sim_.schedule_in(params_.routing_latency,
                   [link, packet]() mutable { link->transmit(std::move(*packet)); });
}

}  // namespace nicbar::net
