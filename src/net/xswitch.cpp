#include "net/xswitch.hpp"

#include <memory>

#include "sim/causal.hpp"
#include "sim/check.hpp"

namespace nicbar::net {

void Switch::accept(Packet p) {
  ++accepted_;
  if (p.hop >= p.route.size()) {
    ++misrouted_;  // ran out of route bytes: drop (would be a CRC error on hw)
    return;
  }
  const std::uint8_t port = p.route[p.hop++];
  if (port >= out_.size() || out_[port] == nullptr) {
    ++misrouted_;
    return;
  }
  if (port_down_[port]) {
    ++port_down_drops_;
    return;
  }
  ++forwarded_;
  Link* link = out_[port];
  auto packet = std::make_shared<Packet>(std::move(p));
  if (causal_ != nullptr) {
    packet->causal =
        causal_->record(sim::causal::Segment::kSwitch, packet->dst_node, "route",
                        sim_->now(), sim_->now() + params_.routing_latency, packet->causal,
                        0, packet->id);
  }
  ++in_pipeline_;
  sim_->schedule_in(params_.routing_latency, [this, link, packet]() mutable {
    --in_pipeline_;
    link->transmit(std::move(*packet));
  });
}

void Switch::verify_conservation() const {
  const sim::SimTime now = sim_->now();
  NICBAR_CHECK(accepted_ == forwarded_ + misrouted_ + port_down_drops_, "net.switch", now,
               "switch %d: accepted=%llu != forwarded=%llu + misrouted=%llu + port_down=%llu",
               id_, static_cast<unsigned long long>(accepted_),
               static_cast<unsigned long long>(forwarded_),
               static_cast<unsigned long long>(misrouted_),
               static_cast<unsigned long long>(port_down_drops_));
  NICBAR_CHECK(in_pipeline_ == 0, "net.switch", now,
               "switch %d: %llu packet(s) still in the routing pipeline at quiescence", id_,
               static_cast<unsigned long long>(in_pipeline_));
}

}  // namespace nicbar::net
