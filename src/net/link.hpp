// Directed point-to-point link.
//
// Models one direction of a full-duplex Myrinet cable: packets occupy the
// wire for wire_bytes/bandwidth (serialisation), then arrive after the
// propagation delay. Serialisation is a FIFO BusyServer, so back-to-back
// packets queue — this is where output-port contention at a switch shows up.
//
// Fault injection: a drop probability and/or an arbitrary drop predicate can
// be set per link; dropped packets consume wire time but are not delivered
// (as on real hardware, where a corrupted packet still burned the slot).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace nicbar::net {

struct LinkParams {
  double bandwidth_mbps = 160.0;               // 1.28 Gb/s Myrinet LAN
  sim::Duration propagation = sim::nanoseconds(100);
  std::int64_t header_bytes = 16;              // GM header + CRC
};

class Link {
 public:
  using DeliverFn = std::function<void(Packet)>;
  /// Cross-partition delivery hook: (arrival time, ordering key, delivery
  /// closure) is posted to the PDES channel matrix instead of this lane's
  /// queue. See sim/sync.hpp for the handoff convention.
  using RemotePostFn =
      std::function<void(sim::SimTime, sim::EventKey, sim::EventQueue::Action)>;

  Link(sim::Simulator& sim, LinkParams params, std::string name)
      : sim_(&sim), params_(params), wire_(sim, std::move(name)) {}

  /// Sets the receiver; must be called before any transmit.
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Re-points the link (and its wire server) at the Simulator lane that
  /// owns its transmitting end. Only legal before the simulation runs.
  void rebind_sim(sim::Simulator& sim) {
    sim_ = &sim;
    wire_.rebind_sim(sim);
  }

  [[nodiscard]] sim::Simulator& sim() const { return *sim_; }

  /// Stable fabric-wide id (assigned by Network at construction); the
  /// second word of every delivery's ordering key, so two links finishing
  /// serialisation at the same picosecond still deliver in a fixed order.
  void set_uid(std::uint32_t uid) { uid_ = uid; }
  [[nodiscard]] std::uint32_t uid() const { return uid_; }

  /// Routes deliveries into another partition's lane via `fn` instead of
  /// scheduling locally. Set by Network::apply_partitioning for links whose
  /// receiving end lives in a different partition than the transmitting end.
  void set_remote_post(RemotePostFn fn) { remote_post_ = std::move(fn); }

  /// Queues `p` for transmission. Returns the time serialisation finishes
  /// (the sender's transmit channel frees up); delivery happens one
  /// propagation delay later.
  sim::SimTime transmit(Packet p);

  /// Fault injection: drop each packet with probability `prob`.
  void set_drop_probability(double prob, std::uint64_t seed = 1) {
    drop_prob_ = prob;
    rng_.reseed(seed);
  }

  /// Fault injection: drop packets for which `pred` returns true (applied
  /// in addition to the probabilistic drop).
  void set_drop_predicate(std::function<bool(const Packet&)> pred) {
    drop_pred_ = std::move(pred);
  }

  /// Fault injection: Gilbert–Elliott bursty loss. Each packet first
  /// advances a good/bad Markov chain, then drops with the current state's
  /// loss rate. Draws come from a dedicated stream so composing burst loss
  /// with uniform loss keeps both reproducible.
  void set_burst_loss(double p_enter_bad, double p_exit_bad, double loss_good, double loss_bad,
                      std::uint64_t seed) {
    burst_enter_ = p_enter_bad;
    burst_exit_ = p_exit_bad;
    burst_loss_good_ = loss_good;
    burst_loss_bad_ = loss_bad;
    burst_bad_ = false;
    burst_rng_.reseed(seed);
  }

  /// Fault injection: flip bits in each packet with probability `prob`. The
  /// packet is still delivered; the receiver's CRC check pays for and
  /// discards it (see Nic::rx_packet).
  void set_corrupt_probability(double prob, std::uint64_t seed) {
    corrupt_prob_ = prob;
    corrupt_rng_.reseed(seed);
  }

  /// Fault injection: unplug / replug the cable. While down, packets vanish
  /// instantly — nothing is serialised, nothing arrives. Down-time is
  /// accumulated for the metrics snapshot.
  void set_down(bool down);

  [[nodiscard]] bool is_down() const { return down_; }

  /// Total time this link has spent down, up to now (open windows count).
  [[nodiscard]] sim::Duration down_time_total() const;

  [[nodiscard]] sim::Duration wire_time(const Packet& p) const {
    return sim::transfer_time(p.wire_bytes(params_.header_bytes), params_.bandwidth_mbps);
  }

  [[nodiscard]] const LinkParams& params() const { return params_; }
  [[nodiscard]] const sim::BusyServer& wire() const { return wire_; }
  [[nodiscard]] const std::string& name() const { return wire_.name(); }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t packets_corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t drops_while_down() const { return down_drops_; }
  [[nodiscard]] std::uint64_t packets_delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }

  /// Packet conservation: every packet serialised onto the wire is either
  /// delivered, dropped with a recorded cause, or still in flight — and at
  /// quiescence nothing may remain in flight. Corrupted packets count as
  /// delivered (the receiver's CRC check discards them and pays the cost).
  void verify_conservation() const;

  /// Attaches a trace sink: every transmission becomes one span on this
  /// link's track. Pass nullptr to detach (the default, zero-cost state).
  void set_trace_sink(sim::telemetry::TraceEventSink* sink) {
    trace_sink_ = sink;
    if (sink != nullptr) trace_track_ = sink->track("link/" + name());
  }

  /// Attaches a causal tracer: every delivered packet gains a kWire span
  /// covering serialisation + propagation (so wire time is never mistaken
  /// for RECV-engine queueing). Nullptr detaches (default, zero-cost).
  void set_causal(sim::causal::CausalTracer* causal) { causal_ = causal; }

 private:
  sim::Simulator* sim_;
  LinkParams params_;
  sim::BusyServer wire_;
  DeliverFn deliver_;
  RemotePostFn remote_post_;
  std::uint32_t uid_ = 0;
  std::uint32_t delivery_seq_ = 0;  // per-link, deterministic by transmit order
  double drop_prob_ = 0.0;
  std::function<bool(const Packet&)> drop_pred_;
  sim::Rng rng_{12345};
  // Gilbert–Elliott burst-loss chain (inactive until set_burst_loss).
  double burst_enter_ = 0.0;
  double burst_exit_ = 0.0;
  double burst_loss_good_ = 0.0;
  double burst_loss_bad_ = 1.0;
  bool burst_bad_ = false;
  sim::Rng burst_rng_{12345};
  double corrupt_prob_ = 0.0;
  sim::Rng corrupt_rng_{12345};
  bool down_ = false;
  sim::SimTime down_since_{0};
  sim::Duration down_total_{0};
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t down_drops_ = 0;
  // Transmit-side counters above are touched only by the owning lane; these
  // two are also decremented/incremented by the *delivery* closure, which
  // for a cross-partition link runs on the receiving lane — concurrently
  // with later transmits here. Relaxed atomics suffice: each run's sums are
  // deterministic, and reads happen post-run (after the pool join).
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::int64_t bytes_sent_ = 0;
  sim::telemetry::TraceEventSink* trace_sink_ = nullptr;
  int trace_track_ = 0;
  sim::causal::CausalTracer* causal_ = nullptr;
};

}  // namespace nicbar::net
