#include "net/packet.hpp"

#include <cstdio>

namespace nicbar::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
    case PacketType::kNack: return "NACK";
    case PacketType::kBarrierPe: return "BAR_PE";
    case PacketType::kBarrierGather: return "BAR_GATHER";
    case PacketType::kBarrierBcast: return "BAR_BCAST";
    case PacketType::kBarrierAck: return "BAR_ACK";
    case PacketType::kBarrierNack: return "BAR_NACK";
    case PacketType::kReduceUp: return "RED_UP";
    case PacketType::kReduceDown: return "RED_DOWN";
    case PacketType::kRmaPut: return "RMA_PUT";
    case PacketType::kRmaGet: return "RMA_GET";
    case PacketType::kRmaCas: return "RMA_CAS";
    case PacketType::kRmaReply: return "RMA_REPLY";
  }
  return "?";
}

std::string Packet::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s #%llu %u.%u -> %u.%u seq=%u bseq=%u epoch=%u %lldB",
                to_string(type), static_cast<unsigned long long>(id), src_node, src_port,
                dst_node, dst_port, seq, barrier_seq, barrier_epoch,
                static_cast<long long>(payload_bytes));
  return buf;
}

}  // namespace nicbar::net
