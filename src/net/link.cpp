#include "net/link.hpp"

#include <cassert>
#include <memory>

namespace nicbar::net {

sim::SimTime Link::transmit(Packet p) {
  assert(deliver_ && "link has no receiver attached");
  ++sent_;
  bytes_sent_ += p.wire_bytes(params_.header_bytes);
  const bool drop =
      (drop_prob_ > 0.0 && rng_.chance(drop_prob_)) || (drop_pred_ && drop_pred_(p));
  const sim::Duration occupy = wire_time(p);
  if (drop) {
    ++dropped_;
    const sim::SimTime done = wire_.submit(occupy);
    if (trace_sink_ != nullptr) {
      trace_sink_->duration(trace_track_, "drop", done - occupy, occupy, "net");
    }
    // The wire is still burned for the packet's duration; nothing arrives.
    return done;
  }
  const sim::Duration prop = params_.propagation;
  // Capture by shared copy: the closure outlives this stack frame.
  auto packet = std::make_shared<Packet>(std::move(p));
  const sim::SimTime done = wire_.submit(occupy);
  if (trace_sink_ != nullptr) {
    trace_sink_->duration(trace_track_, to_string(packet->type), done - occupy, occupy, "net");
  }
  sim_.schedule_at(done + prop, [this, packet]() mutable { deliver_(std::move(*packet)); });
  return done;
}

}  // namespace nicbar::net
