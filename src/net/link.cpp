#include "net/link.hpp"

#include <cassert>
#include <memory>

namespace nicbar::net {

sim::SimTime Link::transmit(Packet p) {
  assert(deliver_ && "link has no receiver attached");
  ++sent_;
  const bool drop =
      (drop_prob_ > 0.0 && rng_.chance(drop_prob_)) || (drop_pred_ && drop_pred_(p));
  const sim::Duration occupy = wire_time(p);
  if (drop) {
    ++dropped_;
    // The wire is still burned for the packet's duration; nothing arrives.
    return wire_.submit(occupy);
  }
  const sim::Duration prop = params_.propagation;
  // Capture by shared copy: the closure outlives this stack frame.
  auto packet = std::make_shared<Packet>(std::move(p));
  const sim::SimTime done = wire_.submit(occupy);
  sim_.schedule_at(done + prop, [this, packet]() mutable { deliver_(std::move(*packet)); });
  return done;
}

}  // namespace nicbar::net
