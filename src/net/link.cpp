#include "net/link.hpp"

#include <cassert>
#include <memory>

#include "sim/causal.hpp"
#include "sim/check.hpp"

namespace nicbar::net {

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down) {
    down_since_ = sim_->now();
  } else {
    down_total_ += sim_->now() - down_since_;
  }
}

sim::Duration Link::down_time_total() const {
  if (!down_) return down_total_;
  return down_total_ + (sim_->now() - down_since_);
}

sim::SimTime Link::transmit(Packet p) {
  assert(deliver_ && "link has no receiver attached");
  if (down_) {
    // Unplugged cable: the packet vanishes without even occupying the wire.
    ++dropped_;
    ++down_drops_;
    return sim_->now();
  }
  ++sent_;
  bytes_sent_ += p.wire_bytes(params_.header_bytes);
  bool drop = (drop_prob_ > 0.0 && rng_.chance(drop_prob_)) || (drop_pred_ && drop_pred_(p));
  if (burst_enter_ > 0.0) {
    if (burst_bad_ ? burst_rng_.chance(burst_exit_) : burst_rng_.chance(burst_enter_)) {
      burst_bad_ = !burst_bad_;
    }
    const double loss = burst_bad_ ? burst_loss_bad_ : burst_loss_good_;
    if (loss > 0.0 && burst_rng_.chance(loss)) drop = true;
  }
  const sim::Duration occupy = wire_time(p);
  if (drop) {
    ++dropped_;
    const sim::SimTime done = wire_.submit(occupy);
    if (trace_sink_ != nullptr) {
      trace_sink_->duration(trace_track_, "drop", done - occupy, occupy, "net",
                            sim::TraceCategory::kNet, p.id);
    }
    if (causal_ != nullptr) {
      // Terminal span: the packet's chain ends here; a retransmission starts
      // a fresh SEND span from the sender's stored record.
      causal_->record(sim::causal::Segment::kWire, p.dst_node, "wire_drop", done - occupy,
                      done, p.causal, 0, p.id);
    }
    // The wire is still burned for the packet's duration; nothing arrives.
    return done;
  }
  const sim::Duration prop = params_.propagation;
  if (corrupt_prob_ > 0.0 && corrupt_rng_.chance(corrupt_prob_)) {
    p.corrupted = true;
    ++corrupted_;
  }
  // Capture by shared copy: the closure outlives this stack frame.
  auto packet = std::make_shared<Packet>(std::move(p));
  const sim::SimTime done = wire_.submit(occupy);
  if (trace_sink_ != nullptr) {
    trace_sink_->duration(trace_track_, to_string(packet->type), done - occupy, occupy, "net",
                          sim::TraceCategory::kNet, packet->id);
  }
  if (causal_ != nullptr) {
    // One span per directed hop, covering serialisation and propagation:
    // [done - occupy, done + prop]. Queueing behind earlier packets on this
    // wire shows up as the gap between the parent's end and done - occupy.
    packet->causal =
        causal_->record(sim::causal::Segment::kWire, packet->dst_node, "wire",
                        done - occupy, done + prop, packet->causal, 0, packet->id);
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  // Deliveries are *keyed*: at the arrival instant they fire in
  // (serialisation-finish, link uid, per-link sequence) order, a total order
  // derived purely from simulation content. A partitioned run inserts
  // cross-partition deliveries at window barriers — long after a shared
  // queue would have — so insertion order cannot be the tiebreak; with the
  // key, serial and partitioned runs pop identically (see sim/pdes.hpp).
  const sim::EventKey key{static_cast<std::uint64_t>(done.ps()),
                          (static_cast<std::uint64_t>(uid_) << 32) | delivery_seq_++};
  const sim::SimTime arrive = done + prop;
  sim::EventQueue::Action deliver = [this, packet]() mutable {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    delivered_.fetch_add(1, std::memory_order_relaxed);
    deliver_(std::move(*packet));
  };
  if (remote_post_) {
    // Receiving end lives in another partition: hand off via the channel
    // matrix rather than scheduling into a foreign lane's queue.
    remote_post_(arrive, key, std::move(deliver));
  } else {
    sim_->schedule_at_keyed(arrive, key, std::move(deliver));
  }
  return done;
}

void Link::verify_conservation() const {
  const sim::SimTime now = sim_->now();
  const std::uint64_t delivered = delivered_.load(std::memory_order_relaxed);
  const std::uint64_t in_flight = in_flight_.load(std::memory_order_relaxed);
  NICBAR_CHECK(sent_ == delivered + (dropped_ - down_drops_) + in_flight, "net.link", now,
               "link '%s': sent=%llu != delivered=%llu + wire_drops=%llu + in_flight=%llu",
               name().c_str(), static_cast<unsigned long long>(sent_),
               static_cast<unsigned long long>(delivered),
               static_cast<unsigned long long>(dropped_ - down_drops_),
               static_cast<unsigned long long>(in_flight));
  NICBAR_CHECK(in_flight == 0, "net.link", now,
               "link '%s': %llu packet(s) still in flight at quiescence", name().c_str(),
               static_cast<unsigned long long>(in_flight));
}

}  // namespace nicbar::net
