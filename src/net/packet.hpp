// Wire packet model.
//
// Myrinet is source-routed: the sending NIC prepends one routing byte per
// switch hop and each switch strips its byte and forwards. We keep the route
// as an explicit vector of output-port indices plus a hop cursor. Packets are
// small value objects passed by move through the fabric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nicbar::net {

using NodeId = std::uint16_t;
using PortId = std::uint8_t;  // GM communication endpoint index on a NIC (0..7)

constexpr NodeId kInvalidNode = 0xffff;

enum class PacketType : std::uint8_t {
  kData,           // ordinary GM message payload
  kAck,            // cumulative acknowledgment for the connection stream
  kNack,           // negative ack: receiver expected a lower sequence number
  kBarrierPe,      // pairwise-exchange barrier message
  kBarrierGather,  // gather-and-broadcast barrier: gather phase
  kBarrierBcast,   // gather-and-broadcast barrier: broadcast phase
  kBarrierAck,     // ack for the separate barrier-reliability mechanism
  kBarrierNack,    // reject: barrier message arrived for a closed port
  kReduceUp,       // NIC-based reduction: partial value toward the root
  kReduceDown,     // NIC-based reduction: result broadcast down the tree
  kRmaPut,         // one-sided put into a registered remote segment
  kRmaGet,         // one-sided read request from a registered remote segment
  kRmaCas,         // one-sided compare-and-swap (applied by the NIC firmware)
  kRmaReply,       // remote completion / fetched value back to the initiator
};

[[nodiscard]] constexpr bool is_barrier_payload(PacketType t) {
  return t == PacketType::kBarrierPe || t == PacketType::kBarrierGather ||
         t == PacketType::kBarrierBcast;
}

/// NIC-resident collective payloads (barrier + reduction): handled entirely
/// by the firmware, never DMAed to a host receive buffer.
[[nodiscard]] constexpr bool is_collective_payload(PacketType t) {
  return is_barrier_payload(t) || t == PacketType::kReduceUp || t == PacketType::kReduceDown;
}

/// One-sided RMA payloads. Deliberately NOT collective payloads: they ride
/// the ordinary sequenced kData connection stream (per-(source,target)
/// in-order, exactly-once via duplicate suppression — the ordering guarantee
/// rma:: exposes), but like collectives they terminate in the NIC firmware
/// instead of a host receive buffer, so the no-receive-token NACK path must
/// exempt them.
[[nodiscard]] constexpr bool is_rma_payload(PacketType t) {
  return t == PacketType::kRmaPut || t == PacketType::kRmaGet || t == PacketType::kRmaCas ||
         t == PacketType::kRmaReply;
}

[[nodiscard]] constexpr bool is_control(PacketType t) {
  return t == PacketType::kAck || t == PacketType::kNack || t == PacketType::kBarrierAck ||
         t == PacketType::kBarrierNack;
}

[[nodiscard]] const char* to_string(PacketType t);

struct Packet {
  PacketType type = PacketType::kData;
  NodeId src_node = kInvalidNode;
  NodeId dst_node = kInvalidNode;
  PortId src_port = 0;
  PortId dst_port = 0;

  /// Connection-stream sequence number (kData, and barrier packets when the
  /// shared-stream reliability mode is on). 0 = unsequenced.
  std::uint32_t seq = 0;
  /// Cumulative ack value carried by kAck/kNack.
  std::uint32_t ack = 0;
  /// Separate barrier-mechanism sequence number (kBarrierAck et al.).
  std::uint32_t barrier_seq = 0;
  /// Identifies the barrier instance (epoch) a barrier packet belongs to.
  std::uint32_t barrier_epoch = 0;
  /// kBarrierNack: the type of the rejected barrier packet, so the sender
  /// knows what to resend.
  PacketType nacked_type = PacketType::kData;

  /// Barrier-group id the packet belongs to (collective payloads only).
  /// 0 = the legacy anonymous group: packets bypass slot admission entirely,
  /// which keeps pre-lifecycle timelines bit-identical. Non-zero ids are
  /// fabric-unique; a receiver without a live slot binding for (group,
  /// dst_port) fences the packet (counts it, never delivers it) — the stale
  /// traffic guard for destroyed groups.
  std::uint64_t group = 0;

  std::int64_t payload_bytes = 0;
  /// Opaque tag delivered with the message (tests use this for matching).
  std::uint64_t tag = 0;
  /// kReduceUp/kReduceDown: the (partial) reduction value.
  std::int64_t value = 0;
  /// Segmentation (kData): fragment index and count of the carried message.
  /// GM fragments messages larger than the MTU; the in-order connection
  /// stream guarantees fragments arrive consecutively per sender.
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
  std::int64_t message_bytes = 0;  // total size of the original message

  // One-sided RMA (kRmaPut/kRmaGet/kRmaCas/kRmaReply). The segment/index
  // pair addresses one 64-bit word of a registered segment; `value` above
  // doubles as the put payload, CAS desired value, and reply result.
  std::uint64_t rma_segment = 0;  // registration id at the target port
  std::uint64_t rma_index = 0;    // word offset within the segment
  std::uint64_t rma_op = 0;       // initiator-chosen op id echoed by kRmaReply
  std::int64_t rma_expected = 0;  // kRmaCas: the compare value
  /// kRmaReply: false when the target could not apply the op (segment never
  /// registered within the park budget, or index out of range).
  bool rma_ok = true;

  // Source route: output port to take at each switch, plus the hop cursor.
  std::vector<std::uint8_t> route;
  std::size_t hop = 0;

  sim::SimTime injected_at{0};  // set by the fabric when the packet enters
  std::uint64_t id = 0;         // unique per fabric, for tracing

  /// Causal provenance: the sim::causal span id of the latest span on this
  /// packet's dependency chain (the SEND-engine span at injection, then each
  /// wire/switch hop updates it in flight). 0 when causal tracing is off.
  std::uint64_t causal = 0;

  /// Fault injection flipped bits in flight. The fabric still delivers the
  /// packet (the wire does not know); the receiving NIC's CRC check catches
  /// it and discards after paying the full receive occupancy.
  bool corrupted = false;

  /// Bytes occupying the wire: header + one route byte per remaining hop +
  /// payload. `header_bytes` models the GM packet header + CRC.
  [[nodiscard]] std::int64_t wire_bytes(std::int64_t header_bytes) const {
    return header_bytes + static_cast<std::int64_t>(route.size()) + payload_bytes;
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace nicbar::net
