// Canned fabric topologies.
//
//   single_switch — the paper's testbeds: N hosts on one 8- or 16-port
//                   Myrinet switch.
//   switch_chain  — a line of switches, `per_switch` hosts each (worst-case
//                   diameter; used to stress multi-hop routing).
//   switch_tree   — a k-ary tree of switches with hosts at the leaves (the
//                   scalability extension up to 1024 nodes).
//
// Each builder adds terminals 0..n-1 in order and finalizes the network.
#pragma once

#include <cstddef>

#include "net/network.hpp"

namespace nicbar::net {

/// All `nodes` terminals on one switch with at least `nodes` ports.
void build_single_switch(Network& net, std::size_t nodes);

/// Switches in a line, `per_switch` terminals on each, enough switches for
/// `nodes` terminals. Adjacent switches are cabled directly.
void build_switch_chain(Network& net, std::size_t nodes, std::size_t per_switch);

/// A tree of `radix`-port switches: leaves hold hosts on radix-1 ports and
/// use one uplink; inner switches fan out to radix-1 children.
void build_switch_tree(Network& net, std::size_t nodes, std::size_t radix);

}  // namespace nicbar::net
