// Hierarchical fabrics: folded-Clos/fat-tree and leaf-spine builders that
// scale the simulated cluster to thousands of nodes.
//
// Unlike the canned `net::` topologies (which BFS all-pairs routes at
// finalize), these builders install a closed-form route provider on the
// Network: up/down routing with deterministic per-destination uplink
// spreading, computed from (src, dst) alone and cached lazily. A 4096-node
// fabric therefore never materialises the O(N²) route table.
//
// Shapes (radix-k switches, oversubscription ratio q : 1 at the leaf):
//   u = max(1, k / (1 + q)) uplinks per leaf, h = k - u host ports.
//
//   leaf-spine  — strictly two levels: u spine switches, leaf i's uplink j
//                 cabled to spine j port i. Capacity k·h.
//   fat-tree    — two levels while N fits k·h, else the three-level k-ary
//                 folded Clos: pods of h leaves + u aggregation switches,
//                 u·u core switches (agg j of every pod reaches cores
//                 [j·u, (j+1)·u)). Capacity k·h².
//
// Builders add terminals 0..n-1 in order and finalize the network, like
// every `net::` builder. Partial fabrics (N below capacity) still build
// the full spine/agg/core column set so uplink spreading — and therefore
// the routes of the nodes that do exist — never depends on N.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace nicbar::fabric {

enum class Kind {
  kFatTree,
  kLeafSpine,
};

/// The resolved shape of a built fabric. Everything the hierarchical
/// barrier family needs — which leaf a node hangs off, how many nodes
/// share it — is derivable from these scalars.
struct Fabric {
  Kind kind = Kind::kFatTree;
  std::size_t nodes = 0;
  std::size_t radix = 0;
  std::size_t oversub = 1;  // q in q:1 (1 = non-blocking at the leaf)
  int levels = 2;
  std::size_t hosts_per_leaf = 0;    // h
  std::size_t uplinks_per_leaf = 0;  // u
  std::size_t num_leaves = 0;
  std::size_t leaves_per_pod = 0;  // 3-level only (= h); 0 for 2-level
  std::size_t num_pods = 0;        // 3-level only; 0 for 2-level
  std::size_t capacity = 0;        // max nodes this (radix, oversub, levels) supports

  /// The leaf switch index a terminal hangs off. Nodes are packed onto
  /// leaves in order, h per leaf.
  [[nodiscard]] std::size_t leaf_of(net::NodeId n) const { return n / hosts_per_leaf; }

  /// Number of terminals on leaf `leaf` (the last leaf may be partial).
  [[nodiscard]] std::size_t leaf_population(std::size_t leaf) const;

  /// First terminal on leaf `leaf`.
  [[nodiscard]] net::NodeId leaf_first(std::size_t leaf) const {
    return static_cast<net::NodeId>(leaf * hosts_per_leaf);
  }

  /// The closed-form up/down route from src to dst (terminal exit port
  /// included; empty for src == dst). Deterministic: uplink = dst mod u,
  /// core column = (dst / u) mod u — all traffic to one destination uses
  /// one up-path from any source, so routes are reproducible regardless
  /// of build order, worker count, or which pairs were routed first.
  [[nodiscard]] std::vector<std::uint8_t> route(net::NodeId src, net::NodeId dst) const;
};

/// Builds a fat-tree (folded Clos) of `radix`-port switches: two levels
/// while `nodes` fits radix·h, else three. Installs the closed-form route
/// provider and finalizes `net`. Throws std::invalid_argument on
/// radix < 3, oversub < 1, nodes == 0, or nodes beyond the three-level
/// capacity (the diagnostic names the limit).
Fabric build_fat_tree(net::Network& net, std::size_t nodes, std::size_t radix,
                      std::size_t oversub = 1);

/// Builds the strictly two-level leaf-spine variant (u spines, capacity
/// radix·h). Same validation contract as build_fat_tree.
Fabric build_leaf_spine(net::Network& net, std::size_t nodes, std::size_t radix,
                        std::size_t oversub = 1);

}  // namespace nicbar::fabric
