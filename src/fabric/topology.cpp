#include "fabric/topology.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace nicbar::fabric {

namespace {

const char* kind_name(Kind k) { return k == Kind::kFatTree ? "fat-tree" : "leaf-spine"; }

/// Shared parameter validation + (u, h) split. Throws with the topology
/// name so `nicbar_run` can surface the message verbatim.
Fabric resolve_shape(Kind kind, std::size_t nodes, std::size_t radix, std::size_t oversub) {
  const std::string name = kind_name(kind);
  if (radix < 3) {
    throw std::invalid_argument(name + " radix must be >= 3 (got " + std::to_string(radix) +
                                "): a leaf needs at least one host port and one uplink");
  }
  if (oversub < 1) {
    throw std::invalid_argument(name + " oversubscription ratio must be >= 1 (got 0)");
  }
  if (nodes == 0) {
    throw std::invalid_argument(name + " needs at least one node (got 0)");
  }
  Fabric f;
  f.kind = kind;
  f.nodes = nodes;
  f.radix = radix;
  f.oversub = oversub;
  f.uplinks_per_leaf = std::max<std::size_t>(1, radix / (1 + oversub));
  f.hosts_per_leaf = radix - f.uplinks_per_leaf;
  f.num_leaves = (nodes + f.hosts_per_leaf - 1) / f.hosts_per_leaf;
  return f;
}

void check_capacity(const Fabric& f) {
  if (f.nodes <= f.capacity) return;
  throw std::invalid_argument(
      std::string(kind_name(f.kind)) + "(radix=" + std::to_string(f.radix) +
      ", oversub=" + std::to_string(f.oversub) + ") caps at " + std::to_string(f.capacity) +
      " nodes across " + std::to_string(f.levels) + " levels (" +
      std::to_string(f.hosts_per_leaf) + " hosts/leaf); got " + std::to_string(f.nodes));
}

void attach_terminals(net::Network& net, const Fabric& f, const std::vector<int>& leaves) {
  for (std::size_t n = 0; n < f.nodes; ++n) {
    const net::NodeId t = net.add_terminal();
    net.connect_terminal(t, leaves[n / f.hosts_per_leaf], n % f.hosts_per_leaf);
  }
}

void install_provider(net::Network& net, const Fabric& f) {
  net.set_route_provider(
      [f](net::NodeId src, net::NodeId dst) { return f.route(src, dst); });
  net.finalize();
}

}  // namespace

std::size_t Fabric::leaf_population(std::size_t leaf) const {
  const std::size_t first = leaf * hosts_per_leaf;
  if (first >= nodes) return 0;
  return std::min(hosts_per_leaf, nodes - first);
}

std::vector<std::uint8_t> Fabric::route(net::NodeId src, net::NodeId dst) const {
  if (src == dst) return {};
  const std::size_t h = hosts_per_leaf;
  const std::size_t u = uplinks_per_leaf;
  const auto host_port = static_cast<std::uint8_t>(dst % h);
  const std::size_t src_leaf = src / h;
  const std::size_t dst_leaf = dst / h;
  if (src_leaf == dst_leaf) return {host_port};

  // Per-destination spreading: every source picks the same uplink column
  // (and, three levels up, the same core column) for a given destination.
  const auto up = static_cast<std::uint8_t>(h + dst % u);
  if (levels == 2) {
    // leaf --up--> spine (dst % u) --port dst_leaf--> leaf --> host.
    return {up, static_cast<std::uint8_t>(dst_leaf), host_port};
  }
  const std::size_t src_pod = src_leaf / leaves_per_pod;
  const std::size_t dst_pod = dst_leaf / leaves_per_pod;
  const auto dst_leaf_in_pod = static_cast<std::uint8_t>(dst_leaf % leaves_per_pod);
  if (src_pod == dst_pod) {
    // leaf --up--> agg (pod, dst % u) --down--> leaf --> host.
    return {up, dst_leaf_in_pod, host_port};
  }
  // leaf --up--> agg --core column (dst / u) % u--> core --port dst_pod-->
  // agg (dst_pod, dst % u) --down--> leaf --> host.
  const auto core_col = static_cast<std::uint8_t>(h + (dst / u) % u);
  return {up, core_col, static_cast<std::uint8_t>(dst_pod), dst_leaf_in_pod, host_port};
}

Fabric build_leaf_spine(net::Network& net, std::size_t nodes, std::size_t radix,
                        std::size_t oversub) {
  Fabric f = resolve_shape(Kind::kLeafSpine, nodes, radix, oversub);
  f.levels = 2;
  f.capacity = f.radix * f.hosts_per_leaf;  // spine has `radix` leaf-facing ports
  check_capacity(f);

  std::vector<int> leaves;
  leaves.reserve(f.num_leaves);
  for (std::size_t i = 0; i < f.num_leaves; ++i) leaves.push_back(net.add_switch(f.radix));
  // The full spine column is always built, even for partial fabrics, so
  // `dst % u` spreading addresses the same switches at any N.
  std::vector<int> spines;
  spines.reserve(f.uplinks_per_leaf);
  for (std::size_t j = 0; j < f.uplinks_per_leaf; ++j) spines.push_back(net.add_switch(f.radix));
  for (std::size_t i = 0; i < f.num_leaves; ++i) {
    for (std::size_t j = 0; j < f.uplinks_per_leaf; ++j) {
      net.connect_switches(leaves[i], f.hosts_per_leaf + j, spines[j], i);
    }
  }
  attach_terminals(net, f, leaves);
  install_provider(net, f);
  return f;
}

Fabric build_fat_tree(net::Network& net, std::size_t nodes, std::size_t radix,
                      std::size_t oversub) {
  Fabric f = resolve_shape(Kind::kFatTree, nodes, radix, oversub);
  const std::size_t h = f.hosts_per_leaf;
  const std::size_t u = f.uplinks_per_leaf;

  if (nodes <= radix * h) {
    // Two levels suffice: structurally the leaf-spine wiring, kept under
    // the fat-tree name so the same CLI/topology key scales through the
    // 2→3 level transition without re-selection.
    f.levels = 2;
    f.capacity = radix * h * h;  // named limit is the 3-level ceiling
    std::vector<int> leaves;
    leaves.reserve(f.num_leaves);
    for (std::size_t i = 0; i < f.num_leaves; ++i) leaves.push_back(net.add_switch(radix));
    std::vector<int> spines;
    spines.reserve(u);
    for (std::size_t j = 0; j < u; ++j) spines.push_back(net.add_switch(radix));
    for (std::size_t i = 0; i < f.num_leaves; ++i) {
      for (std::size_t j = 0; j < u; ++j) {
        net.connect_switches(leaves[i], h + j, spines[j], i);
      }
    }
    attach_terminals(net, f, leaves);
    install_provider(net, f);
    return f;
  }

  // Three-level k-ary folded Clos: pods of h leaves and u aggregation
  // switches; agg j of every pod is cabled to core column
  // [j·u, (j+1)·u). Core port index = pod index, so pods ≤ radix.
  f.levels = 3;
  f.leaves_per_pod = h;
  f.capacity = radix * h * h;
  check_capacity(f);
  f.num_pods = (f.num_leaves + h - 1) / h;

  std::vector<int> leaves;
  leaves.reserve(f.num_leaves);
  for (std::size_t i = 0; i < f.num_leaves; ++i) leaves.push_back(net.add_switch(radix));
  std::vector<int> aggs;  // pod-major: agg[p * u + j]
  aggs.reserve(f.num_pods * u);
  for (std::size_t p = 0; p < f.num_pods; ++p) {
    for (std::size_t j = 0; j < u; ++j) aggs.push_back(net.add_switch(radix));
  }
  std::vector<int> cores;  // core[j * u + m]
  cores.reserve(u * u);
  for (std::size_t c = 0; c < u * u; ++c) cores.push_back(net.add_switch(radix));

  for (std::size_t L = 0; L < f.num_leaves; ++L) {
    const std::size_t p = L / h;
    const std::size_t l = L % h;  // agg down-port
    for (std::size_t j = 0; j < u; ++j) {
      net.connect_switches(leaves[L], h + j, aggs[p * u + j], l);
    }
  }
  for (std::size_t p = 0; p < f.num_pods; ++p) {
    for (std::size_t j = 0; j < u; ++j) {
      for (std::size_t m = 0; m < u; ++m) {
        net.connect_switches(aggs[p * u + j], h + m, cores[j * u + m], p);
      }
    }
  }
  attach_terminals(net, f, leaves);
  install_provider(net, f);
  return f;
}

}  // namespace nicbar::fabric
