#include "sim/check.hpp"

#include <cstdarg>
#include <cstdio>

namespace nicbar::sim::check {

namespace {

std::string one_line(const std::string& subsystem, SimTime when, const std::string& condition,
                     const std::string& detail) {
  std::string msg = "invariant violation [" + subsystem + "] at t=" + when.str() + ": " +
                    condition;
  if (!detail.empty()) msg += " — " + detail;
  return msg;
}

thread_local bool g_enabled = true;

}  // namespace

InvariantViolation::InvariantViolation(std::string subsystem, SimTime when,
                                       std::string condition, std::string detail)
    : std::logic_error(one_line(subsystem, when, condition, detail)),
      subsystem_(std::move(subsystem)),
      condition_(std::move(condition)),
      detail_(std::move(detail)),
      when_(when) {}

bool enabled() { return g_enabled; }

void set_enabled(bool on) { g_enabled = on; }

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

void fail(const char* subsystem, SimTime when, const char* condition, std::string detail) {
  throw InvariantViolation(subsystem, when, condition, std::move(detail));
}

void BarrierSafetyMonitor::arrive(std::size_t m, SimTime when) {
  (void)when;
  arrivals_.at(m).fetch_add(1, std::memory_order_relaxed);
}

void BarrierSafetyMonitor::complete(std::size_t m, SimTime when) {
  // the barrier being completed
  const std::uint64_t k = completions_.at(m).load(std::memory_order_relaxed) + 1;
  for (std::size_t j = 0; j < arrivals_.size(); ++j) {
    const std::uint64_t a = arrivals_[j].load(std::memory_order_relaxed);
    NICBAR_CHECK(a >= k, "coll.barrier-safety", when,
                 "member %zu observed completion of barrier %llu before member %zu arrived "
                 "(arrivals=%llu)",
                 m, static_cast<unsigned long long>(k), j,
                 static_cast<unsigned long long>(a));
  }
  completions_[m].store(k, std::memory_order_relaxed);
  std::uint64_t cur = barriers_checked_.load(std::memory_order_relaxed);
  while (k > cur &&
         !barriers_checked_.compare_exchange_weak(cur, k, std::memory_order_relaxed)) {
  }
}

}  // namespace nicbar::sim::check
