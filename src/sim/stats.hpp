// Statistics accumulators used by benchmarks and tests.
//
//   Accumulator — streaming count/mean/variance/min/max (Welford).
//   Histogram   — fixed-width bins over a caller-chosen range, with
//                 percentile estimation.
//   DurationStats — Accumulator specialised for sim::Duration, reporting
//                 in microseconds (the unit the paper uses throughout).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nicbar::sim {

class Accumulator {
 public:
  void add(double x) {
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Accumulates sim::Duration samples; reports in microseconds.
class DurationStats {
 public:
  void add(Duration d) { acc_.add(d.us()); }
  [[nodiscard]] std::uint64_t count() const { return acc_.count(); }
  [[nodiscard]] double mean_us() const { return acc_.mean(); }
  [[nodiscard]] double min_us() const { return acc_.min(); }
  [[nodiscard]] double max_us() const { return acc_.max(); }
  [[nodiscard]] double stddev_us() const { return acc_.stddev(); }
  void reset() { acc_.reset(); }

 private:
  Accumulator acc_;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the edge bins so percentile estimates stay defined.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }

  /// Percentile estimate for p in [0, 100], linearly interpolated within the
  /// containing bin. p=0 / p=100 return the lower / upper edge of the first /
  /// last non-empty bin.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return counts_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  /// [lower, upper) edges of bin `i`.
  [[nodiscard]] double bin_lower(std::size_t i) const {
    return lo_ + static_cast<double>(i) * bin_width();
  }
  [[nodiscard]] double bin_upper(std::size_t i) const { return bin_lower(i + 1); }

  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace nicbar::sim
