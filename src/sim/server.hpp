// Non-preemptive FIFO servers for callback-style (non-coroutine) hardware
// models.
//
//   BusyServer  — a device that services one job at a time, each occupying
//                 it for a caller-specified duration (a link, a DMA engine,
//                 a PCI bus). Jobs complete in submission order.
//   CycleServer — a BusyServer whose job costs are expressed in processor
//                 cycles at a configurable clock. This models the single
//                 LANai processor shared by the four MCP engines: all
//                 firmware handler costs are charged here, so halving the
//                 clock doubles exactly the NIC-resident component of every
//                 latency — the paper's LANai 4.3 vs 7.2 comparison.
//
// Both track utilisation statistics (busy time, jobs, total queueing delay).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/check.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nicbar::sim {

class BusyServer {
 public:
  explicit BusyServer(Simulator& sim, std::string name = {})
      : sim_(&sim), name_(std::move(name)) {}

  /// Enqueues a job occupying the server for `service` time; `on_done` (may
  /// be null) runs when the job completes. Returns the completion time.
  SimTime submit(Duration service, std::function<void()> on_done = nullptr) {
    const SimTime now = sim_->now();
    NICBAR_CHECK(!service.is_negative(), "sim.server", now,
                 "server '%s': negative service time %lld ps", name_.c_str(),
                 static_cast<long long>(service.ps()));
    const SimTime start = free_at_ > now ? free_at_ : now;
    // Mutual exclusion: the device serves one job at a time, in FIFO order.
    // A start before the previous job's completion (or before now) would
    // mean two jobs overlap on the bus/processor.
    NICBAR_CHECK(start >= free_at_ && start >= now, "sim.server", now,
                 "server '%s': job would overlap previous occupancy "
                 "(start=%lld ps, free_at=%lld ps)",
                 name_.c_str(), static_cast<long long>(start.ps()),
                 static_cast<long long>(free_at_.ps()));
    if (start > now) ++stalls_;  // job had to queue behind an earlier one
    queue_delay_total_ += start - now;
    busy_total_ += service;
    free_at_ = start + service;
    ++jobs_;
    if (on_done) sim_->schedule_at(free_at_, std::move(on_done));
    return free_at_;
  }

  /// Re-points the server at another Simulator (PDES partitioning: fabric
  /// elements are constructed on the build lane, then bound to their
  /// partition's lane). Only legal while no simulation is running.
  void rebind_sim(Simulator& sim) { sim_ = &sim; }

  /// Completion time of the last submitted job (server idle before any job).
  [[nodiscard]] SimTime free_at() const { return free_at_; }
  [[nodiscard]] bool busy() const { return free_at_ > sim_->now(); }

  [[nodiscard]] std::uint64_t jobs() const { return jobs_; }
  /// Jobs that found the server busy and had to queue (contention stalls).
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] Duration busy_total() const { return busy_total_; }
  [[nodiscard]] Duration queue_delay_total() const { return queue_delay_total_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Utilisation over [0, now].
  [[nodiscard]] double utilisation() const {
    const double t = static_cast<double>(sim_->now().ps());
    if (t <= 0) return 0.0;
    const double b = static_cast<double>(busy_total_.ps());
    return b > t ? 1.0 : b / t;
  }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime free_at_{0};
  std::uint64_t jobs_ = 0;
  std::uint64_t stalls_ = 0;
  Duration busy_total_{0};
  Duration queue_delay_total_{0};
};

class CycleServer {
 public:
  CycleServer(Simulator& sim, double clock_mhz, std::string name = {})
      : server_(sim, std::move(name)), clock_mhz_(clock_mhz) {}

  /// Enqueues a firmware job costing `cycles` processor cycles.
  SimTime submit_cycles(std::int64_t cycles, std::function<void()> on_done = nullptr) {
    return server_.submit(cycles_at_mhz(cycles, clock_mhz_), std::move(on_done));
  }

  [[nodiscard]] Duration cycles(std::int64_t n) const { return cycles_at_mhz(n, clock_mhz_); }
  [[nodiscard]] double clock_mhz() const { return clock_mhz_; }
  [[nodiscard]] const BusyServer& stats() const { return server_; }
  [[nodiscard]] SimTime free_at() const { return server_.free_at(); }

 private:
  BusyServer server_;
  double clock_mhz_;
};

}  // namespace nicbar::sim
