// Simulation telemetry: metrics registry, per-barrier cost breakdown, and
// Chrome trace-event export.
//
// Three cooperating pieces, all optional and all zero-cost when detached
// (hardware models hold raw pointers that are null by default; every hook is
// one branch, the same discipline as Tracer):
//
//   MetricsRegistry    — named counters, gauges, and Histogram-backed timers.
//                        Hardware models register their counters at snapshot
//                        time; benches and tools serialise it as JSON.
//   TraceEventSink     — buffers duration ("X") and instant ("i") events in
//                        Chrome trace-event format, one track per host /
//                        NIC engine / link, loadable in Perfetto or
//                        chrome://tracing.
//   BreakdownCollector — attributes each completed barrier's latency to the
//                        paper's Eq. 1-2 components (host software, NIC
//                        processing, DMA, wire) plus a wait/overlap residual,
//                        so the terms always sum to the measured total.
//
// Telemetry bundles the three; a Cluster attaches one to every hardware
// model it builds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace nicbar::sim::causal {
class CausalTracer;
}

namespace nicbar::sim::telemetry {

// --- MetricsRegistry ----------------------------------------------------------

/// Named counters (monotonic uint64), gauges (double), and histogram-backed
/// timers. Names are hierarchical dotted paths ("nic0.engine.sdma.jobs").
/// Storage is a std::map so JSON output is deterministically ordered and
/// references returned by the accessors stay stable.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it at zero on first use.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }

  /// Returns the gauge named `name`, creating it at zero on first use.
  double& gauge(const std::string& name) { return gauges_[name]; }

  /// Returns the histogram named `name`, creating it with the given range on
  /// first use (later calls ignore the range arguments).
  Histogram& histogram(const std::string& name, double lo = 0.0, double hi = 1000.0,
                       std::size_t bins = 100);

  /// Lookup without creation; nullptr if absent.
  [[nodiscard]] const std::uint64_t* find_counter(const std::string& name) const;
  [[nodiscard]] const double* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  void clear();

  /// Serialises every metric as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  ///    "p50":..,"p90":..,"p99":..},...}}
  void write_json(std::ostream& os) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const { return gauges_; }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// --- TraceEventSink -----------------------------------------------------------

/// Buffers Chrome trace-event JSON (the Perfetto/chrome://tracing format).
/// Tracks map to trace "threads": register one per host, NIC engine, or link
/// with track(), then emit duration/instant events against the track id.
///
/// Every event optionally carries a stable causal id (a fabric-unique packet
/// id or causal span id) and a TraceCategory; the sink-level mask filters by
/// category at emission time so `--trace-mask` applies end-to-end. Paired
/// flow events ("s"/"f") with equal ids render as arrows in Perfetto.
class TraceEventSink {
 public:
  /// Registers (or finds) a named track; returns its stable id.
  int track(const std::string& name);

  /// Restricts subsequent emissions to categories in `mask` (default: all).
  void set_mask(std::uint32_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint32_t mask() const { return mask_; }

  /// A completed span ("X" event) of `dur` starting at `start`. A non-zero
  /// `id` is emitted as args.id (the packet/span provenance of the event).
  void duration(int track_id, const char* name, SimTime start, Duration dur,
                const char* category = "sim", TraceCategory cat = TraceCategory::kAll,
                std::uint64_t id = 0);

  /// A point-in-time marker ("i" event).
  void instant(int track_id, const char* name, SimTime at, const char* category = "sim",
               TraceCategory cat = TraceCategory::kAll);

  /// Flow-event pair: a "s" (start) on the producing track and a "f" with
  /// bp:"e" (end, bound to the enclosing slice) on the consuming track,
  /// matched by `id`. Use the fabric-unique packet id so the arrow follows
  /// one packet from SEND engine to RECV engine.
  void flow_start(int track_id, const char* name, SimTime at, std::uint64_t id,
                  const char* category = "sim", TraceCategory cat = TraceCategory::kAll);
  void flow_end(int track_id, const char* name, SimTime at, std::uint64_t id,
                const char* category = "sim", TraceCategory cat = TraceCategory::kAll);

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] std::size_t track_count() const { return track_names_.size(); }
  [[nodiscard]] const std::vector<std::string>& track_names() const { return track_names_; }

  /// Number of events recorded against one track.
  [[nodiscard]] std::size_t events_on(int track_id) const;

  /// Writes {"traceEvents":[...]} — thread_name metadata first, then every
  /// buffered event. Timestamps are microseconds of simulated time.
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    char phase;  // 'X', 'i', 's', or 'f'
    int track;
    const char* name;      // static strings only (call sites use literals)
    const char* category;  // static strings only
    std::int64_t ts_ps;
    std::int64_t dur_ps;
    std::uint64_t id;  // causal packet/span id; 0 = none
  };
  [[nodiscard]] bool pass(TraceCategory cat) const {
    return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
  }
  std::vector<Event> events_;
  std::map<std::string, int> tracks_;
  std::vector<std::string> track_names_;
  std::uint32_t mask_ = static_cast<std::uint32_t>(TraceCategory::kAll);
};

// --- Per-barrier cost breakdown ------------------------------------------------

/// One barrier's latency decomposed into the paper's Eq. 1-2 terms. The five
/// components sum to total_us exactly: wait_us is defined as the residual
/// (time the critical path spent blocked on peers, or negative overlap when
/// wire/NIC activity ran concurrently).
struct CostBreakdown {
  double host_us = 0.0;  // Send + HRecv: host library CPU time
  double nic_us = 0.0;   // LANai firmware cycles (all four MCP engines)
  double dma_us = 0.0;   // PCI bus transfers (completion RDMA et al.)
  double wire_us = 0.0;  // links + switch routing for packets we waited on
  double wait_us = 0.0;  // residual: peer skew minus pipelining overlap
  double total_us = 0.0;

  [[nodiscard]] double sum_us() const {
    return host_us + nic_us + dma_us + wire_us + wait_us;
  }
};

/// Accumulates per-barrier cost attributions keyed by (node, port, epoch).
/// The gm layer reports the host-side begin/end; the NIC firmware reports
/// cycle, DMA, and wire charges as they happen; on completion the record is
/// folded into component accumulators.
class BreakdownCollector {
 public:
  /// Host posted the barrier token (the measurement origin); `host_cost` is
  /// the library call's CPU charge.
  void barrier_posted(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                      SimTime at, Duration host_cost);

  void add_host(std::uint32_t node, std::uint16_t port, std::uint32_t epoch, Duration d);
  void add_nic(std::uint32_t node, std::uint16_t port, std::uint32_t epoch, Duration d);
  void add_dma(std::uint32_t node, std::uint16_t port, std::uint32_t epoch, Duration d);
  void add_wire(std::uint32_t node, std::uint16_t port, std::uint32_t epoch, Duration d);

  /// Host consumed the completion event; `host_cost` is the receive-side CPU
  /// charge. Finalises and folds the record.
  void barrier_completed(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                         SimTime at, Duration host_cost);

  [[nodiscard]] std::uint64_t barriers() const { return static_cast<std::uint64_t>(count_); }

  /// Mean per-barrier breakdown over every completed barrier; components sum
  /// to total_us exactly.
  [[nodiscard]] CostBreakdown mean() const;

  /// The most recently completed barrier's breakdown.
  [[nodiscard]] const CostBreakdown& last() const { return last_; }

  /// Copies the component means into `m` under "breakdown.*" gauges.
  void snapshot(MetricsRegistry& m) const;

 private:
  struct Pending {
    SimTime t0{0};
    bool posted = false;
    Duration host{0}, nic{0}, dma{0}, wire{0};
  };
  static std::uint64_t key(std::uint32_t node, std::uint16_t port, std::uint32_t epoch) {
    return (static_cast<std::uint64_t>(node) << 48) |
           (static_cast<std::uint64_t>(port) << 32) | epoch;
  }

  std::map<std::uint64_t, Pending> pending_;
  Accumulator host_, nic_, dma_, wire_, wait_, total_;
  std::int64_t count_ = 0;
  CostBreakdown last_;
};

// --- Bundle ---------------------------------------------------------------------

/// What a Cluster hands to its hardware models. The metrics registry is
/// always present (filling it is a snapshot-time operation, not a hot-path
/// one); the trace sink and breakdown collector are created on demand so
/// models can cache the raw pointers and keep the disabled path to one
/// branch.
class Telemetry {
 public:
  Telemetry();
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  TraceEventSink& enable_trace();
  BreakdownCollector& enable_breakdown();
  causal::CausalTracer& enable_causal();

  [[nodiscard]] TraceEventSink* trace() const { return trace_.get(); }
  [[nodiscard]] BreakdownCollector* breakdown() const { return breakdown_.get(); }
  [[nodiscard]] causal::CausalTracer* causal() const { return causal_.get(); }

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<TraceEventSink> trace_;
  std::unique_ptr<BreakdownCollector> breakdown_;
  std::unique_ptr<causal::CausalTracer> causal_;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslashes,
/// and control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace nicbar::sim::telemetry
