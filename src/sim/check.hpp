// Runtime invariant checking for the simulation engine and the models built
// on it.
//
// NICBAR_CHECK(cond, subsystem, when, fmt, ...) is an always-on (but
// compile-time removable) assertion: when `cond` is false it throws
// InvariantViolation carrying the subsystem name, the simulated time of the
// violation, the failed condition text, and a printf-formatted detail string
// — enough trace context to pinpoint the offending event without a debugger.
// Unlike assert(), violations fire in Release builds too, where all the
// figure benches and soak runs happen.
//
// Toggles:
//   - compile time: configure with -DNICBAR_DISABLE_INVARIANTS=ON (defines
//     the macro away entirely; zero residual cost).
//   - run time: check::set_enabled(false) suppresses checks on the calling
//     thread (thread-local, because parallel sweeps run one Simulator per
//     worker thread and must not observe each other's toggles).
//
// The BarrierSafetyMonitor at the bottom is the barrier-semantics leg: it
// asserts that no member's k-th barrier completion is observed before every
// member has entered its k-th barrier — the defining safety property of a
// barrier, checked over the host-visible arrive/complete events.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nicbar::sim::check {

/// Thrown by NICBAR_CHECK on a failed invariant. What/where/when are all
/// carried as structured fields; what() combines them into one line.
class InvariantViolation : public std::logic_error {
 public:
  InvariantViolation(std::string subsystem, SimTime when, std::string condition,
                     std::string detail);

  /// Which layer tripped ("sim.queue", "sim.server", "net.link", ...).
  [[nodiscard]] const std::string& subsystem() const { return subsystem_; }
  /// Simulated time at which the violation was detected.
  [[nodiscard]] SimTime when() const { return when_; }
  /// The failed condition, as source text.
  [[nodiscard]] const std::string& condition() const { return condition_; }
  /// Formatted trace context supplied at the check site.
  [[nodiscard]] const std::string& detail() const { return detail_; }

 private:
  std::string subsystem_;
  std::string condition_;
  std::string detail_;
  SimTime when_;
};

/// Whether checks are active on this thread (default: true).
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// RAII suppression, for tests that deliberately build broken states.
class Disabled {
 public:
  Disabled() : prev_(enabled()) { set_enabled(false); }
  ~Disabled() { set_enabled(prev_); }
  Disabled(const Disabled&) = delete;
  Disabled& operator=(const Disabled&) = delete;

 private:
  bool prev_;
};

/// printf-style formatting into a std::string (used by NICBAR_CHECK; only
/// evaluated when the condition has already failed).
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Throws InvariantViolation; out-of-line so check sites stay small.
[[noreturn]] void fail(const char* subsystem, SimTime when, const char* condition,
                       std::string detail);

}  // namespace nicbar::sim::check

#if defined(NICBAR_DISABLE_INVARIANTS)
#define NICBAR_CHECK(cond, subsystem, when, ...) \
  do {                                           \
  } while (0)
#else
/// Asserts `cond`; on failure throws check::InvariantViolation carrying
/// `subsystem`, the simulated time `when`, the condition text, and the
/// printf-formatted trace context from the remaining arguments.
#define NICBAR_CHECK(cond, subsystem, when, ...)                           \
  do {                                                                     \
    if (::nicbar::sim::check::enabled() && !(cond)) {                      \
      ::nicbar::sim::check::fail(subsystem, when, #cond,                   \
                                 ::nicbar::sim::check::format(__VA_ARGS__)); \
    }                                                                      \
  } while (0)
#endif

namespace nicbar::sim::check {

/// Host-visible barrier-safety oracle: one instance watches one group of
/// `members` processes running consecutive barriers. Each process reports
/// arrive() when it enters its next barrier and complete() when the matching
/// completion reaches it. The monitor asserts the safety property — a
/// member's k-th completion may only be observed once every member has
/// arrived at barrier k — and, by counting, that completions per member are
/// monotone (no duplicated or skipped epochs at host level).
///
/// Feeding complete() without the corresponding arrive()s is the test hook
/// for verifying violation reporting end to end.
class BarrierSafetyMonitor {
 public:
  explicit BarrierSafetyMonitor(std::size_t members)
      : arrivals_(members), completions_(members) {}

  /// Member `m` entered its next barrier at simulated time `when`.
  void arrive(std::size_t m, SimTime when);

  /// Member `m` observed its next barrier completion at `when`. Throws
  /// InvariantViolation if any member has not yet arrived at that barrier.
  void complete(std::size_t m, SimTime when);

  [[nodiscard]] std::size_t members() const { return arrivals_.size(); }
  [[nodiscard]] std::uint64_t arrivals(std::size_t m) const {
    return arrivals_.at(m).load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completions(std::size_t m) const {
    return completions_.at(m).load(std::memory_order_relaxed);
  }
  /// Barriers whose completion has been observed by at least one member.
  [[nodiscard]] std::uint64_t barriers_checked() const {
    return barriers_checked_.load(std::memory_order_relaxed);
  }

 private:
  // Atomic so one monitor can watch members spread across PDES lanes.
  // Relaxed suffices: a completion is causally downstream of every arrival
  // it checks (the barrier packets carried the dependency), and any
  // cross-lane dependency passes a window barrier whose fork/join edges
  // publish the arrival counts before the completing lane runs.
  std::vector<std::atomic<std::uint64_t>> arrivals_;
  std::vector<std::atomic<std::uint64_t>> completions_;
  std::atomic<std::uint64_t> barriers_checked_{0};
};

}  // namespace nicbar::sim::check
