// sim::exec — sharding independent simulation runs across worker threads.
//
// The simulator itself is single-threaded by design (determinism is a core
// requirement), but a parameter sweep is a bag of *independent* deterministic
// simulations: each (config, seed) run builds its own Simulator/Cluster,
// touches no shared state, and produces a result that depends only on its
// inputs. parallel_for exploits exactly that shape: worker threads pull job
// indices from a shared atomic counter and each job writes only to
// index-addressed storage owned by the caller, so the set of results is
// bit-identical for any worker count or interleaving — only wall-clock time
// changes. This is the engine under coll::SweepPlan and every figure bench.
#pragma once

#include <cstddef>
#include <functional>

namespace nicbar::sim::exec {

/// Resolves a requested worker count: 0 means one worker per hardware
/// thread, anything else is taken literally; the result is always >= 1.
[[nodiscard]] unsigned resolve_workers(unsigned requested);

/// Invokes `job(i)` for every i in [0, count), sharded across `workers`
/// threads (after resolve_workers). Each job must be self-contained: it may
/// not touch another job's state, and anything it writes must be addressed
/// by its own index. Blocks until every job finishes. If jobs throw, the
/// first exception (in completion order) is rethrown on the calling thread
/// after all workers have joined; remaining unstarted jobs are abandoned.
/// With a single worker the jobs run inline on the calling thread, in index
/// order, with no thread machinery at all — that path is the serial baseline
/// that parallel runs are asserted bit-identical against.
void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& job);

}  // namespace nicbar::sim::exec
