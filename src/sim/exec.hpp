// sim::exec — sharding independent simulation runs across worker threads.
//
// The simulator itself is single-threaded by design (determinism is a core
// requirement), but a parameter sweep is a bag of *independent* deterministic
// simulations: each (config, seed) run builds its own Simulator/Cluster,
// touches no shared state, and produces a result that depends only on its
// inputs. parallel_for exploits exactly that shape: worker threads pull job
// indices from a shared atomic counter and each job writes only to
// index-addressed storage owned by the caller, so the set of results is
// bit-identical for any worker count or interleaving — only wall-clock time
// changes. This is the engine under coll::SweepPlan and every figure bench.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nicbar::sim::exec {

/// Resolves a requested worker count: 0 means one worker per hardware
/// thread, anything else is taken literally; the result is always >= 1.
[[nodiscard]] unsigned resolve_workers(unsigned requested);

/// Invokes `job(i)` for every i in [0, count), sharded across `workers`
/// threads (after resolve_workers). Each job must be self-contained: it may
/// not touch another job's state, and anything it writes must be addressed
/// by its own index. Blocks until every job finishes. If jobs throw, the
/// first exception (in completion order) is rethrown on the calling thread
/// after all workers have joined; remaining unstarted jobs are abandoned.
/// With a single worker the jobs run inline on the calling thread, in index
/// order, with no thread machinery at all — that path is the serial baseline
/// that parallel runs are asserted bit-identical against.
void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& job);

/// Persistent worker pool with a *static* lane-to-thread assignment: lane i
/// always runs on worker (i mod workers), and worker 0 is the calling
/// (coordinator) thread itself. parallel_for spawns and joins threads per
/// call, which is fine for a parameter sweep but far too heavy for a
/// partitioned simulation that dispatches thousands of short windows; this
/// pool parks its threads on a condition variable between rounds. The static
/// assignment is deliberate: a partition's Simulator is touched by the same
/// thread every window (so debug ownership stays simple and thread-local
/// frame-arena freelists keep their hit rate), and it needs no work-stealing
/// atomics on the dispatch path. Each run() is a barrier: it returns only
/// after every lane's job finished, with the mutex handoffs providing the
/// happens-before edges a window-synchronized PDES run relies on. Jobs that
/// throw abandon the rest of that worker's shard; the first exception (by
/// worker rank) is rethrown on the coordinator after the barrier.
class LanePool {
 public:
  /// `workers` is resolved via resolve_workers; `workers - 1` threads are
  /// spawned (the coordinator contributes the remaining shard).
  explicit LanePool(unsigned workers);
  ~LanePool();

  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Runs job(i) for every i in [0, lanes), lane i on worker (i mod
  /// workers). Blocks until all lanes finish. Not reentrant.
  void run(std::size_t lanes, const std::function<void(std::size_t)>& job);

 private:
  void worker_main(unsigned self);
  void run_shard(unsigned self) noexcept;

  unsigned workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;   // bumped per run(); workers wait on changes
  std::size_t lanes_ = 0;          // round state, valid while outstanding_ > 0
  const std::function<void(std::size_t)>* job_ = nullptr;
  unsigned outstanding_ = 0;       // helper workers still in the current round
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  // slot per worker, first by rank rethrown
};

}  // namespace nicbar::sim::exec
