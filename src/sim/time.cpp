#include "sim/time.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace nicbar::sim {

namespace {

std::string format_ps(std::int64_t ps) {
  char buf[64];
  const double a = std::abs(static_cast<double>(ps));
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gns", static_cast<double>(ps) * 1e-3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.4gus", static_cast<double>(ps) * 1e-6);
  } else if (a < 1e12) {
    std::snprintf(buf, sizeof buf, "%.4gms", static_cast<double>(ps) * 1e-9);
  } else {
    std::snprintf(buf, sizeof buf, "%.4gs", static_cast<double>(ps) * 1e-12);
  }
  return buf;
}

}  // namespace

std::string Duration::str() const { return format_ps(ps_); }
std::string SimTime::str() const { return format_ps(ps_); }

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.str(); }
std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.str(); }

}  // namespace nicbar::sim
