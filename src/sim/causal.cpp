#include "sim/causal.hpp"

#include <algorithm>
#include <cstring>
#include <queue>

#include "sim/check.hpp"

namespace nicbar::sim::causal {

namespace {

// The recording thread's arena. A plain thread_local (not a member) so the
// hot record() path costs one TLS read; only consulted while the tracer has
// more than one shard, so legacy single-threaded users never depend on it.
thread_local std::size_t t_current_shard = 0;

}  // namespace

const char* to_string(Segment s) {
  switch (s) {
    case Segment::kHost: return "host";
    case Segment::kSdma: return "sdma";
    case Segment::kSend: return "send";
    case Segment::kWire: return "wire";
    case Segment::kSwitch: return "switch";
    case Segment::kRecv: return "recv";
    case Segment::kFirmware: return "firmware";
    case Segment::kRdma: return "rdma";
    case Segment::kRep: return "rep";
  }
  return "?";
}

void CausalTracer::enable_sharding(std::size_t shards) {
  // resize, not assign: shard 0 — where a previous canonicalize() collapsed
  // everything — survives, so sharding can be re-enabled between runs.
  shard_spans_.resize(shards >= 1 ? shards : 1);
  shard_completed_.resize(shards >= 1 ? shards : 1);
}

void CausalTracer::set_current_shard(std::size_t shard) { t_current_shard = shard; }

std::size_t CausalTracer::record_shard() const {
  return shard_spans_.size() > 1 ? t_current_shard : 0;
}

SpanId CausalTracer::record(Segment seg, std::uint32_t node, const char* label,
                            SimTime start, SimTime end, SpanId parent, SpanId parent2,
                            std::uint64_t key) {
  const std::size_t shard = record_shard();
  std::vector<Span>& arena = shard_spans_[shard];
  Span s;
  s.id = (static_cast<std::uint64_t>(shard) << kShardShift) | (arena.size() + 1);
  s.seg = seg;
  s.node = node;
  s.label = label;
  s.start = start;
  s.end = end;
  s.key = key;
  // Single arena: edges must point to already-recorded spans (smaller ids),
  // which keeps the graph trivially acyclic. With shards, a parent may live
  // in another arena where id order says nothing — canonicalize() restores
  // the invariant and drops anything dangling.
  const bool sharded = shard_spans_.size() > 1;
  if (parent != 0 && (sharded ? parent != s.id : parent < s.id)) s.parents.push_back(parent);
  if (parent2 != 0 && (sharded ? parent2 != s.id : parent2 < s.id) && parent2 != parent) {
    s.parents.push_back(parent2);
  }
  arena.push_back(std::move(s));
  return arena.back().id;
}

void CausalTracer::add_parent(SpanId span, SpanId parent) {
  // Only the arena that recorded a span may grow its parent list (true at
  // every call site: joins are attached by the consuming element's own
  // lane). Cross-arena *references* are fine; cross-arena writes are not.
  if (span == 0 || parent == 0 || parent == span) return;
  const Span* s = this->span(span);
  if (s == nullptr) return;
  // Ordering guard: an edge whose parent was recorded *after* its child is a
  // forward reference (the engine retroactively claiming an earlier span —
  // e.g. a pe_advance pointing back at a barrier_advance it superseded).
  // Within one arena the idx field is record order, so the raw comparison
  // detects it; cross-shard edges always flow through a link delivery whose
  // parent span predates the child, so they are never forward references.
  if ((span >> kShardShift) == (parent >> kShardShift) && parent >= span) return;
  std::vector<SpanId>& ps = const_cast<Span*>(s)->parents;
  if (std::find(ps.begin(), ps.end(), parent) == ps.end()) ps.push_back(parent);
}

void CausalTracer::complete_barrier(std::uint32_t node, std::uint16_t port,
                                    std::uint32_t epoch, SpanId sink) {
  if (span(sink) == nullptr) return;
  CompletedBarrier b;
  b.node = node;
  b.port = port;
  b.epoch = epoch;
  b.sink = sink;
  if (shard_spans_.size() == 1) {
    b.total = critical_path(sink).total;
  }
  // Sharded: the sink's ancestors may still be foreign arenas mid-run, so
  // walking them here would race — canonicalize() fills the total in.
  shard_completed_[record_shard()].push_back(b);
}

CriticalPath CausalTracer::critical_path(SpanId sink) const {
  CriticalPath path;
  const Span* sink_span = span(sink);
  if (sink_span == nullptr) return path;

  // Walk back from the sink, always following the latest-ending parent
  // (ties keep the first-listed parent; parent list order is preserved by
  // canonicalize(), so the walk is canonical too).
  const Span* cur = sink_span;
  while (cur != nullptr) {
    const Span* crit = nullptr;
    for (const SpanId p : cur->parents) {
      const Span* ps = span(p);
      if (ps == nullptr) continue;
      if (crit == nullptr || ps->end > crit->end) crit = ps;
    }
    PathStep step;
    step.span = cur->id;
    step.seg = cur->seg;
    step.node = cur->node;
    step.label = cur->label;
    step.self = cur->end - cur->start;
    step.queue = crit != nullptr ? cur->start - crit->end : Duration{0};
    path.steps.push_back(step);
    cur = crit;
  }
  std::reverse(path.steps.begin(), path.steps.end());

  for (const PathStep& step : path.steps) {
    const std::size_t seg = static_cast<std::size_t>(step.seg);
    path.self[seg] += step.self;
    path.queue[seg] += step.queue;
  }
  // total telescopes: end(sink) - start(origin) == sum(self) + sum(queue).
  path.total = sink_span->end - span(path.steps.front().span)->start;
  return path;
}

void CausalTracer::fold(const CriticalPath& path, PathProfile& out) const {
  ++out.barriers;
  out.total += path.total;
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    out.self[s] += path.self[s];
    out.queue[s] += path.queue[s];
  }
  for (const PathStep& step : path.steps) {
    out.by_node_segment[{step.node, static_cast<std::uint8_t>(step.seg)}] +=
        step.self + step.queue;
  }
}

PathProfile CausalTracer::profile(double min_percentile) const {
  const std::vector<CompletedBarrier>& all = completed();
  if (min_percentile <= 0.0) return profile_of(all);
  std::vector<std::int64_t> totals;
  totals.reserve(all.size());
  for (const CompletedBarrier& b : all) totals.push_back(b.total.ps());
  if (totals.empty()) return PathProfile{};
  std::sort(totals.begin(), totals.end());
  const double rank = min_percentile / 100.0 * static_cast<double>(totals.size() - 1);
  const std::size_t idx = std::min(totals.size() - 1, static_cast<std::size_t>(rank));
  const std::int64_t threshold = totals[idx];
  std::vector<CompletedBarrier> picked;
  for (const CompletedBarrier& b : all) {
    if (b.total.ps() >= threshold) picked.push_back(b);
  }
  return profile_of(picked);
}

PathProfile CausalTracer::profile_of(const std::vector<CompletedBarrier>& barriers) const {
  PathProfile out;
  for (const CompletedBarrier& b : barriers) fold(critical_path(b.sink), out);
  return out;
}

bool CausalTracer::verify_acyclic() const {
  // Cross-shard ids are not order-comparable, so the invariant is only
  // checkable once everything lives in arena 0 — the serial case, or a
  // canonicalized tracer that was re-sharded for a follow-up run (arenas
  // 1..P-1 empty).
  for (std::size_t s = 1; s < shard_spans_.size(); ++s) {
    if (!shard_spans_[s].empty()) return false;  // canonicalize first
  }
  for (const Span& s : shard_spans_[0]) {
    for (const SpanId p : s.parents) {
      if (p == 0 || p >= s.id) return false;
    }
  }
  return true;
}

void CausalTracer::canonicalize() {
  const std::size_t num_shards = shard_spans_.size();

  // Flatten. A span's flat index is (shard offset + local index), so old
  // encoded ids decode straight into flat indices.
  std::vector<std::size_t> offset(num_shards + 1, 0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    offset[s + 1] = offset[s] + shard_spans_[s].size();
  }
  const std::size_t n = offset[num_shards];
  std::vector<Span> all;
  all.reserve(n);
  for (std::vector<Span>& arena : shard_spans_) {
    for (Span& s : arena) all.push_back(std::move(s));
    arena.clear();
  }
  auto flat_of = [&](SpanId id) -> std::ptrdiff_t {
    const std::size_t shard = static_cast<std::size_t>(id >> kShardShift);
    const std::uint64_t idx = id & kIdxMask;
    if (shard >= num_shards || idx == 0 ||
        offset[shard] + idx > offset[shard + 1]) {
      return -1;
    }
    return static_cast<std::ptrdiff_t>(offset[shard] + idx - 1);
  };

  // Content order: ends first (causality flows toward later ends), then
  // start/segment/node/label/key. The flat-index fallback only breaks ties
  // between spans of one arena (identical content on different lanes always
  // differs in node or packet-id key), where it equals that lane's record
  // order — the same relative order a serial run records them in.
  auto content_less = [&](std::size_t a, std::size_t b) {
    const Span& x = all[a];
    const Span& y = all[b];
    if (x.end != y.end) return x.end < y.end;
    if (x.start != y.start) return x.start < y.start;
    if (x.seg != y.seg) return x.seg < y.seg;
    if (x.node != y.node) return x.node < y.node;
    const int c = std::strcmp(x.label, y.label);
    if (c != 0) return c < 0;
    if (x.key != y.key) return x.key < y.key;
    return a < b;
  };

  // Kahn's algorithm with a content-ordered ready set: pop the smallest
  // ready span, number it, release its children. Numbering therefore
  // depends only on span content and edges — never on arena layout — and
  // satisfies parent-id < span-id by construction.
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> children(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const SpanId p : all[f].parents) {
      const std::ptrdiff_t pf = flat_of(p);
      if (pf < 0 || static_cast<std::size_t>(pf) == f) continue;
      children[static_cast<std::size_t>(pf)].push_back(static_cast<std::uint32_t>(f));
      ++indegree[f];
    }
  }
  auto ready_greater = [&](std::size_t a, std::size_t b) { return content_less(b, a); };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(ready_greater)> ready(
      ready_greater);
  for (std::size_t f = 0; f < n; ++f) {
    if (indegree[f] == 0) ready.push(f);
  }
  std::vector<SpanId> new_id(n, 0);
  SpanId next = 1;
  while (!ready.empty()) {
    const std::size_t f = ready.top();
    ready.pop();
    new_id[f] = next++;
    for (const std::uint32_t c : children[f]) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  NICBAR_CHECK(next == n + 1, "causal.cycle", SimTime::zero(),
               "%zu span(s) unreachable in topological renumbering: the span "
               "graph has a cycle",
               n + 1 - static_cast<std::size_t>(next));

  std::vector<Span> canon(n);
  for (std::size_t f = 0; f < n; ++f) {
    Span s = std::move(all[f]);
    s.id = new_id[f];
    std::vector<SpanId> parents;
    parents.reserve(s.parents.size());
    for (const SpanId p : s.parents) {
      const std::ptrdiff_t pf = flat_of(p);
      if (pf < 0 || static_cast<std::size_t>(pf) == f) continue;  // dangling
      parents.push_back(new_id[static_cast<std::size_t>(pf)]);
    }
    s.parents = std::move(parents);
    canon[s.id - 1] = std::move(s);
  }
  shard_spans_.assign(1, std::move(canon));

  // Merge completions, remap sinks, and fill in (or refresh) totals now
  // that the whole DAG is visible. The sort gives one canonical order; two
  // barriers never share a sink span, so it is total.
  std::vector<CompletedBarrier> merged;
  for (std::vector<CompletedBarrier>& arena : shard_completed_) {
    for (CompletedBarrier& b : arena) {
      const std::ptrdiff_t f = flat_of(b.sink);
      if (f < 0) continue;
      b.sink = new_id[static_cast<std::size_t>(f)];
      merged.push_back(b);
    }
    arena.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const CompletedBarrier& a, const CompletedBarrier& b) {
              if (a.sink != b.sink) return a.sink < b.sink;
              if (a.node != b.node) return a.node < b.node;
              if (a.port != b.port) return a.port < b.port;
              return a.epoch < b.epoch;
            });
  for (CompletedBarrier& b : merged) b.total = critical_path(b.sink).total;
  shard_completed_.assign(1, std::move(merged));
}

void CausalTracer::clear() {
  for (std::vector<Span>& arena : shard_spans_) arena.clear();
  for (std::vector<CompletedBarrier>& arena : shard_completed_) arena.clear();
}

}  // namespace nicbar::sim::causal
