#include "sim/causal.hpp"

#include <algorithm>

namespace nicbar::sim::causal {

const char* to_string(Segment s) {
  switch (s) {
    case Segment::kHost: return "host";
    case Segment::kSdma: return "sdma";
    case Segment::kSend: return "send";
    case Segment::kWire: return "wire";
    case Segment::kSwitch: return "switch";
    case Segment::kRecv: return "recv";
    case Segment::kFirmware: return "firmware";
    case Segment::kRdma: return "rdma";
    case Segment::kRep: return "rep";
  }
  return "?";
}

SpanId CausalTracer::record(Segment seg, std::uint32_t node, const char* label,
                            SimTime start, SimTime end, SpanId parent, SpanId parent2) {
  Span s;
  s.id = spans_.size() + 1;
  s.seg = seg;
  s.node = node;
  s.label = label;
  s.start = start;
  s.end = end;
  if (parent != 0 && parent < s.id) s.parents.push_back(parent);
  if (parent2 != 0 && parent2 < s.id && parent2 != parent) s.parents.push_back(parent2);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void CausalTracer::add_parent(SpanId span, SpanId parent) {
  // Edges must point backwards (parent recorded first) to keep the graph
  // trivially acyclic; anything else is a call-site bug we tolerate silently
  // so tracing can never crash a run.
  if (span == 0 || parent == 0 || parent >= span || span > spans_.size()) return;
  std::vector<SpanId>& ps = spans_[span - 1].parents;
  if (std::find(ps.begin(), ps.end(), parent) == ps.end()) ps.push_back(parent);
}

void CausalTracer::complete_barrier(std::uint32_t node, std::uint16_t port,
                                    std::uint32_t epoch, SpanId sink) {
  if (sink == 0 || sink > spans_.size()) return;
  CompletedBarrier b;
  b.node = node;
  b.port = port;
  b.epoch = epoch;
  b.sink = sink;
  b.total = critical_path(sink).total;
  completed_.push_back(b);
}

CriticalPath CausalTracer::critical_path(SpanId sink) const {
  CriticalPath path;
  if (sink == 0 || sink > spans_.size()) return path;

  // Walk back from the sink, always following the latest-ending parent.
  SpanId cur = sink;
  while (cur != 0) {
    const Span& s = spans_[cur - 1];
    SpanId crit = 0;
    for (const SpanId p : s.parents) {
      if (p == 0 || p > spans_.size()) continue;
      if (crit == 0 || spans_[p - 1].end > spans_[crit - 1].end) crit = p;
    }
    PathStep step;
    step.span = s.id;
    step.seg = s.seg;
    step.node = s.node;
    step.label = s.label;
    step.self = s.end - s.start;
    step.queue = crit != 0 ? s.start - spans_[crit - 1].end : Duration{0};
    path.steps.push_back(step);
    cur = crit;
  }
  std::reverse(path.steps.begin(), path.steps.end());

  for (const PathStep& step : path.steps) {
    const std::size_t seg = static_cast<std::size_t>(step.seg);
    path.self[seg] += step.self;
    path.queue[seg] += step.queue;
  }
  // total telescopes: end(sink) - start(origin) == sum(self) + sum(queue).
  path.total = spans_[sink - 1].end - spans_[path.steps.front().span - 1].start;
  return path;
}

void CausalTracer::fold(const CriticalPath& path, PathProfile& out) const {
  ++out.barriers;
  out.total += path.total;
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    out.self[s] += path.self[s];
    out.queue[s] += path.queue[s];
  }
  for (const PathStep& step : path.steps) {
    out.by_node_segment[{step.node, static_cast<std::uint8_t>(step.seg)}] +=
        step.self + step.queue;
  }
}

PathProfile CausalTracer::profile(double min_percentile) const {
  if (min_percentile <= 0.0) return profile_of(completed_);
  std::vector<std::int64_t> totals;
  totals.reserve(completed_.size());
  for (const CompletedBarrier& b : completed_) totals.push_back(b.total.ps());
  if (totals.empty()) return PathProfile{};
  std::sort(totals.begin(), totals.end());
  const double rank = min_percentile / 100.0 * static_cast<double>(totals.size() - 1);
  const std::size_t idx = std::min(totals.size() - 1, static_cast<std::size_t>(rank));
  const std::int64_t threshold = totals[idx];
  std::vector<CompletedBarrier> picked;
  for (const CompletedBarrier& b : completed_) {
    if (b.total.ps() >= threshold) picked.push_back(b);
  }
  return profile_of(picked);
}

PathProfile CausalTracer::profile_of(const std::vector<CompletedBarrier>& barriers) const {
  PathProfile out;
  for (const CompletedBarrier& b : barriers) fold(critical_path(b.sink), out);
  return out;
}

bool CausalTracer::verify_acyclic() const {
  for (const Span& s : spans_) {
    for (const SpanId p : s.parents) {
      if (p == 0 || p >= s.id) return false;
    }
  }
  return true;
}

void CausalTracer::clear() {
  spans_.clear();
  completed_.clear();
}

}  // namespace nicbar::sim::causal
