// Coroutine task type for simulated processes.
//
// A `Task` is a lazily-started coroutine. There are two ways to run one:
//
//   * `co_await child_task()` from another Task — the child runs to
//     completion (possibly suspending on simulated time) and then resumes
//     the parent. Exceptions propagate to the parent. The child frame is
//     owned by the awaiting expression and destroyed when it finishes.
//
//   * `Simulator::spawn(task)` — detaches the task as a top-level simulated
//     process. The frame self-destroys on completion; an escaping exception
//     is captured by the simulator and rethrown from `Simulator::run()`.
//
// Tasks are move-only. Dropping an unstarted Task destroys its frame.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>

#include "sim/frame_arena.hpp"

namespace nicbar::sim {

class Simulator;

namespace detail {
// Called from a detached task's final suspend; defined in simulator.cpp.
// Deregisters the frame and records any escaping exception.
void detached_task_done(Simulator* sim, void* frame_address, std::exception_ptr error) noexcept;
}  // namespace detail

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation;  // parent awaiting us (nullptr if none)
    Simulator* detached_owner = nullptr;   // non-null once spawned as a process
    std::exception_ptr exception;

    // Coroutine frames churn at event rate; recycle them (sim/frame_arena.hpp).
    static void* operator new(std::size_t size) { return frame_arena::allocate(size); }
    static void operator delete(void* p, std::size_t) noexcept { frame_arena::deallocate(p); }

    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        if (p.detached_owner != nullptr) {
          // Top-level process: report completion, then free our own frame.
          // `h` is suspended at this point so destroy() is legal.
          Simulator* owner = p.detached_owner;
          std::exception_ptr error = std::move(p.exception);
          void* frame = h.address();
          h.destroy();
          detail::detached_task_done(owner, frame, std::move(error));
          return std::noop_coroutine();
        }
        if (p.continuation) return p.continuation;  // resume awaiting parent
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  /// Relinquishes ownership of the coroutine frame (used by Simulator::spawn,
  /// after which the frame manages its own lifetime).
  Handle release() { return std::exchange(handle_, nullptr); }

  /// Awaiting a Task starts it (symmetric transfer) and resumes the awaiter
  /// when the Task completes.
  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() const {
        if (h && h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_;
};

/// Value-returning coroutine task. Unlike Task it cannot be detached with
/// Simulator::spawn — it must be awaited, and the co_await yields the value:
///
///   ValueTask<GmEvent> receive();
///   GmEvent ev = co_await port.receive();
template <typename T>
class [[nodiscard]] ValueTask {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    alignas(T) unsigned char storage[sizeof(T)];
    bool has_value = false;

    static void* operator new(std::size_t size) { return frame_arena::allocate(size); }
    static void operator delete(void* p, std::size_t) noexcept { frame_arena::deallocate(p); }

    ValueTask get_return_object() { return ValueTask{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) {
      ::new (static_cast<void*>(storage)) T(std::move(v));
      has_value = true;
    }
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    T take() { return std::move(*std::launder(reinterpret_cast<T*>(storage))); }

    ~promise_type() {
      if (has_value) std::launder(reinterpret_cast<T*>(storage))->~T();
    }
  };

  ValueTask() = default;
  explicit ValueTask(Handle h) : handle_(h) {}
  ValueTask(ValueTask&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  ValueTask& operator=(ValueTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ValueTask(const ValueTask&) = delete;
  ValueTask& operator=(const ValueTask&) = delete;
  ~ValueTask() { destroy(); }

  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      T await_resume() const {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return h.promise().take();
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_;
};

}  // namespace nicbar::sim
