#include "sim/exec.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace nicbar::sim::exec {

unsigned resolve_workers(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& job) {
  workers = resolve_workers(workers);
  if (workers > count) workers = static_cast<unsigned>(count);

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nicbar::sim::exec
