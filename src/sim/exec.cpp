#include "sim/exec.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace nicbar::sim::exec {

unsigned resolve_workers(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

void parallel_for(std::size_t count, unsigned workers,
                  const std::function<void(std::size_t)>& job) {
  workers = resolve_workers(workers);
  if (workers > count) workers = static_cast<unsigned>(count);

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

LanePool::LanePool(unsigned workers) : workers_(resolve_workers(workers)) {
  errors_.resize(workers_);
  threads_.reserve(workers_ > 0 ? workers_ - 1 : 0);
  for (unsigned w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

LanePool::~LanePool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void LanePool::run_shard(unsigned self) noexcept {
  // Static assignment: this worker owns lanes {self, self+W, self+2W, ...}.
  // A throwing lane abandons the rest of the shard; the round still reaches
  // its barrier so the coordinator can rethrow with every thread quiescent.
  try {
    for (std::size_t i = self; i < lanes_; i += workers_) (*job_)(i);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mu_);
    errors_[self] = std::current_exception();
  }
}

void LanePool::worker_main(unsigned self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    run_shard(self);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
    }
    cv_done_.notify_one();
  }
}

void LanePool::run(std::size_t lanes, const std::function<void(std::size_t)>& job) {
  if (workers_ <= 1 || lanes <= 1) {
    // Inline: the serial baseline that parallel rounds are asserted
    // bit-identical against uses no thread machinery at all.
    for (std::size_t i = 0; i < lanes; ++i) job(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    lanes_ = lanes;
    job_ = &job;
    outstanding_ = workers_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  run_shard(0);  // the coordinator works its own shard instead of idling
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return outstanding_ == 0; });
    job_ = nullptr;
    for (std::exception_ptr& e : errors_) {
      if (e) {
        std::exception_ptr first = std::exchange(e, nullptr);
        for (std::exception_ptr& rest : errors_) rest = nullptr;
        lock.unlock();
        std::rethrow_exception(first);
      }
    }
  }
}

}  // namespace nicbar::sim::exec
