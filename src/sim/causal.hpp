// Causal span tracing and critical-path attribution.
//
// Every packet transmission, DMA transfer, firmware decision, ack, and host
// wakeup records a Span with edges to the spans it causally waited on
// (packet-id / event-id provenance threaded through net::Packet,
// nic::BarrierToken, nic::BarrierBitInfo, and nic::GmEvent). Each completed
// barrier therefore yields a dependency DAG rooted at the host's completion
// (the sink) and terminating at the host's post (the origin).
//
// From the DAG we compute the exact critical path: walking back from the
// sink, the critical parent of a span is the parent whose end time is
// latest; the span's own duration is attributed to its Segment as `self`
// and the gap between the critical parent's end and the span's start as
// `queue` (resource contention: the engine, bus, or wire was busy). By
// construction self + queue telescopes to exactly end(sink) - start(origin),
// so the attribution is complete to the picosecond — in the contention-free
// regime each segment total equals the matching Eq. 1-2 closed-form term.
//
// Id invariant: every edge points from a span to a span with a strictly
// smaller id (parents are always recorded first; joins discovered later are
// attached with add_parent, which preserves the invariant because the
// parent already exists). verify_acyclic() checks it, which proves the
// graph is a DAG.
//
// Same discipline as the rest of sim::telemetry: hardware models cache a
// raw pointer that is null by default; every hook is one branch; recording
// never reads or perturbs simulation state, so results are bit-identical
// with tracing on or off.
//
// Partitioned (PDES) runs: enable_sharding(K) gives each lane a private
// span arena (selected via a thread-local shard index that the partitioned
// run sets before executing each lane), so recording stays lock-free. Ids
// are then (shard, local index) encodings, cross-shard parents are legal,
// and complete_barrier defers its total. After the run, canonicalize()
// merges the shards and renumbers every span by *content* (a deterministic
// topological order keyed on end/start/segment/node/label/packet-id), which
// yields the exact same ids, parents, and totals as a canonicalized serial
// run — the causal half of the PDES bit-identity guarantee. Serial runs that
// want to diff against partitioned ones must call canonicalize() too;
// legacy callers that never touch it see the original record-order ids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nicbar::sim::causal {

/// Where a span's time was spent, aligned with the Eq. 1-2 cost terms.
enum class Segment : std::uint8_t {
  kHost = 0,   // host library CPU (post + completion processing)
  kSdma = 1,   // SDMA engine: token detect / host -> NIC DMA
  kSend = 2,   // SEND engine: packet -> wire
  kWire = 3,   // link serialisation + propagation
  kSwitch = 4, // switch routing
  kRecv = 5,   // RECV engine: wire -> NIC processing
  kFirmware = 6,  // LANai barrier firmware decisions (init, advance, gather)
  kRdma = 7,   // RDMA engine + completion PCI DMA (NIC -> host)
  kRep = 8,    // hierarchical barrier: representative hop between levels
               // (gather satisfied -> exchange begun, exchange settled ->
               // release broadcast), marked inside the NIC firmware
};
inline constexpr std::size_t kSegmentCount = 9;

[[nodiscard]] const char* to_string(Segment s);

/// Span ids are 1-based and monotonically increasing; 0 means "no span" and
/// is the default value of every threaded provenance field.
using SpanId = std::uint64_t;

struct Span {
  SpanId id = 0;
  Segment seg = Segment::kHost;
  std::uint32_t node = 0;
  const char* label = "";  // static strings only (call sites use literals)
  SimTime start{0};
  SimTime end{0};
  // Content tiebreak for canonical ordering: the fabric-unique packet id for
  // wire/switch spans (two packets can occupy different links over identical
  // windows), 0 for node-local spans (which the (node, shard) pairing
  // already orders deterministically).
  std::uint64_t key = 0;
  std::vector<SpanId> parents;
};

/// One step of a critical path, origin-first.
struct PathStep {
  SpanId span = 0;
  Segment seg = Segment::kHost;
  std::uint32_t node = 0;
  const char* label = "";
  Duration self{0};   // end - start
  Duration queue{0};  // start - end(critical parent); 0 for the origin
};

/// An exact critical path: steps from origin to sink with per-segment
/// attribution. self[] + queue[] sum to `total` exactly.
struct CriticalPath {
  std::vector<PathStep> steps;
  Duration total{0};  // end(sink) - start(origin)
  Duration self[kSegmentCount]{};
  Duration queue[kSegmentCount]{};

  [[nodiscard]] Duration attributed() const {
    Duration d{0};
    for (std::size_t s = 0; s < kSegmentCount; ++s) d += self[s] + queue[s];
    return d;
  }
};

/// A completed barrier as seen by one member: its sink span plus the
/// (node, port, epoch) key the rest of the stack uses.
struct CompletedBarrier {
  std::uint32_t node = 0;
  std::uint16_t port = 0;
  std::uint32_t epoch = 0;
  SpanId sink = 0;
  Duration total{0};  // end(sink) - start(origin) at completion time
};

/// Aggregated critical-path attribution over a set of completed barriers.
struct PathProfile {
  std::uint64_t barriers = 0;
  Duration total{0};  // sum of per-barrier totals
  Duration self[kSegmentCount]{};
  Duration queue[kSegmentCount]{};
  /// Hot contributors: (node, segment) -> self + queue on the critical path.
  std::map<std::pair<std::uint32_t, std::uint8_t>, Duration> by_node_segment;

  [[nodiscard]] Duration attributed() const {
    Duration d{0};
    for (std::size_t s = 0; s < kSegmentCount; ++s) d += self[s] + queue[s];
    return d;
  }
};

class CausalTracer {
 public:
  CausalTracer() : shard_spans_(1), shard_completed_(1) {}

  /// Grows to `shards` private span arenas (>= 1); existing arenas — in
  /// particular shard 0, where canonicalize() collapsed a previous run —
  /// are preserved. Each recording thread must announce its arena with
  /// set_current_shard before recording; a partitioned run does this per
  /// lane per window.
  void enable_sharding(std::size_t shards);

  /// Binds this thread's subsequent record/complete_barrier calls to arena
  /// `shard`. Thread-local; irrelevant while only one shard exists.
  static void set_current_shard(std::size_t shard);

  /// Merges shards and renumbers every span into the canonical content
  /// order: a topological numbering that prefers the smallest
  /// (end, start, segment, node, label, key) among ready spans. Deferred
  /// barrier totals are computed, completions sorted by sink. After this
  /// the tracer is single-arena with dense 1-based ids and
  /// verify_acyclic()'s parent-id < span-id invariant restored. Two runs of
  /// the same model canonicalize to bit-identical state regardless of
  /// partition or worker count.
  void canonicalize();

  /// Records a completed span [start, end] and returns its id. `label` must
  /// be a string literal. Up to two parents at record time; later joins go
  /// through add_parent. `key` is the content tiebreak (see Span::key).
  SpanId record(Segment seg, std::uint32_t node, const char* label, SimTime start,
                SimTime end, SpanId parent = 0, SpanId parent2 = 0, std::uint64_t key = 0);

  /// Attaches another causal parent to an existing span (a join discovered
  /// after the span was recorded, e.g. the firmware consuming a previously
  /// recorded bit). No-ops on id 0.
  void add_parent(SpanId span, SpanId parent);

  /// Marks `sink` as the completion span of barrier (node, port, epoch); the
  /// barrier's DAG is the ancestor closure of the sink.
  void complete_barrier(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                        SpanId sink);

  [[nodiscard]] std::size_t span_count() const {
    std::size_t n = 0;
    for (const std::vector<Span>& s : shard_spans_) n += s.size();
    return n;
  }
  [[nodiscard]] const Span* span(SpanId id) const {
    const std::size_t shard = static_cast<std::size_t>(id >> kShardShift);
    const std::uint64_t idx = id & kIdxMask;
    if (shard >= shard_spans_.size() || idx == 0 || idx > shard_spans_[shard].size()) {
      return nullptr;
    }
    return &shard_spans_[shard][idx - 1];
  }
  /// Completed barriers. While multiple shards exist this is shard 0's view
  /// only — canonicalize() merges (and sorts) the rest.
  [[nodiscard]] const std::vector<CompletedBarrier>& completed() const {
    return shard_completed_[0];
  }

  /// Exact critical path from `sink` back to its origin.
  [[nodiscard]] CriticalPath critical_path(SpanId sink) const;

  /// Aggregates critical paths over completed barriers whose total latency
  /// is at or above the `min_percentile`-th percentile of all completed
  /// totals (0 = every barrier, 99 = the slowest 1%).
  [[nodiscard]] PathProfile profile(double min_percentile = 0.0) const;

  /// Aggregates critical paths over an explicit set of completed barriers.
  [[nodiscard]] PathProfile profile_of(const std::vector<CompletedBarrier>& barriers) const;

  /// True when every edge satisfies parent-id < span-id, which proves the
  /// span graph is acyclic.
  [[nodiscard]] bool verify_acyclic() const;

  void clear();

 private:
  // Span ids encode (shard, 1-based local index); shard 0 ids are therefore
  // plain 1..n, which keeps single-arena (legacy and post-canonicalize)
  // behaviour byte-compatible with the original sequential scheme.
  static constexpr std::uint64_t kShardShift = 40;
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << kShardShift) - 1;

  void fold(const CriticalPath& path, PathProfile& out) const;
  [[nodiscard]] std::size_t record_shard() const;

  std::vector<std::vector<Span>> shard_spans_;
  std::vector<std::vector<CompletedBarrier>> shard_completed_;
};

}  // namespace nicbar::sim::causal
