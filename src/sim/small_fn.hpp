// Small-buffer move-only callable for the event hot path.
//
// Every pending event used to be a std::function<void()>; almost all of them
// capture a coroutine handle or a handful of POD fields, far below
// std::function's heap-allocation threshold on some ABIs and — worse — paying
// its double-indirect dispatch and exception-safe copy machinery on every
// heap sift. SmallFn stores callables up to kInlineBytes inline (48 bytes
// covers every capture in this repository), falls back to the heap for
// larger ones, and is move-only: events are scheduled once, fired once.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nicbar::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) vt_->relocate(buf_, o.buf_);
    o.vt_ = nullptr;
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline = sizeof(Fn) <= kInlineBytes &&
                                      alignof(Fn) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr VTable vtable_inline{
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable vtable_heap{
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        // The stored pointer is trivially destructible; just copy it over.
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace nicbar::sim
