// Pending-event set for the discrete-event engine.
//
// A binary min-heap keyed on (time, insertion order). The insertion order
// gives a total order, so two events scheduled for the same instant fire in
// the order they were scheduled — this determinism is what makes every
// experiment in the repository exactly reproducible.
//
// Hot-path layout: the heap holds 24-byte POD entries (time, order, slot
// handle) that sift with trivial moves; the callable itself lives in a slot
// array and never moves during heap maintenance. Slots are recycled through a
// free list and carry a generation counter, so a stale EventId (already
// fired, cancelled, or cleared) can never touch a later event that happens to
// reuse its slot. Cancellation stays lazy and O(1): cancel() retires the slot
// (destroying the callable immediately) and the heap discards the dead entry
// when it surfaces — this matters because reliability retransmission timers
// are cancelled on (nearly) every acknowledgment. When dead entries pile up
// faster than pops retire them, schedule() compacts the heap in one O(n)
// pass so cancel-heavy workloads cannot grow the heap without bound.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace nicbar::sim {

/// Opaque handle to a scheduled event; used only for cancellation. Packs a
/// slot index (low 32 bits, biased by one so a default-constructed id is
/// invalid) and that slot's generation (high 32 bits).
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Explicit same-instant ordering key for events whose relative order must
/// not depend on *when* they were inserted. Ordinary events at the same
/// timestamp fire in insertion order — fine for a single queue, but a
/// partitioned (PDES) run inserts cross-partition deliveries at window
/// barriers, long after the serial path would have inserted them, so
/// insertion order is no longer reproducible across engine configurations.
/// A keyed event instead fires in (time, k1, k2) order, where the caller
/// derives (k1, k2) from simulation content (for a link delivery: the
/// serialisation-finish time, the link's stable id, and a per-link sequence
/// number). Keyed events sort before all unkeyed events at the same instant,
/// and the caller must make (k1, k2) unique per (time). See sim/pdes.hpp.
struct EventKey {
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
};

class EventQueue {
 public:
  using Action = SmallFn;

  /// Schedules `action` at absolute time `at`. Returns a cancellation handle.
  EventId schedule(SimTime at, Action action);

  /// Schedules `action` at `at` with an explicit same-instant ordering key
  /// (see EventKey). `key.k1` must have its top bit clear.
  EventId schedule_keyed(SimTime at, EventKey key, Action action);

  /// Marks an event dead. Safe to call with an already-fired, cleared, or
  /// invalid id (it becomes a no-op). Returns true if the event was still
  /// pending; its callable is destroyed immediately.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time();

  /// Removes and returns the earliest live event's action. Requires !empty().
  /// `fired_at` receives the event's timestamp.
  Action pop(SimTime& fired_at);

  /// Discards all pending events without running them. Outstanding EventIds
  /// are invalidated (cancelling them afterwards is a no-op).
  void clear();

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return scheduled_; }

  /// One element of a schedule_batch() call.
  struct BatchItem {
    SimTime at;
    EventKey key;
    Action action;
  };

  /// Schedules `items.size()` keyed events in one pass. Equivalent to
  /// calling schedule_keyed per item but amortises heap maintenance: when
  /// the batch is at least as large as the existing heap the queue rebuilds
  /// bottom-up in O(n + m) instead of m * O(log n) sift-ups. This is the
  /// partition-boundary fast path: a PDES window barrier drains every
  /// channel into the destination queue in one call.
  void schedule_batch(std::vector<BatchItem>& items);

 private:
  struct Slot {
    Action action;
    std::uint32_t gen = 0;    // bumped every time the slot's event dies
    std::uint32_t next_free;  // free-list link, valid while dead
    bool live = false;
  };
  struct HeapEntry {  // trivially copyable: sifts are plain moves
    std::int64_t at_ps;
    // Same-instant order: keyed events carry (k1, k2) from the caller with
    // k1's top bit clear; unkeyed events carry k1 = kUnkeyedBit | counter,
    // k2 = 0, so every keyed event at an instant precedes every unkeyed one
    // and unkeyed events keep their insertion order.
    std::uint64_t k1;
    std::uint64_t k2;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static constexpr std::uint32_t kNilSlot = UINT32_MAX;
  static constexpr std::uint64_t kUnkeyedBit = 1ULL << 63;

  [[nodiscard]] bool before(const HeapEntry& a, const HeapEntry& b) const {
    if (a.at_ps != b.at_ps) return a.at_ps < b.at_ps;
    if (a.k1 != b.k1) return a.k1 < b.k1;
    return a.k2 < b.k2;
  }
  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }

  EventId schedule_entry(SimTime at, std::uint64_t k1, std::uint64_t k2, Action action);
  std::uint32_t acquire_slot();
  void retire_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void pop_heap_top();
  void drop_dead_front();
  void compact();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;       // live events (== live slots; heap_ may hold more)
  std::uint64_t next_order_ = 0;
  std::uint64_t scheduled_ = 0;
};

}  // namespace nicbar::sim
