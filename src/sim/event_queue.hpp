// Pending-event set for the discrete-event engine.
//
// A binary min-heap keyed on (time, insertion sequence). The insertion
// sequence gives a total order, so two events scheduled for the same instant
// fire in the order they were scheduled — this determinism is what makes
// every experiment in the repository exactly reproducible.
//
// Cancellation is handle-based and lazy: `cancel(id)` marks the id dead and
// the heap discards dead entries when they surface. This keeps cancel O(1)
// amortised, which matters because reliability retransmission timers are
// cancelled on (nearly) every acknowledgment.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace nicbar::sim {

/// Opaque handle to a scheduled event; used only for cancellation.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at`. Returns a cancellation handle.
  EventId schedule(SimTime at, Action action);

  /// Marks an event dead. Safe to call with an already-fired or invalid id
  /// (it becomes a no-op). Returns true if the event was still pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time();

  /// Removes and returns the earliest live event's action. Requires !empty().
  /// `fired_at` receives the event's timestamp.
  Action pop(SimTime& fired_at);

  /// Discards all pending events without running them.
  void clear();

  /// Total events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead_front();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;    // live (schedulable) ids
  std::unordered_set<std::uint64_t> cancelled_;  // dead ids still in heap_
  std::uint64_t next_seq_ = 1;
};

}  // namespace nicbar::sim
