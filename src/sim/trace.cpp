#include "sim/trace.hpp"

#include <cstdio>
#include <ostream>

namespace nicbar::sim {

void Tracer::log(TraceCategory c, SimTime at, const char* fmt, ...) {
  if (!on(c) || os_ == nullptr) return;
  char body[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);
  char line[600];
  std::snprintf(line, sizeof line, "[%14.3fus] %s\n", at.us(), body);
  *os_ << line;
}

}  // namespace nicbar::sim
