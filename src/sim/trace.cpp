#include "sim/trace.hpp"

#include <cstdio>
#include <ostream>

namespace nicbar::sim {

void Tracer::log(TraceCategory c, SimTime at, const char* fmt, ...) {
  if (!on(c) || os_ == nullptr) return;
  char body[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);
  char line[600];
  std::snprintf(line, sizeof line, "[%14.3fus] %s\n", at.us(), body);
  *os_ << line;
}

namespace {

struct MaskName {
  const char* name;
  TraceCategory cat;
};

constexpr MaskName kMaskNames[] = {
    {"host", TraceCategory::kHost},       {"sdma", TraceCategory::kSdma},
    {"send", TraceCategory::kSend},       {"recv", TraceCategory::kRecv},
    {"rdma", TraceCategory::kRdma},       {"net", TraceCategory::kNet},
    {"barrier", TraceCategory::kBarrier}, {"reliab", TraceCategory::kReliab},
    {"all", TraceCategory::kAll},
};

}  // namespace

std::optional<std::uint32_t> parse_trace_mask(const std::string& spec) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string name = spec.substr(pos, comma - pos);
    bool found = false;
    for (const MaskName& m : kMaskNames) {
      if (name == m.name) {
        mask |= static_cast<std::uint32_t>(m.cat);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;  // unknown or empty element
    pos = comma + 1;
  }
  return mask;
}

const char* trace_mask_names() {
  return "host,sdma,send,recv,rdma,net,barrier,reliab,all";
}

}  // namespace nicbar::sim
