// Declarative, deterministic fault plans.
//
// A FaultPlan is a pure description of everything that will go wrong during
// a run: scheduled link outages, NIC crashes and restarts, switch output-port
// failures, Gilbert–Elliott bursty loss, uniform i.i.d. loss, and payload
// corruption (delivered, then caught by the receiver's CRC check). The plan
// itself knows nothing about the network or NIC types — `host::Cluster` arms
// it at construction by translating each entry into hooks on `net::Link`,
// `net::Switch` and `nic::Nic`, plus scheduled simulator events for the
// timed windows. Keeping the plan declarative makes fault scenarios
// serialisable (see parse_fault_plan), diffable, and — because every random
// draw comes from a seeded PCG stream per link — bit-reproducible.
//
// Links are matched by substring on their directed name ("t0->sw0",
// "sw0->t3", "sw0->sw1"); an empty pattern matches every link.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nicbar::sim::fault {

/// Both directions named by `link` are dead in [from, until): packets are
/// discarded instantly (the cable is unplugged — nothing is even
/// serialised). `until` == SimTime::max() means the link never comes back.
struct LinkDownWindow {
  std::string link;  // substring match on the link name; empty = every link
  SimTime from{0};
  SimTime until = SimTime::max();
};

/// The NIC on `node` halts at `at`: its processor stops accepting packets in
/// either direction and all pending retransmit timers die with it. At
/// `restart_at` the firmware reboots and retransmits everything still
/// unacknowledged (connection state lives in host memory and survives, the
/// same argument the paper makes for host-resident barrier tokens).
/// `restart_at` == SimTime::max() means the node is gone for good.
struct NicCrash {
  std::uint32_t node = 0;
  SimTime at{0};
  SimTime restart_at = SimTime::max();
  /// Plan-file line the event came from (0 = built programmatically); used
  /// by arm-time validation to name the offending line.
  int line = 0;
};

/// Output port `port` of switch `switch_id` eats every packet routed to it
/// during [from, until).
struct SwitchPortDown {
  std::size_t switch_id = 0;
  std::size_t port = 0;
  SimTime from{0};
  SimTime until = SimTime::max();
  /// Plan-file line the event came from (0 = built programmatically).
  int line = 0;
};

/// Gilbert–Elliott two-state loss: each packet advances a good/bad Markov
/// chain, then drops with the state's loss rate. Captures the bursty loss a
/// marginal cable or overheating SerDes produces, which i.i.d. loss cannot.
struct BurstLoss {
  std::string link;          // substring match; empty = every link
  double p_enter_bad = 0.0;  // P(good -> bad) per packet
  double p_exit_bad = 0.1;   // P(bad -> good) per packet
  double loss_good = 0.0;    // drop probability while good
  double loss_bad = 1.0;     // drop probability while bad
};

/// Each packet is delivered flipped with probability `prob`; the receiving
/// NIC burns its full RECV occupancy on the CRC check before discarding.
struct Corruption {
  std::string link;  // substring match; empty = every link
  double prob = 0.0;
};

/// Uniform i.i.d. loss on matching links (the seed-era `--loss` knob,
/// expressible in a plan so it composes with everything else).
struct UniformLoss {
  std::string link;  // substring match; empty = every link
  double prob = 0.0;
};

struct FaultPlan {
  std::vector<UniformLoss> loss;
  std::vector<BurstLoss> bursts;
  std::vector<Corruption> corruption;
  std::vector<LinkDownWindow> link_down;
  std::vector<NicCrash> nic_crashes;
  std::vector<SwitchPortDown> switch_ports_down;
  /// Base seed for every per-link RNG stream the plan arms. Each armed link
  /// derives its own stream (base + stable per-link counter), so adding a
  /// link to the topology does not perturb the draws on existing ones.
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const {
    return loss.empty() && bursts.empty() && corruption.empty() && link_down.empty() &&
           nic_crashes.empty() && switch_ports_down.empty();
  }
};

/// Parses the line-oriented fault-plan format used by `nicbar_run
/// --fault-plan`. Times are microseconds, probabilities are [0,1] fractions,
/// `*` as a link pattern means "every link", `-` as a restart time means
/// "never". Blank lines and `#` comments are ignored.
///
///   seed 7
///   loss 0.01 [link]
///   burst <p_enter> <p_exit> <loss_bad> [link]
///   corrupt 0.001 [link]
///   link-down <from_us> <until_us|-> [link]
///   nic-crash <node> <at_us> [restart_us|-]
///   switch-port-down <switch> <port> <from_us> <until_us|->
///
/// Throws std::runtime_error naming the offending line on malformed input.
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& in);

/// Convenience: parse from a string (tests, inline scenarios).
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

}  // namespace nicbar::sim::fault
