// The discrete-event simulator.
//
// Owns the simulation clock and the pending-event set, and acts as the
// scheduler for coroutine processes (`Task`). Single-threaded by design:
// determinism is a core requirement (every benchmark in this repository
// reports *simulated* time, which must be exactly reproducible), so there is
// no hidden concurrency anywhere in the engine.
//
// Thread-ownership contract: every event in a Simulator is scheduled *and*
// executed by the thread that owns it. In a plain run that is trivially the
// calling thread. In a partitioned (PDES) run each partition has its own
// Simulator ("lane"), a worker thread owns one lane at a time, and the only
// way state crosses lanes is the channel handoff described in sim/sync.hpp —
// never a direct schedule into a foreign lane. bind_owner()/assert_owner()
// enforce this in debug builds: run()/run_window() bind the executing
// thread, and every schedule_* call asserts the binding.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <unordered_set>
#include <vector>

#ifndef NDEBUG
#include <thread>
#endif

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Clock ---------------------------------------------------------------

  [[nodiscard]] SimTime now() const { return now_; }

  // --- Raw event scheduling --------------------------------------------------

  /// Runs `action` at absolute simulated time `at` (must not be in the past).
  /// Accepts any void() callable (stored inline up to SmallFn::kInlineBytes).
  EventId schedule_at(SimTime at, EventQueue::Action action);

  /// Runs `action` after `delay` (>= 0) of simulated time.
  EventId schedule_in(Duration delay, EventQueue::Action action);

  /// Runs `action` at `at` with an explicit same-instant ordering key (see
  /// EventKey): the event fires in (time, key) order regardless of when it
  /// was scheduled. Link deliveries use this so a partitioned run, which
  /// inserts cross-partition deliveries at window barriers, pops them in
  /// exactly the order a single-queue run would.
  EventId schedule_at_keyed(SimTime at, EventKey key, EventQueue::Action action);

  /// Runs `action` at the current time, after all already-scheduled
  /// events for this instant.
  EventId schedule_now(EventQueue::Action action) {
    return schedule_in(Duration{0}, std::move(action));
  }

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  // --- Coroutine processes ---------------------------------------------------

  /// Detaches `task` as a top-level simulated process, started at the
  /// current time (or at t=0 if the simulation has not run yet).
  void spawn(Task task);

  /// Awaitable: suspends the calling coroutine for `d` of simulated time.
  [[nodiscard]] auto delay(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration dur;
      bool await_ready() const noexcept { return dur.ps() <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_in(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspends until absolute time `t` (immediately if past).
  [[nodiscard]] auto wait_until(SimTime t) { return delay(t > now_ ? t - now_ : Duration{0}); }

  // --- Execution -------------------------------------------------------------

  /// Runs events until the queue drains or `until` is passed. Returns the
  /// number of events executed. Rethrows the first exception that escaped a
  /// detached process (after stopping).
  std::uint64_t run(SimTime until = SimTime::max());

  /// Runs every event with time strictly below `until_exclusive`, then
  /// returns the number executed. Unlike run(), the clock is left at the
  /// last executed event (never artificially advanced) and escaped process
  /// exceptions stay pending until the coordinator calls rethrow_pending() —
  /// a PDES window must never throw across a worker-thread boundary.
  std::uint64_t run_window(SimTime until_exclusive);

  /// Rethrows an exception captured from a detached process, if any.
  void rethrow_pending();

  /// Coordinator-only (PDES window barrier): bulk-inserts keyed cross-lane
  /// deliveries into this lane's queue and consumes `items`. Re-binds debug
  /// ownership to the caller; the next run_window() re-binds to its worker.
  void drain_batch(std::vector<EventQueue::BatchItem>& items) {
    bind_owner();
    queue_.schedule_batch(items);
  }

  /// Executes exactly one event if one is pending; returns false otherwise.
  bool step();

  /// Requests that `run()` return after the current event.
  void request_stop() { stop_requested_ = true; }

  /// Advances an idle simulator's clock to `t` (no-op when `t` is in the
  /// past). A partitioned run uses this to land every lane on the global
  /// end time so post-run reads (utilisation denominators, open fault
  /// windows) match the single-queue run exactly.
  void advance_to(SimTime t);

  /// Earliest pending event time; SimTime::max() when idle.
  [[nodiscard]] SimTime next_event_time() {
    return queue_.empty() ? SimTime::max() : queue_.next_time();
  }

  /// Re-binds this simulator to the calling thread (debug-only ownership
  /// tracking; free in release builds). run()/run_window() bind implicitly;
  /// a PDES coordinator binds explicitly around the drain phase.
  void bind_owner() {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t live_process_count() const { return live_processes_.size(); }

 private:
  friend void detail::detached_task_done(Simulator*, void*, std::exception_ptr) noexcept;

  void assert_owner() const;

  EventQueue queue_;
  SimTime now_{0};
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
  std::unordered_set<void*> live_processes_;  // frames of detached tasks
  std::exception_ptr pending_error_;
#ifndef NDEBUG
  std::thread::id owner_{};  // default: unbound, first schedule binds
#endif
};

}  // namespace nicbar::sim
