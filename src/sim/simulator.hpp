// The discrete-event simulator.
//
// Owns the simulation clock and the pending-event set, and acts as the
// scheduler for coroutine processes (`Task`). Single-threaded by design:
// determinism is a core requirement (every benchmark in this repository
// reports *simulated* time, which must be exactly reproducible), so there is
// no hidden concurrency anywhere in the engine.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <unordered_set>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Clock ---------------------------------------------------------------

  [[nodiscard]] SimTime now() const { return now_; }

  // --- Raw event scheduling --------------------------------------------------

  /// Runs `action` at absolute simulated time `at` (must not be in the past).
  /// Accepts any void() callable (stored inline up to SmallFn::kInlineBytes).
  EventId schedule_at(SimTime at, EventQueue::Action action);

  /// Runs `action` after `delay` (>= 0) of simulated time.
  EventId schedule_in(Duration delay, EventQueue::Action action);

  /// Runs `action` at the current time, after all already-scheduled
  /// events for this instant.
  EventId schedule_now(EventQueue::Action action) {
    return schedule_in(Duration{0}, std::move(action));
  }

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  // --- Coroutine processes ---------------------------------------------------

  /// Detaches `task` as a top-level simulated process, started at the
  /// current time (or at t=0 if the simulation has not run yet).
  void spawn(Task task);

  /// Awaitable: suspends the calling coroutine for `d` of simulated time.
  [[nodiscard]] auto delay(Duration d) {
    struct Awaiter {
      Simulator& sim;
      Duration dur;
      bool await_ready() const noexcept { return dur.ps() <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_in(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspends until absolute time `t` (immediately if past).
  [[nodiscard]] auto wait_until(SimTime t) { return delay(t > now_ ? t - now_ : Duration{0}); }

  // --- Execution -------------------------------------------------------------

  /// Runs events until the queue drains or `until` is passed. Returns the
  /// number of events executed. Rethrows the first exception that escaped a
  /// detached process (after stopping).
  std::uint64_t run(SimTime until = SimTime::max());

  /// Executes exactly one event if one is pending; returns false otherwise.
  bool step();

  /// Requests that `run()` return after the current event.
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }
  [[nodiscard]] std::size_t live_process_count() const { return live_processes_.size(); }

 private:
  friend void detail::detached_task_done(Simulator*, void*, std::exception_ptr) noexcept;

  EventQueue queue_;
  SimTime now_{0};
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
  std::unordered_set<void*> live_processes_;  // frames of detached tasks
  std::exception_ptr pending_error_;
};

}  // namespace nicbar::sim
