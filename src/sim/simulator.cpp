#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "sim/check.hpp"

namespace nicbar::sim {

namespace detail {

void detached_task_done(Simulator* sim, void* frame_address, std::exception_ptr error) noexcept {
  sim->live_processes_.erase(frame_address);
  if (error && !sim->pending_error_) {
    sim->pending_error_ = std::move(error);
    sim->request_stop();
  }
}

}  // namespace detail

Simulator::~Simulator() {
  // Destroy the pending-event set first: queued closures may capture
  // coroutine handles, but they are never invoked after this point, so the
  // order only matters in that we must not run anything while tearing down.
  queue_.clear();
  // Any still-suspended top-level process frames are destroyed here; their
  // in-scope locals (including child task frames) unwind recursively.
  for (void* frame : live_processes_) {
    std::coroutine_handle<>::from_address(frame).destroy();
  }
}

void Simulator::assert_owner() const {
#ifndef NDEBUG
  // First touch from any thread binds lazily (construction-time scheduling,
  // e.g. fault arming, happens before any run). After a bind, scheduling
  // from a different thread is a cross-lane handoff bug: the only legal way
  // to reach another lane is the PDES channel protocol (sim/sync.hpp).
  if (owner_ == std::thread::id{}) {
    const_cast<Simulator*>(this)->owner_ = std::this_thread::get_id();
    return;
  }
  NICBAR_CHECK(owner_ == std::this_thread::get_id(), "sim.owner", now_,
               "event scheduled from a thread that does not own this simulator "
               "(cross-lane scheduling must go through the PDES channel handoff)");
#endif
}

EventId Simulator::schedule_at(SimTime at, EventQueue::Action action) {
  assert_owner();
  NICBAR_CHECK(at >= now_, "sim.queue", now_, "event scheduled %lld ps into the past",
               static_cast<long long>((now_ - at).ps()));
  return queue_.schedule(at < now_ ? now_ : at, std::move(action));
}

EventId Simulator::schedule_in(Duration d, EventQueue::Action action) {
  assert_owner();
  NICBAR_CHECK(!d.is_negative(), "sim.queue", now_, "negative delay %lld ps",
               static_cast<long long>(d.ps()));
  return queue_.schedule(now_ + (d.is_negative() ? Duration{0} : d), std::move(action));
}

EventId Simulator::schedule_at_keyed(SimTime at, EventKey key, EventQueue::Action action) {
  assert_owner();
  NICBAR_CHECK(at >= now_, "sim.queue", now_, "keyed event scheduled %lld ps into the past",
               static_cast<long long>((now_ - at).ps()));
  return queue_.schedule_keyed(at < now_ ? now_ : at, key, std::move(action));
}

void Simulator::spawn(Task task) {
  Task::Handle h = task.release();
  if (!h) return;
  h.promise().detached_owner = this;
  live_processes_.insert(h.address());
  schedule_now([h] { h.resume(); });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  SimTime at;
  EventQueue::Action action = queue_.pop(at);
  NICBAR_CHECK(at >= now_, "sim.queue", now_,
               "event queue time went backwards: popped t=%lld ps while clock is %lld ps",
               static_cast<long long>(at.ps()), static_cast<long long>(now_.ps()));
  now_ = at;
  action();
  ++events_executed_;
  return true;
}

std::uint64_t Simulator::run(SimTime until) {
  bind_owner();
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= until) {
    step();
    ++n;
  }
  // Advance the clock to the horizon if we drained early and a finite
  // horizon was requested; callers treat `until` as "simulate this long".
  if (until != SimTime::max() && now_ < until && queue_.empty()) now_ = until;
  rethrow_pending();
  return n;
}

std::uint64_t Simulator::run_window(SimTime until_exclusive) {
  bind_owner();
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() < until_exclusive) {
    step();
    ++n;
  }
  return n;
}

void Simulator::rethrow_pending() {
  if (pending_error_) {
    std::exception_ptr e = std::exchange(pending_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void Simulator::advance_to(SimTime t) {
  NICBAR_CHECK(queue_.empty(), "sim.queue", now_,
               "advance_to() requires an idle simulator (events are still pending)");
  if (t > now_) now_ = t;
}

}  // namespace nicbar::sim
