// Coroutine synchronization primitives for simulated processes.
//
//   Condition  — broadcast wakeup; any number of waiters, notify_all resumes
//                them all (at the current instant, in FIFO order).
//   Gate       — latch: once opened, waiters pass immediately (used for
//                "barrier completed" style notifications).
//   Mailbox<T> — unbounded FIFO channel; receivers suspend when empty.
//   Resource   — counted FIFO semaphore (models a bus, a CPU, a DMA engine
//                when used by coroutines).
//
// All wakeups go through Simulator::schedule_now rather than resuming
// inline. This keeps notify/send non-reentrant: state updates made by the
// notifier complete before any waiter observes them.
//
// Cross-partition handoff convention (PDES). Every primitive in this file —
// and every Simulator schedule_* call — is lane-local: it may only be touched
// by the thread that owns the element's Simulator (asserted in debug builds
// by Simulator::assert_owner). When a partitioned run needs to move an event
// across lanes (a packet leaving a link whose endpoint lives in another
// partition), the *sending* lane must NOT schedule into the destination
// Simulator. Instead it posts {deliver_at, EventKey, closure} to its own row
// of the PartitionedSimulator channel matrix (plain vector, no locks: one
// writer during the window). At the next window barrier the coordinator —
// which is the only thread running between windows — drains every channel
// into the destination lane's queue via EventQueue::schedule_batch. The
// conservative lookahead guarantees deliver_at lies at or beyond the next
// window's horizon, so the destination lane has not yet simulated past it;
// the pool's fork/join gives the happens-before edges that make the handoff
// race-free. The EventKey (serialisation-finish time, link id, per-link
// sequence) restores the exact pop order a single shared queue would have
// produced, which is what keeps serial and partitioned timelines
// bit-identical. See sim/pdes.hpp for the window loop itself.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace nicbar::sim {

/// Broadcast wakeup. Waiters queue up; notify_all() releases every current
/// waiter (later waiters wait for the next notification).
class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(sim) {}

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Condition& c;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { c.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_all() {
    std::vector<std::coroutine_handle<>> batch = std::move(waiters_);
    waiters_.clear();
    for (std::coroutine_handle<> h : batch) {
      sim_.schedule_now([h] { h.resume(); });
    }
  }

  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-way latch. Before open(): waiters suspend. After open(): waiters pass
/// straight through. open() releases everyone already waiting.
class Gate {
 public:
  explicit Gate(Simulator& sim) : sim_(sim) {}

  [[nodiscard]] bool is_open() const { return open_; }

  void open() {
    if (open_) return;
    open_ = true;
    std::vector<std::coroutine_handle<>> batch = std::move(waiters_);
    waiters_.clear();
    for (std::coroutine_handle<> h : batch) {
      sim_.schedule_now([h] { h.resume(); });
    }
  }

  void reset() { open_ = false; }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Gate& g;
      bool await_ready() const noexcept { return g.open_; }
      void await_suspend(std::coroutine_handle<> h) { g.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool open_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel carrying values of type T. send() never blocks;
/// recv() suspends while the channel is empty. Values are handed to waiting
/// receivers in FIFO order.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(sim) {}

  void send(T value) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->value.emplace(std::move(value));
      std::coroutine_handle<> h = w->handle;
      sim_.schedule_now([h] { h.resume(); });
      return;
    }
    queue_.push_back(std::move(value));
  }

  [[nodiscard]] auto recv() { return RecvAwaiter{*this}; }

  /// Receive with a timeout: yields std::nullopt if nothing arrives within
  /// `timeout` of simulated time (a non-positive timeout never suspends on
  /// an empty mailbox).
  [[nodiscard]] auto recv_for(Duration timeout) { return TimedRecvAwaiter{*this, timeout}; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

 private:
  /// Common state send() fills in: both awaiter kinds register as this.
  struct Waiter {
    std::optional<T> value;
    std::coroutine_handle<> handle;
  };

  struct RecvAwaiter : Waiter {
    Mailbox& mb;
    explicit RecvAwaiter(Mailbox& m) : mb(m) {}

    bool await_ready() {
      if (!mb.queue_.empty()) {
        this->value.emplace(std::move(mb.queue_.front()));
        mb.queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      mb.waiters_.push_back(this);
    }
    T await_resume() { return std::move(*this->value); }
  };

  struct TimedRecvAwaiter : Waiter {
    Mailbox& mb;
    Duration timeout;
    EventId timer;

    TimedRecvAwaiter(Mailbox& m, Duration t) : mb(m), timeout(t) {}

    bool await_ready() {
      if (!mb.queue_.empty()) {
        this->value.emplace(std::move(mb.queue_.front()));
        mb.queue_.pop_front();
        return true;
      }
      return timeout.ps() <= 0;  // already expired: resume with nullopt
    }
    void await_suspend(std::coroutine_handle<> h) {
      this->handle = h;
      mb.waiters_.push_back(this);
      timer = mb.sim_.schedule_in(timeout, [this] {
        // A send() at this same instant may have already claimed us (its
        // resume is queued behind this event); value set means it won.
        if (this->value.has_value()) return;
        std::erase(mb.waiters_, static_cast<Waiter*>(this));
        this->handle.resume();
      });
    }
    std::optional<T> await_resume() {
      mb.sim_.cancel(timer);
      return std::move(this->value);
    }
  };

  Simulator& sim_;
  std::deque<T> queue_;
  std::deque<Waiter*> waiters_;
};

/// Counted FIFO semaphore. acquire() suspends while all slots are taken;
/// release() hands a slot to the oldest waiter. Use ScopedHold for RAII.
class Resource {
 public:
  Resource(Simulator& sim, std::size_t capacity = 1) : sim_(sim), capacity_(capacity) {}

  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Resource& r;
      bool suspended = false;
      // Fresh acquirers may not jump the waiter queue.
      bool await_ready() const noexcept { return r.waiters_.empty() && r.in_use_ < r.capacity_; }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        r.waiters_.push_back(h);
      }
      // A suspended waiter is resumed by release(), which transfers the slot
      // without ever decrementing in_use_; only the fast path claims one.
      void await_resume() const noexcept {
        if (!suspended) ++r.in_use_;
      }
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      // Hand the slot directly to the oldest waiter: in_use_ is unchanged,
      // so late acquirers cannot steal it before the waiter runs.
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_now([h] { h.resume(); });
      return;
    }
    if (in_use_ > 0) --in_use_;
  }

  /// Acquires, holds the resource for `d` of simulated time, releases.
  [[nodiscard]] Task use(Duration d) {
    co_await acquire();
    co_await sim_.delay(d);
    release();
  }

  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace nicbar::sim
