// Simulated-time types.
//
// All simulated time in nicbar is kept in signed 64-bit picoseconds. A
// picosecond granularity lets us represent a 33 MHz NIC cycle (30303 ps)
// exactly while still covering ~106 days of simulated time, far beyond any
// experiment in this repository. Two strong types are provided:
//
//   Duration — a span of simulated time (difference type)
//   SimTime  — an absolute point on the simulation clock
//
// Arithmetic is restricted to the combinations that make physical sense
// (SimTime + Duration -> SimTime, SimTime - SimTime -> Duration, ...).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace nicbar::sim {

/// A span of simulated time, in picoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t picoseconds) : ps_(picoseconds) {}

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  [[nodiscard]] constexpr bool is_zero() const { return ps_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ps_ < 0; }

  constexpr Duration& operator+=(Duration o) { ps_ += o.ps_; return *this; }
  constexpr Duration& operator-=(Duration o) { ps_ -= o.ps_; return *this; }
  constexpr Duration& operator*=(std::int64_t k) { ps_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ps_ + b.ps_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ps_ - b.ps_}; }
  friend constexpr Duration operator-(Duration a) { return Duration{-a.ps_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ps_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ps_ * k}; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ps_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  /// Renders as a human-friendly value with unit ("12.34us").
  [[nodiscard]] std::string str() const;

 private:
  std::int64_t ps_ = 0;
};

/// An absolute point on the simulation clock, in picoseconds since t=0.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t picoseconds) : ps_(picoseconds) {}

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr SimTime& operator+=(Duration d) { ps_ += d.ps(); return *this; }
  constexpr SimTime& operator-=(Duration d) { ps_ -= d.ps(); return *this; }

  friend constexpr SimTime operator+(SimTime t, Duration d) { return SimTime{t.ps_ + d.ps()}; }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return SimTime{t.ps_ + d.ps()}; }
  friend constexpr SimTime operator-(SimTime t, Duration d) { return SimTime{t.ps_ - d.ps()}; }
  friend constexpr Duration operator-(SimTime a, SimTime b) { return Duration{a.ps_ - b.ps_}; }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  [[nodiscard]] std::string str() const;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }

 private:
  std::int64_t ps_ = 0;
};

// --- Construction helpers -------------------------------------------------

[[nodiscard]] constexpr Duration picoseconds(std::int64_t v) { return Duration{v}; }
[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) { return Duration{v * 1'000}; }
[[nodiscard]] constexpr Duration microseconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e6)};
}
[[nodiscard]] constexpr Duration milliseconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e9)};
}
[[nodiscard]] constexpr Duration seconds(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e12)};
}

/// Duration of one clock cycle at `mhz` megahertz.
[[nodiscard]] constexpr Duration cycle_at_mhz(double mhz) {
  return Duration{static_cast<std::int64_t>(1e6 / mhz)};
}

/// Duration of `cycles` clock cycles at `mhz` megahertz.
[[nodiscard]] constexpr Duration cycles_at_mhz(std::int64_t cycles, double mhz) {
  return Duration{static_cast<std::int64_t>(static_cast<double>(cycles) * 1e6 / mhz)};
}

/// Time to move `bytes` at `megabytes_per_s` MB/s.
[[nodiscard]] constexpr Duration transfer_time(std::int64_t bytes, double megabytes_per_s) {
  // bytes / (MB/s) = bytes * 1e12 ps / (mbps * 1e6 bytes) = bytes * 1e6 / mbps ps
  return Duration{static_cast<std::int64_t>(static_cast<double>(bytes) * 1e6 / megabytes_per_s)};
}

namespace literals {
constexpr Duration operator""_ps(unsigned long long v) { return Duration{static_cast<std::int64_t>(v)}; }
constexpr Duration operator""_ns(unsigned long long v) { return nanoseconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return microseconds(static_cast<double>(v)); }
constexpr Duration operator""_us(long double v) { return microseconds(static_cast<double>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return milliseconds(static_cast<double>(v)); }
constexpr Duration operator""_ms(long double v) { return milliseconds(static_cast<double>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return seconds(static_cast<double>(v)); }
}  // namespace literals

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace nicbar::sim
