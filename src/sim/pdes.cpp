#include "sim/pdes.hpp"

#include <algorithm>
#include <cstdint>

#include "sim/check.hpp"

namespace nicbar::sim::pdes {

namespace {

// Horizon arithmetic must not wrap: an idle-lane sentinel (SimTime::max())
// or a caller-supplied `until` near the end of representable time plus the
// lookahead would overflow a plain add.
SimTime sat_add(SimTime t, Duration d) {
  if (t.ps() > SimTime::max().ps() - d.ps()) return SimTime::max();
  return t + d;
}

}  // namespace

PartitionedSimulator::PartitionedSimulator(std::size_t partitions, Duration lookahead,
                                           unsigned workers)
    : lookahead_(lookahead), pool_(workers) {
  NICBAR_CHECK(partitions >= 1, "pdes.config", SimTime::zero(),
               "a partitioned simulation needs at least one partition");
  NICBAR_CHECK(partitions == 1 || lookahead.ps() > 0, "pdes.config", SimTime::zero(),
               "conservative synchronization requires positive lookahead "
               "(got %lld ps for %zu partitions): some cross-partition link "
               "has zero propagation delay",
               static_cast<long long>(lookahead.ps()), partitions);
  lanes_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) lanes_.push_back(std::make_unique<Simulator>());
  channels_.resize(partitions * partitions);
  lane_events_.resize(partitions, 0);
}

PartitionedSimulator::~PartitionedSimulator() = default;

void PartitionedSimulator::post(std::size_t from, std::size_t to, SimTime at, EventKey key,
                                EventQueue::Action action) {
  channel(from, to).push_back(EventQueue::BatchItem{at, key, std::move(action)});
}

SimTime PartitionedSimulator::now() const {
  SimTime t = SimTime::zero();
  for (const std::unique_ptr<Simulator>& l : lanes_) t = std::max(t, l->now());
  return t;
}

std::uint64_t PartitionedSimulator::run(SimTime until) {
  const std::size_t k = lanes_.size();
  if (k == 1) {
    // One partition degenerates to the serial engine verbatim (same clock
    // advancement, same rethrow point) — the baseline the tests diff against.
    const std::uint64_t n = lanes_[0]->run(until);
    stats_.events += n;
    return n;
  }

  const SimTime cap = until == SimTime::max() ? SimTime::max() : sat_add(until, Duration{1});
  std::uint64_t executed = 0;
  SimTime last_horizon{INT64_MIN};

  for (;;) {
    SimTime earliest = SimTime::max();
    for (const std::unique_ptr<Simulator>& l : lanes_) {
      earliest = std::min(earliest, l->next_event_time());
    }
    if (earliest == SimTime::max() || earliest > until) break;

    const SimTime horizon = std::min(sat_add(earliest, lookahead_), cap);
    // Safe-time monotonicity: every drained arrival lands at or beyond the
    // previous horizon, so the global earliest event — and with it the
    // horizon — must strictly advance. A violation means lost lookahead.
    NICBAR_CHECK(horizon > last_horizon, "pdes.safe_time", earliest,
                 "window horizon did not advance (%lld ps after %lld ps)",
                 static_cast<long long>(horizon.ps()),
                 static_cast<long long>(last_horizon.ps()));
    last_horizon = horizon;

    pool_.run(k, [&](std::size_t i) {
      if (lane_prologue_) lane_prologue_(i);
      lane_events_[i] = lanes_[i]->run_window(horizon);
    });
    for (std::size_t i = 0; i < k; ++i) executed += lane_events_[i];
    for (const std::unique_ptr<Simulator>& l : lanes_) l->rethrow_pending();

    // Barrier drain: only the coordinator runs here, so it may touch every
    // lane's queue. Source-lane order inside the merged batch is irrelevant —
    // the EventKeys totally order same-instant deliveries in the heap.
    for (std::size_t to = 0; to < k; ++to) {
      drain_scratch_.clear();
      for (std::size_t from = 0; from < k; ++from) {
        std::vector<EventQueue::BatchItem>& ch = channel(from, to);
        for (EventQueue::BatchItem& it : ch) {
          NICBAR_CHECK(it.at >= horizon, "pdes.straggler", it.at,
                       "cross-partition delivery at %lld ps is inside the just-"
                       "completed window (horizon %lld ps): the posting link's "
                       "propagation undercuts the lookahead",
                       static_cast<long long>(it.at.ps()),
                       static_cast<long long>(horizon.ps()));
          drain_scratch_.push_back(std::move(it));
        }
        ch.clear();
      }
      if (drain_scratch_.empty()) continue;
      stats_.channel_messages += drain_scratch_.size();
      stats_.max_drain_batch = std::max(stats_.max_drain_batch,
                                        static_cast<std::uint64_t>(drain_scratch_.size()));
      lanes_[to]->drain_batch(drain_scratch_);
    }
    ++stats_.windows;
  }

  // Land every lane on the same end-of-run clock (Simulator::run advances to
  // a finite `until` when it drains early; mirror that globally).
  bool all_idle = true;
  for (const std::unique_ptr<Simulator>& l : lanes_) all_idle &= l->idle();
  SimTime end = now();
  if (until != SimTime::max() && all_idle) end = std::max(end, until);
  for (const std::unique_ptr<Simulator>& l : lanes_) {
    if (l->idle()) l->advance_to(end);
  }

  stats_.events += executed;
  return executed;
}

}  // namespace nicbar::sim::pdes
