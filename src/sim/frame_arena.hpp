// Size-class freelist arena for coroutine frames.
//
// Every simulated process and every awaited sub-task allocates a coroutine
// frame; a barrier run creates and destroys them at event rate (one
// ValueTask frame per port receive, one per barrier rep per member). The
// general-purpose allocator handles that churn correctly but pays its full
// bookkeeping on every round trip. Frames, however, recur in a handful of
// fixed sizes — the same coroutine bodies are instantiated over and over —
// which is exactly the shape a size-class freelist serves best: free pushes
// the block onto the class's list, allocate pops it back, both O(1) with no
// header scans or synchronization.
//
// Lists are thread_local, so lanes of a partitioned run never contend. A
// block may be freed on a different thread than allocated it (a frame built
// by a worker lane can be destroyed by the coordinator at teardown); it
// simply joins the freeing thread's list and is recycled there. Blocks are
// returned to the system when the owning thread exits.
//
// Task and ValueTask route their promise operator new/delete here, so the
// arena is transparent to every coroutine in the repository.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

namespace nicbar::sim::frame_arena {

// 16 size classes of 64-byte granularity cover frames up to 1 KiB; larger
// frames (rare: deeply-nested coroutines with big locals) fall through to
// the global allocator, marked by class index kOversize.
inline constexpr std::size_t kGranularity = 64;
inline constexpr std::size_t kClasses = 16;
inline constexpr std::size_t kMaxPooled = kGranularity * kClasses;
inline constexpr std::size_t kOversize = kClasses;

// Each block is prefixed by one max-aligned header word holding its class
// index, so deallocate() needs no size argument from the caller.
inline constexpr std::size_t kHeader = alignof(std::max_align_t);

struct FreeList {
  void* head[kClasses] = {};

  ~FreeList() {
    for (std::size_t c = 0; c < kClasses; ++c) {
      void* p = head[c];
      while (p != nullptr) {
        void* next = *static_cast<void**>(p);
        std::free(p);
        p = next;
      }
    }
  }
};

inline FreeList& lists() {
  thread_local FreeList tl;
  return tl;
}

[[nodiscard]] inline void* allocate(std::size_t size) {
  const std::size_t cls = size <= kMaxPooled ? (size + kGranularity - 1) / kGranularity - 1
                                             : kOversize;
  void* block;
  if (cls != kOversize && lists().head[cls] != nullptr) {
    block = lists().head[cls];
    lists().head[cls] = *static_cast<void**>(block);
  } else {
    const std::size_t bytes =
        kHeader + (cls == kOversize ? size : (cls + 1) * kGranularity);
    block = std::malloc(bytes);
    if (block == nullptr) throw std::bad_alloc{};
  }
  *static_cast<std::size_t*>(block) = cls;
  return static_cast<char*>(block) + kHeader;
}

inline void deallocate(void* p) noexcept {
  if (p == nullptr) return;
  void* block = static_cast<char*>(p) - kHeader;
  const std::size_t cls = *static_cast<std::size_t*>(block);
  if (cls == kOversize) {
    std::free(block);
    return;
  }
  *static_cast<void**>(block) = lists().head[cls];
  lists().head[cls] = block;
}

}  // namespace nicbar::sim::frame_arena
