#include "sim/telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "sim/causal.hpp"

namespace nicbar::sim::telemetry {

// --- MetricsRegistry ----------------------------------------------------------

Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                      std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
  }
  return it->second;
}

const std::uint64_t* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const double* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  char buf[128];
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) os << ',';
    first = false;
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    os << "\n    \"" << json_escape(name) << "\": " << buf;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) os << ',';
    first = false;
    std::snprintf(buf, sizeof buf, "%.6f", v);
    os << "\n    \"" << json_escape(name) << "\": " << buf;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"count\": %" PRIu64
                  ", \"lo\": %.6f, \"hi\": %.6f, \"p50\": %.6f, \"p90\": %.6f, "
                  "\"p99\": %.6f}",
                  h.count(), h.lo(), h.hi(), h.percentile(50), h.percentile(90),
                  h.percentile(99));
    os << "\n    \"" << json_escape(name) << "\": " << buf;
  }
  os << "\n  }\n}\n";
}

// --- TraceEventSink -----------------------------------------------------------

int TraceEventSink::track(const std::string& name) {
  const auto it = tracks_.find(name);
  if (it != tracks_.end()) return it->second;
  const int id = static_cast<int>(track_names_.size());
  tracks_.emplace(name, id);
  track_names_.push_back(name);
  return id;
}

void TraceEventSink::duration(int track_id, const char* name, SimTime start, Duration dur,
                              const char* category, TraceCategory cat, std::uint64_t id) {
  if (!pass(cat)) return;
  events_.push_back(Event{'X', track_id, name, category, start.ps(), dur.ps(), id});
}

void TraceEventSink::instant(int track_id, const char* name, SimTime at,
                             const char* category, TraceCategory cat) {
  if (!pass(cat)) return;
  events_.push_back(Event{'i', track_id, name, category, at.ps(), 0, 0});
}

void TraceEventSink::flow_start(int track_id, const char* name, SimTime at, std::uint64_t id,
                                const char* category, TraceCategory cat) {
  if (!pass(cat)) return;
  events_.push_back(Event{'s', track_id, name, category, at.ps(), 0, id});
}

void TraceEventSink::flow_end(int track_id, const char* name, SimTime at, std::uint64_t id,
                              const char* category, TraceCategory cat) {
  if (!pass(cat)) return;
  events_.push_back(Event{'f', track_id, name, category, at.ps(), 0, id});
}

std::size_t TraceEventSink::events_on(int track_id) const {
  std::size_t n = 0;
  for (const Event& e : events_) {
    if (e.track == track_id) ++n;
  }
  return n;
}

void TraceEventSink::write_json(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  char buf[256];
  // Thread-name metadata: one named track ("thread") per registered track,
  // all under pid 0; Perfetto renders them as separate rows.
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": " << i
       << ", \"args\": {\"name\": \"" << json_escape(track_names_[i]) << "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) os << ",\n";
    first = false;
    if (e.phase == 'X') {
      if (e.id != 0) {
        std::snprintf(buf, sizeof buf,
                      "  {\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": 0, "
                      "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"id\": %" PRIu64
                      "}}",
                      e.name, e.category, e.track, static_cast<double>(e.ts_ps) * 1e-6,
                      static_cast<double>(e.dur_ps) * 1e-6, e.id);
      } else {
        std::snprintf(buf, sizeof buf,
                      "  {\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": 0, "
                      "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                      e.name, e.category, e.track, static_cast<double>(e.ts_ps) * 1e-6,
                      static_cast<double>(e.dur_ps) * 1e-6);
      }
    } else if (e.phase == 's') {
      std::snprintf(buf, sizeof buf,
                    "  {\"ph\": \"s\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": 0, "
                    "\"tid\": %d, \"ts\": %.3f, \"id\": %" PRIu64 "}",
                    e.name, e.category, e.track, static_cast<double>(e.ts_ps) * 1e-6, e.id);
    } else if (e.phase == 'f') {
      std::snprintf(buf, sizeof buf,
                    "  {\"ph\": \"f\", \"bp\": \"e\", \"name\": \"%s\", \"cat\": \"%s\", "
                    "\"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"id\": %" PRIu64 "}",
                    e.name, e.category, e.track, static_cast<double>(e.ts_ps) * 1e-6, e.id);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  {\"ph\": \"i\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": 0, "
                    "\"tid\": %d, \"ts\": %.3f, \"s\": \"t\"}",
                    e.name, e.category, e.track, static_cast<double>(e.ts_ps) * 1e-6);
    }
    os << buf;
  }
  os << "\n]}\n";
}

// --- BreakdownCollector --------------------------------------------------------

void BreakdownCollector::barrier_posted(std::uint32_t node, std::uint16_t port,
                                        std::uint32_t epoch, SimTime at, Duration host_cost) {
  Pending& p = pending_[key(node, port, epoch)];
  p.t0 = at;
  p.posted = true;
  p.host += host_cost;
}

void BreakdownCollector::add_host(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                                  Duration d) {
  pending_[key(node, port, epoch)].host += d;
}

void BreakdownCollector::add_nic(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                                 Duration d) {
  pending_[key(node, port, epoch)].nic += d;
}

void BreakdownCollector::add_dma(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                                 Duration d) {
  pending_[key(node, port, epoch)].dma += d;
}

void BreakdownCollector::add_wire(std::uint32_t node, std::uint16_t port, std::uint32_t epoch,
                                  Duration d) {
  pending_[key(node, port, epoch)].wire += d;
}

void BreakdownCollector::barrier_completed(std::uint32_t node, std::uint16_t port,
                                           std::uint32_t epoch, SimTime at,
                                           Duration host_cost) {
  const auto it = pending_.find(key(node, port, epoch));
  if (it == pending_.end() || !it->second.posted) return;  // never saw the post
  Pending p = it->second;
  pending_.erase(it);
  p.host += host_cost;

  CostBreakdown b;
  b.total_us = (at - p.t0).us();
  b.host_us = p.host.us();
  b.nic_us = p.nic.us();
  b.dma_us = p.dma.us();
  b.wire_us = p.wire.us();
  b.wait_us = b.total_us - b.host_us - b.nic_us - b.dma_us - b.wire_us;
  last_ = b;

  host_.add(b.host_us);
  nic_.add(b.nic_us);
  dma_.add(b.dma_us);
  wire_.add(b.wire_us);
  wait_.add(b.wait_us);
  total_.add(b.total_us);
  ++count_;
}

CostBreakdown BreakdownCollector::mean() const {
  CostBreakdown b;
  if (count_ == 0) return b;
  b.host_us = host_.mean();
  b.nic_us = nic_.mean();
  b.dma_us = dma_.mean();
  b.wire_us = wire_.mean();
  b.total_us = total_.mean();
  // The residual keeps the invariant sum == total exactly, even after the
  // independent means round differently.
  b.wait_us = b.total_us - b.host_us - b.nic_us - b.dma_us - b.wire_us;
  return b;
}

void BreakdownCollector::snapshot(MetricsRegistry& m) const {
  const CostBreakdown b = mean();
  m.counter("breakdown.barriers") = barriers();
  m.gauge("breakdown.host_us") = b.host_us;
  m.gauge("breakdown.nic_us") = b.nic_us;
  m.gauge("breakdown.dma_us") = b.dma_us;
  m.gauge("breakdown.wire_us") = b.wire_us;
  m.gauge("breakdown.wait_us") = b.wait_us;
  m.gauge("breakdown.total_us") = b.total_us;
}

// --- Telemetry ------------------------------------------------------------------

Telemetry::Telemetry() = default;
Telemetry::~Telemetry() = default;

TraceEventSink& Telemetry::enable_trace() {
  if (!trace_) trace_ = std::make_unique<TraceEventSink>();
  return *trace_;
}

BreakdownCollector& Telemetry::enable_breakdown() {
  if (!breakdown_) breakdown_ = std::make_unique<BreakdownCollector>();
  return *breakdown_;
}

causal::CausalTracer& Telemetry::enable_causal() {
  if (!causal_) causal_ = std::make_unique<causal::CausalTracer>();
  return *causal_;
}

// --- JSON helpers ---------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace nicbar::sim::telemetry
