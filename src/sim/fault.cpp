#include "sim/fault.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

namespace nicbar::sim::fault {

namespace {

[[noreturn]] void fail(int line_no, const std::string& line, const std::string& why) {
  throw std::runtime_error("fault plan line " + std::to_string(line_no) + ": " + why + ": \"" +
                           line + "\"");
}

/// Reads a time operand: microseconds, or `-` for "never".
SimTime read_time_us(std::istringstream& in, int line_no, const std::string& line,
                     const char* what) {
  std::string tok;
  if (!(in >> tok)) fail(line_no, line, std::string("missing ") + what);
  if (tok == "-") return SimTime::max();
  try {
    return SimTime{0} + microseconds(std::stod(tok));
  } catch (const std::exception&) {
    fail(line_no, line, std::string("bad ") + what);
  }
}

double read_prob(std::istringstream& in, int line_no, const std::string& line, const char* what) {
  double p = 0.0;
  if (!(in >> p)) fail(line_no, line, std::string("missing ") + what);
  if (p < 0.0 || p > 1.0) fail(line_no, line, std::string(what) + " outside [0,1]");
  return p;
}

/// Optional trailing link pattern; `*` and absence both mean "every link".
std::string read_link(std::istringstream& in) {
  std::string link;
  if (in >> link && link != "*") return link;
  return std::string{};
}

}  // namespace

FaultPlan parse_fault_plan(std::istream& in) {
  FaultPlan plan;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    std::istringstream ls(hash == std::string::npos ? line : line.substr(0, hash));
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only line

    if (verb == "seed") {
      if (!(ls >> plan.seed)) fail(line_no, line, "missing seed value");
    } else if (verb == "loss") {
      UniformLoss l;
      l.prob = read_prob(ls, line_no, line, "loss probability");
      l.link = read_link(ls);
      plan.loss.push_back(std::move(l));
    } else if (verb == "burst") {
      BurstLoss b;
      b.p_enter_bad = read_prob(ls, line_no, line, "p_enter_bad");
      b.p_exit_bad = read_prob(ls, line_no, line, "p_exit_bad");
      b.loss_bad = read_prob(ls, line_no, line, "loss_bad");
      b.link = read_link(ls);
      plan.bursts.push_back(std::move(b));
    } else if (verb == "corrupt") {
      Corruption c;
      c.prob = read_prob(ls, line_no, line, "corruption probability");
      c.link = read_link(ls);
      plan.corruption.push_back(std::move(c));
    } else if (verb == "link-down") {
      LinkDownWindow w;
      w.from = read_time_us(ls, line_no, line, "from time");
      w.until = read_time_us(ls, line_no, line, "until time");
      w.link = read_link(ls);
      if (w.until <= w.from) fail(line_no, line, "window ends before it starts");
      plan.link_down.push_back(std::move(w));
    } else if (verb == "nic-crash") {
      NicCrash c;
      c.line = line_no;
      if (!(ls >> c.node)) fail(line_no, line, "missing node id");
      c.at = read_time_us(ls, line_no, line, "crash time");
      std::string tok;
      if (ls >> tok) {
        if (tok == "-") {
          c.restart_at = SimTime::max();
        } else {
          try {
            c.restart_at = SimTime{0} + microseconds(std::stod(tok));
          } catch (const std::exception&) {
            fail(line_no, line, "bad restart time");
          }
        }
      }
      if (c.restart_at <= c.at) fail(line_no, line, "restart precedes crash");
      plan.nic_crashes.push_back(c);
    } else if (verb == "switch-port-down") {
      SwitchPortDown s;
      s.line = line_no;
      if (!(ls >> s.switch_id >> s.port)) fail(line_no, line, "missing switch/port ids");
      s.from = read_time_us(ls, line_no, line, "from time");
      s.until = read_time_us(ls, line_no, line, "until time");
      if (s.until <= s.from) fail(line_no, line, "window ends before it starts");
      plan.switch_ports_down.push_back(s);
    } else {
      fail(line_no, line, "unknown directive '" + verb + "'");
    }
  }
  return plan;
}

FaultPlan parse_fault_plan(const std::string& text) {
  std::istringstream in(text);
  return parse_fault_plan(in);
}

}  // namespace nicbar::sim::fault
