// Deterministic pseudo-random source (PCG32). Every stochastic element of
// the simulation (packet-loss injection, jittered barrier arrival, workload
// generators) draws from an explicitly seeded Rng so runs are reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace nicbar::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    next_u32();
    state_ += 0x9e3779b97f4a7c15ULL + seed;
    next_u32();
  }

  /// Uniform 32-bit value (PCG-XSH-RR).
  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u32()) * (1.0 / 4294967296.0); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint32_t below(std::uint32_t n) {
    if (n == 0) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      const std::uint32_t threshold = (0u - n) % n;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * n;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace nicbar::sim
