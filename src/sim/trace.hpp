// Lightweight category-filtered tracing.
//
// Hardware-model classes emit trace lines through a Tracer so that tests and
// debugging sessions can watch packet/DMA/firmware activity. Tracing is off
// by default and costs one branch per call site when disabled.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace nicbar::sim {

enum class TraceCategory : std::uint32_t {
  kHost = 1u << 0,     // host library calls and completions
  kSdma = 1u << 1,     // SDMA engine (host -> NIC)
  kSend = 1u << 2,     // SEND engine (NIC -> wire)
  kRecv = 1u << 3,     // RECV engine (wire -> NIC)
  kRdma = 1u << 4,     // RDMA engine (NIC -> host)
  kNet = 1u << 5,      // links and switches
  kBarrier = 1u << 6,  // barrier firmware decisions
  kReliab = 1u << 7,   // acks, nacks, retransmissions
  kAll = 0xffffffffu,
};

class Tracer {
 public:
  Tracer() = default;

  /// Directs output to `os` (nullptr disables) for categories in `mask`.
  /// The mask is kept as given even when `os` is null so that a later
  /// enable(os) picks the filter back up; on() gates on the stream, which
  /// preserves the one-untaken-branch disabled path at every call site.
  void enable(std::ostream* os, std::uint32_t mask = static_cast<std::uint32_t>(TraceCategory::kAll)) {
    os_ = os;
    mask_ = mask;
  }

  [[nodiscard]] bool on(TraceCategory c) const {
    return os_ != nullptr && (mask_ & static_cast<std::uint32_t>(c)) != 0;
  }

  /// printf-style trace line, prefixed with the simulated time.
  void log(TraceCategory c, SimTime at, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  std::ostream* os_ = nullptr;
  std::uint32_t mask_ = 0;
};

/// Parses a comma-separated category list ("host,sdma,send,recv,rdma,net,
/// barrier,reliab" or "all") into a TraceCategory bit mask. Names are
/// case-sensitive and match the enumerators without the k prefix; empty
/// elements are rejected. Returns nullopt on any unknown name.
[[nodiscard]] std::optional<std::uint32_t> parse_trace_mask(const std::string& spec);

/// The accepted names for parse_trace_mask, for help text and error messages.
[[nodiscard]] const char* trace_mask_names();

}  // namespace nicbar::sim
