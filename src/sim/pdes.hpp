// sim::pdes — conservative parallel discrete-event simulation.
//
// A PartitionedSimulator runs K independent Simulators ("lanes"), one per
// partition of the modelled cluster, synchronized by barrier-delimited
// windows instead of null messages:
//
//   1. The coordinator computes the global earliest pending event time E
//      (min over lanes) and sets the window horizon H = E + L, where L is
//      the *lookahead*: the minimum propagation delay of any link that
//      crosses a partition boundary.
//   2. Every lane, in parallel on an exec::LanePool, executes all of its
//      events with time strictly below H (Simulator::run_window). A lane
//      never schedules into another lane; a cross-partition delivery is
//      posted to this object's channel matrix instead (see sim/sync.hpp for
//      the handoff convention).
//   3. At the barrier the coordinator drains every channel into its
//      destination lane's queue and the loop repeats.
//
// Safety (why no lane ever receives an event in its past): a message posted
// during a window originates from an event at time t >= E and arrives at
// t_serialised + prop >= t + L >= E + L = H, while the receiving lane only
// simulated times < H. The same bound makes the horizon strictly monotone
// (E_next >= H, so H_next >= H + L > H); both properties are asserted every
// window ("pdes.safe_time", "pdes.straggler"). L must be positive when K > 1
// — a zero-lookahead topology cannot be conservatively parallelized.
//
// Determinism: lanes only interact through the channels, every channel
// message carries an EventKey derived from simulation content, and keyed
// events fire in (time, key) order regardless of insertion time (see
// EventQueue). The result is a timeline bit-identical to the serial engine
// for ANY worker or partition count — the property pinned by the
// tier1_pdes integration tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/exec.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace nicbar::sim::pdes {

/// Counters describing a partitioned run (all coordinator-side; stable for
/// a given model regardless of worker count).
struct WindowStats {
  std::uint64_t windows = 0;           // barrier rounds executed
  std::uint64_t events = 0;            // events executed across all lanes
  std::uint64_t channel_messages = 0;  // cross-partition deliveries drained
  std::uint64_t max_drain_batch = 0;   // largest single-lane drain (events)
};

class PartitionedSimulator {
 public:
  /// `partitions` lanes synchronized with lookahead `lookahead`, windows
  /// executed on `workers` threads (resolved via exec::resolve_workers;
  /// more workers than partitions is allowed and harmless). `lookahead`
  /// must be positive when `partitions` > 1.
  PartitionedSimulator(std::size_t partitions, Duration lookahead, unsigned workers);
  ~PartitionedSimulator();

  PartitionedSimulator(const PartitionedSimulator&) = delete;
  PartitionedSimulator& operator=(const PartitionedSimulator&) = delete;

  [[nodiscard]] std::size_t partitions() const { return lanes_.size(); }
  [[nodiscard]] unsigned workers() const { return pool_.workers(); }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  [[nodiscard]] Simulator& lane(std::size_t i) { return *lanes_[i]; }

  /// Posts a delivery into another lane. Callable only from the thread
  /// currently executing lane `from` (each channel cell has exactly one
  /// writer per window). `at` must be at or beyond the current window's
  /// horizon — guaranteed by construction when the entry is a link delivery
  /// whose propagation is >= the lookahead; asserted at the drain.
  void post(std::size_t from, std::size_t to, SimTime at, EventKey key,
            EventQueue::Action action);

  /// Invoked on the executing thread immediately before each lane's window
  /// (lane index as argument). Used to bind thread-local recording context
  /// — e.g. the causal tracer's shard — to the lane about to run.
  void set_lane_prologue(std::function<void(std::size_t)> fn) {
    lane_prologue_ = std::move(fn);
  }

  /// Runs the window loop until every lane is idle and every channel is
  /// empty, or until the earliest pending event lies beyond `until`
  /// (mirroring Simulator::run, events at exactly `until` still execute and
  /// idle lanes land on `until`). Afterwards every lane's clock is advanced
  /// to the global end time, so post-run reads (utilisation denominators,
  /// monitor snapshots) see the same clock a single shared simulator would
  /// show. Returns the total number of events executed; rethrows the first
  /// pending process exception.
  std::uint64_t run(SimTime until = SimTime::max());

  /// Global clock: the maximum lane time.
  [[nodiscard]] SimTime now() const;

  [[nodiscard]] const WindowStats& stats() const { return stats_; }

 private:
  std::vector<EventQueue::BatchItem>& channel(std::size_t from, std::size_t to) {
    return channels_[from * lanes_.size() + to];
  }

  std::vector<std::unique_ptr<Simulator>> lanes_;
  // K*K matrix, row-major by source lane: cell (f, t) is written only by the
  // worker running lane f during a window and read only by the coordinator
  // at the barrier (the pool's dispatch/join edges order the two).
  std::vector<std::vector<EventQueue::BatchItem>> channels_;
  std::vector<EventQueue::BatchItem> drain_scratch_;
  std::vector<std::uint64_t> lane_events_;  // per-lane window counts (no sharing)
  std::function<void(std::size_t)> lane_prologue_;
  Duration lookahead_;
  exec::LanePool pool_;
  WindowStats stats_;
};

}  // namespace nicbar::sim::pdes
