#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace nicbar::sim {

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  std::size_t idx = 0;
  if (span > 0) {
    const double f = (x - lo_) / span;
    const auto scaled = static_cast<std::int64_t>(f * static_cast<double>(counts_.size()));
    idx = static_cast<std::size_t>(
        std::clamp<std::int64_t>(scaled, 0, static_cast<std::int64_t>(counts_.size()) - 1));
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  if (target <= 0.0) {
    // p = 0: the lower edge of the first occupied bin, not lo_ itself.
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > 0) return bin_lower(i);
    }
    return lo_;
  }
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;  // empty bins cannot contain the target
    running += counts_[i];
    if (static_cast<double>(running) >= target) {
      // Linear interpolation within the bin: the target'th sample sits
      // (target - prev) / count of the way through [bin_lower, bin_upper).
      const double prev = static_cast<double>(running - counts_[i]);
      const double frac = (target - prev) / static_cast<double>(counts_[i]);
      return bin_lower(i) + frac * bin_width();
    }
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty histogram)\n";
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    std::snprintf(line, sizeof line, "%10.3f |%-*s| %llu\n", bin_lower(i),
                  static_cast<int>(width),
                  std::string(bar, '#').c_str(), static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace nicbar::sim
