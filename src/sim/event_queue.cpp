#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace nicbar::sim {

EventId EventQueue::schedule(SimTime at, Action action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(action)});
  pending_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  // Only events still pending can be cancelled; cancelling a fired (or
  // never-issued) id is a harmless no-op. The seq stays in `cancelled_` so
  // the heap can lazily discard the dead entry when it surfaces.
  if (pending_.erase(id.seq) == 0) return false;
  cancelled_.insert(id.seq);
  return true;
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_front();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Action EventQueue::pop(SimTime& fired_at) {
  drop_dead_front();
  assert(!heap_.empty());
  // priority_queue::top() is const; we must move the action out. Entry's
  // action is the only mutable payload and the entry is immediately popped,
  // so a const_cast move here is safe and avoids copying the std::function.
  Entry& top = const_cast<Entry&>(heap_.top());
  fired_at = top.at;
  Action action = std::move(top.action);
  pending_.erase(top.seq);
  heap_.pop();
  return action;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  pending_.clear();
}

}  // namespace nicbar::sim
