#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace nicbar::sim {

namespace {

constexpr std::uint64_t pack_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) | (slot + 1u);
}

// Returns kNilSlot-like sentinel via bool; outputs are valid only on true.
inline bool unpack_id(EventId id, std::uint32_t& slot, std::uint32_t& gen) {
  const std::uint32_t low = static_cast<std::uint32_t>(id.seq & 0xffffffffu);
  if (low == 0) return false;
  slot = low - 1u;
  gen = static_cast<std::uint32_t>(id.seq >> 32);
  return true;
}

}  // namespace

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].next_free;
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();  // free captured resources now, not when the entry surfaces
  s.live = false;
  ++s.gen;  // invalidates every outstanding EventId for this slot
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

void EventQueue::sift_up(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void EventQueue::pop_heap_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::compact() {
  // One linear pass dropping dead entries, then a bottom-up heapify. The
  // (time, k1, k2) key still totally orders the survivors, so rebuild order
  // cannot affect pop order — determinism is untouched.
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (entry_live(e)) heap_[kept++] = e;
  }
  heap_.resize(kept);
  for (std::size_t i = kept / 2; i-- > 0;) sift_down(i);
}

EventId EventQueue::schedule_entry(SimTime at, std::uint64_t k1, std::uint64_t k2,
                                   Action action) {
  // Cancel-heavy phases can leave the heap mostly dead; compact before it
  // grows past 4x the live count (the threshold keeps small queues exempt).
  if (heap_.size() >= 64 && heap_.size() > 4 * (live_ + 1)) compact();
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.live = true;
  heap_.push_back(HeapEntry{at.ps(), k1, k2, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  ++scheduled_;
  return EventId{pack_id(slot, s.gen)};
}

EventId EventQueue::schedule(SimTime at, Action action) {
  return schedule_entry(at, kUnkeyedBit | next_order_++, 0, std::move(action));
}

EventId EventQueue::schedule_keyed(SimTime at, EventKey key, Action action) {
  assert((key.k1 & kUnkeyedBit) == 0 && "keyed events must leave k1's top bit clear");
  return schedule_entry(at, key.k1, key.k2, std::move(action));
}

void EventQueue::schedule_batch(std::vector<BatchItem>& items) {
  if (items.empty()) return;
  // Below the rebuild threshold, per-item sift-up on an almost-sorted heap
  // is cheaper than touching every entry; above it, append everything and
  // heapify bottom-up in one O(n + m) pass. Either way the (time, key)
  // comparator totally orders the result, so pop order — and therefore the
  // simulation — is identical.
  const bool rebuild = items.size() >= heap_.size();
  for (BatchItem& it : items) {
    if (!rebuild) {
      schedule_keyed(it.at, it.key, std::move(it.action));
      continue;
    }
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.action = std::move(it.action);
    s.live = true;
    heap_.push_back(HeapEntry{it.at.ps(), it.key.k1, it.key.k2, slot, s.gen});
    ++live_;
    ++scheduled_;
  }
  if (rebuild) {
    for (std::size_t i = heap_.size() / 2; i-- > 0;) sift_down(i);
  }
  items.clear();
}

bool EventQueue::cancel(EventId id) {
  std::uint32_t slot = 0, gen = 0;
  if (!unpack_id(id, slot, gen)) return false;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A fired, cancelled, or cleared event bumped the generation; a stale id
  // therefore never touches the slot's current occupant.
  if (!s.live || s.gen != gen) return false;
  retire_slot(slot);  // the heap entry dies lazily when it surfaces
  return true;
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && !entry_live(heap_.front())) pop_heap_top();
}

SimTime EventQueue::next_time() {
  drop_dead_front();
  assert(!heap_.empty());
  return SimTime{heap_.front().at_ps};
}

EventQueue::Action EventQueue::pop(SimTime& fired_at) {
  drop_dead_front();
  assert(!heap_.empty());
  const HeapEntry top = heap_.front();
  fired_at = SimTime{top.at_ps};
  Action action = std::move(slots_[top.slot].action);
  retire_slot(top.slot);
  pop_heap_top();
  return action;
}

void EventQueue::clear() {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) retire_slot(i);
  }
  heap_.clear();
  assert(live_ == 0);
}

}  // namespace nicbar::sim
