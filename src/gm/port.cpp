#include "gm/port.hpp"

#include <stdexcept>
#include <utility>

namespace nicbar::gm {

Port::Port(sim::Simulator& sim, sim::Resource& host_cpu, nic::Nic& nic, nic::PortId id,
           GmConfig config)
    : sim_(sim), cpu_(host_cpu), nic_(nic), id_(id), config_(config), events_(sim) {}

Port::~Port() {
  if (open_) close();
}

void Port::open() {
  if (open_) throw std::logic_error("port already open");
  nic_.open_port(id_, &events_);
  open_ = true;
}

void Port::close() {
  if (!open_) return;
  nic_.close_port(id_);
  open_ = false;
}

sim::Task Port::send(Endpoint dst, std::int64_t bytes, std::uint64_t tag, std::int64_t value) {
  co_await cpu_.use(config_.host_send_overhead + config_.layer_overhead);
  nic::SendToken token;
  token.src_port = id_;
  token.dst = dst;
  token.bytes = bytes;
  token.tag = tag;
  token.value = value;
  nic_.post_send_token(std::move(token));
}

sim::Task Port::provide_receive_buffer(std::int64_t bytes) {
  co_await cpu_.use(config_.host_provide_overhead);
  nic_.post_receive_token(id_, nic::RecvToken{bytes});
}

sim::Task Port::multicast(std::vector<Endpoint> destinations, std::int64_t bytes,
                          std::uint64_t tag, std::int64_t value) {
  co_await cpu_.use(config_.host_send_overhead + config_.layer_overhead);
  nic::MulticastToken token;
  token.src_port = id_;
  token.destinations = std::move(destinations);
  token.bytes = bytes;
  token.tag = tag;
  token.value = value;
  nic_.post_multicast_token(std::move(token));
}

sim::ValueTask<GmEvent> Port::receive() {
  GmEvent ev = co_await events_.recv();
  co_await cpu_.use(config_.host_recv_overhead + config_.layer_overhead);
  note_event_received(ev);
  co_return ev;
}

sim::ValueTask<std::optional<GmEvent>> Port::receive_for(sim::Duration timeout) {
  std::optional<GmEvent> ev = co_await events_.recv_for(timeout);
  if (ev.has_value()) {
    co_await cpu_.use(config_.host_recv_overhead + config_.layer_overhead);
    note_event_received(*ev);
  }
  co_return ev;
}

sim::ValueTask<std::optional<GmEvent>> Port::poll() {
  co_await cpu_.use(config_.host_poll_overhead);
  std::optional<GmEvent> ev = events_.try_recv();
  if (ev.has_value()) {
    co_await cpu_.use(config_.host_recv_overhead + config_.layer_overhead);
    note_event_received(*ev);
  }
  co_return ev;
}

void Port::note_event_received(const GmEvent& ev) {
  if (ev.type != GmEventType::kBarrierComplete && ev.type != GmEventType::kReduceComplete) {
    return;
  }
  auto* bcoll = nic_.breakdown_collector();
  if (bcoll != nullptr) {
    // The HRecv term of Eq. 1-2: the host CPU cost of seeing the completion.
    bcoll->barrier_completed(node(), id_, ev.barrier_epoch, sim_.now(),
                             config_.host_recv_overhead + config_.layer_overhead);
  }
  auto* causal = nic_.causal_tracer();
  if (causal != nullptr && ev.type == GmEventType::kBarrierComplete && ev.causal != 0) {
    // Sink span of the barrier's dependency DAG: the HRecv (+Layer) term of
    // Eq. 1-2 — host CPU consuming the completion event.
    const sim::Duration host = config_.host_recv_overhead + config_.layer_overhead;
    const std::uint64_t sink = causal->record(sim::causal::Segment::kHost, node(),
                                              "host_recv", sim_.now() - host, sim_.now(),
                                              ev.causal);
    causal->complete_barrier(node(), id_, ev.barrier_epoch, sink);
  }
}

sim::Task Port::post_rma(nic::RmaToken token) {
  co_await cpu_.use(config_.host_send_overhead + config_.layer_overhead);
  token.src_port = id_;
  nic_.post_rma_token(std::move(token));
}

sim::Task Port::provide_barrier_buffer() {
  co_await cpu_.use(config_.host_provide_overhead);
  nic_.provide_barrier_buffer(id_);
}

sim::Task Port::compute(sim::Duration d) { co_await cpu_.use(d); }

sim::ValueTask<Epoch> Port::reduce_send(nic::ReduceToken token) {
  const sim::SimTime t0 = sim_.now();
  co_await cpu_.use(config_.host_barrier_overhead + config_.layer_overhead);
  token.src_port = id_;
  token.epoch = next_epoch_++;
  const std::uint32_t epoch = token.epoch;
  if (auto* bcoll = nic_.breakdown_collector()) {
    bcoll->barrier_posted(node(), id_, epoch, t0,
                          config_.host_barrier_overhead + config_.layer_overhead);
  }
  nic_.post_reduce_token(std::move(token));
  co_return Epoch{epoch};
}

sim::ValueTask<Epoch> Port::barrier_send(nic::BarrierToken token) {
  const sim::SimTime t0 = sim_.now();
  co_await cpu_.use(config_.host_barrier_overhead + config_.layer_overhead);
  token.src_port = id_;
  token.epoch = next_epoch_++;
  const std::uint32_t epoch = token.epoch;
  if (auto* bcoll = nic_.breakdown_collector()) {
    // The Send term of Eq. 1-2: host software cost of posting the token.
    bcoll->barrier_posted(node(), id_, epoch, t0,
                          config_.host_barrier_overhead + config_.layer_overhead);
  }
  if (auto* causal = nic_.causal_tracer()) {
    // Origin span of the barrier's dependency DAG: the Send (+Layer) term of
    // Eq. 1-2. Spans any host-CPU queueing as well (attributed to kHost). A
    // caller may pre-seed token.causal with a provenance span (the
    // hierarchical barrier's representative hand-off); it becomes this
    // origin's parent, chaining the phases into one DAG.
    token.causal = causal->record(sim::causal::Segment::kHost, node(), "barrier_post", t0,
                                  sim_.now(), token.causal);
  }
  nic_.post_barrier_token(std::move(token));
  co_return Epoch{epoch};
}

}  // namespace nicbar::gm
