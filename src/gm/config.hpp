// Host-side software costs of the GM library.
//
// These model the "Send" and "HRecv" components of the paper's timing
// diagrams (Fig. 2): CPU time spent inside the user-level library before a
// token reaches the NIC and after an event is polled. `layer_overhead` is
// the knob behind the paper's Eq. 3 prediction — adding a programming layer
// such as MPI adds a fixed cost to every host-level send and receive, which
// *raises* the NIC-based barrier's factor of improvement.
#pragma once

#include "sim/time.hpp"

namespace nicbar::gm {

struct GmConfig {
  /// CPU time inside gm_send_with_callback (token fill + queue + doorbell).
  sim::Duration host_send_overhead = sim::microseconds(4.5);
  /// CPU time to process one polled receive event (HRecv).
  sim::Duration host_recv_overhead = sim::microseconds(6.0);
  /// CPU time of one empty gm_receive() poll.
  sim::Duration host_poll_overhead = sim::nanoseconds(200);
  /// CPU time inside gm_barrier_send_with_callback (the peer/tree slice is
  /// already computed; this is token fill + post).
  sim::Duration host_barrier_overhead = sim::microseconds(2.0);
  /// CPU time to post a receive token / barrier buffer.
  sim::Duration host_provide_overhead = sim::nanoseconds(300);
  /// Extra cost added to every send/recv/barrier call by a software layer
  /// stacked on GM (e.g. MPI). Zero = raw GM, the paper's measured setup.
  sim::Duration layer_overhead = sim::Duration{0};
};

}  // namespace nicbar::gm
