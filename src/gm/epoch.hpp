// Typed collective epoch.
//
// gm::Port stamps every posted collective (barrier or reduction) with a
// monotonically increasing per-port epoch, and completion events carry the
// epoch back so a waiter can tell its own completion from a stale one (a
// completion from an earlier, aborted epoch can still surface after a
// cancel if the event was already in flight through RDMA/PCI). Callers used
// to juggle raw std::uint32_t values and hand-write the comparison; Epoch
// makes the stale filter a named predicate instead.
#pragma once

#include <cstdint>

namespace nicbar::gm {

class Epoch {
 public:
  constexpr Epoch() = default;
  constexpr explicit Epoch(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// The stale filter: true iff a completion event stamped `event_epoch`
  /// belongs to the collective this epoch was issued for. A false result on
  /// a completion event means the event is a leftover from an aborted
  /// earlier collective and must be dropped (and counted through
  /// Port::count_stale_completion so the defence stays observable).
  [[nodiscard]] constexpr bool matches(std::uint32_t event_epoch) const {
    return value_ == event_epoch;
  }

  [[nodiscard]] constexpr bool operator==(const Epoch&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace nicbar::gm
