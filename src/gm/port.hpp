// GM communication endpoint (host side).
//
// A Port is the process-visible handle of GM's OS-bypass endpoint (paper
// §4.1): tokens go down to the NIC, events come back up and are polled with
// receive(). All host CPU costs are charged on the node's host CPU resource,
// so co-located processes contend realistically.
//
// The two barrier additions of §5.2 are provide_barrier_buffer() and
// barrier_send() (gm_barrier_send_with_callback); completion arrives as a
// GmEventType::kBarrierComplete event.
#pragma once

#include <cstdint>
#include <optional>

#include "gm/config.hpp"
#include "gm/epoch.hpp"
#include "nic/nic.hpp"
#include "nic/tokens.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace nicbar::gm {

using nic::Endpoint;
using nic::GmEvent;
using nic::GmEventType;

class Port {
 public:
  /// Does not open the port; call open() (or use Cluster::open_port).
  Port(sim::Simulator& sim, sim::Resource& host_cpu, nic::Nic& nic, nic::PortId id,
       GmConfig config);
  ~Port();

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  void open();
  void close();
  [[nodiscard]] bool is_open() const { return open_; }

  /// Sets the per-call cost of a software layer stacked on this port (e.g.
  /// an MPI progress engine). Applies to every subsequent send/receive/
  /// collective call — the Eq. 3 "additional programming layer" knob.
  void set_layer_overhead(sim::Duration d) { config_.layer_overhead = d; }

  [[nodiscard]] nic::PortId id() const { return id_; }
  [[nodiscard]] net::NodeId node() const { return nic_.node_id(); }
  [[nodiscard]] Endpoint endpoint() const { return Endpoint{node(), id_}; }
  [[nodiscard]] const GmConfig& config() const { return config_; }
  [[nodiscard]] nic::Nic& nic() { return nic_; }

  // --- Ordinary messaging -------------------------------------------------------

  /// gm_send_with_callback: asynchronous; returns once the token is posted.
  /// `value` is a 64-bit immediate carried with the message (delivered in
  /// GmEvent::value); host-based reductions use it for partial values.
  [[nodiscard]] sim::Task send(Endpoint dst, std::int64_t bytes, std::uint64_t tag = 0,
                               std::int64_t value = 0);

  /// gm_provide_receive_buffer: posts a pinned receive buffer.
  [[nodiscard]] sim::Task provide_receive_buffer(std::int64_t bytes);

  /// NIC-assisted multicast: one token, one host->NIC DMA, the NIC
  /// replicates to all `destinations` (payload must fit in one MTU).
  [[nodiscard]] sim::Task multicast(std::vector<Endpoint> destinations, std::int64_t bytes,
                                    std::uint64_t tag = 0, std::int64_t value = 0);

  /// Blocking gm_receive(): yields the next event (charges HRecv).
  [[nodiscard]] sim::ValueTask<GmEvent> receive();

  /// Blocking gm_receive() with a timeout: yields std::nullopt if no event
  /// arrives within `timeout` of simulated time. The HRecv cost is charged
  /// only when an event is actually returned.
  [[nodiscard]] sim::ValueTask<std::optional<GmEvent>> receive_for(sim::Duration timeout);

  /// Non-blocking gm_receive() poll: charges the poll cost; empty result if
  /// no event is pending (the fuzzy-barrier building block).
  [[nodiscard]] sim::ValueTask<std::optional<GmEvent>> poll();

  // --- NIC-based barrier additions (§5.2) ---------------------------------------

  /// gm_provide_barrier_buffer.
  [[nodiscard]] sim::Task provide_barrier_buffer();

  /// gm_barrier_send_with_callback: posts the barrier token; the epoch is
  /// assigned by the port. Returns the epoch used — the waiter filters stale
  /// completions with Epoch::matches(event.barrier_epoch).
  [[nodiscard]] sim::ValueTask<Epoch> barrier_send(nic::BarrierToken token);

  /// Posts a reduction token (NIC-based allreduce, the §8 extension); the
  /// epoch is assigned by the port. Returns the epoch used.
  [[nodiscard]] sim::ValueTask<Epoch> reduce_send(nic::ReduceToken token);

  /// Number of collectives (barriers + reductions) initiated so far.
  [[nodiscard]] std::uint32_t barrier_epoch() const { return next_epoch_; }

  // --- One-sided RMA (the rma:: layer) ------------------------------------------

  /// Posts a one-sided operation; completion arrives at the port's RmaSink
  /// (rma::Domain), not on the event stream. Charges the host-side posting
  /// cost like send().
  [[nodiscard]] sim::Task post_rma(nic::RmaToken token);

  /// Registers host memory as RMA segment `segment` of this port. Host-side
  /// instantaneous (the registration word rides the port-open handshake).
  void rma_register(std::uint64_t segment, nic::RmaMemory* mem) {
    nic_.rma_register(id_, segment, mem);
  }

  /// Installs the initiator-side completion surface (nullptr detaches).
  void set_rma_sink(nic::RmaSink* sink) { nic_.set_rma_sink(id_, sink); }

  /// Completions from an earlier, aborted epoch can still surface after a
  /// cancel if the event was already in flight through RDMA/PCI; the waiting
  /// layer (coll::BarrierMember) filters them by epoch and reports each drop
  /// here so the defence is observable, not silent.
  void count_stale_completion() { ++stale_completions_; }
  [[nodiscard]] std::uint64_t stale_completions() const { return stale_completions_; }

  /// Aborts the in-flight barrier on this port (deadline expired or a group
  /// member died). Safe to call when no barrier is active.
  void barrier_cancel() { nic_.cancel_barrier(id_); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Occupies the host CPU for `d` of pure computation (used by fuzzy-
  /// barrier workloads that overlap work with a NIC-resident barrier).
  [[nodiscard]] sim::Task compute(sim::Duration d);

 private:
  /// Closes out the breakdown record when a collective completion reaches
  /// the host (the Eq. 1-2 HRecv term). No-op for other events.
  void note_event_received(const GmEvent& ev);

  sim::Simulator& sim_;
  sim::Resource& cpu_;
  nic::Nic& nic_;
  nic::PortId id_;
  GmConfig config_;
  sim::Mailbox<GmEvent> events_;
  bool open_ = false;
  std::uint32_t next_epoch_ = 0;
  std::uint64_t stale_completions_ = 0;
};

}  // namespace nicbar::gm
