// The programmable NIC: GM's Myrinet Control Program (MCP) plus our barrier
// firmware extension.
//
// The real MCP is four cooperating state machines — SDMA, SEND, RECV, RDMA —
// time-sliced on the single LANai processor (paper Fig. 4). We model that
// processor as one FIFO CycleServer: every firmware action is a job with a
// cycle cost from NicConfig, so the engines automatically serialise exactly
// as they do on hardware, and NIC processor speed scales all of it together.
//
//   SDMA: notices host send tokens, programs host->NIC DMA over the PCI bus,
//         prepares packets, and (for barrier tokens) runs barrier initiation.
//   SEND: pays per-packet transmit cycles and injects into the fabric.
//   RECV: pays per-packet receive cycles, runs the reliability checks
//         (sequence/ack/nack, go-back-N retransmission), and dispatches.
//   RDMA: programs NIC->host DMA for accepted payloads and completion
//         events, and runs the barrier advance logic of §4.2-4.4.
//
// Barrier state lives in the barrier send token, pointed to by the port
// structure (paper §4.2), so the eight ports can run independent concurrent
// barriers. Unexpected barrier messages are recorded in the per-connection
// one-byte bit array of §4.3.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "nic/config.hpp"
#include "nic/connection.hpp"
#include "nic/connection_table.hpp"
#include "nic/rma.hpp"
#include "nic/slots.hpp"
#include "nic/tokens.hpp"
#include "sim/causal.hpp"
#include "sim/server.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace nicbar::nic {

/// The four MCP state machines time-sliced on the LANai processor. Used to
/// attribute processor cycles per engine for the telemetry layer.
enum class McpEngine : std::uint8_t { kSdma = 0, kSend, kRecv, kRdma };

constexpr std::size_t kMcpEngineCount = 4;

[[nodiscard]] const char* to_string(McpEngine e);

/// Per-engine occupancy of the shared LANai processor. Always-on cheap
/// counters (two integer adds per firmware job), like NicStats.
struct EngineStats {
  std::uint64_t jobs[kMcpEngineCount] = {};
  std::int64_t cycles[kMcpEngineCount] = {};

  [[nodiscard]] std::uint64_t jobs_for(McpEngine e) const {
    return jobs[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::int64_t cycles_for(McpEngine e) const {
    return cycles[static_cast<std::size_t>(e)];
  }
};

struct NicStats {
  std::uint64_t data_sent = 0;
  std::uint64_t data_received = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t out_of_order_dropped = 0;
  std::uint64_t no_token_drops = 0;
  std::uint64_t closed_port_drops = 0;
  std::uint64_t barrier_packets_sent = 0;
  std::uint64_t barrier_packets_received = 0;
  std::uint64_t barriers_started = 0;
  std::uint64_t barriers_completed = 0;
  std::uint64_t reduces_started = 0;
  std::uint64_t reduces_completed = 0;
  std::uint64_t multicasts_sent = 0;
  std::uint64_t unexpected_recorded = 0;
  std::uint64_t bit_collisions = 0;
  std::uint64_t barrier_nacks_sent = 0;
  std::uint64_t barrier_resends = 0;
  std::uint64_t barrier_loopback_msgs = 0;
  std::uint64_t events_delivered = 0;
  // Barrier firmware state transitions (telemetry):
  std::uint64_t barrier_pe_rounds = 0;       // PE: node_index advanced
  std::uint64_t barrier_gathers_sent = 0;    // GB: gather forwarded to parent
  std::uint64_t barrier_bcasts_entered = 0;  // GB: broadcast phase entered
  std::uint64_t barrier_hier_gathers = 0;    // HIER: rep gather satisfied, exchange begun
  // Fault / recovery accounting:
  std::uint64_t crc_drops = 0;            // corrupted packets caught by the CRC check
  std::uint64_t retransmit_timeouts = 0;  // retransmit timer fired (either stream)
  std::uint64_t rto_backoffs = 0;         // adaptive RTO doubled after a timeout
  std::uint64_t rtt_samples = 0;          // RTT measurements fed to the estimator
  std::uint64_t connections_failed = 0;   // peers declared dead (give-up)
  std::uint64_t dead_peer_drops = 0;      // sends discarded: peer already dead
  std::uint64_t nic_crashes = 0;
  std::uint64_t nic_restarts = 0;
  std::uint64_t rx_dropped_crashed = 0;   // packets arriving while the NIC was down
  std::uint64_t tx_dropped_crashed = 0;   // transmissions lost to the crash
  std::uint64_t barriers_cancelled = 0;   // host aborted an in-flight barrier
  // Group lifecycle (slot admission + stale fencing):
  std::uint64_t stale_group_fenced = 0;   // packets fenced: group had no live slot
  // One-sided RMA firmware:
  std::uint64_t rma_ops_posted = 0;       // host posted an RmaToken
  std::uint64_t rma_puts_applied = 0;     // target applied a put
  std::uint64_t rma_gets_served = 0;      // target served a get
  std::uint64_t rma_cas_applied = 0;      // target ran an on-NIC CAS
  std::uint64_t rma_replies = 0;          // initiator absorbed a remote completion
  std::uint64_t rma_parked = 0;           // op arrived before its segment registered
  std::uint64_t rma_rejected = 0;         // op addressed a bad segment/index
};

class Nic {
 public:
  /// `pci` is the node's shared PCI bus (SDMA and RDMA arbitrate for it).
  Nic(sim::Simulator& sim, net::Network& net, NodeId node, NicConfig config,
      sim::BusyServer& pci);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // --- Host-facing interface (called by the gm layer) ------------------------

  /// Opens a communication endpoint; `events` is the host-side event queue
  /// the NIC will push receive/sent/barrier-complete events into.
  void open_port(PortId port, sim::Mailbox<GmEvent>* events);
  void close_port(PortId port);
  [[nodiscard]] bool is_port_open(PortId port) const;

  /// Queues an ordinary send token (gm_send_with_callback).
  void post_send_token(SendToken token);

  /// Provides a pinned receive buffer (gm_provide_receive_buffer).
  void post_receive_token(PortId port, RecvToken token);

  /// Queues a barrier send token (gm_barrier_send_with_callback).
  void post_barrier_token(BarrierToken token);

  /// Provides a barrier-completion buffer (gm_provide_barrier_buffer).
  void provide_barrier_buffer(PortId port);

  /// Queues a reduction send token (the §8 collectives extension): the NIC
  /// combines child contributions, forwards the partial up the tree, and —
  /// for an allreduce — distributes the root's result back down.
  void post_reduce_token(ReduceToken token);

  /// Queues a NIC-assisted multicast (§7 related work): one host->NIC DMA,
  /// then the NIC replicates the packet to every destination. Throws
  /// std::invalid_argument if the payload exceeds the MTU.
  void post_multicast_token(MulticastToken token);

  // --- One-sided RMA (the rma:: layer, src/rma/) -----------------------------

  /// Queues a one-sided operation (put / get / on-NIC CAS). The op rides the
  /// sequenced connection stream to token.dst and its remote completion
  /// returns on the reverse stream to this port's RmaSink.
  void post_rma_token(RmaToken token);

  /// Registers host memory as RMA segment `segment` of `port`: incoming ops
  /// addressed to (port, segment) are applied to `mem`. Ops that arrived
  /// before registration were parked and are flushed now, in arrival order.
  /// Instantaneous host-side call (the registration word itself is written
  /// during the port-open PCI handshake, like slot_allocate).
  void rma_register(PortId port, std::uint64_t segment, RmaMemory* mem);

  /// Installs the initiator-side completion surface for `port`.
  void set_rma_sink(PortId port, RmaSink* sink);

  // --- Network-facing interface -------------------------------------------------

  /// A packet head has fully arrived from the fabric (RECV engine entry).
  void rx_packet(net::Packet p);

  // --- Fault injection ---------------------------------------------------------

  /// The LANai processor halts: packets in either direction are lost and all
  /// retransmit timers die with the firmware. Host token queues survive —
  /// they live in host memory (the same argument §4.2 makes for keeping
  /// barrier state in the host-resident token).
  void crash();

  /// Firmware reboot after a crash: every connection's unacknowledged
  /// packets (both streams) are retransmitted and the timers re-armed.
  void restart();

  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Aborts the port's in-flight barrier (host gave up on it — deadline or
  /// peer death). The parked token is discarded so a later barrier can
  /// start; any stale completion is suppressed by its epoch.
  void cancel_barrier(PortId port);

  // --- Barrier-group slot admission (paper §3: init/cleanup of NIC state) ------

  /// Binds barrier group `group` to a NIC barrier-state slot for `port`.
  /// Instantaneous host-side call (one PCI word write, folded into the
  /// group-create handshake's message costs). Returns false — and counts an
  /// admission rejection — when every slot is in use; the caller is expected
  /// to fall back to a host-driven barrier, not fail.
  bool slot_allocate(std::uint64_t group, PortId port);

  /// Releases the (group, port) binding; packets for this group arriving
  /// afterwards are fenced (counted in stale_group_fenced, never delivered).
  void slot_free(std::uint64_t group, PortId port);

  [[nodiscard]] bool slot_bound(std::uint64_t group, PortId port) const;
  [[nodiscard]] const SlotTable& slots() const { return slots_; }

  /// Test/fault hook: pushes a host event directly into `port`'s queue as if
  /// the RDMA engine had delivered it — for exercising host-side defences
  /// against delayed/stale events (e.g. a completion from an aborted epoch).
  void inject_event(PortId port, GmEvent ev) { push_event(port, std::move(ev)); }

  // --- Introspection ---------------------------------------------------------------

  [[nodiscard]] NodeId node_id() const { return node_; }
  [[nodiscard]] const NicConfig& config() const { return config_; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] const EngineStats& engine_stats() const { return engines_; }
  [[nodiscard]] sim::CycleServer& processor() { return proc_; }
  [[nodiscard]] const Connection& connection(NodeId remote) const;
  /// How many peers this NIC has actually contacted — the footprint the
  /// sparse connection table pays for (vs N-1 under a dense table).
  [[nodiscard]] std::size_t connections_allocated() const { return conns_.allocated(); }
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the cluster's telemetry bundle (nullptr detaches). The NIC
  /// caches the sink pointers so every hot-path hook is one branch.
  void set_telemetry(sim::telemetry::Telemetry* telemetry);
  [[nodiscard]] sim::telemetry::TraceEventSink* trace_sink() const { return tsink_; }
  [[nodiscard]] sim::telemetry::BreakdownCollector* breakdown_collector() const {
    return bcoll_;
  }
  [[nodiscard]] sim::causal::CausalTracer* causal_tracer() const { return causal_; }

  /// True if the port currently has an active (incomplete) barrier.
  [[nodiscard]] bool barrier_active(PortId port) const;

 private:
  struct PortState {
    bool open = false;
    sim::Mailbox<GmEvent>* events = nullptr;
    std::deque<RecvToken> recv_tokens;
    int barrier_buffers = 0;
    std::unique_ptr<BarrierToken> active_barrier;
    /// Most recently completed barrier, kept so §3.2 closed-port NACKs can
    /// still be answered after completion.
    std::unique_ptr<BarrierToken> last_barrier;
    std::unique_ptr<ReduceToken> active_reduce;
    std::unique_ptr<ReduceToken> last_reduce;
    /// Highest barrier epoch completed on this port since it was opened; a
    /// completion at an epoch at or below this violates epoch monotonicity.
    std::int64_t last_completed_epoch = -1;
    /// One-sided RMA: registered segments, completion sink, and ops that
    /// arrived before their segment registered (flushed on rma_register).
    std::map<std::uint64_t, RmaMemory*> rma_segments;
    RmaSink* rma_sink = nullptr;
    std::deque<net::Packet> rma_parked;
  };

  Connection& conn(NodeId remote);
  /// Port state is allocated on first touch: a 4096-node cluster where each
  /// node opens one port pays for one PortState, not max_ports of them.
  PortState& port(PortId p) {
    auto& slot = ports_.at(p);
    if (!slot) slot = std::make_unique<PortState>();
    return *slot;
  }
  /// Const reads of a never-touched port see the default (closed, empty)
  /// state without allocating it.
  const PortState& port(PortId p) const {
    static const PortState kUntouched{};
    const auto& slot = ports_.at(p);
    return slot ? *slot : kUntouched;
  }

  // --- Telemetry helpers -----------------------------------------------------
  /// Charges `cycles` on the shared processor, attributed to `engine`; emits
  /// a span named `job` on the engine's trace track when a sink is attached.
  /// `trace_id` (a packet id or causal span id) is carried on the trace event.
  sim::SimTime engine_submit(McpEngine engine, const char* job, std::int64_t cycles,
                             std::function<void()> on_done = nullptr,
                             std::uint64_t trace_id = 0);
  /// Occupies the PCI bus for `service`; emits a span when a sink is attached.
  sim::SimTime pci_submit(const char* job, sim::Duration service,
                          std::function<void()> on_done = nullptr,
                          std::uint64_t trace_id = 0);
  /// Records a causal span for an engine job that ended at `end` after
  /// `cycles` of processor time; returns 0 when causal tracing is detached.
  std::uint64_t causal_engine_span(sim::causal::Segment seg, const char* label,
                                   sim::SimTime end, std::int64_t cycles,
                                   std::uint64_t parent, std::uint64_t parent2 = 0);
  /// Breakdown attribution of barrier-firmware work; no-ops when detached.
  void breakdown_nic(PortId port, std::uint32_t epoch, std::int64_t cycles);
  void breakdown_dma(PortId port, std::uint32_t epoch, sim::Duration d);
  void breakdown_wire(Endpoint dst, std::uint32_t epoch, sim::Duration d);

  // --- SDMA / SEND ------------------------------------------------------------
  void sdma_start(SendToken token);
  void sdma_fragment(SendToken token, std::uint16_t index, std::uint16_t frag_count);
  void enqueue_reliable(net::Packet p, std::function<void()> on_sent);
  /// SEND engine: cycles, then wire/loopback. `send_cycles_override` >= 0
  /// replaces the per-packet SEND charge (multidestination replication pays
  /// the per-copy header-rewrite cost, not a full packet preparation).
  void transmit(net::Packet p, std::int64_t send_cycles_override = -1);
  void send_control(net::Packet p);  // acks and nacks (unsequenced)

  // --- RECV dispatch -------------------------------------------------------------
  void recv_data(net::Packet p);
  void recv_ack(const net::Packet& p);
  void recv_nack(const net::Packet& p);
  void accept_in_order(net::Packet p);  // passed seq check (data or barrier)

  // --- RDMA ---------------------------------------------------------------------------
  void deliver_to_host(net::Packet p);
  void push_event(PortId port, GmEvent ev);

  // --- Reliability -------------------------------------------------------------------
  void arm_retransmit(NodeId remote);
  void retransmit_all(NodeId remote);
  void send_ack(NodeId remote);
  void send_nack(NodeId remote);
  /// Current timeout for `c`: fixed config value, or the Jacobson/Karels
  /// estimate shifted left by the connection's backoff.
  [[nodiscard]] sim::Duration current_rto(const Connection& c) const;
  /// Feeds one RTT measurement into the estimator (adaptive mode only).
  void sample_rtt(Connection& c, sim::Duration rtt);
  /// Give-up: marks the connection dead, drops its streams, and raises
  /// kPeerDead on every open port.
  void declare_peer_dead(NodeId remote);

  // --- Barrier firmware (nic_barrier.cpp) ------------------------------------------
  void barrier_start(BarrierToken token);                 // SDMA side
  void barrier_rx(net::Packet p);                         // RDMA side
  void barrier_rx_in_order(net::Packet p);                // after stream check
  void barrier_record(const net::Packet& p, bool for_closed_port);
  void barrier_try_advance_pe(PortId local_port);
  void barrier_check_gather(PortId local_port);
  void barrier_hier_check_gather(PortId local_port);
  void barrier_enter_broadcast(PortId local_port);
  /// `mcast_copy`: this packet is a replica in a multidestination fan-out
  /// (the hierarchical release); the SEND engine pays the per-copy
  /// replication cost instead of a full packet preparation.
  void barrier_send(PortId local_port, Endpoint dst, net::PacketType type,
                    std::uint32_t epoch, bool mcast_copy = false);
  /// Firmware cycles to book one in-order barrier arrival (keyed on packet
  /// type, and for a release on the active token's family).
  [[nodiscard]] std::int64_t barrier_rx_cost(const net::Packet& p);
  void barrier_complete(PortId local_port);
  void barrier_closed_port_arrival(net::Packet p);
  void barrier_send_nack(const net::Packet& original);
  void barrier_handle_nack(const net::Packet& p);
  void flush_closed_port_records(PortId opened_port);
  // Separate-ack barrier reliability:
  void barrier_enqueue_separate(net::Packet p, std::int64_t tx_cost = -1);
  void barrier_recv_separate(net::Packet p);
  void barrier_recv_barrier_ack(const net::Packet& p);
  void arm_barrier_retransmit(NodeId remote);
  void barrier_retransmit_all(NodeId remote);

  // --- One-sided RMA firmware (nic_rma.cpp) -----------------------------------------
  void rma_rx_in_order(net::Packet p);       // target/initiator, after seq check
  void rma_apply(net::Packet p);             // target: put/get/cas at the firmware
  void rma_reply(const net::Packet& request, std::int64_t value, bool ok);
  void rma_absorb_reply(net::Packet p);      // initiator: notify the sink

  // --- Reduction firmware (nic_reduce.cpp) ------------------------------------------
  void reduce_start(ReduceToken token);
  void reduce_rx_in_order(net::Packet p);               // dispatched by barrier_rx paths
  void reduce_check_children(PortId local_port);
  void reduce_send(PortId local_port, Endpoint dst, net::PacketType type,
                   std::uint32_t epoch, std::int64_t value);
  void reduce_complete(PortId local_port, std::int64_t result);
  bool reduce_answer_nack(const net::Packet& p);        // §3.2 resend for reduce types

  void trace(sim::TraceCategory cat, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  sim::Simulator& sim_;
  net::Network& net_;
  NodeId node_;
  NicConfig config_;
  sim::CycleServer proc_;
  sim::BusyServer& pci_;
  std::vector<std::unique_ptr<PortState>> ports_;  // lazy; see port()
  ConnectionTable conns_;
  NicStats stats_;
  SlotTable slots_;
  bool crashed_ = false;
  EngineStats engines_;
  sim::Tracer* tracer_ = nullptr;
  // Telemetry (all null/zero when detached; every hook is one branch).
  sim::telemetry::TraceEventSink* tsink_ = nullptr;
  sim::telemetry::BreakdownCollector* bcoll_ = nullptr;
  sim::causal::CausalTracer* causal_ = nullptr;
  int engine_track_[kMcpEngineCount] = {};
  int pci_track_ = 0;
  int fault_track_ = 0;
};

}  // namespace nicbar::nic
