// Tokens crossing the host/NIC boundary, and the events the NIC returns.
//
// GM's host interface is token-based (paper §4.1): the host fills in a send
// token and queues it to the NIC; receive tokens describe host buffers the
// NIC may DMA into; the NIC returns tokens/events which the host polls with
// gm_receive(). Our NIC-based barrier adds the barrier send token of §4.2:
// it carries the per-node slice of the barrier topology (PE peer list, or GB
// parent+children) computed at the host, plus the NIC-resident progress
// state (node_index et al.).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"

namespace nicbar::nic {

using net::NodeId;
using net::PortId;

/// One remote communication endpoint.
struct Endpoint {
  NodeId node = net::kInvalidNode;
  PortId port = 0;
  friend auto operator<=>(Endpoint, Endpoint) = default;
};

enum class BarrierAlgorithm : std::uint8_t {
  kPairwiseExchange,  // PE: MPICH-style recursive pairing (paper §5.1)
  kGatherBroadcast,   // GB: k-ary tree, gather then broadcast (paper §5.1)
  /// Two-level hierarchical barrier. Every block member posts one of these.
  /// The representative's token is firmware-resident across all three
  /// phases: gather from `children` (its slice of the intra-block tree),
  /// pairwise exchange over `peers` (the other representatives), then a
  /// multidestination release straight to every block mate (`release`) —
  /// SEND-side replication in the spirit of §3.4/§7, so the release costs
  /// one packet hop regardless of tree depth. A non-representative token
  /// gathers from `children`, forwards to `parent`, and completes on the
  /// release from `release[0]` (its representative) — it never rebroadcasts.
  kHierarchical,
};

[[nodiscard]] const char* to_string(BarrierAlgorithm a);

/// Ordinary GM send token.
struct SendToken {
  PortId src_port = 0;
  Endpoint dst;
  std::int64_t bytes = 0;
  std::uint64_t tag = 0;
  /// Optional 64-bit immediate carried with the message (host-based
  /// reductions put their partial values here).
  std::int64_t value = 0;
  /// Invoked (host side) when the message is acknowledged and the token is
  /// returned to the process. May be null.
  std::function<void()> on_sent;
};

/// NIC-assisted multicast token (§7 related work — Buntinas et al.'s
/// multidestination messages): the payload crosses the PCI bus once and the
/// NIC replicates it to every destination. Payload must fit in one MTU.
struct MulticastToken {
  PortId src_port = 0;
  std::vector<Endpoint> destinations;
  std::int64_t bytes = 0;
  std::uint64_t tag = 0;
  std::int64_t value = 0;
};

/// Tags reserved by the host-based collective implementations; applications
/// sharing a port with collectives must not send with these.
constexpr std::uint64_t kBarrierMsgTag = 0xB000'0000'0000'0001ull;
constexpr std::uint64_t kReduceUpMsgTag = 0xB000'0000'0000'0002ull;
constexpr std::uint64_t kReduceDownMsgTag = 0xB000'0000'0000'0003ull;
/// Group-lifecycle control messages (coll::GroupMember create/destroy
/// handshakes) ride ordinary reliable GM sends under this tag.
constexpr std::uint64_t kGroupCtrlMsgTag = 0xB000'0000'0000'0004ull;
/// mpi::Communicator::split's (color, key) exchange.
constexpr std::uint64_t kCommSplitMsgTag = 0xB000'0000'0000'0005ull;

/// Ordinary GM receive token: a pinned host buffer the NIC may fill.
struct RecvToken {
  std::int64_t buffer_bytes = 0;
};

/// Barrier send token (gm_barrier_send_with_callback). For PE, `peers` holds
/// the exchange schedule in round order. For GB, `parent` is the invalid
/// endpoint at the root, and `children` lists the node's subtree roots. A
/// hierarchical representative token uses both: `children` is its slice of
/// the intra-block tree (parent stays invalid — the representative is the
/// block root), `peers` is the inter-representative exchange schedule, and
/// `release` lists every block mate for the multidestination release. A
/// hierarchical non-representative token has a valid `parent`, empty
/// `peers`, and `release` = { the representative } (its release source).
struct BarrierToken {
  PortId src_port = 0;
  BarrierAlgorithm algorithm = BarrierAlgorithm::kPairwiseExchange;
  std::uint32_t epoch = 0;  // per-port barrier instance counter
  /// Fabric-unique barrier-group id stamped on every packet of this barrier.
  /// 0 = legacy anonymous group (no slot admission, never fenced). Non-zero
  /// requires a live slot binding at every member NIC; see nic::SlotTable.
  std::uint64_t group = 0;

  std::vector<Endpoint> peers;     // PE
  Endpoint parent;                 // GB (invalid node id at the root)
  std::vector<Endpoint> children;  // GB
  /// Hierarchical only. Representative: the full block membership minus
  /// itself — the multidestination release fan-out. Non-representative: one
  /// entry, the representative this member's release will come from.
  std::vector<Endpoint> release;

  // --- NIC-resident progress state ---------------------------------------
  std::size_t node_index = 0;    // PE: which peer we expect next
  /// PE: our packet for peers[node_index] has been prepared/transmitted, so
  /// the RDMA engine may advance on a matching arrival (paper §5.2: the
  /// parked token is only advanced once its send has been prepared).
  bool awaiting_recv = false;
  bool gather_sent = false;      // GB: sent our gather to the parent yet?
  /// Hierarchical: the intra-block gather is satisfied and the token has
  /// advanced to the inter-representative exchange phase.
  bool hier_gathered = false;
  bool completed = false;
  /// Causal provenance: span id of this member's latest local firmware
  /// decision (sim::causal). 0 when causal tracing is off.
  std::uint64_t causal = 0;

  [[nodiscard]] bool is_root() const { return parent.node == net::kInvalidNode; }
};

/// Combining operation for the NIC-based reduction extension (§8 future
/// work: "other collective communication operations, such as reductions").
enum class ReduceOp : std::uint8_t { kSum, kProd, kMin, kMax, kBitAnd, kBitOr };

[[nodiscard]] std::int64_t apply_reduce_op(ReduceOp op, std::int64_t a, std::int64_t b);
[[nodiscard]] const char* to_string(ReduceOp op);

/// Reduction send token (NIC-based allreduce). GB-tree shaped like the
/// barrier token; carries this member's contribution, and accumulates the
/// subtree's partial result on the NIC.
struct ReduceToken {
  PortId src_port = 0;
  std::uint32_t epoch = 0;
  Endpoint parent;                 // invalid node id at the root
  std::vector<Endpoint> children;
  ReduceOp op = ReduceOp::kSum;
  std::int64_t contribution = 0;

  // --- NIC-resident progress state ---------------------------------------
  std::int64_t acc = 0;       // subtree partial; holds the final result once done
  std::int64_t up_value = 0;  // the partial we sent up (kept for §3.2 resends)
  bool up_sent = false;       // partial result forwarded to the parent?
  bool completed = false;

  [[nodiscard]] bool is_root() const { return parent.node == net::kInvalidNode; }
};

enum class GmEventType : std::uint8_t {
  kRecv,             // a message landed in a host receive buffer
  kSent,             // a send token was returned (message acknowledged)
  kBarrierComplete,  // GM_BARRIER_COMPLETED_EVENT
  kReduceComplete,   // NIC-based reduction finished; `value` holds the result
  kPeerDead,         // reliability gave up on `peer.node`; the connection is dead
};

/// What gm_receive() yields to the polling host process.
struct GmEvent {
  GmEventType type = GmEventType::kRecv;
  Endpoint peer;              // kRecv: the sender; kPeerDead: the dead node
  std::int64_t bytes = 0;     // kRecv: payload size
  std::uint64_t tag = 0;      // kRecv: sender-chosen tag
  std::uint32_t barrier_epoch = 0;  // kBarrierComplete / kReduceComplete
  std::int64_t value = 0;     // kReduceComplete: the reduced value
  /// Causal provenance: span id of the completion DMA that produced this
  /// event (sim::causal). 0 when causal tracing is off.
  std::uint64_t causal = 0;
};

}  // namespace nicbar::nic
