// Per-remote-node connection state (paper §4.1: "The NIC also has data
// structures each corresponding to a connection to one node in the system").
//
// Carries the reliability stream (sequence numbers, the sent list awaiting
// acknowledgment, the retransmission timer) and the unexpected-barrier-
// message record of §3.1/§4.3: one bit per remote port — GM 1.2.3 allows
// eight ports per NIC, so the record is exactly one byte per connection, as
// the paper points out.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "nic/tokens.hpp"
#include "sim/event_queue.hpp"

namespace nicbar::nic {

constexpr int kMaxPorts = 8;

/// Diagnostic sidecar for each unexpected-record bit. Real firmware keeps
/// only the bit; we additionally remember what set it so that the closed-
/// port policies (§3.2) and the tests can reason about it.
struct BarrierBitInfo {
  net::PacketType type = net::PacketType::kBarrierPe;
  std::uint32_t epoch = 0;
  PortId dst_port = 0;       // local port the message was addressed to
  bool for_closed_port = false;
  std::int64_t value = 0;    // kReduceUp/kReduceDown: the carried partial value
  /// Causal provenance of the recorded message (sim::causal span id), so the
  /// eventual consumer joins on the true arrival chain. 0 when tracing is off.
  std::uint64_t causal = 0;
};

/// A reliably-sent packet awaiting acknowledgment.
struct SentRecord {
  net::Packet packet;  // full copy, so retransmission can re-inject it
  std::function<void()> on_sent;  // host notification when acked (may be null)
  sim::SimTime first_sent{0};     // when the packet first hit the wire
  bool retransmitted = false;     // Karn's rule: ambiguous RTT, never sample
};

struct Connection {
  // --- Reliability stream (data + shared-stream barrier packets) -----------
  std::uint32_t next_send_seq = 1;
  std::uint32_t next_expected_seq = 1;
  std::deque<SentRecord> sent_list;
  sim::EventId retransmit_timer;
  int retransmissions = 0;
  bool nack_outstanding = false;  // one NACK per out-of-order episode

  // --- Adaptive RTO (Jacobson/Karels; shared by both streams — same path) ---
  bool rtt_valid = false;   // srtt/rttvar hold at least one sample
  double srtt_ps = 0.0;     // smoothed RTT
  double rttvar_ps = 0.0;   // smoothed mean deviation
  double rtt_max_ps = 0.0;  // worst ack delay ever observed on this path
  int backoff = 0;          // consecutive timeouts; RTO doubles per timeout
  /// Peer declared dead after max_retransmissions consecutive timeouts.
  /// Permanent: reliable traffic to/from this node is dropped from then on.
  bool dead = false;

  // --- Separate barrier-reliability stream (BarrierReliability::kSeparateAcks)
  std::uint32_t next_barrier_send_seq = 1;
  std::uint32_t next_expected_barrier_seq = 1;
  std::deque<SentRecord> barrier_sent_list;
  sim::EventId barrier_retransmit_timer;
  int barrier_retransmissions = 0;
  bool barrier_nack_outstanding = false;

  // --- Unexpected barrier message record (§3.1) ------------------------------
  std::uint8_t barrier_bits = 0;  // bit i = message from remote port i recorded
  std::array<BarrierBitInfo, kMaxPorts> bit_info{};

  [[nodiscard]] bool bit(PortId remote_port) const {
    return (barrier_bits & (1u << remote_port)) != 0;
  }
  void set_bit(PortId remote_port, BarrierBitInfo info) {
    barrier_bits |= static_cast<std::uint8_t>(1u << remote_port);
    bit_info[remote_port] = info;
  }
  void clear_bit(PortId remote_port) {
    barrier_bits &= static_cast<std::uint8_t>(~(1u << remote_port));
  }
};

}  // namespace nicbar::nic
