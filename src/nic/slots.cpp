#include "nic/slots.hpp"

#include <algorithm>

namespace nicbar::nic {

bool SlotTable::allocate(std::uint64_t group, PortId port) {
  if (bound(group, port)) return true;
  if (in_use() >= capacity_) {
    ++stats_.rejections;
    return false;
  }
  slots_.push_back(Binding{group, port});
  ++stats_.allocations;
  if (stats_.frees > 0) ++stats_.generations;
  stats_.high_water = std::max<std::uint64_t>(stats_.high_water, slots_.size());
  return true;
}

void SlotTable::release(std::uint64_t group, PortId port) {
  auto it = std::find_if(slots_.begin(), slots_.end(), [&](const Binding& b) {
    return b.group == group && b.port == port;
  });
  if (it == slots_.end()) return;
  slots_.erase(it);
  ++stats_.frees;
}

void SlotTable::release_port(PortId port) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->port == port) {
      it = slots_.erase(it);
      ++stats_.frees;
    } else {
      ++it;
    }
  }
}

bool SlotTable::bound(std::uint64_t group, PortId port) const {
  return std::any_of(slots_.begin(), slots_.end(), [&](const Binding& b) {
    return b.group == group && b.port == port;
  });
}

}  // namespace nicbar::nic
