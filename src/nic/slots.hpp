// NIC barrier-state slot table.
//
// The paper (§3) calls out initialization/cleanup of NIC-resident barrier
// state and support for concurrent barriers as the hard design issues of a
// NIC-based barrier. A real LANai has a small, fixed amount of SRAM for
// firmware state, so barrier groups cannot hold NIC state for free: each
// *managed* group must allocate one slot per member NIC before it may run
// NIC-offloaded barriers, and must free it on destroy so the slot can be
// reused by later groups.
//
// The table is host-facing and instantaneous (allocate/free consume no
// simulated time — they model writing a word of NIC SRAM over PCI, which is
// folded into the group-create handshake's message costs). What the table
// buys us:
//
//   - admission control: allocate() fails (returns false) when all
//     `capacity` slots are bound, which the coll::GroupMember turns into a
//     transparent host-barrier fallback (kOkDegraded), not an error;
//   - stale-packet fencing: a packet tagged with a group id that has no live
//     binding for its destination port is fenced (counted, dropped) by the
//     firmware instead of corrupting a *new* group that reused the slot —
//     the cross-incarnation safety property of destroy;
//   - reuse accounting: per-slot generation counters and a high-water mark
//     prove destroyed groups' slots really are recycled (churn acceptance
//     criterion: high-water mark < total groups created).
//
// Group id 0 is reserved for the legacy anonymous path: it never touches
// the table and is never fenced, keeping pre-lifecycle timelines
// bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "nic/tokens.hpp"

namespace nicbar::nic {

/// Running counters for one NIC's slot table (all host-visible through
/// NicStats / Cluster::snapshot_metrics).
struct SlotStats {
  std::uint64_t allocations = 0;   // successful allocate() calls
  std::uint64_t rejections = 0;    // allocate() refused: table full
  std::uint64_t frees = 0;         // release() calls
  std::uint64_t generations = 0;   // slot reuses (allocation of a freed slot)
  std::uint64_t high_water = 0;    // max simultaneous bound slots ever
};

/// Fixed-capacity table binding fabric-unique group ids to NIC barrier-state
/// slots. One binding per (group, local port); a group id may be bound on
/// several ports of the same NIC (co-located members).
class SlotTable {
 public:
  explicit SlotTable(int capacity) : capacity_(capacity < 0 ? 0 : capacity) {}

  /// Bind `group` on local `port`. Returns false (and counts a rejection)
  /// when the table is full. Binding the same (group, port) twice is an
  /// idempotent success.
  bool allocate(std::uint64_t group, PortId port);

  /// Drop the binding for (group, port). Unknown bindings are ignored (the
  /// destroy path may race a crash-triggered port close).
  void release(std::uint64_t group, PortId port);

  /// Drop every binding held by `port` (port close / NIC crash).
  void release_port(PortId port);

  /// Whether (group, port) currently holds a slot — the fence predicate for
  /// incoming packets carrying a non-zero group id.
  [[nodiscard]] bool bound(std::uint64_t group, PortId port) const;

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int in_use() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] const SlotStats& stats() const { return stats_; }

 private:
  struct Binding {
    std::uint64_t group = 0;
    PortId port = 0;
  };

  int capacity_;
  std::vector<Binding> slots_;  // capacity is single-digit: linear scan wins
  SlotStats stats_;
};

}  // namespace nicbar::nic
