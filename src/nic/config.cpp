#include "nic/config.hpp"

namespace nicbar::nic {

NicConfig lanai43() {
  NicConfig c;
  c.model = "LANai-4.3";
  c.clock_mhz = 33.0;
  c.pci_bandwidth_mbps = 132.0;
  return c;
}

NicConfig lanai72() {
  NicConfig c;
  c.model = "LANai-7.2";
  c.clock_mhz = 66.0;
  c.pci_bandwidth_mbps = 264.0;  // 64-bit PCI on the 7.x series
  return c;
}

}  // namespace nicbar::nic
