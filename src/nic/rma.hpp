// NIC-side one-sided RMA vocabulary.
//
// The rma:: layer (src/rma/) talks to the NIC through three small types so
// nic:: never depends on the higher layer:
//
//   RmaToken  — a host-posted one-sided operation (put / get / cas), the
//               SDMA-side analogue of SendToken.
//   RmaMemory — the host-registered segment the target NIC applies puts and
//               serves gets/CAS from. CAS is applied *by the firmware* on
//               the single LANai processor (the modeled on-NIC atomic), so
//               concurrent CAS from many initiators serialise on the
//               processor and are linearizable by construction.
//   RmaSink   — the initiator-side completion surface: the NIC calls it when
//               a kRmaReply arrives (remote completion) or when the target
//               connection is declared dead.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "nic/tokens.hpp"

namespace nicbar::nic {

enum class RmaOpKind : std::uint8_t { kPut = 0, kGet, kCas };

[[nodiscard]] constexpr const char* to_string(RmaOpKind k) {
  switch (k) {
    case RmaOpKind::kPut:
      return "put";
    case RmaOpKind::kGet:
      return "get";
    case RmaOpKind::kCas:
      return "cas";
  }
  return "?";
}

/// One one-sided operation, posted by the host (gm::Port::post_rma). The
/// (segment, index) pair addresses one 64-bit word of a segment registered
/// at the destination port; op_id is echoed back in the remote completion.
struct RmaToken {
  PortId src_port = 0;
  Endpoint dst;
  RmaOpKind kind = RmaOpKind::kPut;
  std::uint64_t segment = 0;
  std::uint64_t index = 0;
  std::int64_t value = 0;     // put payload / CAS desired value
  std::int64_t expected = 0;  // CAS compare value
  std::uint64_t op_id = 0;    // initiator-chosen completion correlator
};

/// Host memory a target NIC applies one-sided ops to. Implemented by
/// rma::Segment; the NIC calls these at the firmware instant the op is
/// applied (after the modeled DMA for puts, processor-only for CAS).
class RmaMemory {
 public:
  virtual ~RmaMemory() = default;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  [[nodiscard]] virtual std::int64_t read(std::uint64_t index) const = 0;
  virtual void write(std::uint64_t index, std::int64_t value) = 0;
  /// Applies compare-and-swap and returns the *prior* value (the op's
  /// result whether or not the swap happened).
  virtual std::int64_t compare_exchange(std::uint64_t index, std::int64_t expected,
                                        std::int64_t desired) = 0;
};

/// Initiator-side completion surface (implemented by rma::Domain).
class RmaSink {
 public:
  virtual ~RmaSink() = default;
  /// A kRmaReply for op_id arrived: `value` is the fetched word (gets, CAS
  /// prior value; for puts it echoes the put payload), `ok` is false when
  /// the target could not apply the op.
  virtual void rma_complete(std::uint64_t op_id, std::int64_t value, bool ok) = 0;
  /// The connection to `node` was declared dead; every in-flight op to it
  /// will never complete.
  virtual void rma_peer_dead(net::NodeId node) = 0;
};

}  // namespace nicbar::nic
