// NIC-based reduction/allreduce firmware — the §8 future-work extension
// ("whether other collective communication operations, such as reductions
// ... could benefit from similar NIC-level implementations").
//
// Shape: a GB tree, exactly like the gather/broadcast barrier, but the
// gather phase *combines* child contributions on the NIC and the broadcast
// phase carries the root's final value back down. Unexpected kReduceUp/
// kReduceDown messages reuse the §3.1 per-connection bit record, with the
// carried value stored alongside the bit. The closed-port NACK machinery of
// §3.2 answers reduce types too (see reduce_answer_nack).
#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "nic/nic.hpp"

namespace nicbar::nic {

using net::Packet;
using net::PacketType;

std::int64_t apply_reduce_op(ReduceOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return b < a ? b : a;
    case ReduceOp::kMax: return b > a ? b : a;
    case ReduceOp::kBitAnd: return a & b;
    case ReduceOp::kBitOr: return a | b;
  }
  return a;
}

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kBitAnd: return "band";
    case ReduceOp::kBitOr: return "bor";
  }
  return "?";
}

void Nic::post_reduce_token(ReduceToken token) {
  // Same initiation cost model as a GB barrier plus the combining setup.
  const std::int64_t cycles = config_.sdma_detect_cycles + config_.barrier_init_cycles +
                              config_.barrier_gb_init_cycles;
  engine_submit(McpEngine::kSdma, "reduce_init", cycles,
                [this, token = std::move(token)]() mutable { reduce_start(std::move(token)); });
}

void Nic::reduce_start(ReduceToken token) {
  PortState& ps = port(token.src_port);
  if (!ps.open) return;
  if (ps.active_reduce && !ps.active_reduce->completed) {
    throw std::logic_error("reduction already active on this port");
  }
  if (ps.active_barrier && !ps.active_barrier->completed) {
    // The unexpected-message bit record is shared between the barrier and
    // the reduction firmware; one collective at a time per port.
    throw std::logic_error("barrier active on this port; cannot start a reduction");
  }
  ++stats_.reduces_started;
  token.acc = token.contribution;
  const PortId p = token.src_port;
  trace(sim::TraceCategory::kBarrier, "port %u: start %s allreduce epoch=%u contrib=%lld", p,
        to_string(token.op), token.epoch, static_cast<long long>(token.contribution));
  ps.active_reduce = std::make_unique<ReduceToken>(std::move(token));
  reduce_check_children(p);
}

void Nic::reduce_rx_in_order(Packet p) {
  PortState& ps = port(p.dst_port);
  ReduceToken* tok = ps.active_reduce.get();
  const Endpoint src{p.src_node, p.src_port};

  switch (p.type) {
    case PacketType::kReduceUp:
      // Like GB gathers: record first (value included), then rescan.
      barrier_record(p, false);
      if (tok != nullptr && !tok->completed && !tok->up_sent) {
        reduce_check_children(p.dst_port);
      }
      break;

    case PacketType::kReduceDown:
      if (tok != nullptr && !tok->completed && tok->up_sent && tok->parent == src) {
        const std::int64_t result = p.value;
        reduce_complete(p.dst_port, result);
        ReduceToken* done = ps.last_reduce.get();
        for (const Endpoint& child : done->children) {
          reduce_send(p.dst_port, child, PacketType::kReduceDown, done->epoch, result);
        }
      } else {
        barrier_record(p, false);
      }
      break;

    default:
      assert(false && "non-reduce packet in reduce_rx_in_order");
  }
}

void Nic::reduce_check_children(PortId local_port) {
  PortState& ps = port(local_port);
  ReduceToken* tok = ps.active_reduce.get();
  if (tok == nullptr || tok->completed || tok->up_sent) return;
  for (const Endpoint& child : tok->children) {
    const Connection& c = conn(child.node);
    if (!c.bit(child.port) || c.bit_info[child.port].type != PacketType::kReduceUp) return;
  }
  // All child partials present: combine and clear.
  for (const Endpoint& child : tok->children) {
    Connection& c = conn(child.node);
    tok->acc = apply_reduce_op(tok->op, tok->acc, c.bit_info[child.port].value);
    c.clear_bit(child.port);
    engine_submit(McpEngine::kRdma, "combine", config_.barrier_gb_cycles);  // per child
  }

  if (tok->is_root()) {
    const std::int64_t result = tok->acc;
    reduce_complete(local_port, result);
    ReduceToken* done = ps.last_reduce.get();
    for (const Endpoint& child : done->children) {
      reduce_send(local_port, child, PacketType::kReduceDown, done->epoch, result);
    }
    return;
  }
  tok->up_value = tok->acc;
  reduce_send(local_port, tok->parent, PacketType::kReduceUp, tok->epoch, tok->acc);
  tok->up_sent = true;
  // The parent's result may already be recorded (§3.2 resend interleavings).
  Connection& pc = conn(tok->parent.node);
  if (pc.bit(tok->parent.port) &&
      pc.bit_info[tok->parent.port].type == PacketType::kReduceDown) {
    const std::int64_t result = pc.bit_info[tok->parent.port].value;
    pc.clear_bit(tok->parent.port);
    reduce_complete(local_port, result);
    ReduceToken* done = ps.last_reduce.get();
    for (const Endpoint& child : done->children) {
      reduce_send(local_port, child, PacketType::kReduceDown, done->epoch, result);
    }
  }
}

void Nic::reduce_send(PortId local_port, Endpoint dst, PacketType type, std::uint32_t epoch,
                      std::int64_t value) {
  Packet p;
  p.type = type;
  p.src_node = node_;
  p.src_port = local_port;
  p.dst_node = dst.node;
  p.dst_port = dst.port;
  p.payload_bytes = config_.barrier_payload_bytes + 8;  // + the 64-bit value
  p.barrier_epoch = epoch;
  p.value = value;
  ++stats_.barrier_packets_sent;

  if (config_.barrier_loopback && dst.node == node_) {
    ++stats_.barrier_loopback_msgs;
    auto packet = std::make_shared<Packet>(std::move(p));
    engine_submit(McpEngine::kRdma, "loopback", config_.barrier_gb_cycles, [this, packet]() mutable {
      ++stats_.barrier_packets_received;
      if (!port(packet->dst_port).open) {
        barrier_closed_port_arrival(std::move(*packet));
        return;
      }
      reduce_rx_in_order(std::move(*packet));
    });
    return;
  }

  switch (config_.barrier_reliability) {
    case BarrierReliability::kUnreliable:
      transmit(std::move(p));
      break;
    case BarrierReliability::kSharedStream: {
      Connection& c = conn(p.dst_node);
      p.seq = c.next_send_seq++;
      c.sent_list.push_back(SentRecord{p, nullptr});
      arm_retransmit(p.dst_node);
      transmit(std::move(p));
      break;
    }
    case BarrierReliability::kSeparateAcks:
      // Reductions share the barrier's dedicated ack stream.
      barrier_enqueue_separate(std::move(p));
      break;
  }
}

void Nic::reduce_complete(PortId local_port, std::int64_t result) {
  PortState& ps = port(local_port);
  ReduceToken* tok = ps.active_reduce.get();
  assert(tok != nullptr);
  tok->completed = true;
  tok->acc = result;  // final value (used for kReduceDown resends)
  ++stats_.reduces_completed;
  const std::uint32_t epoch = tok->epoch;
  trace(sim::TraceCategory::kBarrier, "port %u: allreduce epoch=%u complete, result=%lld",
        local_port, epoch, static_cast<long long>(result));
  ps.last_reduce = std::move(ps.active_reduce);

  engine_submit(McpEngine::kRdma, "rdma_setup", config_.rdma_setup_cycles,
                [this, local_port, epoch, result] {
    const sim::Duration dma =
        config_.pci_setup + sim::transfer_time(16, config_.pci_bandwidth_mbps);
    pci_submit("rdma_dma", dma, [this, local_port, epoch, result] {
      PortState& p = port(local_port);
      if (p.barrier_buffers > 0) --p.barrier_buffers;
      GmEvent ev;
      ev.type = GmEventType::kReduceComplete;
      ev.barrier_epoch = epoch;
      ev.value = result;
      push_event(local_port, ev);
    });
  });
}

bool Nic::reduce_answer_nack(const Packet& p) {
  PortState& ps = port(p.dst_port);
  const Endpoint peer{p.src_node, p.src_port};
  ReduceToken* tok = nullptr;
  if (ps.active_reduce && ps.active_reduce->epoch == p.barrier_epoch) {
    tok = ps.active_reduce.get();
  } else if (ps.last_reduce && ps.last_reduce->epoch == p.barrier_epoch) {
    tok = ps.last_reduce.get();
  }
  if (tok == nullptr) return false;

  std::int64_t value = 0;
  if (p.nacked_type == PacketType::kReduceUp) {
    if (!(tok->parent == peer) || !tok->up_sent) return false;
    value = tok->up_value;
  } else {
    bool member = false;
    for (const Endpoint& c : tok->children) {
      if (c == peer) member = true;
    }
    if (!member || !tok->completed) return false;
    value = tok->acc;  // the final result
  }

  ++stats_.barrier_resends;
  const PortId local_port = p.dst_port;
  const PacketType type = p.nacked_type;
  const std::uint32_t epoch = p.barrier_epoch;
  sim_.schedule_in(config_.barrier_resend_delay, [this, local_port, peer, type, epoch, value] {
    if (!port(local_port).open) return;
    reduce_send(local_port, peer, type, epoch, value);
  });
  return true;
}

}  // namespace nicbar::nic
