// NIC hardware/firmware cost model.
//
// All firmware handler costs are in *NIC processor cycles*, charged on the
// single CycleServer that models the LANai processor shared by the four MCP
// engines (SDMA, SEND, RECV, RDMA). Expressing costs in cycles — rather than
// time — is what makes the paper's LANai 4.3 (33 MHz) vs LANai 7.2 (66 MHz)
// comparison a one-knob experiment: doubling clock_mhz halves exactly the
// NIC-resident share of every latency.
//
// The default cycle counts are calibrated (see DESIGN.md §4) so that the
// derived message-phase times land in the paper's measured regime for
// LANai 4.3: Send ≈ 5.5 µs, SDMA ≈ 8.5 µs, Network ≈ 1 µs, Recv ≈ 17-20 µs,
// RDMA ≈ 6 µs, HRecv ≈ 4 µs, giving the paper's ≈ 182 µs host-based /
// ≈ 102 µs NIC-based 16-node pairwise-exchange barrier.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace nicbar::nic {

/// How barrier packets are made reliable (paper §3.3 / §4.4).
enum class BarrierReliability : std::uint8_t {
  /// The paper's *measured* configuration: barrier packets carry no sequence
  /// number and are never retransmitted (fabric assumed lossless).
  kUnreliable,
  /// Barrier packets ride the connection's ordinary seq/ack stream, which
  /// preserves their order relative to data messages (§3.3 option 1).
  kSharedStream,
  /// A separate ack/seq/retransmit mechanism just for barrier messages
  /// (§3.3 option 2 — the mechanism the paper says it intends to complete).
  kSeparateAcks,
};

/// What the NIC does with a barrier message addressed to a closed port
/// (paper §3.2).
enum class ClosedPortPolicy : std::uint8_t {
  /// Naive: record normally; wipe records for a port when it opens. Loses
  /// legitimately-early messages (documented drawback in the paper).
  kClearOnOpen,
  /// Reject (NACK) messages for closed ports; the sender resends, possibly
  /// an unbounded number of times.
  kRejectClosed,
  /// The paper's adopted policy: record messages for closed ports, but on
  /// open flush those records with a NACK so each sender resends exactly
  /// once (if its initiating endpoint is still in that barrier).
  kRecordThenRejectOnOpen,
};

struct NicConfig {
  std::string model = "LANai-4.3";
  double clock_mhz = 33.0;

  // --- Firmware handler costs, in NIC processor cycles ---------------------
  std::int64_t sdma_detect_cycles = 100;    // poll loop notices a new send token
  std::int64_t sdma_setup_cycles = 185;     // program the host->NIC DMA
  std::int64_t sdma_prepare_cycles = 100;   // build the packet after the DMA
  std::int64_t send_cycles = 30;            // hand a prepared packet to the wire
  std::int64_t recv_cycles = 480;           // receive + verify an incoming packet
  std::int64_t recv_ack_cycles = 60;        // process an ack/nack
  std::int64_t rdma_setup_cycles = 170;     // program NIC->host DMA, token mgmt
  std::int64_t barrier_init_cycles = 150;   // accept a barrier send token
  std::int64_t barrier_pe_cycles = 90;      // PE bookkeeping per barrier message
  std::int64_t barrier_gb_cycles = 200;     // GB bookkeeping per barrier message
  /// Extra initiation cost for a GB barrier: the firmware walks the child
  /// list and builds its gather bookkeeping. This fixed cost is why the
  /// paper's NIC-GB loses to host-GB at N=2 but wins at N>=4.
  std::int64_t barrier_gb_init_cycles = 800;
  /// Initiation cost of a hierarchical token, charged *per parked schedule
  /// entry* (each child/peer/release endpoint plus the parent): copy the
  /// endpoint, clear its bit, link the bookkeeping — a few tens of LANai
  /// instructions. Proportional rather than GB's flat worst-case charge, so
  /// a leaf with two entries pays ~2us of initiation instead of ~24us; the
  /// flat-GB path keeps its calibrated constant untouched.
  std::int64_t barrier_hier_init_per_entry_cycles = 30;
  std::int64_t barrier_send_cycles = 60;    // prepare one outgoing barrier packet
  /// Per-copy SEND cost for a multidestination fan-out (§3.4/§7, Buntinas
  /// et al.'s multidestination messages): the hierarchical release is
  /// prepared once (full barrier_send_cycles on the first copy); each
  /// further replica only rewrites the route header and re-queues the same
  /// staged bytes.
  std::int64_t barrier_mcast_send_cycles = 20;

  // --- One-sided RMA firmware costs (the rma:: layer, src/rma/) -------------
  // RMA ops ride the ordinary sequenced connection stream but terminate in
  // firmware at the target: a put pays rma_put_cycles plus the NIC->host DMA
  // of its word; a get pays rma_get_cycles plus a host-memory read over PCI;
  // a CAS is the modeled on-NIC atomic — firmware cycles only, applied on
  // the single LANai processor (hence linearizable across initiators).
  std::int64_t rma_prepare_cycles = 100;    // SDMA: build an outgoing RMA packet
  std::int64_t rma_put_cycles = 120;        // target firmware: apply a put
  std::int64_t rma_get_cycles = 140;        // target firmware: serve a get
  std::int64_t rma_cas_cycles = 160;        // target firmware: on-NIC CAS
  std::int64_t rma_reply_cycles = 60;       // initiator firmware: absorb a reply

  /// Wire payload of an RMA packet (segment/index/word + op header).
  std::int64_t rma_payload_bytes = 16;

  /// Maximum payload per wire packet; larger messages are segmented by the
  /// SDMA engine and reassembled by RDMA (GM's MTU is 4 KB on Myrinet LAN).
  std::int64_t mtu_bytes = 4096;

  // --- Host interconnect (PCI) ----------------------------------------------
  double pci_bandwidth_mbps = 132.0;        // 32-bit/33 MHz PCI
  sim::Duration pci_setup = sim::nanoseconds(300);

  // --- Ports & buffers --------------------------------------------------------
  int max_ports = 8;                        // GM 1.2.3: eight ports per NIC

  /// NIC-resident barrier-state slots (paper §3: initialization/cleanup of
  /// barrier state is a hard design issue). Each *managed* barrier group
  /// holds one slot on every member NIC for its lifetime; allocation is
  /// rejected when all slots are in use, and the group falls back to a
  /// host-driven barrier (kOkDegraded). Legacy anonymous barriers (group id
  /// 0) do not consume slots.
  int barrier_slots = 8;

  // --- Reliability -------------------------------------------------------------
  /// Fixed retransmission timeout; with adaptive_rto it is only the initial
  /// RTO used before the first RTT sample arrives.
  sim::Duration retransmit_timeout = sim::milliseconds(1.0);
  /// Jacobson/Karels per-connection RTO estimation (srtt + 4·rttvar, Karn's
  /// rule for samples, exponential backoff on timeout). Off = the seed's
  /// fixed-timeout behaviour, bit-identical to before this knob existed.
  bool adaptive_rto = true;
  sim::Duration min_rto = sim::microseconds(50.0);
  sim::Duration max_rto = sim::milliseconds(16.0);
  sim::Duration barrier_resend_delay = sim::microseconds(50.0);
  /// Give-up threshold: after this many consecutive timeouts on one
  /// connection the peer is declared dead (kPeerDead is raised on every open
  /// port; see Nic::declare_peer_dead).
  int max_retransmissions = 64;

  // --- Barrier policy knobs ------------------------------------------------------
  BarrierReliability barrier_reliability = BarrierReliability::kUnreliable;
  ClosedPortPolicy closed_port_policy = ClosedPortPolicy::kRecordThenRejectOnOpen;
  /// §3.4 optimisation (future work in the paper): barrier messages between
  /// two ports of the *same* NIC skip the wire and just set the flag.
  bool barrier_loopback = false;

  /// Payload size of a barrier packet (identifies barrier id + epoch).
  std::int64_t barrier_payload_bytes = 8;

  [[nodiscard]] sim::Duration cycles(std::int64_t n) const {
    return sim::cycles_at_mhz(n, clock_mhz);
  }
};

/// The paper's 33 MHz LANai 4.3 testbed card.
[[nodiscard]] NicConfig lanai43();

/// The paper's 66 MHz LANai 7.2 card: identical firmware, double the clock,
/// and a 64-bit PCI interface.
[[nodiscard]] NicConfig lanai72();

}  // namespace nicbar::nic
