// Sparse per-peer connection storage.
//
// The NIC used to keep `vector<unique_ptr<Connection>>` indexed by remote
// node id and resized to the largest peer ever contacted — at 4096 nodes
// that is 4096 pointers per NIC (128 MB of pointer array alone across the
// cluster) even though a barrier member only ever talks to O(log N) peers.
// This table stores connections in a stable slab in allocation order with
// a hash index over remote ids: memory is O(peers actually contacted),
// references stay valid for the NIC's lifetime (firmware coroutines hold
// `Connection&` across suspensions), and iteration is by ascending remote
// id so crash/restart replay order matches the old dense scan exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "nic/connection.hpp"

namespace nicbar::nic {

class ConnectionTable {
 public:
  using NodeId = net::NodeId;

  /// The connection to `remote`, allocating it on first contact.
  Connection& get_or_create(NodeId remote) {
    auto it = index_.find(remote);
    if (it == index_.end()) {
      slab_.emplace_back();
      it = index_.emplace(remote, slab_.size() - 1).first;
    }
    return slab_[it->second];
  }

  /// The connection to `remote`, or nullptr if never contacted.
  [[nodiscard]] Connection* find(NodeId remote) {
    auto it = index_.find(remote);
    return it == index_.end() ? nullptr : &slab_[it->second];
  }
  [[nodiscard]] const Connection* find(NodeId remote) const {
    auto it = index_.find(remote);
    return it == index_.end() ? nullptr : &slab_[it->second];
  }

  /// Applies `fn(remote, connection)` to every allocated connection in
  /// ascending remote-id order (deterministic regardless of contact order).
  template <typename Fn>
  void for_each(Fn&& fn) {
    std::vector<NodeId> ids;
    ids.reserve(index_.size());
    for (const auto& [remote, _] : index_) ids.push_back(remote);
    std::sort(ids.begin(), ids.end());
    for (NodeId remote : ids) fn(remote, slab_[index_.find(remote)->second]);
  }

  [[nodiscard]] std::size_t allocated() const { return slab_.size(); }

 private:
  std::deque<Connection> slab_;  // deque: stable addresses under growth
  std::unordered_map<NodeId, std::size_t> index_;
};

}  // namespace nicbar::nic
