// One-sided RMA firmware (the rma:: layer's NIC half).
//
// RMA operations ride the ordinary sequenced connection stream (kData-class
// reliability: go-back-N, duplicate suppression), so per-(initiator, target)
// ops commit in posting order, exactly once — the delivery-ordering guarantee
// the rma:: API documents and tests pin. Unlike data messages they terminate
// in the firmware:
//
//   put  — rma_put_cycles on the processor, then the NIC->host DMA of the
//          word over the shared PCI bus (FIFO, so put->put order per target
//          survives end-to-end), then the segment write.
//   get  — rma_get_cycles, then a host-memory read over PCI, then the reply.
//   cas  — the modeled on-NIC atomic: the segment word is mirrored in NIC
//          SRAM, so compare-exchange happens at the firmware instant on the
//          single LANai processor — concurrent CAS from any number of
//          initiators serialise there and are linearizable by construction.
//          (CAS-vs-put ordering on the *same* word is consequently not
//          defined; the rma:: layer keeps atomics and flag words separate.)
//
// Every op is answered with a kRmaReply on the reverse sequenced stream (the
// remote completion); the initiator's RmaSink hears about it after
// rma_reply_cycles. Ops arriving for a segment that has not registered yet
// are parked and flushed in arrival order by rma_register — registration
// races are expected (symmetric construction is not synchronized), not
// errors.
#include <cassert>
#include <utility>

#include "nic/nic.hpp"

namespace nicbar::nic {

using net::Packet;
using net::PacketType;

void Nic::post_rma_token(RmaToken token) {
  ++stats_.rma_ops_posted;
  engine_submit(
      McpEngine::kSdma, "rma_detect+setup",
      config_.sdma_detect_cycles + config_.sdma_setup_cycles,
      [this, token]() mutable {
        auto prepare = [this, token]() mutable {
          engine_submit(McpEngine::kSdma, "rma_prepare", config_.rma_prepare_cycles,
                        [this, token]() mutable {
                          Packet p;
                          switch (token.kind) {
                            case RmaOpKind::kPut: p.type = PacketType::kRmaPut; break;
                            case RmaOpKind::kGet: p.type = PacketType::kRmaGet; break;
                            case RmaOpKind::kCas: p.type = PacketType::kRmaCas; break;
                          }
                          p.src_node = node_;
                          p.src_port = token.src_port;
                          p.dst_node = token.dst.node;
                          p.dst_port = token.dst.port;
                          p.payload_bytes = config_.rma_payload_bytes;
                          p.rma_segment = token.segment;
                          p.rma_index = token.index;
                          p.rma_op = token.op_id;
                          p.value = token.value;
                          p.rma_expected = token.expected;
                          trace(sim::TraceCategory::kSdma, "rma prepared %s",
                                p.describe().c_str());
                          enqueue_reliable(std::move(p), nullptr);
                        });
        };
        if (token.kind == RmaOpKind::kPut) {
          // Puts carry a host word down over PCI; get/cas descriptors fit in
          // the token the SDMA poll loop already read.
          const sim::Duration dma =
              config_.pci_setup +
              sim::transfer_time(config_.rma_payload_bytes, config_.pci_bandwidth_mbps);
          pci_submit("rma_sdma_dma", dma, std::move(prepare));
        } else {
          prepare();
        }
      });
}

void Nic::rma_register(PortId p, std::uint64_t segment, RmaMemory* mem) {
  PortState& ps = port(p);
  ps.rma_segments[segment] = mem;
  // Flush ops that raced ahead of registration, preserving arrival order.
  std::deque<Packet> still_parked;
  for (Packet& parked : ps.rma_parked) {
    if (parked.rma_segment == segment) {
      rma_rx_in_order(std::move(parked));
    } else {
      still_parked.push_back(std::move(parked));
    }
  }
  ps.rma_parked = std::move(still_parked);
}

void Nic::set_rma_sink(PortId p, RmaSink* sink) { port(p).rma_sink = sink; }

void Nic::rma_rx_in_order(Packet p) {
  if (p.type == PacketType::kRmaReply) {
    auto packet = std::make_shared<Packet>(std::move(p));
    engine_submit(McpEngine::kRdma, "rma_reply", config_.rma_reply_cycles,
                  [this, packet]() mutable { rma_absorb_reply(std::move(*packet)); },
                  packet->id);
    return;
  }
  std::int64_t cost = config_.rma_put_cycles;
  if (p.type == PacketType::kRmaGet) cost = config_.rma_get_cycles;
  if (p.type == PacketType::kRmaCas) cost = config_.rma_cas_cycles;
  auto packet = std::make_shared<Packet>(std::move(p));
  engine_submit(McpEngine::kRdma, "rma_apply", cost,
                [this, packet]() mutable { rma_apply(std::move(*packet)); }, packet->id);
}

void Nic::rma_apply(Packet p) {
  PortState& ps = port(p.dst_port);
  if (!ps.open) {
    ++stats_.closed_port_drops;
    ++stats_.rma_rejected;
    rma_reply(p, 0, false);
    return;
  }
  auto seg = ps.rma_segments.find(p.rma_segment);
  if (seg == ps.rma_segments.end()) {
    // Registration race: the initiator's segment is constructed but ours is
    // not yet. Park; rma_register flushes in arrival order.
    ++stats_.rma_parked;
    trace(sim::TraceCategory::kRdma, "rma park %s", p.describe().c_str());
    ps.rma_parked.push_back(std::move(p));
    return;
  }
  RmaMemory* mem = seg->second;
  if (p.rma_index >= mem->size()) {
    ++stats_.rma_rejected;
    rma_reply(p, 0, false);
    return;
  }
  switch (p.type) {
    case PacketType::kRmaPut: {
      // NIC->host DMA of the word; the shared PCI bus is FIFO, so puts to
      // one target commit in stream order.
      const sim::Duration dma =
          config_.pci_setup +
          sim::transfer_time(p.payload_bytes, config_.pci_bandwidth_mbps);
      auto packet = std::make_shared<Packet>(std::move(p));
      pci_submit("rma_dma", dma, [this, packet, mem] {
        ++stats_.rma_puts_applied;
        mem->write(packet->rma_index, packet->value);
        trace(sim::TraceCategory::kRdma, "rma put applied %s", packet->describe().c_str());
        rma_reply(*packet, packet->value, true);
      }, packet->id);
      break;
    }
    case PacketType::kRmaGet: {
      // Host-memory read over PCI, then the fetched word goes back.
      const sim::Duration dma =
          config_.pci_setup +
          sim::transfer_time(p.payload_bytes, config_.pci_bandwidth_mbps);
      auto packet = std::make_shared<Packet>(std::move(p));
      pci_submit("rma_dma", dma, [this, packet, mem] {
        ++stats_.rma_gets_served;
        rma_reply(*packet, mem->read(packet->rma_index), true);
      }, packet->id);
      break;
    }
    case PacketType::kRmaCas: {
      // The on-NIC atomic: applied here, at the firmware instant, with no
      // PCI crossing — the single processor is the serialisation point.
      ++stats_.rma_cas_applied;
      const std::int64_t prior =
          mem->compare_exchange(p.rma_index, p.rma_expected, p.value);
      rma_reply(p, prior, true);
      break;
    }
    default:
      assert(false && "rma_apply on a non-RMA packet");
      break;
  }
}

void Nic::rma_reply(const Packet& request, std::int64_t value, bool ok) {
  Packet r;
  r.type = PacketType::kRmaReply;
  r.src_node = node_;
  r.src_port = request.dst_port;
  r.dst_node = request.src_node;
  r.dst_port = request.src_port;
  r.payload_bytes = config_.rma_payload_bytes;
  r.rma_segment = request.rma_segment;
  r.rma_index = request.rma_index;
  r.rma_op = request.rma_op;
  r.value = value;
  r.rma_ok = ok;
  enqueue_reliable(std::move(r), nullptr);
}

void Nic::rma_absorb_reply(Packet p) {
  PortState& ps = port(p.dst_port);
  if (!ps.open || ps.rma_sink == nullptr) {
    ++stats_.rma_rejected;
    return;
  }
  ++stats_.rma_replies;
  trace(sim::TraceCategory::kRdma, "rma reply %s", p.describe().c_str());
  ps.rma_sink->rma_complete(p.rma_op, p.value, p.rma_ok);
}

}  // namespace nicbar::nic
