// Core MCP: port management, the SDMA/SEND ordinary-message path, the
// RECV/RDMA receive path, and connection-level reliability (seq/ack/nack +
// go-back-N retransmission). The barrier firmware lives in nic_barrier.cpp.
#include "nic/nic.hpp"

#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace nicbar::nic {

using net::Packet;
using net::PacketType;

const char* to_string(BarrierAlgorithm a) {
  switch (a) {
    case BarrierAlgorithm::kPairwiseExchange: return "PE";
    case BarrierAlgorithm::kGatherBroadcast: return "GB";
    case BarrierAlgorithm::kHierarchical: return "HIER";
  }
  return "?";
}

const char* to_string(McpEngine e) {
  switch (e) {
    case McpEngine::kSdma: return "sdma";
    case McpEngine::kSend: return "send";
    case McpEngine::kRecv: return "recv";
    case McpEngine::kRdma: return "rdma";
  }
  return "?";
}

Nic::Nic(sim::Simulator& sim, net::Network& net, NodeId node, NicConfig config,
         sim::BusyServer& pci)
    : sim_(sim),
      net_(net),
      node_(node),
      config_(std::move(config)),
      proc_(sim, config_.clock_mhz, "nic" + std::to_string(node)),
      pci_(pci),
      ports_(static_cast<std::size_t>(config_.max_ports)),
      slots_(config_.barrier_slots) {}

void Nic::trace(sim::TraceCategory cat, const char* fmt, ...) {
  if (tracer_ == nullptr || !tracer_->on(cat)) return;
  char body[400];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);
  tracer_->log(cat, sim_.now(), "nic%u: %s", node_, body);
}

void Nic::set_telemetry(sim::telemetry::Telemetry* telemetry) {
  tsink_ = telemetry != nullptr ? telemetry->trace() : nullptr;
  bcoll_ = telemetry != nullptr ? telemetry->breakdown() : nullptr;
  causal_ = telemetry != nullptr ? telemetry->causal() : nullptr;
  if (tsink_ != nullptr) {
    const std::string prefix = "nic" + std::to_string(node_) + "/";
    for (std::size_t i = 0; i < kMcpEngineCount; ++i) {
      engine_track_[i] = tsink_->track(prefix + to_string(static_cast<McpEngine>(i)));
    }
    pci_track_ = tsink_->track("node" + std::to_string(node_) + "/pci");
    fault_track_ = tsink_->track(prefix + "fault");
  }
}

namespace {

/// TraceCategory of each MCP engine, for the sink-level --trace-mask filter.
constexpr sim::TraceCategory engine_category(McpEngine e) {
  switch (e) {
    case McpEngine::kSdma: return sim::TraceCategory::kSdma;
    case McpEngine::kSend: return sim::TraceCategory::kSend;
    case McpEngine::kRecv: return sim::TraceCategory::kRecv;
    case McpEngine::kRdma: return sim::TraceCategory::kRdma;
  }
  return sim::TraceCategory::kAll;
}

}  // namespace

sim::SimTime Nic::engine_submit(McpEngine engine, const char* job, std::int64_t cycles,
                                std::function<void()> on_done, std::uint64_t trace_id) {
  const auto i = static_cast<std::size_t>(engine);
  ++engines_.jobs[i];
  engines_.cycles[i] += cycles;
  const sim::SimTime end = proc_.submit_cycles(cycles, std::move(on_done));
  if (tsink_ != nullptr) {
    const sim::Duration service = proc_.cycles(cycles);
    tsink_->duration(engine_track_[i], job, end - service, service, "nic",
                     engine_category(engine), trace_id);
  }
  return end;
}

sim::SimTime Nic::pci_submit(const char* job, sim::Duration service,
                             std::function<void()> on_done, std::uint64_t trace_id) {
  const sim::SimTime end = pci_.submit(service, std::move(on_done));
  if (tsink_ != nullptr) {
    tsink_->duration(pci_track_, job, end - service, service, "pci",
                     sim::TraceCategory::kRdma, trace_id);
  }
  return end;
}

std::uint64_t Nic::causal_engine_span(sim::causal::Segment seg, const char* label,
                                      sim::SimTime end, std::int64_t cycles,
                                      std::uint64_t parent, std::uint64_t parent2) {
  if (causal_ == nullptr) return 0;
  const sim::Duration service = proc_.cycles(cycles);
  return causal_->record(seg, node_, label, end - service, end, parent, parent2);
}

void Nic::breakdown_nic(PortId p, std::uint32_t epoch, std::int64_t cycles) {
  if (bcoll_ != nullptr) bcoll_->add_nic(node_, p, epoch, proc_.cycles(cycles));
}

void Nic::breakdown_dma(PortId p, std::uint32_t epoch, sim::Duration d) {
  if (bcoll_ != nullptr) bcoll_->add_dma(node_, p, epoch, d);
}

void Nic::breakdown_wire(Endpoint dst, std::uint32_t epoch, sim::Duration d) {
  if (bcoll_ != nullptr) bcoll_->add_wire(dst.node, dst.port, epoch, d);
}

Connection& Nic::conn(NodeId remote) { return conns_.get_or_create(remote); }

const Connection& Nic::connection(NodeId remote) const {
  const Connection* c = conns_.find(remote);
  if (c == nullptr) throw std::out_of_range("no connection to remote " + std::to_string(remote));
  return *c;
}

bool Nic::barrier_active(PortId p) const {
  const PortState& ps = port(p);
  return ps.active_barrier != nullptr && !ps.active_barrier->completed;
}

// --- Ports ---------------------------------------------------------------------

void Nic::open_port(PortId p, sim::Mailbox<GmEvent>* events) {
  PortState& ps = port(p);
  if (ps.open) throw std::logic_error("port already open");
  ps.open = true;
  ps.events = events;
  ps.recv_tokens.clear();
  ps.barrier_buffers = 0;
  ps.active_barrier.reset();
  ps.last_barrier.reset();
  ps.active_reduce.reset();
  ps.last_reduce.reset();
  ps.last_completed_epoch = -1;  // a fresh endpoint restarts its epoch sequence
  ps.rma_segments.clear();
  ps.rma_sink = nullptr;
  ps.rma_parked.clear();
  flush_closed_port_records(p);
}

void Nic::close_port(PortId p) {
  PortState& ps = port(p);
  ps.open = false;
  ps.events = nullptr;
  ps.recv_tokens.clear();
  ps.barrier_buffers = 0;
  // An active barrier is abandoned (the §3.2 pathological case); the record
  // of the last completed barrier dies with the endpoint, so later barrier
  // NACKs will correctly find "endpoint closed since" and not resend.
  ps.active_barrier.reset();
  ps.last_barrier.reset();
  ps.active_reduce.reset();
  ps.last_reduce.reset();
  // Any group slots held by the endpoint die with it: a process that closes
  // (or crashes) mid-lifecycle must not pin NIC state forever, and packets
  // from its groups are fenced from now on.
  slots_.release_port(p);
  // RMA registrations and parked ops die with the endpoint too.
  ps.rma_segments.clear();
  ps.rma_sink = nullptr;
  ps.rma_parked.clear();
}

bool Nic::is_port_open(PortId p) const { return port(p).open; }

// --- Barrier-group slot admission ---------------------------------------------

bool Nic::slot_allocate(std::uint64_t group, PortId p) {
  if (group == 0) throw std::invalid_argument("group id 0 is the reserved anonymous group");
  const bool ok = slots_.allocate(group, p);
  trace(sim::TraceCategory::kBarrier, "slot %s group=%llu port=%u (%d/%d in use)",
        ok ? "alloc" : "REJECT", static_cast<unsigned long long>(group), p, slots_.in_use(),
        slots_.capacity());
  return ok;
}

void Nic::slot_free(std::uint64_t group, PortId p) {
  slots_.release(group, p);
  trace(sim::TraceCategory::kBarrier, "slot free group=%llu port=%u (%d/%d in use)",
        static_cast<unsigned long long>(group), p, slots_.in_use(), slots_.capacity());
}

bool Nic::slot_bound(std::uint64_t group, PortId p) const { return slots_.bound(group, p); }

void Nic::post_receive_token(PortId p, RecvToken token) {
  port(p).recv_tokens.push_back(token);
}

void Nic::provide_barrier_buffer(PortId p) { ++port(p).barrier_buffers; }

// --- SDMA / SEND: ordinary messages ------------------------------------------------

void Nic::post_send_token(SendToken token) {
  // SDMA notices the token (poll loop) and programs the host->NIC DMA.
  engine_submit(
      McpEngine::kSdma, "detect+setup", config_.sdma_detect_cycles + config_.sdma_setup_cycles,
      [this, token = std::move(token)]() mutable { sdma_start(std::move(token)); });
}

void Nic::sdma_start(SendToken token) {
  // Messages above the MTU are segmented; fragments pipeline through the
  // PCI DMA, packet preparation, and the wire (each stage FIFO).
  const std::int64_t mtu = config_.mtu_bytes;
  const auto frag_count = static_cast<std::uint16_t>(
      token.bytes <= mtu ? 1 : (token.bytes + mtu - 1) / mtu);
  sdma_fragment(std::move(token), 0, frag_count);
}

void Nic::sdma_fragment(SendToken token, std::uint16_t index, std::uint16_t frag_count) {
  const std::int64_t offset = static_cast<std::int64_t>(index) * config_.mtu_bytes;
  const std::int64_t len =
      frag_count == 1 ? token.bytes : std::min(config_.mtu_bytes, token.bytes - offset);
  const sim::Duration dma =
      config_.pci_setup + sim::transfer_time(len, config_.pci_bandwidth_mbps);
  pci_submit("sdma_dma", dma, [this, token = std::move(token), index, frag_count, len]() mutable {
    engine_submit(
        McpEngine::kSdma, "prepare", config_.sdma_prepare_cycles,
        [this, token = std::move(token), index, frag_count, len]() mutable {
          Packet p;
          p.type = PacketType::kData;
          p.src_node = node_;
          p.src_port = token.src_port;
          p.dst_node = token.dst.node;
          p.dst_port = token.dst.port;
          p.payload_bytes = len;
          p.message_bytes = token.bytes;
          p.tag = token.tag;
          p.value = token.value;
          p.frag_index = index;
          p.frag_count = frag_count;
          trace(sim::TraceCategory::kSdma, "prepared %s frag %u/%u", p.describe().c_str(),
                index + 1, frag_count);
          const bool last = index + 1 == frag_count;
          enqueue_reliable(std::move(p), last ? std::move(token.on_sent) : nullptr);
          if (!last) sdma_fragment(std::move(token), static_cast<std::uint16_t>(index + 1),
                                   frag_count);
        });
  });
}

void Nic::post_multicast_token(MulticastToken token) {
  if (token.bytes > config_.mtu_bytes) {
    throw std::invalid_argument("multicast payload exceeds the MTU");
  }
  engine_submit(
      McpEngine::kSdma, "detect+setup", config_.sdma_detect_cycles + config_.sdma_setup_cycles,
      [this, token = std::move(token)]() mutable {
        // The decisive difference from a host-side send loop: ONE PCI
        // crossing regardless of the destination count.
        const sim::Duration dma =
            config_.pci_setup + sim::transfer_time(token.bytes, config_.pci_bandwidth_mbps);
        pci_submit("mcast_dma", dma, [this, token = std::move(token)]() mutable {
          ++stats_.multicasts_sent;
          for (const Endpoint& dst : token.destinations) {
            // Per-destination packet preparation, pipelined on the processor.
            auto tok = std::make_shared<MulticastToken>(token);
            engine_submit(McpEngine::kSdma, "prepare", config_.sdma_prepare_cycles,
                          [this, tok, dst] {
              Packet p;
              p.type = PacketType::kData;
              p.src_node = node_;
              p.src_port = tok->src_port;
              p.dst_node = dst.node;
              p.dst_port = dst.port;
              p.payload_bytes = tok->bytes;
              p.tag = tok->tag;
              p.value = tok->value;
              enqueue_reliable(std::move(p), nullptr);
            });
          }
        });
      });
}

void Nic::enqueue_reliable(Packet p, std::function<void()> on_sent) {
  Connection& c = conn(p.dst_node);
  if (c.dead) {
    // The peer was declared dead: reliable traffic to it is discarded (the
    // host has been told via kPeerDead and must not expect delivery).
    ++stats_.dead_peer_drops;
    return;
  }
  p.seq = c.next_send_seq++;
  c.sent_list.push_back(SentRecord{p, std::move(on_sent), sim_.now(), false});
  arm_retransmit(p.dst_node);
  ++stats_.data_sent;
  transmit(std::move(p));
}

void Nic::transmit(Packet p, std::int64_t send_cycles_override) {
  if (crashed_) {
    ++stats_.tx_dropped_crashed;
    return;
  }
  // Stamp the fabric-unique id here (not at injection) so loopback packets
  // and the SEND-side trace flow event carry it too.
  if (p.id == 0) p.id = net_.allocate_packet_id(node_);
  const std::int64_t cost =
      send_cycles_override >= 0
          ? send_cycles_override
          : (net::is_barrier_payload(p.type) ? config_.barrier_send_cycles : config_.send_cycles);
  if (bcoll_ != nullptr && net::is_barrier_payload(p.type)) {
    // SEND cycles belong to the sender's barrier record; the wire time is on
    // the *destination's* critical path, so it accrues there (Eq. 1-2's
    // Network term).
    bcoll_->add_nic(node_, p.src_port, p.barrier_epoch, proc_.cycles(cost));
    breakdown_wire(Endpoint{p.dst_node, p.dst_port}, p.barrier_epoch,
                   net_.path_time(node_, p.dst_node, p.payload_bytes));
  }
  auto packet = std::make_shared<Packet>(std::move(p));
  const sim::SimTime end =
      engine_submit(McpEngine::kSend, "tx", cost, [this, packet]() mutable {
        if (packet->dst_node == node_) {
          // Same-NIC delivery: skip the fabric, model a short internal turnaround.
          Packet copy = *packet;
          sim_.schedule_in(proc_.cycles(config_.send_cycles),
                           [this, pkt = std::move(copy)]() mutable { rx_packet(std::move(pkt)); });
          return;
        }
        trace(sim::TraceCategory::kSend, "tx %s", packet->describe().c_str());
        net_.inject(std::move(*packet));
      }, packet->id);
  if (causal_ != nullptr) {
    // The packet's causal chain now ends at this SEND-engine span; wire and
    // switch hops extend it in flight.
    packet->causal = causal_engine_span(sim::causal::Segment::kSend, "tx", end, cost,
                                        packet->causal);
  }
  if (tsink_ != nullptr && !net::is_control(packet->type) && packet->id != 0) {
    tsink_->flow_start(engine_track_[static_cast<std::size_t>(McpEngine::kSend)], "pkt",
                       end - proc_.cycles(cost), packet->id, "nic",
                       sim::TraceCategory::kSend);
  }
}

void Nic::send_control(Packet p) {
  // Acks/nacks are small unsequenced control packets prepared by RDMA/SEND.
  transmit(std::move(p));
}

// --- RECV dispatch --------------------------------------------------------------------

void Nic::rx_packet(Packet p) {
  if (crashed_) {
    // The LANai processor is halted: the packet dies at the port.
    ++stats_.rx_dropped_crashed;
    return;
  }
  if (p.corrupted) {
    // The CRC check runs after the whole packet has streamed in, so the
    // RECV engine pays its full occupancy before discarding.
    engine_submit(McpEngine::kRecv, "rx_crc_drop", config_.recv_cycles,
                  [this] { ++stats_.crc_drops; });
    return;
  }
  if (const Connection* c = conns_.find(p.src_node); c != nullptr && c->dead) {
    // Traffic from a peer we gave up on; the connection state is torn down,
    // so nothing here can be interpreted safely.
    ++stats_.dead_peer_drops;
    return;
  }
  auto packet = std::make_shared<Packet>(std::move(p));
  switch (packet->type) {
    // RMA payloads share the kData receive path end-to-end: same RECV
    // occupancy, same sequence check, same go-back-N — the stream is where
    // their ordering guarantee comes from. They fork off only at
    // accept_in_order, into the firmware instead of a host buffer.
    case PacketType::kRmaPut:
    case PacketType::kRmaGet:
    case PacketType::kRmaCas:
    case PacketType::kRmaReply:
    case PacketType::kData: {
      const sim::SimTime end =
          engine_submit(McpEngine::kRecv, "rx_data", config_.recv_cycles,
                        [this, packet]() mutable { recv_data(std::move(*packet)); },
                        packet->id);
      if (causal_ != nullptr) {
        packet->causal = causal_engine_span(sim::causal::Segment::kRecv, "rx_data", end,
                                            config_.recv_cycles, packet->causal);
      }
      if (tsink_ != nullptr && packet->id != 0) {
        tsink_->flow_end(engine_track_[static_cast<std::size_t>(McpEngine::kRecv)], "pkt",
                         end - proc_.cycles(config_.recv_cycles), packet->id, "nic",
                         sim::TraceCategory::kRecv);
      }
      break;
    }
    case PacketType::kAck: {
      const sim::SimTime end = engine_submit(McpEngine::kRecv, "rx_ack",
                                             config_.recv_ack_cycles,
                                             [this, packet] { recv_ack(*packet); }, packet->id);
      if (causal_ != nullptr) {
        causal_engine_span(sim::causal::Segment::kRecv, "rx_ack", end,
                           config_.recv_ack_cycles, packet->causal);
      }
      break;
    }
    case PacketType::kNack: {
      const sim::SimTime end = engine_submit(McpEngine::kRecv, "rx_nack",
                                             config_.recv_ack_cycles,
                                             [this, packet] { recv_nack(*packet); }, packet->id);
      if (causal_ != nullptr) {
        causal_engine_span(sim::causal::Segment::kRecv, "rx_nack", end,
                           config_.recv_ack_cycles, packet->causal);
      }
      break;
    }
    case PacketType::kBarrierPe:
    case PacketType::kBarrierGather:
    case PacketType::kBarrierBcast:
      // RECV's per-packet cycles are on the barrier's critical path.
      breakdown_nic(packet->dst_port, packet->barrier_epoch, config_.recv_cycles);
      [[fallthrough]];
    case PacketType::kReduceUp:
    case PacketType::kReduceDown: {
      const sim::SimTime end =
          engine_submit(McpEngine::kRecv, "rx_barrier", config_.recv_cycles,
                        [this, packet]() mutable { barrier_rx(std::move(*packet)); },
                        packet->id);
      if (causal_ != nullptr) {
        packet->causal = causal_engine_span(sim::causal::Segment::kRecv, "rx_barrier", end,
                                            config_.recv_cycles, packet->causal);
      }
      if (tsink_ != nullptr && packet->id != 0) {
        tsink_->flow_end(engine_track_[static_cast<std::size_t>(McpEngine::kRecv)], "pkt",
                         end - proc_.cycles(config_.recv_cycles), packet->id, "nic",
                         sim::TraceCategory::kRecv);
      }
      break;
    }
    case PacketType::kBarrierAck:
      engine_submit(McpEngine::kRecv, "rx_barrier_ack", config_.recv_ack_cycles,
                    [this, packet] { barrier_recv_barrier_ack(*packet); });
      break;
    case PacketType::kBarrierNack:
      engine_submit(McpEngine::kRecv, "rx_barrier_nack", config_.recv_ack_cycles,
                    [this, packet] { barrier_handle_nack(*packet); });
      break;
  }
}

void Nic::recv_data(Packet p) {
  Connection& c = conn(p.src_node);
  trace(sim::TraceCategory::kRecv, "rx %s (expect seq=%u)", p.describe().c_str(),
        c.next_expected_seq);
  if (p.seq == c.next_expected_seq) {
    // In-order. GM receive-side flow control: without a host buffer the
    // packet cannot be accepted; leave the stream position unchanged so the
    // sender's retransmission redelivers it later. Collective payloads
    // (shared-stream mode) are consumed by the NIC itself, no host buffer;
    // non-leading fragments use the buffer claimed by fragment 0.
    if (!net::is_collective_payload(p.type) && !net::is_rma_payload(p.type) &&
        p.frag_index == 0 &&
        port(p.dst_port).open && port(p.dst_port).recv_tokens.empty()) {
      ++stats_.no_token_drops;
      send_nack(p.src_node);
      return;
    }
    ++c.next_expected_seq;
    c.nack_outstanding = false;
    send_ack(p.src_node);
    accept_in_order(std::move(p));
  } else if (p.seq < c.next_expected_seq) {
    ++stats_.duplicates_dropped;
    send_ack(p.src_node);  // re-ack so the sender can retire it
  } else {
    ++stats_.out_of_order_dropped;
    if (!c.nack_outstanding) {
      c.nack_outstanding = true;
      send_nack(p.src_node);
    }
  }
}

void Nic::accept_in_order(Packet p) {
  if (net::is_collective_payload(p.type)) {
    // Shared-stream mode: the barrier message passed the ordinary stream
    // check; now run the barrier firmware on it.
    const std::int64_t cost = p.type == PacketType::kBarrierPe
                                  ? config_.barrier_pe_cycles
                                  : config_.barrier_gb_cycles;
    auto packet = std::make_shared<Packet>(std::move(p));
    breakdown_nic(packet->dst_port, packet->barrier_epoch, cost);
    const sim::SimTime end =
        engine_submit(McpEngine::kRdma, "barrier_advance", cost,
                      [this, packet]() mutable { barrier_rx_in_order(std::move(*packet)); },
                      packet->id);
    if (causal_ != nullptr) {
      packet->causal = causal_engine_span(sim::causal::Segment::kFirmware, "barrier_advance",
                                          end, cost, packet->causal);
    }
    return;
  }
  if (net::is_rma_payload(p.type)) {
    // One-sided ops terminate in the firmware, never in a host buffer.
    rma_rx_in_order(std::move(p));
    return;
  }
  ++stats_.data_received;
  if (!port(p.dst_port).open) {
    ++stats_.closed_port_drops;
    return;
  }
  deliver_to_host(std::move(p));
}

void Nic::recv_ack(const Packet& p) {
  ++stats_.acks_received;
  Connection& c = conn(p.src_node);
  bool retired = false;
  bool sampled = false;
  while (!c.sent_list.empty() && c.sent_list.front().packet.seq <= p.ack) {
    SentRecord rec = std::move(c.sent_list.front());
    c.sent_list.pop_front();
    retired = true;
    // Karn's rule: a retransmitted packet's ack is ambiguous (original or
    // copy?), so only unambiguous records feed the estimator — and one
    // sample per ack, like TCP's per-ack clocking.
    if (!sampled && !rec.retransmitted) {
      sample_rtt(c, sim_.now() - rec.first_sent);
      sampled = true;
    }
    if (rec.on_sent) sim_.schedule_now(std::move(rec.on_sent));
  }
  if (retired) {
    c.retransmissions = 0;
    c.backoff = 0;
    sim_.cancel(c.retransmit_timer);
    if (!c.sent_list.empty()) arm_retransmit(p.src_node);
  }
}

void Nic::recv_nack(const Packet& p) {
  ++stats_.nacks_received;
  Connection& c = conn(p.src_node);
  // NACK(n): receiver has everything below n; retire those, resend the rest.
  while (!c.sent_list.empty() && c.sent_list.front().packet.seq < p.ack) {
    SentRecord rec = std::move(c.sent_list.front());
    c.sent_list.pop_front();
    if (rec.on_sent) sim_.schedule_now(std::move(rec.on_sent));
  }
  retransmit_all(p.src_node);
}

// --- Reliability timers -------------------------------------------------------------------

sim::Duration Nic::current_rto(const Connection& c) const {
  if (!config_.adaptive_rto) return config_.retransmit_timeout;
  sim::Duration rto = config_.retransmit_timeout;  // initial RTO, pre-sample
  if (c.rtt_valid) {
    // Simulated RTTs carry no clock noise, so rttvar collapses whenever acks
    // are steady and srtt + 4·rttvar alone would fire on the first queueing
    // spike the estimator hasn't seen (TCP hides the same hazard behind a
    // min RTO of many RTT multiples). Floor the estimate at 8x the worst
    // ack delay this path has actually produced: a delay the peer already
    // demonstrated can never look like silence, while a dead path still does.
    double est = c.srtt_ps + 4.0 * c.rttvar_ps;
    if (est < 8.0 * c.rtt_max_ps) est = 8.0 * c.rtt_max_ps;
    rto = sim::Duration{static_cast<std::int64_t>(est)};
  }
  // Exponential backoff: each consecutive timeout doubles the wait, so a
  // persistently silent peer backs the sender off instead of flooding.
  for (int i = 0; i < c.backoff && rto < config_.max_rto; ++i) rto = rto * 2;
  if (rto < config_.min_rto) rto = config_.min_rto;
  if (rto > config_.max_rto) rto = config_.max_rto;
  return rto;
}

void Nic::sample_rtt(Connection& c, sim::Duration rtt) {
  if (!config_.adaptive_rto) return;
  ++stats_.rtt_samples;
  const double sample = static_cast<double>(rtt.ps());
  if (sample > c.rtt_max_ps) {
    c.rtt_max_ps = sample;
  } else {
    // Leaky max: a queueing spike raises the floor instantly but is forgiven
    // over ~8 quiet samples, so one loss-recovery transient can't pin the
    // RTO near its ceiling for the rest of the run.
    c.rtt_max_ps -= (c.rtt_max_ps - sample) / 8.0;
  }
  if (!c.rtt_valid) {
    // Jacobson's initialisation: first sample seeds srtt, rttvar = srtt/2.
    c.srtt_ps = sample;
    c.rttvar_ps = sample / 2.0;
    c.rtt_valid = true;
    return;
  }
  const double err = sample - c.srtt_ps;
  c.rttvar_ps += ((err < 0 ? -err : err) - c.rttvar_ps) / 4.0;  // gain 1/4
  c.srtt_ps += err / 8.0;                                       // gain 1/8
}

void Nic::arm_retransmit(NodeId remote) {
  Connection& c = conn(remote);
  sim_.cancel(c.retransmit_timer);
  if (crashed_ || c.dead) return;
  c.retransmit_timer = sim_.schedule_in(current_rto(c), [this, remote] {
    Connection& cc = conn(remote);
    if (cc.sent_list.empty()) return;
    ++stats_.retransmit_timeouts;
    if (++cc.retransmissions > config_.max_retransmissions) {
      declare_peer_dead(remote);
      return;
    }
    if (config_.adaptive_rto) {
      ++cc.backoff;
      ++stats_.rto_backoffs;
    }
    retransmit_all(remote);
  });
}

void Nic::retransmit_all(NodeId remote) {
  Connection& c = conn(remote);
  for (SentRecord& rec : c.sent_list) {
    rec.retransmitted = true;  // Karn: its ack can no longer be sampled
    ++stats_.retransmissions;
    trace(sim::TraceCategory::kReliab, "retransmit %s", rec.packet.describe().c_str());
    transmit(rec.packet);
  }
  if (!c.sent_list.empty()) arm_retransmit(remote);
}

void Nic::declare_peer_dead(NodeId remote) {
  Connection& c = conn(remote);
  if (c.dead) return;
  c.dead = true;
  ++stats_.connections_failed;
  sim_.cancel(c.retransmit_timer);
  sim_.cancel(c.barrier_retransmit_timer);
  c.sent_list.clear();
  c.barrier_sent_list.clear();
  trace(sim::TraceCategory::kReliab, "connection to %u failed (retries exhausted)", remote);
  if (tsink_ != nullptr) tsink_->instant(fault_track_, "peer_dead", sim_.now(), "fault");
  GmEvent ev;
  ev.type = GmEventType::kPeerDead;
  ev.peer = Endpoint{remote, 0};
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (!ports_[p] || !ports_[p]->open) continue;
    push_event(static_cast<PortId>(p), ev);
    // One-sided ops in flight to the dead peer will never see their reply;
    // the rma:: layer fails them with kPeerDead.
    if (ports_[p]->rma_sink != nullptr) ports_[p]->rma_sink->rma_peer_dead(remote);
  }
}

// --- Fault injection ------------------------------------------------------------------------

void Nic::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.nic_crashes;
  trace(sim::TraceCategory::kReliab, "crash");
  if (tsink_ != nullptr) tsink_->instant(fault_track_, "crash", sim_.now(), "fault");
  // The firmware's timers die with the processor; connection bookkeeping
  // survives in host/NIC SRAM and is replayed by restart().
  conns_.for_each([this](NodeId, Connection& c) {
    sim_.cancel(c.retransmit_timer);
    sim_.cancel(c.barrier_retransmit_timer);
  });
}

void Nic::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.nic_restarts;
  trace(sim::TraceCategory::kReliab, "restart");
  if (tsink_ != nullptr) tsink_->instant(fault_track_, "restart", sim_.now(), "fault");
  // Replay everything unacknowledged on both streams; the receiver's
  // duplicate suppression makes this safe.
  conns_.for_each([this](NodeId remote, Connection& c) {
    if (c.dead) return;
    c.retransmissions = 0;
    c.barrier_retransmissions = 0;
    c.backoff = 0;
    if (!c.sent_list.empty()) retransmit_all(remote);
    if (!c.barrier_sent_list.empty()) barrier_retransmit_all(remote);
  });
}

void Nic::send_ack(NodeId remote) {
  Connection& c = conn(remote);
  Packet a;
  a.type = PacketType::kAck;
  a.src_node = node_;
  a.dst_node = remote;
  a.ack = c.next_expected_seq - 1;  // cumulative: highest accepted
  ++stats_.acks_sent;
  send_control(std::move(a));
}

void Nic::send_nack(NodeId remote) {
  Connection& c = conn(remote);
  Packet a;
  a.type = PacketType::kNack;
  a.src_node = node_;
  a.dst_node = remote;
  a.ack = c.next_expected_seq;  // the sequence number we want next
  ++stats_.nacks_sent;
  send_control(std::move(a));
}

// --- RDMA ----------------------------------------------------------------------------------------

void Nic::deliver_to_host(Packet p) {
  PortState& ps = port(p.dst_port);
  if (p.frag_index == 0) {
    // Fragment 0 (or a whole unfragmented message) claims the host buffer;
    // later fragments stream into the same buffer.
    assert(!ps.recv_tokens.empty());  // guaranteed by the recv_data token check
    ps.recv_tokens.pop_front();
  }
  auto packet = std::make_shared<Packet>(std::move(p));
  const sim::SimTime setup_end = engine_submit(
      McpEngine::kRdma, "rdma_setup", config_.rdma_setup_cycles, [this, packet] {
        const sim::Duration dma =
            config_.pci_setup +
            sim::transfer_time(packet->payload_bytes, config_.pci_bandwidth_mbps);
        const sim::SimTime dma_end = pci_submit("rdma_dma", dma, [this, packet] {
          // The host sees one event per *message*, on the final fragment.
          if (packet->frag_index + 1 != packet->frag_count) return;
          GmEvent ev;
          ev.type = GmEventType::kRecv;
          ev.peer = Endpoint{packet->src_node, packet->src_port};
          ev.bytes = packet->frag_count == 1 ? packet->payload_bytes : packet->message_bytes;
          ev.tag = packet->tag;
          ev.value = packet->value;
          ev.causal = packet->causal;
          trace(sim::TraceCategory::kRdma, "deliver %s", packet->describe().c_str());
          push_event(packet->dst_port, ev);
        }, packet->id);
        if (causal_ != nullptr) {
          packet->causal = causal_->record(sim::causal::Segment::kRdma, node_, "rdma_dma",
                                           dma_end - dma, dma_end, packet->causal);
        }
      }, packet->id);
  if (causal_ != nullptr) {
    packet->causal = causal_engine_span(sim::causal::Segment::kRdma, "rdma_setup", setup_end,
                                        config_.rdma_setup_cycles, packet->causal);
  }
}

void Nic::push_event(PortId p, GmEvent ev) {
  PortState& ps = port(p);
  if (!ps.open || ps.events == nullptr) {
    ++stats_.closed_port_drops;
    return;
  }
  ++stats_.events_delivered;
  ps.events->send(ev);
}

}  // namespace nicbar::nic
