// The NIC-based barrier firmware (paper §4.2-§4.4, §5.2).
//
// Barrier state lives in the barrier send token; the port structure points
// at the active token so the RDMA engine can find it when a barrier packet
// arrives. Unexpected arrivals set one bit per (connection, remote port) in
// the per-connection record; the advance logic tests-and-clears those bits.
//
// Three reliability modes (§3.3/§4.4) and three closed-port policies (§3.2)
// are implemented; see NicConfig for which combination the paper measured.
#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

#include "nic/nic.hpp"
#include "sim/check.hpp"

namespace nicbar::nic {

using net::Packet;
using net::PacketType;

namespace {

bool contains(const std::vector<Endpoint>& v, Endpoint e) {
  for (const Endpoint& x : v) {
    if (x == e) return true;
  }
  return false;
}

}  // namespace

// --- Initiation (SDMA side) ------------------------------------------------------

void Nic::post_barrier_token(BarrierToken token) {
  std::int64_t cycles = config_.sdma_detect_cycles + config_.barrier_init_cycles;
  if (token.algorithm == BarrierAlgorithm::kGatherBroadcast) {
    // A GB token carries a tree slice the firmware must park (flat
    // worst-case charge, calibrated — see NicConfig).
    cycles += config_.barrier_gb_init_cycles;
  } else if (token.algorithm == BarrierAlgorithm::kHierarchical) {
    // Hierarchical tokens pay per parked schedule entry instead: block
    // leaves park two endpoints, not a worst-case tree.
    const auto entries = static_cast<std::int64_t>(
        token.children.size() + token.peers.size() + token.release.size() +
        (token.is_root() ? 0 : 1));
    cycles += entries * config_.barrier_hier_init_per_entry_cycles;
  }
  breakdown_nic(token.src_port, token.epoch, cycles);
  auto tok = std::make_shared<BarrierToken>(std::move(token));
  const sim::SimTime end =
      engine_submit(McpEngine::kSdma, "barrier_init", cycles,
                    [this, tok]() mutable { barrier_start(std::move(*tok)); });
  if (causal_ != nullptr) {
    // One engine job covers both the SDMA token detection and the firmware
    // barrier initiation; attribute each half to its own segment.
    const std::int64_t init_cycles = cycles - config_.sdma_detect_cycles;
    const std::uint64_t detect =
        causal_engine_span(sim::causal::Segment::kSdma, "sdma_detect",
                           end - proc_.cycles(init_cycles), config_.sdma_detect_cycles,
                           tok->causal);
    tok->causal = causal_engine_span(sim::causal::Segment::kFirmware, "barrier_init", end,
                                     init_cycles, detect);
  }
}

void Nic::barrier_start(BarrierToken token) {
  PortState& ps = port(token.src_port);
  if (!ps.open) return;  // endpoint closed while the token was in flight
  if (ps.active_barrier && !ps.active_barrier->completed) {
    throw std::logic_error("barrier already active on this port");
  }
  // A managed token requires its group's slot binding: the lifecycle layer
  // allocates before the first barrier and frees only after the last, so a
  // violation here is a host-side lifecycle bug, not a race.
  NICBAR_CHECK(token.group == 0 || slots_.bound(token.group, token.src_port), "nic.barrier",
               sim_.now(), "port %u: barrier for group %llu without a slot binding",
               token.src_port, static_cast<unsigned long long>(token.group));
  ++stats_.barriers_started;
  const PortId p = token.src_port;
  trace(sim::TraceCategory::kBarrier, "port %u: start %s barrier epoch=%u", p,
        to_string(token.algorithm), token.epoch);
  ps.active_barrier = std::make_unique<BarrierToken>(std::move(token));
  switch (ps.active_barrier->algorithm) {
    case BarrierAlgorithm::kPairwiseExchange:
      barrier_try_advance_pe(p);
      break;
    case BarrierAlgorithm::kGatherBroadcast:
      barrier_check_gather(p);
      break;
    case BarrierAlgorithm::kHierarchical:
      barrier_hier_check_gather(p);
      break;
  }
}

// --- Receive path ------------------------------------------------------------------

std::int64_t Nic::barrier_rx_cost(const Packet& p) {
  if (p.type == PacketType::kBarrierPe) return config_.barrier_pe_cycles;
  if (p.type == PacketType::kBarrierBcast) {
    // A hierarchical release terminates at the receiver — match the source,
    // complete, done; no child scan and no rebroadcast — so it books at
    // PE-grade cost, not GB's tree-descent charge (which flat GB keeps).
    const BarrierToken* t = port(p.dst_port).active_barrier.get();
    if (t != nullptr && t->algorithm == BarrierAlgorithm::kHierarchical) {
      return config_.barrier_pe_cycles;
    }
  }
  return config_.barrier_gb_cycles;
}

void Nic::barrier_rx(Packet p) {
  // Runs after the RECV engine's per-packet cycles. Route by the configured
  // reliability mode, then pay the algorithm's bookkeeping cycles.
  switch (config_.barrier_reliability) {
    case BarrierReliability::kUnreliable: {
      const std::int64_t cost = barrier_rx_cost(p);
      auto packet = std::make_shared<Packet>(std::move(p));
      breakdown_nic(packet->dst_port, packet->barrier_epoch, cost);
      const sim::SimTime end =
          engine_submit(McpEngine::kRdma, "barrier_advance", cost,
                        [this, packet]() mutable { barrier_rx_in_order(std::move(*packet)); },
                        packet->id);
      packet->causal = causal_engine_span(sim::causal::Segment::kFirmware, "barrier_advance",
                                          end, cost, packet->causal);
      break;
    }
    case BarrierReliability::kSharedStream:
      // Same seq/ack stream as data: recv_data runs the stream check and
      // dispatches in-order barrier payloads back to barrier_rx_in_order.
      recv_data(std::move(p));
      break;
    case BarrierReliability::kSeparateAcks:
      barrier_recv_separate(std::move(p));
      break;
  }
}

void Nic::barrier_rx_in_order(Packet p) {
  ++stats_.barrier_packets_received;
  // Group fence: a packet tagged with a managed group id is only admitted
  // while that group holds a slot for the destination port. Anything else is
  // stale traffic — a round still draining after destroy, or a retransmit
  // that outlived its group — and must not be recorded, NACKed, or delivered
  // into whatever group reused the NIC state since. Counted, then dropped.
  // Legacy packets (group 0) bypass the fence entirely.
  if (p.group != 0 && !slots_.bound(p.group, p.dst_port)) {
    ++stats_.stale_group_fenced;
    trace(sim::TraceCategory::kBarrier, "fenced stale %s (group=%llu has no slot)",
          p.describe().c_str(), static_cast<unsigned long long>(p.group));
    return;
  }
  PortState& ps = port(p.dst_port);
  if (!ps.open) {
    barrier_closed_port_arrival(std::move(p));
    return;
  }
  if (p.type == PacketType::kReduceUp || p.type == PacketType::kReduceDown) {
    reduce_rx_in_order(std::move(p));
    return;
  }
  BarrierToken* tok = ps.active_barrier.get();
  const Endpoint src{p.src_node, p.src_port};
  trace(sim::TraceCategory::kBarrier, "port %u: rx %s", p.dst_port, p.describe().c_str());

  switch (p.type) {
    case PacketType::kBarrierPe:
      // A hierarchical token only exchanges once its gather phase is done;
      // earlier PE arrivals (a faster block's representative) are recorded
      // below and consumed when the exchange reaches that round.
      if (tok != nullptr && !tok->completed &&
          (tok->algorithm == BarrierAlgorithm::kPairwiseExchange ||
           (tok->algorithm == BarrierAlgorithm::kHierarchical && tok->hier_gathered)) &&
          tok->awaiting_recv &&
          tok->node_index < tok->peers.size() && tok->peers[tok->node_index] == src) {
        // The expected message: advance to the next destination (§5.2).
        ++tok->node_index;
        ++stats_.barrier_pe_rounds;
        tok->awaiting_recv = false;
        if (causal_ != nullptr && p.causal != 0) {
          // The advance depends on both the arrival chain and our own last
          // firmware decision (our send of this round); join them.
          causal_->add_parent(p.causal, tok->causal);
          tok->causal = p.causal;
        }
        barrier_try_advance_pe(p.dst_port);
      } else {
        barrier_record(p, false);
      }
      break;

    case PacketType::kBarrierGather:
      // Gather messages are always recorded first, then the children scan
      // runs (§5.2: "the packet is recorded, then ... checks to see if
      // gather packets have been received from all the children").
      barrier_record(p, false);
      if (tok != nullptr && !tok->completed) {
        if (tok->algorithm == BarrierAlgorithm::kGatherBroadcast && !tok->gather_sent) {
          barrier_check_gather(p.dst_port);
        } else if (tok->algorithm == BarrierAlgorithm::kHierarchical) {
          barrier_hier_check_gather(p.dst_port);  // self-guards on phase
        }
      }
      break;

    case PacketType::kBarrierBcast:
      if (tok != nullptr && !tok->completed &&
          tok->algorithm == BarrierAlgorithm::kGatherBroadcast && tok->gather_sent &&
          tok->parent == src) {
        if (causal_ != nullptr && p.causal != 0) {
          causal_->add_parent(p.causal, tok->causal);
          tok->causal = p.causal;
        }
        barrier_complete(p.dst_port);
        barrier_enter_broadcast(p.dst_port);
      } else if (tok != nullptr && !tok->completed &&
                 tok->algorithm == BarrierAlgorithm::kHierarchical && tok->gather_sent &&
                 !tok->release.empty() && tok->release[0] == src) {
        // The multidestination release from our representative: complete
        // without rebroadcasting — the representative reached every block
        // member directly.
        if (causal_ != nullptr && p.causal != 0) {
          causal_->add_parent(p.causal, tok->causal);
          tok->causal = p.causal;
        }
        barrier_complete(p.dst_port);
      } else {
        barrier_record(p, false);
      }
      break;

    default:
      assert(false && "non-barrier packet in barrier_rx_in_order");
  }
}

void Nic::barrier_record(const Packet& p, bool for_closed_port) {
  Connection& c = conn(p.src_node);
  if (c.bit(p.src_port)) {
    // §3.1 argues at most one unexpected message per remote endpoint can be
    // outstanding; a collision here means duplicate delivery (packet loss +
    // retransmission) — count it, keep the newer record.
    ++stats_.bit_collisions;
  } else {
    ++stats_.unexpected_recorded;
  }
  c.set_bit(p.src_port, BarrierBitInfo{p.type, p.barrier_epoch, p.dst_port, for_closed_port,
                                       p.value, p.causal});
  trace(sim::TraceCategory::kBarrier, "record unexpected %s%s", p.describe().c_str(),
        for_closed_port ? " (closed port)" : "");
}

// --- Pairwise exchange (§5.2) ----------------------------------------------------------

void Nic::barrier_try_advance_pe(PortId local_port) {
  PortState& ps = port(local_port);
  BarrierToken* tok = ps.active_barrier.get();
  if (tok == nullptr || tok->completed) return;
  // Also drives the exchange phase of a hierarchical token (same parked
  // state: peers / node_index / awaiting_recv); it only differs at the end,
  // where the representative releases its block instead of just completing.
  const bool hier = tok->algorithm == BarrierAlgorithm::kHierarchical;
  if (hier ? !tok->hier_gathered : tok->algorithm != BarrierAlgorithm::kPairwiseExchange) {
    return;
  }
  for (;;) {
    if (tok->node_index >= tok->peers.size()) {
      if (hier) {
        // Representative hop, downward edge: the instant the last exchange
        // settles and the release leaves the NIC. Zero-duration — the
        // hand-off costs nothing here, unlike the host-orchestrated
        // composition it replaces.
        if (causal_ != nullptr) {
          tok->causal = causal_->record(sim::causal::Segment::kRep, node_, "rep_down",
                                        sim_.now(), sim_.now(), tok->causal);
        }
        // Multidestination release, issued *before* our own completion DMA:
        // the block's wakeups are the latency-critical edge; the host here
        // can learn a couple of microseconds later. (Deliberate inversion of
        // §5.2's notify-first root order, which flat GB keeps.)
        ++stats_.barrier_bcasts_entered;
        for (std::size_t i = 0; i < tok->release.size(); ++i) {
          // First copy stages the packet at full cost; the rest are
          // header-rewrite replicas.
          barrier_send(local_port, tok->release[i], PacketType::kBarrierBcast, tok->epoch,
                       /*mcast_copy=*/i > 0);
        }
        barrier_complete(local_port);
        return;
      }
      barrier_complete(local_port);
      return;
    }
    const Endpoint peer = tok->peers[tok->node_index];
    if (!tok->awaiting_recv) {
      barrier_send(local_port, peer, PacketType::kBarrierPe, tok->epoch);
      tok->awaiting_recv = true;
    }
    Connection& c = conn(peer.node);
    if (!c.bit(peer.port)) return;  // wait for the RDMA engine to advance us
    // Already received (recorded as unexpected): test-and-clear, advance.
    const std::uint64_t arrival = c.bit_info[peer.port].causal;
    c.clear_bit(peer.port);
    breakdown_nic(local_port, tok->epoch, config_.barrier_pe_cycles);
    const sim::SimTime end =
        engine_submit(McpEngine::kRdma, "pe_advance", config_.barrier_pe_cycles);  // bookkeeping
    if (causal_ != nullptr) {
      tok->causal = causal_engine_span(sim::causal::Segment::kFirmware, "pe_advance", end,
                                       config_.barrier_pe_cycles, arrival, tok->causal);
    }
    ++tok->node_index;
    ++stats_.barrier_pe_rounds;
    tok->awaiting_recv = false;
  }
}

// --- Gather-and-broadcast (§5.2) ----------------------------------------------------------

void Nic::barrier_check_gather(PortId local_port) {
  PortState& ps = port(local_port);
  BarrierToken* tok = ps.active_barrier.get();
  if (tok == nullptr || tok->completed ||
      tok->algorithm != BarrierAlgorithm::kGatherBroadcast || tok->gather_sent) {
    return;
  }
  for (const Endpoint& child : tok->children) {
    if (!conn(child.node).bit(child.port)) return;  // still waiting on a child
  }
  if (causal_ != nullptr && !tok->children.empty()) {
    // Zero-duration join: the gather condition depends on every child's
    // arrival chain plus our own initiation; the last-ending parent is the
    // one the critical path walks through.
    const std::uint64_t join = causal_->record(sim::causal::Segment::kFirmware, node_,
                                               "gather_ready", sim_.now(), sim_.now(),
                                               tok->causal);
    for (const Endpoint& child : tok->children) {
      causal_->add_parent(join, conn(child.node).bit_info[child.port].causal);
    }
    tok->causal = join;
  }
  for (const Endpoint& child : tok->children) conn(child.node).clear_bit(child.port);

  if (tok->is_root()) {
    // §5.2: the root notifies the host *first*, then broadcasts.
    barrier_complete(local_port);
    barrier_enter_broadcast(local_port);
    return;
  }
  barrier_send(local_port, tok->parent, PacketType::kBarrierGather, tok->epoch);
  tok->gather_sent = true;
  ++stats_.barrier_gathers_sent;
  // Robustness: a (re)broadcast from the parent may already be recorded
  // (possible after closed-port flush/resend interleavings).
  Connection& pc = conn(tok->parent.node);
  if (pc.bit(tok->parent.port) &&
      pc.bit_info[tok->parent.port].type == PacketType::kBarrierBcast) {
    if (causal_ != nullptr) {
      tok->causal = causal_->record(sim::causal::Segment::kFirmware, node_, "bcast_seen",
                                    sim_.now(), sim_.now(),
                                    pc.bit_info[tok->parent.port].causal, tok->causal);
    }
    pc.clear_bit(tok->parent.port);
    barrier_complete(local_port);
    barrier_enter_broadcast(local_port);
  }
}

// --- Hierarchical (two-level fabric barrier, representative side) -------------------------

void Nic::barrier_hier_check_gather(PortId local_port) {
  // Phase one of a hierarchical token: the intra-block gather. At the
  // representative (the block tree's root) satisfaction flips the token
  // straight into the inter-representative exchange, all without a host
  // round-trip. At everyone else it forwards one gather up the block tree
  // and parks until the representative's release arrives.
  PortState& ps = port(local_port);
  BarrierToken* tok = ps.active_barrier.get();
  if (tok == nullptr || tok->completed ||
      tok->algorithm != BarrierAlgorithm::kHierarchical ||
      (tok->is_root() ? tok->hier_gathered : tok->gather_sent)) {
    return;
  }
  for (const Endpoint& child : tok->children) {
    if (!conn(child.node).bit(child.port)) return;  // still waiting on a child
  }
  if (causal_ != nullptr && !tok->children.empty()) {
    const std::uint64_t join = causal_->record(sim::causal::Segment::kFirmware, node_,
                                               "gather_ready", sim_.now(), sim_.now(),
                                               tok->causal);
    for (const Endpoint& child : tok->children) {
      causal_->add_parent(join, conn(child.node).bit_info[child.port].causal);
    }
    tok->causal = join;
  }
  for (const Endpoint& child : tok->children) conn(child.node).clear_bit(child.port);

  if (!tok->is_root()) {
    barrier_send(local_port, tok->parent, PacketType::kBarrierGather, tok->epoch);
    tok->gather_sent = true;
    ++stats_.barrier_gathers_sent;
    // Robustness: the representative's release may already be recorded
    // (possible after closed-port flush/resend interleavings).
    if (!tok->release.empty()) {
      Connection& rc = conn(tok->release[0].node);
      if (rc.bit(tok->release[0].port) &&
          rc.bit_info[tok->release[0].port].type == PacketType::kBarrierBcast) {
        if (causal_ != nullptr) {
          tok->causal = causal_->record(sim::causal::Segment::kFirmware, node_, "bcast_seen",
                                        sim_.now(), sim_.now(),
                                        rc.bit_info[tok->release[0].port].causal, tok->causal);
        }
        rc.clear_bit(tok->release[0].port);
        barrier_complete(local_port);
      }
    }
    return;
  }

  tok->hier_gathered = true;
  // Representative hop, upward edge: the block is in, the exchange begins.
  if (causal_ != nullptr) {
    tok->causal = causal_->record(sim::causal::Segment::kRep, node_, "rep_up", sim_.now(),
                                  sim_.now(), tok->causal);
  }
  ++stats_.barrier_hier_gathers;
  barrier_try_advance_pe(local_port);
}

void Nic::barrier_enter_broadcast(PortId local_port) {
  // Runs after barrier_complete(): the token has moved to last_barrier.
  PortState& ps = port(local_port);
  BarrierToken* tok = ps.last_barrier.get();
  assert(tok != nullptr && tok->completed);
  ++stats_.barrier_bcasts_entered;
  for (const Endpoint& child : tok->children) {
    barrier_send(local_port, child, PacketType::kBarrierBcast, tok->epoch);
  }
}

// --- Sending ---------------------------------------------------------------------------------

void Nic::barrier_send(PortId local_port, Endpoint dst, PacketType type, std::uint32_t epoch,
                       bool mcast_copy) {
  Packet p;
  p.type = type;
  p.src_node = node_;
  p.src_port = local_port;
  p.dst_node = dst.node;
  p.dst_port = dst.port;
  p.payload_bytes = config_.barrier_payload_bytes;
  p.barrier_epoch = epoch;
  ++stats_.barrier_packets_sent;
  {
    // The message belongs to the epoch's token (active or just-completed):
    // stamp its group id, and — under causal tracing — descend from this
    // member's latest firmware decision for that epoch.
    PortState& sps = port(local_port);
    BarrierToken* src_tok = nullptr;
    if (sps.active_barrier && sps.active_barrier->epoch == epoch) {
      src_tok = sps.active_barrier.get();
    } else if (sps.last_barrier && sps.last_barrier->epoch == epoch) {
      src_tok = sps.last_barrier.get();
    }
    if (src_tok != nullptr) {
      p.group = src_tok->group;
      if (causal_ != nullptr) p.causal = src_tok->causal;
    }
  }

  if (config_.barrier_loopback && dst.node == node_) {
    // §3.4 optimisation: same-NIC barrier message just sets the flag — no
    // wire, no SEND/RECV engines, only a short firmware hop.
    ++stats_.barrier_loopback_msgs;
    auto packet = std::make_shared<Packet>(std::move(p));
    breakdown_nic(packet->dst_port, epoch, config_.barrier_pe_cycles);
    const sim::SimTime end =
        engine_submit(McpEngine::kRdma, "loopback", config_.barrier_pe_cycles,
                      [this, packet]() mutable { barrier_rx_in_order(std::move(*packet)); });
    packet->causal = causal_engine_span(sim::causal::Segment::kFirmware, "loopback", end,
                                        config_.barrier_pe_cycles, packet->causal);
    return;
  }

  // A replica in a multidestination fan-out pays the per-copy header
  // rewrite on the SEND engine, not a full packet preparation. Retransmits
  // (timer or NACK driven) always pay full cost — they re-stage the packet.
  const std::int64_t tx_cost = mcast_copy ? config_.barrier_mcast_send_cycles : -1;
  switch (config_.barrier_reliability) {
    case BarrierReliability::kUnreliable:
      transmit(std::move(p), tx_cost);
      break;
    case BarrierReliability::kSharedStream: {
      Connection& c = conn(p.dst_node);
      if (c.dead) {
        ++stats_.dead_peer_drops;
        break;
      }
      p.seq = c.next_send_seq++;
      c.sent_list.push_back(SentRecord{p, nullptr, sim_.now(), false});
      arm_retransmit(p.dst_node);
      transmit(std::move(p), tx_cost);
      break;
    }
    case BarrierReliability::kSeparateAcks:
      barrier_enqueue_separate(std::move(p), tx_cost);
      break;
  }
}

// --- Completion ---------------------------------------------------------------------------------

void Nic::barrier_complete(PortId local_port) {
  PortState& ps = port(local_port);
  BarrierToken* tok = ps.active_barrier.get();
  assert(tok != nullptr);
  tok->completed = true;
  ++stats_.barriers_completed;
  const std::uint32_t epoch = tok->epoch;
  // Epoch monotonicity: even under faults (drops, retransmits, late NACK
  // resends) a port must never re-complete an old epoch or complete out of
  // order — the GM layer assigns epochs sequentially per port.
  NICBAR_CHECK(static_cast<std::int64_t>(epoch) > ps.last_completed_epoch, "nic.barrier",
               sim_.now(), "port %u: completed epoch %u after already completing epoch %lld",
               local_port, epoch, static_cast<long long>(ps.last_completed_epoch));
  ps.last_completed_epoch = static_cast<std::int64_t>(epoch);
  trace(sim::TraceCategory::kBarrier, "port %u: %s barrier epoch=%u complete", local_port,
        to_string(tok->algorithm), epoch);
  // Keep the completed token for §3.2 late-NACK resends.
  ps.last_barrier = std::move(ps.active_barrier);

  // RDMA the completion token to the host.
  breakdown_nic(local_port, epoch, config_.rdma_setup_cycles);
  const sim::SimTime setup_end =
      engine_submit(McpEngine::kRdma, "rdma_setup", config_.rdma_setup_cycles,
                    [this, local_port, epoch] {
    const sim::Duration dma =
        config_.pci_setup + sim::transfer_time(8, config_.pci_bandwidth_mbps);
    breakdown_dma(local_port, epoch, dma);
    auto dma_span = std::make_shared<std::uint64_t>(0);
    const sim::SimTime dma_end = pci_submit("rdma_dma", dma,
                                            [this, local_port, epoch, dma_span] {
      PortState& p = port(local_port);
      if (p.barrier_buffers > 0) --p.barrier_buffers;
      GmEvent ev;
      ev.type = GmEventType::kBarrierComplete;
      ev.barrier_epoch = epoch;
      ev.causal = *dma_span;
      push_event(local_port, ev);
    });
    if (causal_ != nullptr) {
      BarrierToken* t = port(local_port).last_barrier.get();
      const std::uint64_t parent = t != nullptr && t->epoch == epoch ? t->causal : 0;
      *dma_span = causal_->record(sim::causal::Segment::kRdma, node_, "rdma_dma",
                                  dma_end - dma, dma_end, parent);
    }
  });
  if (causal_ != nullptr) {
    BarrierToken* t = ps.last_barrier.get();  // tok moved there above
    t->causal = causal_engine_span(sim::causal::Segment::kRdma, "rdma_setup", setup_end,
                                   config_.rdma_setup_cycles, t->causal);
  }
}

// --- Closed-port handling (§3.2) -------------------------------------------------------------------

void Nic::barrier_closed_port_arrival(Packet p) {
  ++stats_.closed_port_drops;
  switch (config_.closed_port_policy) {
    case ClosedPortPolicy::kClearOnOpen:
      // Naive: record as if the port were open; open_port() wipes records.
      barrier_record(p, false);
      break;
    case ClosedPortPolicy::kRejectClosed:
      barrier_send_nack(p);
      break;
    case ClosedPortPolicy::kRecordThenRejectOnOpen:
      barrier_record(p, true);
      break;
  }
}

void Nic::barrier_send_nack(const Packet& original) {
  Packet n;
  n.type = PacketType::kBarrierNack;
  n.src_node = node_;
  n.src_port = original.dst_port;
  n.dst_node = original.src_node;
  n.dst_port = original.src_port;
  n.nacked_type = original.type;
  n.barrier_epoch = original.barrier_epoch;
  ++stats_.barrier_nacks_sent;
  send_control(std::move(n));
}

void Nic::flush_closed_port_records(PortId opened_port) {
  conns_.for_each([&](NodeId remote, Connection& c) {
    for (PortId rp = 0; rp < kMaxPorts; ++rp) {
      if (!c.bit(rp)) continue;
      const BarrierBitInfo& info = c.bit_info[rp];
      if (info.dst_port != opened_port) continue;
      switch (config_.closed_port_policy) {
        case ClosedPortPolicy::kClearOnOpen:
          c.clear_bit(rp);
          break;
        case ClosedPortPolicy::kRecordThenRejectOnOpen:
          if (info.for_closed_port) {
            c.clear_bit(rp);
            Packet original;
            original.type = info.type;
            original.src_node = remote;
            original.src_port = rp;
            original.dst_node = node_;
            original.dst_port = opened_port;
            original.barrier_epoch = info.epoch;
            barrier_send_nack(original);
          }
          break;
        case ClosedPortPolicy::kRejectClosed:
          break;  // rejects happened at arrival; nothing recorded for us
      }
    }
  });
}

void Nic::barrier_handle_nack(const Packet& p) {
  PortState& ps = port(p.dst_port);
  if (!ps.open) return;  // "endpoint has closed since": do not resend
  if (p.nacked_type == PacketType::kReduceUp || p.nacked_type == PacketType::kReduceDown) {
    (void)reduce_answer_nack(p);
    return;
  }
  const Endpoint peer{p.src_node, p.src_port};

  BarrierToken* tok = nullptr;
  if (ps.active_barrier && ps.active_barrier->epoch == p.barrier_epoch) {
    tok = ps.active_barrier.get();
  } else if (ps.last_barrier && ps.last_barrier->epoch == p.barrier_epoch) {
    tok = ps.last_barrier.get();
  }
  if (tok == nullptr) return;

  bool member = false;
  switch (p.nacked_type) {
    case PacketType::kBarrierPe: member = contains(tok->peers, peer); break;
    case PacketType::kBarrierGather: member = (tok->parent == peer); break;
    case PacketType::kBarrierBcast:
      // A hierarchical representative's release goes to `release`, not down
      // the tree; only the root sends it (non-reps never rebroadcast).
      member = tok->algorithm == BarrierAlgorithm::kHierarchical
                   ? (tok->is_root() && contains(tok->release, peer))
                   : contains(tok->children, peer);
      break;
    default: break;
  }
  if (!member) return;

  ++stats_.barrier_resends;
  const PortId local_port = p.dst_port;
  const PacketType type = p.nacked_type;
  const std::uint32_t epoch = p.barrier_epoch;
  trace(sim::TraceCategory::kBarrier, "port %u: resend %s to %u.%u after NACK", local_port,
        net::to_string(type), peer.node, peer.port);
  sim_.schedule_in(config_.barrier_resend_delay, [this, local_port, peer, type, epoch] {
    if (!port(local_port).open) return;
    barrier_send(local_port, peer, type, epoch);
  });
}

// --- Separate barrier reliability (§3.3 option 2 / §4.4) ---------------------------------------------

void Nic::barrier_enqueue_separate(Packet p, std::int64_t tx_cost) {
  Connection& c = conn(p.dst_node);
  if (c.dead) {
    ++stats_.dead_peer_drops;
    return;
  }
  p.barrier_seq = c.next_barrier_send_seq++;
  c.barrier_sent_list.push_back(SentRecord{p, nullptr, sim_.now(), false});
  arm_barrier_retransmit(p.dst_node);
  transmit(std::move(p), tx_cost);
}

void Nic::barrier_recv_separate(Packet p) {
  Connection& c = conn(p.src_node);
  Packet ack;
  ack.type = PacketType::kBarrierAck;
  ack.src_node = node_;
  ack.dst_node = p.src_node;

  if (p.barrier_seq == c.next_expected_barrier_seq) {
    ++c.next_expected_barrier_seq;
    c.barrier_nack_outstanding = false;
    ack.ack = c.next_expected_barrier_seq - 1;
    send_control(std::move(ack));
    const std::int64_t cost = barrier_rx_cost(p);
    auto packet = std::make_shared<Packet>(std::move(p));
    breakdown_nic(packet->dst_port, packet->barrier_epoch, cost);
    const sim::SimTime end =
        engine_submit(McpEngine::kRdma, "barrier_advance", cost,
                      [this, packet]() mutable { barrier_rx_in_order(std::move(*packet)); },
                      packet->id);
    packet->causal = causal_engine_span(sim::causal::Segment::kFirmware, "barrier_advance",
                                        end, cost, packet->causal);
  } else if (p.barrier_seq < c.next_expected_barrier_seq) {
    ++stats_.duplicates_dropped;
    ack.ack = c.next_expected_barrier_seq - 1;  // re-ack
    send_control(std::move(ack));
  } else {
    // Out of order: drop; the cumulative ack + sender timer recover it.
    ++stats_.out_of_order_dropped;
    if (!c.barrier_nack_outstanding) {
      c.barrier_nack_outstanding = true;
      ack.ack = c.next_expected_barrier_seq - 1;
      send_control(std::move(ack));
    }
  }
}

void Nic::barrier_recv_barrier_ack(const Packet& p) {
  ++stats_.acks_received;
  Connection& c = conn(p.src_node);
  bool retired = false;
  bool sampled = false;
  while (!c.barrier_sent_list.empty() &&
         c.barrier_sent_list.front().packet.barrier_seq <= p.ack) {
    const SentRecord& rec = c.barrier_sent_list.front();
    // The barrier stream shares the connection's RTO estimator — same
    // physical path, so its samples are just as good (Karn's rule applies).
    if (!sampled && !rec.retransmitted) {
      sample_rtt(c, sim_.now() - rec.first_sent);
      sampled = true;
    }
    c.barrier_sent_list.pop_front();
    retired = true;
  }
  if (retired) {
    c.barrier_retransmissions = 0;
    c.backoff = 0;
    sim_.cancel(c.barrier_retransmit_timer);
    if (!c.barrier_sent_list.empty()) arm_barrier_retransmit(p.src_node);
  }
}

void Nic::arm_barrier_retransmit(NodeId remote) {
  Connection& c = conn(remote);
  sim_.cancel(c.barrier_retransmit_timer);
  if (crashed_ || c.dead) return;
  c.barrier_retransmit_timer = sim_.schedule_in(current_rto(c), [this, remote] {
    Connection& cc = conn(remote);
    if (cc.barrier_sent_list.empty()) return;
    ++stats_.retransmit_timeouts;
    if (++cc.barrier_retransmissions > config_.max_retransmissions) {
      declare_peer_dead(remote);
      return;
    }
    if (config_.adaptive_rto) {
      ++cc.backoff;
      ++stats_.rto_backoffs;
    }
    barrier_retransmit_all(remote);
  });
}

void Nic::barrier_retransmit_all(NodeId remote) {
  Connection& c = conn(remote);
  for (SentRecord& rec : c.barrier_sent_list) {
    rec.retransmitted = true;
    ++stats_.retransmissions;
    transmit(rec.packet);
  }
  if (!c.barrier_sent_list.empty()) arm_barrier_retransmit(remote);
}

// --- Host abort (deadline / peer death) ---------------------------------------------------------

void Nic::cancel_barrier(PortId local_port) {
  PortState& ps = port(local_port);
  if (ps.active_barrier == nullptr || ps.active_barrier->completed) return;
  ++stats_.barriers_cancelled;
  trace(sim::TraceCategory::kBarrier, "port %u: cancel barrier epoch=%u", local_port,
        ps.active_barrier->epoch);
  // Discard the parked token; whatever this member already contributed may
  // still complete peers, but no completion event will be raised here (and
  // any in-flight one is filtered by its epoch on the host side).
  ps.active_barrier.reset();
}

}  // namespace nicbar::nic
