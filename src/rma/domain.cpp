#include "rma/domain.hpp"

#include <algorithm>
#include <utility>

namespace nicbar::rma {

// --- Segment -----------------------------------------------------------------

Segment::Segment(Domain& domain, std::uint64_t id, std::uint64_t words)
    : domain_(domain), id_(id), words_(words, 0) {}

void Segment::write(std::uint64_t index, std::int64_t value) {
  words_[index] = value;
  notify(index);
}

std::int64_t Segment::compare_exchange(std::uint64_t index, std::int64_t expected,
                                       std::int64_t desired) {
  const std::int64_t prior = words_[index];
  if (prior == expected) {
    words_[index] = desired;
    notify(index);
  }
  return prior;
}

void Segment::notify(std::uint64_t index) {
  if (waiters_.empty()) return;
  // Claim matching waiters first, resume via schedule_now second: writes
  // arrive from NIC firmware context and must not re-enter host coroutines
  // (the sync.hpp convention).
  std::vector<std::coroutine_handle<>> woken;
  std::erase_if(waiters_, [&](Waiter* w) {
    if (w->index != index) return false;
    w->notified = true;
    woken.push_back(w->handle);
    return true;
  });
  for (std::coroutine_handle<> h : woken) {
    domain_.simulator().schedule_now([h] { h.resume(); });
  }
}

void Segment::notify_all() {
  if (waiters_.empty()) return;
  std::vector<Waiter*> batch = std::move(waiters_);
  waiters_.clear();
  for (Waiter* w : batch) {
    w->notified = true;
    const std::coroutine_handle<> h = w->handle;
    domain_.simulator().schedule_now([h] { h.resume(); });
  }
}

sim::ValueTask<coll::Status> Segment::wait_ge(std::uint64_t index, std::int64_t target,
                                              sim::SimTime deadline_at) {
  struct WaitAwaiter : Waiter {
    Segment& seg;
    sim::SimTime deadline_at;
    sim::EventId timer{};
    bool timer_armed = false;

    WaitAwaiter(Segment& s, std::uint64_t idx, sim::SimTime d) : seg(s), deadline_at(d) {
      index = idx;
    }

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      seg.waiters_.push_back(this);
      if (deadline_at != sim::SimTime::max()) {
        timer_armed = true;
        timer = seg.domain_.simulator().schedule_at(deadline_at, [this] {
          // A notify at this same instant may have already claimed us (its
          // resume is queued behind this event); notified set means it won.
          if (notified) return;
          std::erase(seg.waiters_, static_cast<Waiter*>(this));
          handle.resume();
        });
      }
    }
    /// true when the deadline timer fired first.
    bool await_resume() {
      if (timer_armed) seg.domain_.simulator().cancel(timer);
      return !notified;
    }
  };

  const std::uint64_t deaths_at_entry = domain_.death_count();
  for (;;) {
    if (words_[index] >= target) co_return coll::Status::kOk;
    if (domain_.death_count() != deaths_at_entry) co_return coll::Status::kPeerDead;
    if (deadline_at != sim::SimTime::max() && domain_.simulator().now() >= deadline_at) {
      co_return coll::Status::kDeadline;
    }
    const bool timed_out = co_await WaitAwaiter{*this, index, deadline_at};
    if (timed_out) co_return coll::Status::kDeadline;
  }
}

// --- Domain ------------------------------------------------------------------

Domain::Domain(gm::Port& port) : port_(port) { port_.set_rma_sink(this); }

Domain::~Domain() { port_.set_rma_sink(nullptr); }

Segment& Domain::register_segment(std::uint64_t words) {
  const std::uint64_t id = segments_.size();
  segments_.push_back(std::unique_ptr<Segment>(new Segment(*this, id, words)));
  port_.rma_register(id, segments_.back().get());
  return *segments_.back();
}

void Domain::post(nic::RmaToken token, sim::Duration timeout,
                  std::function<void(std::int64_t, coll::Status)> fulfil) {
  if (is_dead(token.dst.node)) {
    // Poisoned target: the reliable stream would silently drop the packet
    // and the op would hang. Fail fast, inline (callers get a ready future).
    fulfil(0, coll::Status::kPeerDead);
    return;
  }
  const std::uint64_t id = next_op_++;
  token.op_id = id;
  Pending p;
  p.target = token.dst.node;
  p.fulfil = std::move(fulfil);
  if (timeout.ps() > 0) {
    p.timer_armed = true;
    p.timer = simulator().schedule_in(timeout, [this, id] {
      auto it = pending_.find(id);
      if (it == pending_.end()) return;
      auto f = std::move(it->second.fulfil);
      pending_.erase(it);
      f(0, coll::Status::kDeadline);
    });
  }
  pending_.emplace(id, std::move(p));
  simulator().spawn(port_.post_rma(token));
}

future<coll::Status> Domain::rput(nic::Endpoint dst, std::uint64_t segment, std::uint64_t index,
                                  std::int64_t value, sim::Duration timeout) {
  promise<coll::Status> pr;
  nic::RmaToken t;
  t.dst = dst;
  t.kind = nic::RmaOpKind::kPut;
  t.segment = segment;
  t.index = index;
  t.value = value;
  // Value and status agree: awaiting an rput future yields its outcome.
  post(std::move(t), timeout, [pr](std::int64_t, coll::Status st) { pr.settle(st, st); });
  return pr.get_future();
}

future<std::int64_t> Domain::rget(nic::Endpoint dst, std::uint64_t segment, std::uint64_t index,
                                  sim::Duration timeout) {
  promise<std::int64_t> pr;
  nic::RmaToken t;
  t.dst = dst;
  t.kind = nic::RmaOpKind::kGet;
  t.segment = segment;
  t.index = index;
  post(std::move(t), timeout, [pr](std::int64_t v, coll::Status st) { pr.settle(v, st); });
  return pr.get_future();
}

future<std::int64_t> Domain::remote_cas(nic::Endpoint dst, std::uint64_t segment,
                                        std::uint64_t index, std::int64_t expected,
                                        std::int64_t desired, sim::Duration timeout) {
  promise<std::int64_t> pr;
  nic::RmaToken t;
  t.dst = dst;
  t.kind = nic::RmaOpKind::kCas;
  t.segment = segment;
  t.index = index;
  t.expected = expected;
  t.value = desired;
  post(std::move(t), timeout, [pr](std::int64_t v, coll::Status st) { pr.settle(v, st); });
  return pr.get_future();
}

void Domain::rma_complete(std::uint64_t op_id, std::int64_t value, bool ok) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) {
    // Deadline fired (or peer death raced the reply through RDMA/PCI) before
    // the reply landed; the future is already settled.
    ++stale_replies_;
    return;
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.timer_armed) simulator().cancel(p.timer);
  // Settle at the current instant but outside firmware context, so resumed
  // host coroutines never re-enter the NIC mid-update. A target-side reject
  // (closed port, out-of-range index) surfaces as kPeerDead: the window is
  // gone from the initiator's point of view.
  simulator().schedule_now([f = std::move(p.fulfil), value, ok] {
    f(value, ok ? coll::Status::kOk : coll::Status::kPeerDead);
  });
}

void Domain::rma_peer_dead(net::NodeId node) {
  if (!dead_.insert(node).second) return;
  std::vector<std::function<void(std::int64_t, coll::Status)>> failed;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.target == node) {
      if (it->second.timer_armed) simulator().cancel(it->second.timer);
      failed.push_back(std::move(it->second.fulfil));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& f : failed) {
    simulator().schedule_now([g = std::move(f)] { g(0, coll::Status::kPeerDead); });
  }
  // Flag waiters re-check and abort with kPeerDead if the death matters to
  // them (Segment::wait_ge contract).
  for (auto& seg : segments_) seg->notify_all();
}

}  // namespace nicbar::rma
