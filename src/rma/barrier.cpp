#include "rma/barrier.hpp"

#include <stdexcept>
#include <utility>

namespace nicbar::rma {

namespace {

/// Waits for a flag, treating deaths of nodes *outside* the member set as
/// non-events (re-issue the wait); a member death aborts with kPeerDead.
sim::ValueTask<coll::Status> wait_member_flag(Domain& domain, Segment& seg,
                                              const std::vector<nic::Endpoint>& members,
                                              std::size_t self, std::uint64_t index,
                                              std::int64_t target, sim::SimTime deadline_at) {
  for (;;) {
    const coll::Status st = co_await seg.wait_ge(index, target, deadline_at);
    if (st != coll::Status::kPeerDead) co_return st;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != self && domain.is_dead(members[i].node)) co_return coll::Status::kPeerDead;
    }
  }
}

}  // namespace

// --- DisseminationBarrier ----------------------------------------------------

std::uint64_t DisseminationBarrier::rounds_for(std::size_t n) {
  std::uint64_t r = 0;
  while ((std::size_t{1} << r) < n) ++r;
  return r;
}

DisseminationBarrier::DisseminationBarrier(Domain& domain, Segment& seg,
                                           std::vector<nic::Endpoint> members, std::size_t rank)
    : domain_(domain), seg_(seg), members_(std::move(members)), rank_(rank) {
  if (rank_ >= members_.size()) throw std::invalid_argument("dissemination: rank out of range");
  if (seg_.size() < rounds_for(members_.size())) {
    throw std::invalid_argument("dissemination: segment too small for member count");
  }
}

sim::ValueTask<coll::Status> DisseminationBarrier::run(sim::SimTime deadline_at) {
  ++instance_;
  const auto inst = static_cast<std::int64_t>(instance_);
  const std::size_t n = members_.size();
  if (n <= 1) co_return coll::Status::kOk;

  const std::uint64_t rounds = rounds_for(n);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::size_t peer = (rank_ + (std::size_t{1} << r)) % n;
    future<coll::Status> put = domain_.rput(members_[peer], seg_.id(), r, inst);
    if (put.ready() && !coll::is_success(put.status())) co_return put.status();
    const coll::Status st =
        co_await wait_member_flag(domain_, seg_, members_, rank_, r, inst, deadline_at);
    if (st != coll::Status::kOk) co_return st;
  }
  co_return coll::Status::kOk;
}

// --- TreePutBarrier ----------------------------------------------------------

TreePutBarrier::TreePutBarrier(Domain& domain, Segment& seg, std::vector<nic::Endpoint> members,
                               std::size_t rank, std::size_t radix)
    : domain_(domain), seg_(seg), members_(std::move(members)), rank_(rank), radix_(radix) {
  if (radix_ == 0) throw std::invalid_argument("tree-put: radix must be >= 1");
  if (rank_ >= members_.size()) throw std::invalid_argument("tree-put: rank out of range");
  if (seg_.size() < words_for(radix_)) {
    throw std::invalid_argument("tree-put: segment too small for radix");
  }
}

sim::ValueTask<coll::Status> TreePutBarrier::run(sim::SimTime deadline_at) {
  ++instance_;
  const auto inst = static_cast<std::int64_t>(instance_);
  const std::size_t n = members_.size();
  if (n <= 1) co_return coll::Status::kOk;

  // Gather phase: wait for every child to rput `inst` into its slot.
  const std::size_t first_child = radix_ * rank_ + 1;
  for (std::size_t j = 0; j < radix_ && first_child + j < n; ++j) {
    const coll::Status st =
        co_await wait_member_flag(domain_, seg_, members_, rank_, j, inst, deadline_at);
    if (st != coll::Status::kOk) co_return st;
  }

  if (rank_ != 0) {
    // Report up: write our slot in the parent's segment, then wait for the
    // release flag to come back down.
    const std::size_t parent = (rank_ - 1) / radix_;
    const std::size_t slot = (rank_ - 1) % radix_;
    future<coll::Status> put = domain_.rput(members_[parent], seg_.id(), slot, inst);
    if (put.ready() && !coll::is_success(put.status())) co_return put.status();
    const coll::Status st =
        co_await wait_member_flag(domain_, seg_, members_, rank_, radix_, inst, deadline_at);
    if (st != coll::Status::kOk) co_return st;
  }

  // Release phase: propagate down as soon as our own release arrived (the
  // root's "release" is the completed gather). The fan-out is a when_all
  // batch: the member returns only after every child's release put is
  // delivered, so a slow lane cannot leak into the next instance's puts.
  std::vector<future<coll::Status>> puts;
  for (std::size_t j = 0; j < radix_ && first_child + j < n; ++j) {
    puts.push_back(domain_.rput(members_[first_child + j], seg_.id(), radix_, inst));
  }
  if (!puts.empty()) {
    future<std::vector<coll::Status>> all = when_all(std::move(puts));
    (void)co_await all;
    if (!coll::is_success(all.status())) co_return all.status();
  }
  co_return coll::Status::kOk;
}

}  // namespace nicbar::rma
