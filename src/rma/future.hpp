// rma::future<T> / rma::promise<T> — the completion layer of the one-sided
// API.
//
// Design points (deliberately different from std::future):
//   * copyable shared-future semantics — a future is a handle onto shared
//     state; any copy can be awaited, chained, or polled;
//   * scheduler-free — settling a promise runs callbacks and resumes
//     coroutine waiters inline, so the layer works with no Simulator running
//     (unit tests exercise this). Producers that must not re-enter (the NIC
//     firmware path) wrap their settle in Simulator::schedule_now themselves
//     (rma::Domain does);
//   * errors are values — a future settles exactly once with a value AND a
//     coll::Status. On error the value is T{} and status() carries the
//     reason; `co_await f` returns the value, callers check f.status().
//     This avoids exceptions on the simulated fast path;
//   * `.then(f)` chains a continuation that runs only on success; a failed
//     antecedent propagates its status to the derived future without
//     invoking f;
//   * `when_all(futures)` joins a batch: settles once every input settled,
//     value is the vector of input values (T{} for failed slots), status is
//     the first non-success status in *index* order (deterministic under any
//     completion order), kOk when all succeeded.
//
// T must be default-constructible (the error-path value); the layer is used
// with coll::Status and std::int64_t.
#pragma once

#include <coroutine>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "coll/status.hpp"

namespace nicbar::rma {

template <typename T>
class future;
template <typename T>
class promise;
template <typename T>
future<std::vector<T>> when_all(std::vector<future<T>> futures);

namespace detail {

template <typename T>
struct SharedState {
  std::optional<T> value;
  coll::Status status = coll::Status::kOk;
  bool ready = false;
  std::vector<std::function<void(SharedState&)>> callbacks;
  std::vector<std::coroutine_handle<>> waiters;

  /// First settle wins; later settles are ignored (a deadline racing the
  /// real completion is the expected shape of a double settle).
  void settle(T v, coll::Status s) {
    if (ready) return;
    value.emplace(std::move(v));
    status = s;
    ready = true;
    // Snapshot both lists: a callback or resumed waiter may attach new work
    // to *other* futures, and (pathologically) even to this one — anything
    // attached after this point sees ready==true and runs inline instead.
    std::vector<std::function<void(SharedState&)>> cbs = std::move(callbacks);
    callbacks.clear();
    for (auto& cb : cbs) cb(*this);
    std::vector<std::coroutine_handle<>> ws = std::move(waiters);
    waiters.clear();
    for (std::coroutine_handle<> h : ws) h.resume();
  }
};

}  // namespace detail

/// Copyable handle onto a one-shot asynchronous result. Default-constructed
/// futures are invalid (valid() == false); awaiting one is undefined.
template <typename T>
class future {
 public:
  future() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool ready() const { return state_ != nullptr && state_->ready; }

  /// Status of the settled result; only meaningful once ready().
  [[nodiscard]] coll::Status status() const { return state_->status; }

  /// The settled value (T{} if the future settled with an error). Only
  /// callable once ready().
  [[nodiscard]] const T& value() const { return *state_->value; }

  /// Awaiting suspends until settled, then yields the value (T{} on error —
  /// check status()). Ready futures resume immediately.
  [[nodiscard]] auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<detail::SharedState<T>> s;
      bool await_ready() const noexcept { return s->ready; }
      void await_suspend(std::coroutine_handle<> h) { s->waiters.push_back(h); }
      T await_resume() const { return *s->value; }
    };
    return Awaiter{state_};
  }

  /// Chains `f(const T&) -> U` to run when this future settles successfully;
  /// returns the future of f's result. A non-success status propagates to
  /// the returned future without invoking f. If this future is already
  /// settled, f runs inline before then() returns.
  template <typename F>
  [[nodiscard]] auto then(F f) const {
    using U = std::invoke_result_t<F, const T&>;
    auto next = std::make_shared<detail::SharedState<U>>();
    auto link = [next, fn = std::move(f)](detail::SharedState<T>& s) {
      if (coll::is_success(s.status)) {
        next->settle(fn(*s.value), s.status);
      } else {
        next->settle(U{}, s.status);
      }
    };
    if (state_->ready) {
      link(*state_);
    } else {
      state_->callbacks.push_back(std::move(link));
    }
    return future<U>{next};
  }

 private:
  friend class promise<T>;
  template <typename U>
  friend class future;  // then() constructs the derived future
  template <typename U>
  friend future<std::vector<U>> when_all(std::vector<future<U>> futures);

  explicit future(std::shared_ptr<detail::SharedState<T>> s) : state_(std::move(s)) {}

  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Producer side. Copyable (all copies share the state) so it can be
/// captured by value in completion lambdas. Settle-once: the first
/// set_value/set_error wins, later calls are ignored.
template <typename T>
class promise {
 public:
  promise() : state_(std::make_shared<detail::SharedState<T>>()) {}

  [[nodiscard]] future<T> get_future() const { return future<T>{state_}; }
  [[nodiscard]] bool settled() const { return state_->ready; }

  void set_value(T v) const { state_->settle(std::move(v), coll::Status::kOk); }
  void set_error(coll::Status s) const { state_->settle(T{}, s); }

  /// Settles with an explicit (value, status) pair — used by futures whose
  /// value *is* a status (rput), so awaiting and status() agree.
  void settle(T v, coll::Status s) const { state_->settle(std::move(v), s); }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Joins a batch of futures (see file comment for value/status semantics).
/// An empty batch yields an immediately-ready empty vector.
template <typename T>
future<std::vector<T>> when_all(std::vector<future<T>> futures) {
  struct Ctrl {
    std::vector<T> values;
    std::vector<coll::Status> statuses;
    std::size_t remaining = 0;
    std::shared_ptr<detail::SharedState<std::vector<T>>> out;

    void finish() {
      coll::Status agg = coll::Status::kOk;
      for (coll::Status s : statuses) {
        if (!coll::is_success(s)) {
          agg = s;
          break;
        }
      }
      out->settle(std::move(values), agg);
    }
  };

  auto out = std::make_shared<detail::SharedState<std::vector<T>>>();
  auto ctrl = std::make_shared<Ctrl>();
  ctrl->values.resize(futures.size());
  ctrl->statuses.assign(futures.size(), coll::Status::kOk);
  ctrl->remaining = futures.size();
  ctrl->out = out;

  if (futures.empty()) {
    out->settle({}, coll::Status::kOk);
    return future<std::vector<T>>{out};
  }

  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto link = [ctrl, i](detail::SharedState<T>& s) {
      ctrl->values[i] = *s.value;
      ctrl->statuses[i] = s.status;
      if (--ctrl->remaining == 0) ctrl->finish();
    };
    auto& st = futures[i].state_;
    if (st->ready) {
      link(*st);
    } else {
      st->callbacks.push_back(std::move(link));
    }
  }
  return future<std::vector<T>>{out};
}

}  // namespace nicbar::rma
