// Host-driven RDMA barriers — the third algorithm family.
//
// The paper's baseline (§2, §7) is a *host-based* barrier: host CPUs drive
// the algorithm and the NIC only moves bytes. These two classes reproduce
// that family on the rma:: one-sided layer, so the repo can compare all
// three implementations on identical hardware models:
//
//   NIC-PE / NIC-GB  — NIC-resident (coll::, the paper's contribution);
//   host-dissemination — log2(N) rounds; in round r each rank rputs its
//       instance number into word r of rank (me + 2^r) mod N and spins on
//       its own word r (the classic Hensgen/Finkel/Manber schedule);
//   host-tree-put — radix-k gather/release tree (cf. SNIPPETS.md snippet 1,
//       the FJMPI Tofu barrier): children rput into per-child slots of the
//       parent's segment, the root releases down the tree via a flag word.
//
// Flag protocol: every flag word carries a *monotonic instance number*, so
// no flags are ever reset between barriers — instance i+1's waits cannot be
// satisfied by instance i's writes, and a slow writer from instance i just
// overwrites nothing (words only grow). Each word has a single writer per
// direction, and CAS is never mixed with flag words (the rma:: ordering
// contract).
//
// Failure: a member death aborts run() with kPeerDead (deaths outside the
// member set are ignored and the wait re-issued); a deadline aborts with
// kDeadline. After a failed instance the group is not reusable for the same
// members (no flag-state recovery is attempted) — matching the NIC family,
// where a failed epoch invalidates the group.
#pragma once

#include <cstdint>
#include <vector>

#include "coll/status.hpp"
#include "rma/domain.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::rma {

/// Common surface of the host-driven barrier algorithms, so callers (and
/// coll::'s dispatcher) can hold either behind one handle.
class HostBarrier {
 public:
  virtual ~HostBarrier() = default;
  /// One barrier instance. kOk on completion; kPeerDead / kDeadline abort.
  [[nodiscard]] virtual sim::ValueTask<coll::Status> run(
      sim::SimTime deadline_at = sim::SimTime::max()) = 0;
  /// Number of instances started (the current flag value).
  [[nodiscard]] virtual std::uint64_t instance() const = 0;
};

/// Dissemination barrier: ceil(log2 N) rounds of one rput + one flag wait.
/// `seg` needs at least rounds_for(members.size()) words; all members must
/// use the same member order and segment layout.
class DisseminationBarrier final : public HostBarrier {
 public:
  DisseminationBarrier(Domain& domain, Segment& seg, std::vector<nic::Endpoint> members,
                       std::size_t rank);

  [[nodiscard]] sim::ValueTask<coll::Status> run(
      sim::SimTime deadline_at = sim::SimTime::max()) override;
  [[nodiscard]] std::uint64_t instance() const override { return instance_; }

  /// Flag words (= rounds) needed for an N-member group.
  [[nodiscard]] static std::uint64_t rounds_for(std::size_t n);

 private:
  Domain& domain_;
  Segment& seg_;
  std::vector<nic::Endpoint> members_;
  std::size_t rank_;
  std::uint64_t instance_ = 0;
};

/// Radix-k gather/release tree barrier. `seg` needs radix+1 words: words
/// [0..radix-1] are the per-child gather slots, word [radix] is the release
/// flag. Rank 0 is the root; rank i's parent is (i-1)/k, its children are
/// k*i+1 .. k*i+k.
class TreePutBarrier final : public HostBarrier {
 public:
  TreePutBarrier(Domain& domain, Segment& seg, std::vector<nic::Endpoint> members,
                 std::size_t rank, std::size_t radix = 2);

  [[nodiscard]] sim::ValueTask<coll::Status> run(
      sim::SimTime deadline_at = sim::SimTime::max()) override;
  [[nodiscard]] std::uint64_t instance() const override { return instance_; }

  /// Flag words needed for a radix-k tree (radix gather slots + release).
  [[nodiscard]] static std::uint64_t words_for(std::size_t radix) { return radix + 1; }

 private:
  Domain& domain_;
  Segment& seg_;
  std::vector<nic::Endpoint> members_;
  std::size_t rank_;
  std::size_t radix_;
  std::uint64_t instance_ = 0;
};

}  // namespace nicbar::rma
