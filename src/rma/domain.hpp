// rma::Domain — the one-sided communication surface of a process.
//
// A Domain wraps an open gm::Port and exposes:
//   * register_segment(words) — carve out a remotely-accessible window of
//     64-bit words. Segment ids are assigned in registration order, so every
//     node must register its segments in the same order (the symmetric-heap
//     convention of SHMEM / UPC++ dist_object). Remote nodes address a
//     window as (segment id, word index).
//   * rput / rget / remote_cas — asynchronous one-sided ops returning
//     rma::future handles. The future settles when the *remote completion*
//     (kRmaReply) comes back — i.e. rput completion means the value is
//     committed at the target, not merely on the wire.
//   * Segment::wait_ge — suspend until a local word reaches a value: the
//     target-side half of the put-to-flag idiom every host-driven barrier is
//     built from. The wait charges no host CPU (it models polling a pinned
//     word from user space, which needs no port activity).
//
// Failure semantics: a peer declared dead fails every in-flight op to it
// with coll::Status::kPeerDead and poisons the node for later ops (the
// reliable stream silently drops traffic to dead peers, so without the
// poison a later op would hang). A per-op timeout settles the future with
// kDeadline; a reply that arrives after its deadline fired is counted in
// stale_replies() and otherwise ignored. Target-side rejects (closed port,
// out-of-range index) surface as kPeerDead — from the initiator's point of
// view the window is gone.
//
// Ordering: two puts from the same Domain to the same target commit in
// posting order (they ride the sequenced reliable stream and FIFO PCI DMA).
// There is NO ordering between ops to different targets, and none between
// CAS and puts addressing the same word — keep atomics and flag words
// separate (nic_rma.cpp documents the firmware side of this).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coll/status.hpp"
#include "gm/port.hpp"
#include "nic/rma.hpp"
#include "rma/future.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::rma {

class Domain;

/// A registered window of 64-bit words, remotely addressable as
/// (segment id, index). Implements the NIC-facing RmaMemory surface; local
/// code uses load()/store() and the flag-wait wait_ge().
class Segment : public nic::RmaMemory {
 public:
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }

  // --- nic::RmaMemory (called by the target NIC at the firmware instant) ---
  [[nodiscard]] std::uint64_t size() const override { return words_.size(); }
  [[nodiscard]] std::int64_t read(std::uint64_t index) const override { return words_[index]; }
  void write(std::uint64_t index, std::int64_t value) override;
  std::int64_t compare_exchange(std::uint64_t index, std::int64_t expected,
                                std::int64_t desired) override;

  // --- local access --------------------------------------------------------
  [[nodiscard]] std::int64_t load(std::uint64_t index) const { return words_[index]; }
  /// Local store through the same notify path as a remote put.
  void store(std::uint64_t index, std::int64_t value) { write(index, value); }

  /// Suspends until words[index] >= target. Returns:
  ///   kOk       — condition met;
  ///   kDeadline — deadline_at passed first (SimTime::max() = wait forever);
  ///   kPeerDead — a peer of the owning Domain died while waiting. The
  ///               condition may still be satisfiable: callers for whom the
  ///               dead node is irrelevant check Domain::is_dead() and
  ///               re-issue the wait.
  /// Flag waits charge no host CPU (one-sided polling; see file comment).
  [[nodiscard]] sim::ValueTask<coll::Status> wait_ge(
      std::uint64_t index, std::int64_t target,
      sim::SimTime deadline_at = sim::SimTime::max());

 private:
  friend class Domain;

  Segment(Domain& domain, std::uint64_t id, std::uint64_t words);

  struct Waiter {
    std::uint64_t index = 0;
    std::coroutine_handle<> handle;
    bool notified = false;
  };

  /// Wakes waiters on `index` (schedule_now, never inline — writes come from
  /// NIC firmware context).
  void notify(std::uint64_t index);
  /// Wakes every waiter regardless of index (peer-death re-check).
  void notify_all();

  Domain& domain_;
  std::uint64_t id_;
  std::vector<std::int64_t> words_;
  std::vector<Waiter*> waiters_;
};

class Domain : public nic::RmaSink {
 public:
  /// Installs this Domain as the port's RmaSink. The port must already be
  /// open; the Domain must outlive every in-flight op (keep it alive as long
  /// as the port).
  explicit Domain(gm::Port& port);
  ~Domain() override;

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Registers the next segment (ids assigned in call order — see file
  /// comment on the symmetric-registration convention).
  Segment& register_segment(std::uint64_t words);

  /// One-sided put of `value` into (segment, index) at dst. The future's
  /// value and status agree: awaiting yields kOk / kPeerDead / kDeadline.
  /// `timeout` <= 0 means no deadline.
  [[nodiscard]] future<coll::Status> rput(nic::Endpoint dst, std::uint64_t segment,
                                          std::uint64_t index, std::int64_t value,
                                          sim::Duration timeout = sim::Duration{0});

  /// One-sided fetch of (segment, index) at dst; future value is the word
  /// (0 on error — check status()).
  [[nodiscard]] future<std::int64_t> rget(nic::Endpoint dst, std::uint64_t segment,
                                          std::uint64_t index,
                                          sim::Duration timeout = sim::Duration{0});

  /// Remote compare-and-swap on (segment, index) at dst; future value is the
  /// *prior* word (the swap happened iff prior == expected). Applied on the
  /// target's single firmware processor, so concurrent CAS linearise.
  [[nodiscard]] future<std::int64_t> remote_cas(nic::Endpoint dst, std::uint64_t segment,
                                                std::uint64_t index, std::int64_t expected,
                                                std::int64_t desired,
                                                sim::Duration timeout = sim::Duration{0});

  [[nodiscard]] bool is_dead(net::NodeId node) const { return dead_.contains(node); }
  /// Monotonic count of peer deaths observed — Segment waits snapshot it to
  /// detect deaths that happen mid-wait.
  [[nodiscard]] std::uint64_t death_count() const { return dead_.size(); }

  [[nodiscard]] std::uint64_t inflight() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t stale_replies() const { return stale_replies_; }

  [[nodiscard]] gm::Port& port() { return port_; }
  [[nodiscard]] sim::Simulator& simulator() { return port_.simulator(); }

  // --- nic::RmaSink (called from NIC firmware context) ---------------------
  void rma_complete(std::uint64_t op_id, std::int64_t value, bool ok) override;
  void rma_peer_dead(net::NodeId node) override;

 private:
  struct Pending {
    net::NodeId target = 0;
    std::function<void(std::int64_t value, coll::Status status)> fulfil;
    sim::EventId timer{};
    bool timer_armed = false;
  };

  /// Common post path: allocates the op id, handles dead targets and the
  /// optional deadline, spawns the host-side posting coroutine.
  void post(nic::RmaToken token, sim::Duration timeout,
            std::function<void(std::int64_t, coll::Status)> fulfil);

  gm::Port& port_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_set<net::NodeId> dead_;
  std::uint64_t next_op_ = 1;
  std::uint64_t stale_replies_ = 0;
};

}  // namespace nicbar::rma
