// Workload results: per-job and per-collective tail latency, plus fabric
// and NIC occupancy pulled from Cluster::snapshot_metrics. A Report is pure
// data derived from the simulated timeline — two runs of the same spec
// produce byte-identical write_json output, which is what the determinism
// tests and the BENCH_workload.json trajectory diff against.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wl/spec.hpp"

namespace nicbar::wl {

/// Latency distribution summary (all values in simulated microseconds).
/// Percentiles come from a sim::Histogram with the spec's range; mean and
/// max are exact (streaming accumulator).
struct TailStats {
  std::uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct JobReport {
  std::string klass;       // job-class name
  std::size_t job = 0;     // global job index (spawn order)
  std::size_t nodes = 0;   // job width
  double arrival_us = 0.0; // when the job's processes were released
  double start_us = 0.0;   // last process entered the measurement loop
  double end_us = 0.0;     // last process finished
  /// (end_us - start_us) / iterations — the exact statistic
  /// coll::run_barrier_experiment reports, so a single-job barrier-only
  /// workload reproduces the Fig. 5 numbers bit-for-bit.
  double experiment_mean_us = 0.0;
  /// Per-collective latency as observed by every process (N samples per
  /// collective: stragglers show up in the tail).
  TailStats latency;
  std::array<std::uint64_t, kCollectiveKindCount> collectives{};  // by CollectiveKind
  std::uint64_t failures = 0;  // processes whose collective aborted

  // Managed-lifecycle classes only (all zero otherwise):
  std::uint64_t degraded_collectives = 0;  // barriers that ran host-fallback
  bool group_created = false;              // the create handshake succeeded
  bool group_destroyed = false;            // the destroy handshake succeeded
  std::uint64_t group_promotions = 0;      // degraded -> NIC re-promotions
};

struct Report {
  std::vector<JobReport> jobs;  // job order
  /// Aggregates over every job, split by collective kind (count == 0 for
  /// kinds the workload never issued) plus the union of all kinds.
  std::array<TailStats, kCollectiveKindCount> per_kind{};
  TailStats overall;
  double makespan_us = 0.0;  // simulated time when the last job finished
  std::uint64_t total_failures = 0;

  // Fabric / NIC occupancy (from snapshot_metrics over the whole run):
  double mean_link_utilisation = 0.0;
  double max_link_utilisation = 0.0;
  double mean_nic_occupancy = 0.0;  // LANai processor busy fraction
  double max_nic_occupancy = 0.0;
  double mean_pci_utilisation = 0.0;
  std::uint64_t link_stalls = 0;  // packets queued behind a busy wire
  std::uint64_t barriers_completed = 0;
  std::uint64_t reduces_completed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t link_packets_dropped = 0;

  // Barrier-group lifecycle (managed classes; from the jobs and the NIC
  // slot tables via snapshot_metrics):
  std::uint64_t groups_created = 0;
  std::uint64_t groups_destroyed = 0;
  std::uint64_t degraded_collectives = 0;
  std::uint64_t group_promotions = 0;
  std::uint64_t slot_allocations = 0;
  std::uint64_t slot_rejections = 0;  // admission rejections (slots full)
  std::uint64_t slot_frees = 0;
  std::uint64_t slot_high_water = 0;  // max concurrent slots on any one NIC
  std::uint64_t stale_group_fenced = 0;  // packets fenced after group destroy

  /// One deterministic JSON document (keys ordered, jobs in job order).
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;
};

}  // namespace nicbar::wl
