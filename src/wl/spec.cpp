#include "wl/spec.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nicbar::wl {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kDisjoint: return "disjoint";
    case Placement::kStrided: return "strided";
    case Placement::kOverlapping: return "overlapping";
  }
  return "?";
}

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kFixed: return "fixed";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kClosedLoop: return "closed-loop";
  }
  return "?";
}

const char* to_string(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kAllreduce: return "allreduce";
    case CollectiveKind::kFuzzyBarrier: return "fuzzy";
  }
  return "?";
}

bool CollectiveMix::mixed() const {
  int kinds = 0;
  for (const double w : {barrier, broadcast, allreduce, fuzzy}) {
    if (w > 0.0) ++kinds;
  }
  return kinds > 1;
}

std::size_t WorkloadSpec::total_jobs() const {
  std::size_t n = 0;
  for (const JobClass& c : classes) n += c.count;
  return n;
}

void validate(const WorkloadSpec& spec) {
  auto bad = [](const std::string& msg) { throw std::invalid_argument("workload spec: " + msg); };
  if (spec.cluster_nodes == 0) bad("cluster-nodes must be positive");
  if (spec.classes.empty()) bad("at least one job class is required");
  if (spec.total_jobs() == 0) bad("total job count is zero");
  if (spec.hist_max_us <= 0.0 || spec.hist_bins == 0) bad("histogram range must be positive");
  if (spec.arrival.kind == ArrivalKind::kPoisson && spec.arrival.interval.ps() <= 0) {
    bad("poisson arrival needs a positive mean interval");
  }
  if (spec.arrival.kind == ArrivalKind::kClosedLoop && spec.arrival.width == 0) {
    bad("closed-loop arrival needs width >= 1");
  }
  if (spec.cluster.nic.barrier_slots < 0) bad("nic-slots must be non-negative");
  for (const JobClass& c : spec.classes) {
    const std::string who = "class '" + c.name + "': ";
    if (c.nodes == 0) bad(who + "nodes must be positive");
    if (c.nodes > spec.cluster_nodes) bad(who + "wider than the cluster");
    if (c.iterations <= 0) bad(who + "iterations must be positive");
    if (c.mix.total() <= 0.0) bad(who + "collective mix has no weight");
    for (const double w : {c.mix.barrier, c.mix.broadcast, c.mix.allreduce, c.mix.fuzzy}) {
      if (w < 0.0) bad(who + "mix weights must be non-negative");
    }
    if (c.compute_imbalance < 0.0 || c.compute_imbalance >= 1.0) {
      bad(who + "imbalance must be in [0, 1)");
    }
    if (c.mix.fuzzy > 0.0 && c.location != coll::Location::kNic) {
      bad(who + "fuzzy barriers require the NIC-based location");
    }
    if (c.mix.fuzzy > 0.0 && !c.mix.barrier_only()) {
      bad(who + "fuzzy barriers cannot be mixed with reductions (one event "
                "stream per port; use a separate class)");
    }
    if (c.mix.fuzzy > 0.0 && c.fuzzy_chunk.ps() <= 0) {
      bad(who + "fuzzy-chunk-us must be positive");
    }
    if (c.mix.barrier_only() && !c.layer_overhead.is_zero()) {
      bad(who + "layer-us applies to the communicator path only (add a "
                "reduction weight, or drop it to model raw GM)");
    }
    if (c.algorithm == nic::BarrierAlgorithm::kGatherBroadcast && c.gb_dimension == 0) {
      bad(who + "GB needs a positive tree dimension");
    }
    if (c.rdma != coll::RdmaAlgorithm::kNone) {
      // The host-RDMA family runs on bare rma::Domains; reductions, fuzzy
      // barriers, and managed groups all live on other code paths.
      if (!c.mix.barrier_only() || c.mix.fuzzy > 0.0) {
        bad(who + "host-RDMA barriers require a pure-barrier mix");
      }
      if (c.managed) bad(who + "host-RDMA barriers cannot use a managed lifecycle");
      if (c.rdma == coll::RdmaAlgorithm::kTreePut && c.gb_dimension == 0) {
        bad(who + "host-tree needs a positive radix");
      }
    }
    if (c.hierarchical) {
      // The two-level family composes NIC sub-barriers; it has no host,
      // fuzzy, or reduction path of its own.
      if (c.location != coll::Location::kNic) {
        bad(who + "hierarchical barriers require the NIC-based location");
      }
      if (!c.mix.barrier_only() || c.mix.fuzzy > 0.0) {
        bad(who + "hierarchical barriers require a pure-barrier mix");
      }
      if (c.gb_dimension == 0) bad(who + "hier needs a positive intra-block dimension");
    }
    if (!c.slo.is_zero() && (c.slo_target <= 0.0 || c.slo_target >= 1.0)) {
      bad(who + "slo-target must be in (0, 1)");
    }
    if (c.slo.ps() < 0 || c.slo_window.ps() < 0) {
      bad(who + "slo-us and slo-window-us must be non-negative");
    }
    if (c.managed) {
      // A managed group owns the whole barrier path (NIC slot or host
      // fallback); reductions and fuzzy barriers bypass that lifecycle.
      if (!c.mix.barrier_only() || c.mix.fuzzy > 0.0) {
        bad(who + "lifecycle managed requires a pure-barrier mix");
      }
      if (c.location != coll::Location::kNic) {
        bad(who + "lifecycle managed requires the NIC location (the host "
                  "path is the group's fallback mode, not a starting mode)");
      }
      if (c.promote_every < 0) bad(who + "promote-every must be non-negative");
    }
  }
}

std::vector<std::vector<net::NodeId>> place_jobs(const WorkloadSpec& spec) {
  const std::size_t N = spec.cluster_nodes;
  const std::size_t jobs = spec.total_jobs();
  std::vector<std::vector<net::NodeId>> sets;
  sets.reserve(jobs);

  std::size_t demanded = 0;
  for (const JobClass& c : spec.classes) demanded += c.count * c.nodes;

  switch (spec.placement) {
    case Placement::kDisjoint: {
      // Consecutive packs: job j gets the next `nodes` unclaimed nodes.
      if (demanded > N) {
        throw std::invalid_argument("workload spec: disjoint placement needs " +
                                    std::to_string(demanded) + " nodes but the cluster has " +
                                    std::to_string(N));
      }
      std::size_t base = 0;
      for (const JobClass& c : spec.classes) {
        for (std::size_t k = 0; k < c.count; ++k) {
          std::vector<net::NodeId> s;
          s.reserve(c.nodes);
          for (std::size_t m = 0; m < c.nodes; ++m) {
            s.push_back(static_cast<net::NodeId>(base + m));
          }
          base += c.nodes;
          sets.push_back(std::move(s));
        }
      }
      break;
    }
    case Placement::kStrided: {
      // Round-robin interleave: job j takes nodes j, j+J, j+2J, ... — the
      // same node budget as disjoint but spread across the topology, so
      // jobs share switches (and, on chains/trees, inter-switch links).
      if (demanded > N) {
        throw std::invalid_argument("workload spec: strided placement needs " +
                                    std::to_string(demanded) + " nodes but the cluster has " +
                                    std::to_string(N));
      }
      std::size_t j = 0;
      for (const JobClass& c : spec.classes) {
        for (std::size_t k = 0; k < c.count; ++k) {
          std::vector<net::NodeId> s;
          s.reserve(c.nodes);
          for (std::size_t m = 0; m < c.nodes; ++m) {
            s.push_back(static_cast<net::NodeId>((j + m * jobs) % N));
          }
          sets.push_back(std::move(s));
          ++j;
        }
      }
      break;
    }
    case Placement::kOverlapping: {
      // Sliding windows advancing half a window per job (and wrapping), so
      // consecutive jobs share ~half their nodes BY CONSTRUCTION — the
      // co-located jobs land on distinct GM ports of the same NIC and
      // contend for its LANai processor and PCI bus.
      std::size_t base = 0;
      for (const JobClass& c : spec.classes) {
        for (std::size_t k = 0; k < c.count; ++k) {
          std::vector<net::NodeId> s;
          s.reserve(c.nodes);
          for (std::size_t m = 0; m < c.nodes; ++m) {
            s.push_back(static_cast<net::NodeId>((base + m) % N));
          }
          base += c.nodes > 1 ? c.nodes / 2 : 1;
          sets.push_back(std::move(s));
        }
      }
      break;
    }
  }
  return sets;
}

// --- Spec parser --------------------------------------------------------------

namespace {

[[noreturn]] void fail_at(int line_no, const std::string& line, const std::string& why) {
  throw std::runtime_error("workload spec line " + std::to_string(line_no) + " ('" + line +
                           "'): " + why);
}

double parse_number(std::istringstream& is, int line_no, const std::string& line,
                    const char* what) {
  double v = 0.0;
  if (!(is >> v)) fail_at(line_no, line, std::string("expected a number for ") + what);
  return v;
}

std::string parse_word(std::istringstream& is, int line_no, const std::string& line,
                       const char* what) {
  std::string w;
  if (!(is >> w)) fail_at(line_no, line, std::string("expected a value for ") + what);
  return w;
}

void expect_end(std::istringstream& is, int line_no, const std::string& line) {
  std::string extra;
  if (is >> extra) fail_at(line_no, line, "unexpected trailing token '" + extra + "'");
}

/// "barrier=0.7" -> sets the named weight on `mix`.
void parse_mix_term(const std::string& term, CollectiveMix& mix, int line_no,
                    const std::string& line) {
  const std::size_t eq = term.find('=');
  if (eq == std::string::npos) fail_at(line_no, line, "mix terms look like kind=weight");
  const std::string kind = term.substr(0, eq);
  double w = 0.0;
  try {
    std::size_t used = 0;
    w = std::stod(term.substr(eq + 1), &used);
    if (used != term.size() - eq - 1) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    fail_at(line_no, line, "bad weight in '" + term + "'");
  }
  if (kind == "barrier") {
    mix.barrier = w;
  } else if (kind == "bcast" || kind == "broadcast") {
    mix.broadcast = w;
  } else if (kind == "allreduce") {
    mix.allreduce = w;
  } else if (kind == "fuzzy") {
    mix.fuzzy = w;
  } else {
    fail_at(line_no, line, "unknown collective '" + kind + "'");
  }
}

}  // namespace

WorkloadSpec parse_workload_spec(std::istream& in) {
  WorkloadSpec spec;
  JobClass* job = nullptr;  // current class; null while in the preamble
  bool any_mix_term = false;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream is(line);
    std::string key;
    if (!(is >> key)) continue;  // blank / comment-only

    if (key == "job") {
      JobClass c;
      c.name = parse_word(is, line_no, line, "job name");
      // Per-class mix weights start from nothing; an unspecified mix means
      // barrier-only (the struct default).
      expect_end(is, line_no, line);
      spec.classes.push_back(std::move(c));
      job = &spec.classes.back();
      any_mix_term = false;
      continue;
    }

    if (job == nullptr) {
      // Preamble keys.
      if (key == "cluster-nodes") {
        const double v = parse_number(is, line_no, line, "cluster-nodes");
        if (v < 1) fail_at(line_no, line, "cluster-nodes must be >= 1");
        spec.cluster_nodes = static_cast<std::size_t>(v);
      } else if (key == "nic") {
        const std::string v = parse_word(is, line_no, line, "nic");
        if (v == "lanai43") {
          spec.cluster.nic = nic::lanai43();
        } else if (v == "lanai72") {
          spec.cluster.nic = nic::lanai72();
        } else {
          fail_at(line_no, line, "nic must be lanai43 or lanai72");
        }
      } else if (key == "topology") {
        const std::string v = parse_word(is, line_no, line, "topology");
        if (v == "switch") {
          spec.cluster.topology = host::Topology::kSingleSwitch;
        } else if (v == "chain") {
          spec.cluster.topology = host::Topology::kSwitchChain;
        } else if (v == "tree") {
          spec.cluster.topology = host::Topology::kSwitchTree;
        } else if (v == "fat-tree" || v == "leaf-spine") {
          spec.cluster.topology =
              v == "fat-tree" ? host::Topology::kFatTree : host::Topology::kLeafSpine;
          const double radix = parse_number(is, line_no, line, (v + " radix").c_str());
          const double oversub =
              parse_number(is, line_no, line, (v + " oversubscription").c_str());
          if (radix < 3) fail_at(line_no, line, v + " radix must be >= 3");
          if (oversub < 1) fail_at(line_no, line, v + " oversubscription must be >= 1");
          spec.cluster.fabric_radix = static_cast<std::size_t>(radix);
          spec.cluster.fabric_oversub = static_cast<std::size_t>(oversub);
        } else {
          fail_at(line_no, line,
                  "topology must be switch, chain, tree, fat-tree <radix> <oversub>, "
                  "or leaf-spine <radix> <oversub>");
        }
      } else if (key == "reliability") {
        const std::string v = parse_word(is, line_no, line, "reliability");
        if (v == "unreliable") {
          spec.cluster.nic.barrier_reliability = nic::BarrierReliability::kUnreliable;
        } else if (v == "shared") {
          spec.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
        } else if (v == "separate") {
          spec.cluster.nic.barrier_reliability = nic::BarrierReliability::kSeparateAcks;
        } else {
          fail_at(line_no, line, "reliability must be unreliable, shared, or separate");
        }
      } else if (key == "nic-slots") {
        // Like `reliability`, this must follow `nic` (which replaces the
        // whole NIC config).
        const double v = parse_number(is, line_no, line, "nic-slots");
        if (v < 0) fail_at(line_no, line, "nic-slots must be non-negative");
        spec.cluster.nic.barrier_slots = static_cast<int>(v);
      } else if (key == "placement") {
        const std::string v = parse_word(is, line_no, line, "placement");
        if (v == "disjoint") {
          spec.placement = Placement::kDisjoint;
        } else if (v == "strided") {
          spec.placement = Placement::kStrided;
        } else if (v == "overlapping") {
          spec.placement = Placement::kOverlapping;
        } else {
          fail_at(line_no, line, "placement must be disjoint, strided, or overlapping");
        }
      } else if (key == "arrival") {
        const std::string v = parse_word(is, line_no, line, "arrival");
        if (v == "fixed") {
          spec.arrival.kind = ArrivalKind::kFixed;
          spec.arrival.interval =
              sim::microseconds(parse_number(is, line_no, line, "fixed gap"));
        } else if (v == "poisson") {
          spec.arrival.kind = ArrivalKind::kPoisson;
          spec.arrival.interval =
              sim::microseconds(parse_number(is, line_no, line, "poisson mean gap"));
        } else if (v == "closed-loop") {
          spec.arrival.kind = ArrivalKind::kClosedLoop;
          const double width = parse_number(is, line_no, line, "closed-loop width");
          if (width < 1) fail_at(line_no, line, "closed-loop width must be >= 1");
          spec.arrival.width = static_cast<std::size_t>(width);
          spec.arrival.think =
              sim::microseconds(parse_number(is, line_no, line, "closed-loop think time"));
        } else {
          fail_at(line_no, line, "arrival must be fixed, poisson, or closed-loop");
        }
      } else if (key == "seed") {
        const double v = parse_number(is, line_no, line, "seed");
        spec.seed = static_cast<std::uint64_t>(v);
      } else if (key == "hist-max-us") {
        spec.hist_max_us = parse_number(is, line_no, line, "hist-max-us");
      } else {
        fail_at(line_no, line, "unknown key '" + key + "' (before the first job)");
      }
      expect_end(is, line_no, line);
      continue;
    }

    // Job-class keys.
    if (key == "count") {
      const double v = parse_number(is, line_no, line, "count");
      if (v < 1) fail_at(line_no, line, "count must be >= 1");
      job->count = static_cast<std::size_t>(v);
    } else if (key == "nodes") {
      const double v = parse_number(is, line_no, line, "nodes");
      if (v < 1) fail_at(line_no, line, "nodes must be >= 1");
      job->nodes = static_cast<std::size_t>(v);
    } else if (key == "iters") {
      const double v = parse_number(is, line_no, line, "iters");
      if (v < 1) fail_at(line_no, line, "iters must be >= 1");
      job->iterations = static_cast<int>(v);
    } else if (key == "mix") {
      if (!any_mix_term) {
        // First mix line: weights are exactly what the spec says.
        job->mix = CollectiveMix{0.0, 0.0, 0.0, 0.0};
        any_mix_term = true;
      }
      std::string term;
      bool saw_term = false;
      while (is >> term) {
        parse_mix_term(term, job->mix, line_no, line);
        saw_term = true;
      }
      if (!saw_term) fail_at(line_no, line, "mix needs at least one kind=weight term");
      continue;  // consumed the rest of the line
    } else if (key == "compute-us") {
      job->compute_mean = sim::microseconds(parse_number(is, line_no, line, "compute-us"));
    } else if (key == "imbalance") {
      job->compute_imbalance = parse_number(is, line_no, line, "imbalance");
    } else if (key == "skew-us") {
      job->start_skew = sim::microseconds(parse_number(is, line_no, line, "skew-us"));
    } else if (key == "location") {
      const std::string v = parse_word(is, line_no, line, "location");
      if (v == "nic") {
        job->location = coll::Location::kNic;
      } else if (v == "host") {
        job->location = coll::Location::kHost;
      } else {
        fail_at(line_no, line, "location must be nic or host");
      }
    } else if (key == "algorithm") {
      const std::string v = parse_word(is, line_no, line, "algorithm");
      // The families are mutually exclusive and the key is last-wins, so
      // each arm resets the other families' selectors.
      job->rdma = coll::RdmaAlgorithm::kNone;
      job->hierarchical = false;
      if (v == "pe") {
        job->algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
      } else if (v == "gb") {
        job->algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
        job->gb_dimension =
            static_cast<std::size_t>(parse_number(is, line_no, line, "gb dimension"));
      } else if (v == "hier") {
        job->hierarchical = true;
        job->gb_dimension =
            static_cast<std::size_t>(parse_number(is, line_no, line, "hier intra dimension"));
      } else if (v == "host-dissem") {
        job->rdma = coll::RdmaAlgorithm::kDissemination;
      } else if (v == "host-tree") {
        job->rdma = coll::RdmaAlgorithm::kTreePut;
        job->gb_dimension =
            static_cast<std::size_t>(parse_number(is, line_no, line, "host-tree radix"));
      } else {
        fail_at(line_no, line, "algorithm must be pe, gb <dim>, hier <dim>, "
                               "host-dissem, or host-tree <radix>");
      }
    } else if (key == "fuzzy-chunk-us") {
      job->fuzzy_chunk = sim::microseconds(parse_number(is, line_no, line, "fuzzy-chunk-us"));
    } else if (key == "deadline-us") {
      job->deadline = sim::microseconds(parse_number(is, line_no, line, "deadline-us"));
    } else if (key == "layer-us") {
      job->layer_overhead = sim::microseconds(parse_number(is, line_no, line, "layer-us"));
    } else if (key == "slo-us") {
      job->slo = sim::microseconds(parse_number(is, line_no, line, "slo-us"));
    } else if (key == "slo-target") {
      job->slo_target = parse_number(is, line_no, line, "slo-target");
    } else if (key == "slo-window-us") {
      job->slo_window = sim::microseconds(parse_number(is, line_no, line, "slo-window-us"));
    } else if (key == "lifecycle") {
      const std::string v = parse_word(is, line_no, line, "lifecycle");
      if (v == "managed") {
        job->managed = true;
      } else if (v == "none") {
        job->managed = false;
      } else {
        fail_at(line_no, line, "lifecycle must be none or managed");
      }
    } else if (key == "promote-every") {
      const double v = parse_number(is, line_no, line, "promote-every");
      if (v < 0) fail_at(line_no, line, "promote-every must be non-negative");
      job->promote_every = static_cast<int>(v);
    } else {
      fail_at(line_no, line, "unknown job key '" + key + "'");
    }
    expect_end(is, line_no, line);
  }

  try {
    validate(spec);
    (void)place_jobs(spec);  // surface placement misfits at parse time too
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(e.what());
  }
  return spec;
}

WorkloadSpec parse_workload_spec(const std::string& text) {
  std::istringstream is(text);
  return parse_workload_spec(is);
}

// --- Spec printer -------------------------------------------------------------

namespace {

/// Microsecond rendering with full picosecond precision (6 decimals); the
/// parser's microseconds() conversion reconstructs the same Duration for any
/// integer-µs value, which is all the format promises to round-trip.
std::string us_str(sim::Duration d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", d.us());
  return buf;
}

std::string weight_str(double w) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", w);
  return buf;
}

const char* nic_name(const host::ClusterParams& c) {
  // The format names the card, not the full config; pick by model string
  // with the clock as a fallback for hand-built configs.
  if (c.nic.model == nic::lanai72().model) return "lanai72";
  if (c.nic.model == nic::lanai43().model) return "lanai43";
  return c.nic.clock_mhz >= 50.0 ? "lanai72" : "lanai43";
}

const char* topology_name(host::Topology t) {
  switch (t) {
    case host::Topology::kSingleSwitch: return "switch";
    case host::Topology::kSwitchChain: return "chain";
    case host::Topology::kSwitchTree: return "tree";
    case host::Topology::kFatTree: return "fat-tree";
    case host::Topology::kLeafSpine: return "leaf-spine";
  }
  return "switch";
}

/// The fabric topologies carry their shape parameters on the line.
bool topology_has_shape(host::Topology t) {
  return t == host::Topology::kFatTree || t == host::Topology::kLeafSpine;
}

const char* reliability_name(nic::BarrierReliability r) {
  switch (r) {
    case nic::BarrierReliability::kUnreliable: return "unreliable";
    case nic::BarrierReliability::kSharedStream: return "shared";
    case nic::BarrierReliability::kSeparateAcks: return "separate";
  }
  return "unreliable";
}

}  // namespace

void print_spec(const WorkloadSpec& spec, std::ostream& os) {
  os << "cluster-nodes " << spec.cluster_nodes << "\n";
  // `nic` replaces the whole NIC config, so `reliability` must follow it.
  os << "nic " << nic_name(spec.cluster) << "\n";
  os << "reliability " << reliability_name(spec.cluster.nic.barrier_reliability) << "\n";
  // Printed only when it differs from the card default, so pre-lifecycle
  // specs print byte-identically to the old format.
  if (spec.cluster.nic.barrier_slots != nic::NicConfig{}.barrier_slots) {
    os << "nic-slots " << spec.cluster.nic.barrier_slots << "\n";
  }
  os << "topology " << topology_name(spec.cluster.topology);
  if (topology_has_shape(spec.cluster.topology)) {
    os << " " << spec.cluster.fabric_radix << " " << spec.cluster.fabric_oversub;
  }
  os << "\n";
  os << "placement " << to_string(spec.placement) << "\n";
  switch (spec.arrival.kind) {
    case ArrivalKind::kFixed:
      os << "arrival fixed " << us_str(spec.arrival.interval) << "\n";
      break;
    case ArrivalKind::kPoisson:
      os << "arrival poisson " << us_str(spec.arrival.interval) << "\n";
      break;
    case ArrivalKind::kClosedLoop:
      os << "arrival closed-loop " << spec.arrival.width << " " << us_str(spec.arrival.think)
         << "\n";
      break;
  }
  os << "seed " << spec.seed << "\n";
  os << "hist-max-us " << weight_str(spec.hist_max_us) << "\n";
  for (const JobClass& c : spec.classes) {
    os << "\njob " << c.name << "\n";
    os << "  count " << c.count << "\n";
    os << "  nodes " << c.nodes << "\n";
    os << "  iters " << c.iterations << "\n";
    os << "  mix barrier=" << weight_str(c.mix.barrier) << " bcast=" << weight_str(c.mix.broadcast)
       << " allreduce=" << weight_str(c.mix.allreduce) << " fuzzy=" << weight_str(c.mix.fuzzy)
       << "\n";
    os << "  compute-us " << us_str(c.compute_mean) << "\n";
    os << "  imbalance " << weight_str(c.compute_imbalance) << "\n";
    os << "  skew-us " << us_str(c.start_skew) << "\n";
    os << "  location " << (c.location == coll::Location::kNic ? "nic" : "host") << "\n";
    if (c.rdma == coll::RdmaAlgorithm::kDissemination) {
      os << "  algorithm host-dissem\n";
    } else if (c.rdma == coll::RdmaAlgorithm::kTreePut) {
      os << "  algorithm host-tree " << c.gb_dimension << "\n";
    } else if (c.hierarchical) {
      os << "  algorithm hier " << c.gb_dimension << "\n";
    } else if (c.algorithm == nic::BarrierAlgorithm::kGatherBroadcast) {
      os << "  algorithm gb " << c.gb_dimension << "\n";
    } else {
      os << "  algorithm pe\n";
    }
    os << "  fuzzy-chunk-us " << us_str(c.fuzzy_chunk) << "\n";
    os << "  deadline-us " << us_str(c.deadline) << "\n";
    if (!c.layer_overhead.is_zero()) os << "  layer-us " << us_str(c.layer_overhead) << "\n";
    if (!c.slo.is_zero()) {
      // SLO keys ride only on classes that declare one (like layer-us), so
      // SLO-free specs print byte-identically to the pre-SLO format.
      os << "  slo-us " << us_str(c.slo) << "\n";
      os << "  slo-target " << weight_str(c.slo_target) << "\n";
      os << "  slo-window-us " << us_str(c.slo_window) << "\n";
    }
    if (c.managed) {
      // Lifecycle keys ride only on managed classes, for the same reason.
      os << "  lifecycle managed\n";
      os << "  promote-every " << c.promote_every << "\n";
    }
  }
}

std::string print_spec(const WorkloadSpec& spec) {
  std::ostringstream os;
  print_spec(spec, os);
  return os.str();
}

bool spec_equal(const WorkloadSpec& a, const WorkloadSpec& b) {
  if (a.cluster_nodes != b.cluster_nodes || a.placement != b.placement || a.seed != b.seed ||
      a.hist_max_us != b.hist_max_us) {
    return false;
  }
  if (a.arrival.kind != b.arrival.kind || a.arrival.interval != b.arrival.interval ||
      a.arrival.width != b.arrival.width || a.arrival.think != b.arrival.think) {
    return false;
  }
  if (a.cluster.nic.model != b.cluster.nic.model ||
      a.cluster.nic.clock_mhz != b.cluster.nic.clock_mhz ||
      a.cluster.nic.barrier_reliability != b.cluster.nic.barrier_reliability ||
      a.cluster.nic.barrier_slots != b.cluster.nic.barrier_slots ||
      a.cluster.topology != b.cluster.topology) {
    return false;
  }
  // The fabric shape rides on the topology line for fat-tree/leaf-spine
  // only, so it is compared (like printed) only there.
  if (topology_has_shape(a.cluster.topology) &&
      (a.cluster.fabric_radix != b.cluster.fabric_radix ||
       a.cluster.fabric_oversub != b.cluster.fabric_oversub)) {
    return false;
  }
  if (a.classes.size() != b.classes.size()) return false;
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    const JobClass& x = a.classes[i];
    const JobClass& y = b.classes[i];
    if (x.name != y.name || x.count != y.count || x.nodes != y.nodes ||
        x.iterations != y.iterations) {
      return false;
    }
    if (x.mix.barrier != y.mix.barrier || x.mix.broadcast != y.mix.broadcast ||
        x.mix.allreduce != y.mix.allreduce || x.mix.fuzzy != y.mix.fuzzy) {
      return false;
    }
    if (x.compute_mean != y.compute_mean || x.compute_imbalance != y.compute_imbalance ||
        x.start_skew != y.start_skew || x.fuzzy_chunk != y.fuzzy_chunk ||
        x.location != y.location || x.algorithm != y.algorithm || x.deadline != y.deadline ||
        x.layer_overhead != y.layer_overhead) {
      return false;
    }
    // The format only carries the dimension for GB ("algorithm gb <dim>")
    // and host-tree ("algorithm host-tree <radix>"); for PE and
    // host-dissem the field is meaningless and not compared.
    if (x.rdma != y.rdma) return false;
    if (x.hierarchical != y.hierarchical) return false;
    if ((x.algorithm == nic::BarrierAlgorithm::kGatherBroadcast ||
         x.rdma == coll::RdmaAlgorithm::kTreePut || x.hierarchical) &&
        x.gb_dimension != y.gb_dimension) {
      return false;
    }
    // Same for the SLO keys: printed (and thus compared) only when the
    // class declares an SLO.
    if (x.slo != y.slo) return false;
    if (!x.slo.is_zero() &&
        (x.slo_target != y.slo_target || x.slo_window != y.slo_window)) {
      return false;
    }
    // And the lifecycle keys: printed only on managed classes.
    if (x.managed != y.managed) return false;
    if (x.managed && x.promote_every != y.promote_every) return false;
  }
  return true;
}

}  // namespace nicbar::wl
