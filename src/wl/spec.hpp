// Declarative multi-tenant workload specifications.
//
// A WorkloadSpec describes a population of jobs sharing one simulated
// fabric: how many jobs, how wide each one is, where its processes land
// (disjoint packs, strided, or deliberately overlapping node sets), what mix
// of collectives it issues (barrier / broadcast / allreduce / fuzzy
// barrier), how much skewed compute separates consecutive collectives, and
// when jobs arrive (all at once, on a fixed cadence, as a Poisson process,
// or closed-loop behind a fixed number of in-flight slots).
//
// The spec is a pure description — wl::Driver turns it into communicators
// over one host::Cluster and runs everything inside a single simulator, so
// contention between jobs (NIC processors, PCI buses, switch output ports)
// is actually modelled. Every stochastic choice draws from an RNG substream
// derived from (seed, purpose, job), so a spec plus a seed is a complete,
// bit-reproducible experiment — the same discipline as sim::fault::FaultPlan.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar::wl {

/// How job node-sets are laid out over the cluster.
enum class Placement : std::uint8_t {
  kDisjoint,     // consecutive packs; throws if the jobs do not fit
  kStrided,      // round-robin interleave across nodes; throws if unfit
  kOverlapping,  // sliding windows advancing half a window per job, so
                 // consecutive jobs share ~half their nodes (co-located
                 // jobs get distinct GM ports on the shared NICs)
};

/// When job instances start.
enum class ArrivalKind : std::uint8_t {
  kFixed,       // job j arrives at j * interval (0 = all at t=0)
  kPoisson,     // exponential inter-arrival gaps with mean `interval`
  kClosedLoop,  // at most `width` jobs in flight; the next one starts
                // `think` after a predecessor finishes
};

enum class CollectiveKind : std::uint8_t { kBarrier, kBroadcast, kAllreduce, kFuzzyBarrier };
inline constexpr std::size_t kCollectiveKindCount = 4;

[[nodiscard]] const char* to_string(Placement p);
[[nodiscard]] const char* to_string(ArrivalKind k);
[[nodiscard]] const char* to_string(CollectiveKind k);

/// Relative weights of the collectives a job issues. A barrier-only mix
/// (broadcast == allreduce == 0) runs on bare coll::BarrierMembers — the
/// exact code path of the Fig. 5 experiments; any mix touching reductions
/// runs through an mpi::Communicator so one event stream serves them all.
struct CollectiveMix {
  double barrier = 1.0;
  double broadcast = 0.0;
  double allreduce = 0.0;
  double fuzzy = 0.0;

  [[nodiscard]] double total() const { return barrier + broadcast + allreduce + fuzzy; }
  [[nodiscard]] bool barrier_only() const { return broadcast == 0.0 && allreduce == 0.0; }
  /// More than one kind has weight (a per-iteration draw is needed).
  [[nodiscard]] bool mixed() const;
};

/// One class of identical jobs; `count` instances are created.
struct JobClass {
  std::string name = "job";
  std::size_t count = 1;
  std::size_t nodes = 8;  // processes (one per node of the job's node-set)
  int iterations = 100;   // collectives each instance issues
  CollectiveMix mix;
  /// Mean compute phase inserted before every collective; each process
  /// draws its own duration uniformly in mean * [1-imbalance, 1+imbalance],
  /// so imbalance > 0 makes some processes arrive late (stragglers).
  sim::Duration compute_mean{0};
  double compute_imbalance = 0.0;  // in [0, 1)
  /// Random per-process delay before an instance's first collective
  /// (arrival jitter within the job; 0 = all processes start together).
  sim::Duration start_skew{0};
  sim::Duration fuzzy_chunk = sim::microseconds(5.0);
  coll::Location location = coll::Location::kNic;
  nic::BarrierAlgorithm algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  std::size_t gb_dimension = 2;
  /// Host-RDMA barrier family (`algorithm host-dissem | host-tree <radix>`):
  /// barriers run over the rma:: one-sided layer instead of the NIC firmware
  /// or host message loops. Requires a pure-barrier, non-managed,
  /// non-fuzzy class; gb_dimension doubles as the tree radix.
  coll::RdmaAlgorithm rdma = coll::RdmaAlgorithm::kNone;
  /// Two-level hierarchical NIC family (`algorithm hier <dim>`): intra-block
  /// GB trees of dimension gb_dimension, pairwise exchange among per-block
  /// representatives, local release. The block size comes from the cluster
  /// fabric (hosts per leaf switch) at run time; on a flat topology the
  /// group degenerates to one block. Requires the NIC location and a
  /// pure-barrier, non-fuzzy mix.
  bool hierarchical = false;
  sim::Duration deadline{0};  // per-collective abort deadline (0 = none)
  /// Per-call software-layer overhead (only the communicator path pays it;
  /// a barrier-only class models raw GM and must leave this at 0).
  sim::Duration layer_overhead{0};
  /// Per-collective latency SLO for this class (0 = no SLO declared). A
  /// collective completing in more than `slo` burns error budget; wl::slo
  /// turns the samples into windowed burn rates.
  sim::Duration slo{0};
  /// Compliance target in (0, 1): the fraction of samples that must meet
  /// the SLO. The error budget is 1 - slo_target.
  double slo_target = 0.99;
  /// Burn-rate window width; 0 = a single window spanning the whole run.
  sim::Duration slo_window{0};
  /// Managed barrier-group lifecycle: each instance creates a group
  /// (coll::GroupMember — NIC slot admission with host fallback), runs its
  /// iterations through it, and destroys it, so a stream of short instances
  /// churns the NIC slot tables. Requires a pure-barrier mix and the NIC
  /// location; under slot exhaustion barriers complete degraded
  /// (kOkDegraded), which the report counts rather than treating as failure.
  bool managed = false;
  /// Managed only: retry NIC-slot admission after every this many degraded
  /// barriers (0 = never re-promote). See coll::GroupConfig::promote_every.
  int promote_every = 4;
};

struct Arrival {
  ArrivalKind kind = ArrivalKind::kFixed;
  sim::Duration interval{0};  // fixed gap, or Poisson mean gap
  std::size_t width = 1;      // closed-loop: concurrent job slots
  sim::Duration think{0};     // closed-loop: completion -> next arrival
};

struct WorkloadSpec {
  std::size_t cluster_nodes = 16;
  Placement placement = Placement::kDisjoint;
  Arrival arrival;
  std::vector<JobClass> classes;
  std::uint64_t seed = 1;
  /// Range of the per-collective latency histograms backing the percentile
  /// estimates (samples above the ceiling clamp into the last bin).
  double hist_max_us = 20000.0;
  std::size_t hist_bins = 2000;
  /// Fabric and NIC hardware (cluster.nodes is overridden by cluster_nodes;
  /// cluster.nic.max_ports is raised automatically when overlapping jobs
  /// need more GM ports per NIC than the default eight).
  host::ClusterParams cluster;

  [[nodiscard]] std::size_t total_jobs() const;
};

/// Throws std::invalid_argument naming the offending field on a malformed
/// spec (no classes, zero-node job, fuzzy weight on a host-based class,
/// layer overhead on a barrier-only class, imbalance outside [0,1), ...).
void validate(const WorkloadSpec& spec);

/// Expands the placement policy into one node-set per job instance, in job
/// order (class order, then instance order). Throws std::invalid_argument
/// when a disjoint or strided layout does not fit the cluster.
[[nodiscard]] std::vector<std::vector<net::NodeId>> place_jobs(const WorkloadSpec& spec);

/// Parses the line-oriented workload-spec format used by `nicbar_run
/// workload`. Durations are microseconds, weights are non-negative reals.
/// Blank lines and `#` comments are ignored.
///
///   cluster-nodes 32
///   nic lanai43                  # lanai43 | lanai72
///   topology switch              # switch | chain | tree
///                                # | fat-tree <radix> <oversub>
///                                # | leaf-spine <radix> <oversub>
///   placement overlapping        # disjoint | strided | overlapping
///   reliability shared           # unreliable | shared | separate
///                                # (retransmission mode; required with fault
///                                # injection when any class uses fuzzy=)
///   nic-slots 8                  # barrier-state slots per NIC (admission
///                                # capacity for managed groups; follows `nic`)
///   arrival poisson 500          # fixed <gap_us> | poisson <mean_gap_us>
///                                # | closed-loop <width> <think_us>
///   seed 7
///   hist-max-us 20000
///
///   job stencil                  # starts a job class; keys below apply to it
///     count 4
///     nodes 8
///     iters 200
///     mix barrier=0.7 allreduce=0.2 bcast=0.1 fuzzy=0
///     compute-us 50
///     imbalance 0.3
///     skew-us 10
///     location nic               # nic | host
///     algorithm pe               # pe | gb <dim> | hier <dim> | host-dissem
///                                # | host-tree <radix> (host-* = rma::)
///     fuzzy-chunk-us 5
///     deadline-us 0
///     layer-us 0
///     slo-us 150                   # per-collective latency SLO (0 = none)
///     slo-target 0.99              # compliance target in (0, 1)
///     slo-window-us 5000           # burn-rate window (0 = whole run)
///     lifecycle managed            # none | managed (dynamic group
///                                  # create/destroy with slot admission)
///     promote-every 4              # managed: degraded barriers between
///                                  # re-promotion attempts (0 = never)
///
/// Throws std::runtime_error naming the offending line on malformed input;
/// the result has already passed validate().
[[nodiscard]] WorkloadSpec parse_workload_spec(std::istream& in);
[[nodiscard]] WorkloadSpec parse_workload_spec(const std::string& text);

/// Prints `spec` back in the line format parse_workload_spec accepts, so
/// that parse(print(parse(text))) == parse(text) structurally (the
/// round-trip property exercised by sim::check and tests/wl). Every field
/// the format carries is emitted explicitly, defaults included. Durations
/// are printed as microseconds with picosecond precision; integer-µs values
/// (the whole example corpus) round-trip exactly.
void print_spec(const WorkloadSpec& spec, std::ostream& os);
[[nodiscard]] std::string print_spec(const WorkloadSpec& spec);

/// Structural equality over every field the spec line format carries (the
/// fields print_spec emits); ignores fields the format cannot express.
[[nodiscard]] bool spec_equal(const WorkloadSpec& a, const WorkloadSpec& b);

}  // namespace nicbar::wl
