// SLO burn-rate layer over workload runs (wl::slo).
//
// Classes in a WorkloadSpec may declare a per-collective latency SLO
// (`slo-us`, with a compliance target and a burn-rate window). The driver
// captures one timestamped sample per collective per process; compute_slo
// turns them into per-job burn rates: the fraction of samples missing the
// SLO divided by the error budget (1 - target). A burn rate of 1.0 consumes
// the budget exactly; above 1.0 the tenant is violating. The windowed view
// localises *when* the budget burned (a contention episode shows up as one
// hot window rather than a diluted run-wide average).
//
// When causal tracing was enabled for the run, each SLO'd job also gets the
// critical-path attribution of its own completed barriers (filtered by the
// job's (node, port) endpoints), so the report names not just the offending
// tenant but the dominant hardware segment its latency sits in — "job 3 is
// burning budget and 61% of its critical path is wire serialisation".
//
// Everything here is pure data derived from the simulated timeline: two
// runs of the same spec produce byte-identical write_json output.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/causal.hpp"
#include "wl/spec.hpp"

namespace nicbar::wl {

/// One collective completion observed by one process of a job.
struct SloSample {
  double t_us = 0.0;        // simulated completion time
  double latency_us = 0.0;  // collective latency seen by that process
};

/// One burn-rate window of one job.
struct SloWindow {
  double start_us = 0.0;
  double end_us = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  double burn_rate = 0.0;  // (violations / samples) / (1 - target)
};

/// SLO verdict for one job instance of a class that declares an SLO.
struct JobSlo {
  std::string klass;
  std::size_t job = 0;
  double slo_us = 0.0;
  double target = 0.0;  // compliance target in (0, 1)
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  double compliance = 1.0;  // fraction of samples meeting the SLO
  double burn_rate = 0.0;   // whole-run burn rate
  double max_window_burn_rate = 0.0;
  bool violating = false;  // burn_rate > 1: budget overdrawn at this rate
  std::vector<SloWindow> windows;

  // Critical-path attribution over this job's completed barriers. All zero
  // when causal tracing was off or the job completed no NIC barriers.
  std::uint64_t barriers = 0;
  std::array<double, sim::causal::kSegmentCount> segment_self_us{};
  std::array<double, sim::causal::kSegmentCount> segment_queue_us{};
  int dominant_segment = -1;  // argmax(self + queue); -1 = unattributed
};

struct SloReport {
  std::vector<JobSlo> jobs;  // job order; only classes with an SLO
  std::uint64_t violating_jobs = 0;

  /// Deterministic JSON document (schema "nicbar-slo-v1").
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// Human-readable table: one row per job, offenders flagged, dominant
  /// critical-path segment named.
  void write_ascii(std::ostream& os) const;
};

/// Computes the report from a finished run. `samples[j]` holds job j's
/// collective completions and `endpoints[j]` its (node, port) pairs, both in
/// driver job order (class order, then instance order); jobs whose class
/// declares no SLO may leave their entries empty. `causal` may be null (no
/// attribution). Exposed separately from the driver for tests.
[[nodiscard]] SloReport compute_slo(const WorkloadSpec& spec,
                                    const std::vector<std::vector<SloSample>>& samples,
                                    const std::vector<std::vector<nic::Endpoint>>& endpoints,
                                    const sim::causal::CausalTracer* causal);

/// True when any class in the spec declares an SLO (drives whether the
/// driver records samples and enables causal tracing).
[[nodiscard]] bool wants_slo(const WorkloadSpec& spec);

}  // namespace nicbar::wl
