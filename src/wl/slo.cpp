#include "wl/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace nicbar::wl {

namespace {

using sim::causal::kSegmentCount;
using sim::causal::Segment;

double burn(std::uint64_t violations, std::uint64_t samples, double target) {
  if (samples == 0) return 0.0;
  const double budget = 1.0 - target;
  return (static_cast<double>(violations) / static_cast<double>(samples)) / budget;
}

}  // namespace

bool wants_slo(const WorkloadSpec& spec) {
  for (const JobClass& c : spec.classes) {
    if (!c.slo.is_zero()) return true;
  }
  return false;
}

SloReport compute_slo(const WorkloadSpec& spec,
                      const std::vector<std::vector<SloSample>>& samples,
                      const std::vector<std::vector<nic::Endpoint>>& endpoints,
                      const sim::causal::CausalTracer* causal) {
  SloReport rep;
  std::size_t j = 0;
  for (const JobClass& klass : spec.classes) {
    for (std::size_t inst = 0; inst < klass.count; ++inst, ++j) {
      if (klass.slo.is_zero()) continue;
      JobSlo js;
      js.klass = klass.name;
      js.job = j;
      js.slo_us = klass.slo.us();
      js.target = klass.slo_target;

      static const std::vector<SloSample> kNoSamples;
      const std::vector<SloSample>& ss = j < samples.size() ? samples[j] : kNoSamples;
      double horizon_us = 0.0;
      for (const SloSample& s : ss) {
        ++js.samples;
        if (s.latency_us > js.slo_us) ++js.violations;
        if (s.t_us > horizon_us) horizon_us = s.t_us;
      }
      js.compliance = js.samples == 0
                          ? 1.0
                          : 1.0 - static_cast<double>(js.violations) /
                                      static_cast<double>(js.samples);
      js.burn_rate = burn(js.violations, js.samples, js.target);

      // Windowed burn rates: fixed-width buckets by completion time. With no
      // window declared, one bucket spans the whole run.
      const double w_us = klass.slo_window.us();
      const std::size_t buckets =
          w_us > 0.0 ? static_cast<std::size_t>(std::floor(horizon_us / w_us)) + 1 : 1;
      js.windows.resize(js.samples > 0 ? buckets : 0);
      for (std::size_t b = 0; b < js.windows.size(); ++b) {
        js.windows[b].start_us = w_us > 0.0 ? static_cast<double>(b) * w_us : 0.0;
        js.windows[b].end_us = w_us > 0.0 ? static_cast<double>(b + 1) * w_us : horizon_us;
      }
      for (const SloSample& s : ss) {
        const std::size_t b =
            w_us > 0.0 ? std::min(static_cast<std::size_t>(std::floor(s.t_us / w_us)),
                                  js.windows.size() - 1)
                       : 0;
        ++js.windows[b].samples;
        if (s.latency_us > js.slo_us) ++js.windows[b].violations;
      }
      for (SloWindow& w : js.windows) {
        w.burn_rate = burn(w.violations, w.samples, js.target);
        if (w.burn_rate > js.max_window_burn_rate) js.max_window_burn_rate = w.burn_rate;
      }
      js.violating = js.burn_rate > 1.0;
      if (js.violating) ++rep.violating_jobs;

      // Critical-path attribution of this job's own barriers.
      if (causal != nullptr && j < endpoints.size() && !endpoints[j].empty()) {
        std::vector<sim::causal::CompletedBarrier> mine;
        for (const sim::causal::CompletedBarrier& cb : causal->completed()) {
          for (const nic::Endpoint& ep : endpoints[j]) {
            if (cb.node == ep.node && cb.port == ep.port) {
              mine.push_back(cb);
              break;
            }
          }
        }
        if (!mine.empty()) {
          const sim::causal::PathProfile prof = causal->profile_of(mine);
          js.barriers = prof.barriers;
          double best = -1.0;
          for (std::size_t s = 0; s < kSegmentCount; ++s) {
            js.segment_self_us[s] = prof.self[s].us();
            js.segment_queue_us[s] = prof.queue[s].us();
            const double tot = js.segment_self_us[s] + js.segment_queue_us[s];
            if (tot > best) {
              best = tot;
              js.dominant_segment = static_cast<int>(s);
            }
          }
        }
      }
      rep.jobs.push_back(std::move(js));
    }
  }
  return rep;
}

void SloReport::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"nicbar-slo-v1\",\n  \"violating_jobs\": " << violating_jobs
     << ",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobSlo& j = jobs[i];
    os << "    {\"job\": " << j.job << ", \"class\": \"" << j.klass
       << "\", \"slo_us\": " << j.slo_us << ", \"target\": " << j.target
       << ", \"samples\": " << j.samples << ", \"violations\": " << j.violations
       << ",\n     \"compliance\": " << j.compliance << ", \"burn_rate\": " << j.burn_rate
       << ", \"max_window_burn_rate\": " << j.max_window_burn_rate
       << ", \"violating\": " << (j.violating ? "true" : "false") << ",\n     \"windows\": [";
    for (std::size_t w = 0; w < j.windows.size(); ++w) {
      const SloWindow& win = j.windows[w];
      os << (w == 0 ? "" : ", ") << "{\"start_us\": " << win.start_us
         << ", \"end_us\": " << win.end_us << ", \"samples\": " << win.samples
         << ", \"violations\": " << win.violations << ", \"burn_rate\": " << win.burn_rate
         << "}";
    }
    os << "],\n     \"critical_path\": {\"barriers\": " << j.barriers
       << ", \"dominant_segment\": ";
    if (j.dominant_segment >= 0) {
      os << '"' << sim::causal::to_string(static_cast<Segment>(j.dominant_segment)) << '"';
    } else {
      os << "null";
    }
    os << ", \"segments\": [";
    for (std::size_t s = 0; s < kSegmentCount; ++s) {
      os << (s == 0 ? "" : ", ") << "{\"segment\": \""
         << sim::causal::to_string(static_cast<Segment>(s))
         << "\", \"self_us\": " << j.segment_self_us[s]
         << ", \"queue_us\": " << j.segment_queue_us[s] << "}";
    }
    os << "]}}" << (i + 1 < jobs.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

std::string SloReport::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void SloReport::write_ascii(std::ostream& os) const {
  os << "SLO burn-rate report (" << jobs.size() << " job(s) with an SLO, " << violating_jobs
     << " violating)\n";
  os << "  job  class            slo_us  target   samples  miss  burn  worst-win  verdict  "
        "dominant-segment\n";
  for (const JobSlo& j : jobs) {
    char line[256];
    std::snprintf(line, sizeof line, "  %-4zu %-16s %7.1f  %6.3f  %7llu  %4llu  %4.2f  %9.2f  %-7s  ",
                  j.job, j.klass.c_str(), j.slo_us, j.target,
                  static_cast<unsigned long long>(j.samples),
                  static_cast<unsigned long long>(j.violations), j.burn_rate,
                  j.max_window_burn_rate, j.violating ? "VIOLATE" : "ok");
    os << line;
    if (j.dominant_segment >= 0) {
      const auto seg = static_cast<Segment>(j.dominant_segment);
      const double dom = j.segment_self_us[static_cast<std::size_t>(j.dominant_segment)] +
                         j.segment_queue_us[static_cast<std::size_t>(j.dominant_segment)];
      double total = 0.0;
      for (std::size_t s = 0; s < kSegmentCount; ++s) {
        total += j.segment_self_us[s] + j.segment_queue_us[s];
      }
      char seg_buf[64];
      std::snprintf(seg_buf, sizeof seg_buf, "%s (%.0f%% of critical path)",
                    sim::causal::to_string(seg), total > 0.0 ? 100.0 * dom / total : 0.0);
      os << seg_buf;
    } else {
      os << "-";
    }
    os << "\n";
  }
}

}  // namespace nicbar::wl
