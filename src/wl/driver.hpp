// Executes a WorkloadSpec: every job instance becomes a set of per-node
// processes (coroutines) with their own GM ports and communicators, all
// sharing one host::Cluster inside one sim::Simulator — so jobs contend for
// NIC processors, PCI buses, link wires, and switch output ports exactly as
// co-scheduled tenants would on real hardware.
//
// Determinism: a (spec, seed) pair fixes the entire timeline. Arrival gaps,
// collective schedules, and compute skew each draw from their own substream
// derived from (seed, purpose, job), so changing one class never perturbs
// another's draws. A single-job, barrier-only, no-jitter spec runs the exact
// member loop of coll::run_barrier_experiment and reproduces its mean
// latency bit-for-bit (asserted by tests/wl/workload_test.cpp).
#pragma once

#include <utility>

#include "wl/report.hpp"
#include "wl/slo.hpp"
#include "wl/spec.hpp"

namespace nicbar::wl {

/// Derives an independent RNG stream from a base seed, a purpose tag, and an
/// index (splitmix64 finaliser). Exposed for tests.
[[nodiscard]] std::uint64_t substream(std::uint64_t seed, std::uint64_t purpose,
                                      std::uint64_t idx);

class Driver {
 public:
  /// Validates eagerly; throws std::invalid_argument on a malformed spec.
  explicit Driver(WorkloadSpec spec);

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }

  /// Builds a fresh cluster and runs the whole job population to completion.
  /// Repeated calls re-run the identical experiment from scratch. If
  /// spec.cluster.telemetry is set the caller's bundle receives the
  /// snapshot_metrics dump; otherwise a private bundle is used (either way
  /// the Report carries the fabric/NIC occupancy aggregates).
  [[nodiscard]] Report run();

  /// Like run(), but also computes the SLO burn-rate report for every class
  /// that declares one (empty report when none do). Enables causal tracing
  /// for the run so each SLO'd job carries its critical-path attribution;
  /// the simulated timeline is bit-identical to run() regardless.
  [[nodiscard]] std::pair<Report, SloReport> run_with_slo();

 private:
  Report run_impl(SloReport* slo_out);

  WorkloadSpec spec_;
};

/// Convenience: Driver(spec).run().
[[nodiscard]] Report run_workload(const WorkloadSpec& spec);

}  // namespace nicbar::wl
