#include "wl/driver.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "coll/group.hpp"
#include "mpi/communicator.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/telemetry.hpp"

namespace nicbar::wl {

namespace {

// Substream purposes (stable tags — changing one would reshuffle seeds).
constexpr std::uint64_t kArrivalStream = 1;
constexpr std::uint64_t kScheduleStream = 2;
constexpr std::uint64_t kMemberStream = 3;

/// Latency sink: exact mean/max plus a histogram for percentiles.
struct TailCollector {
  sim::Accumulator acc;
  sim::Histogram hist;

  TailCollector(double max_us, std::size_t bins) : hist(0.0, max_us, bins) {}

  void add(double us) {
    acc.add(us);
    hist.add(us);
  }

  [[nodiscard]] TailStats stats() const {
    TailStats t;
    t.count = acc.count();
    if (t.count == 0) return t;
    t.mean_us = acc.mean();
    t.max_us = acc.max();
    t.p50_us = hist.percentile(50.0);
    t.p95_us = hist.percentile(95.0);
    t.p99_us = hist.percentile(99.0);
    return t;
  }
};

struct MemberRun {
  std::unique_ptr<gm::Port> port;
  // Exactly one of the three engines is set: a bare BarrierMember for a
  // barrier-only mix (see CollectiveMix::barrier_only), a Communicator for
  // mixed collectives, or a GroupMember for a managed-lifecycle class.
  std::unique_ptr<coll::BarrierMember> member;
  std::unique_ptr<mpi::Communicator> comm;
  std::unique_ptr<coll::GroupMember> gmember;
  sim::Rng rng{0};  // compute-skew / start-jitter stream
  sim::SimTime start{0}, end{0};
  bool finished = false;
};

struct JobRun {
  const JobClass* klass = nullptr;
  std::size_t job_index = 0;
  std::vector<net::NodeId> node_set;
  std::vector<CollectiveKind> schedule;  // one kind per iteration
  sim::SimTime arrival{0};               // fixed/poisson: precomputed
  std::unique_ptr<sim::Gate> gate;       // closed-loop: opened by a predecessor
  std::vector<MemberRun> members;
  std::size_t remaining = 0;
  std::uint64_t failures = 0;
  // Managed-lifecycle bookkeeping (coordinator = member 0 reports the
  // group-level events; degraded barriers are counted per process).
  std::uint64_t degraded = 0;
  bool group_created = false;
  bool group_destroyed = false;
  std::uint64_t group_promotions = 0;
  sim::SimTime end{0};
  std::unique_ptr<TailCollector> latency;
  // SLO bookkeeping (populated only when the class declares an SLO):
  std::vector<SloSample> slo_samples;
  std::vector<nic::Endpoint> endpoints;  // the job's (node, port) pairs
};

struct RunState {
  std::vector<JobRun> jobs;
  std::vector<std::unique_ptr<TailCollector>> per_kind;
  std::unique_ptr<TailCollector> overall;
  const Arrival* arrival = nullptr;
  sim::Simulator* sim = nullptr;
};

CollectiveKind draw_kind(const CollectiveMix& mix, sim::Rng& rng) {
  if (!mix.mixed()) {
    if (mix.fuzzy > 0.0) return CollectiveKind::kFuzzyBarrier;
    if (mix.allreduce > 0.0) return CollectiveKind::kAllreduce;
    if (mix.broadcast > 0.0) return CollectiveKind::kBroadcast;
    return CollectiveKind::kBarrier;
  }
  double x = rng.uniform() * mix.total();
  if ((x -= mix.barrier) < 0.0) return CollectiveKind::kBarrier;
  if ((x -= mix.broadcast) < 0.0) return CollectiveKind::kBroadcast;
  if ((x -= mix.allreduce) < 0.0) return CollectiveKind::kAllreduce;
  return CollectiveKind::kFuzzyBarrier;
}

void on_job_done(RunState& st, JobRun& jr) {
  jr.end = st.sim->now();
  if (st.arrival->kind != ArrivalKind::kClosedLoop) return;
  // Release the job `width` places behind us, after the think time.
  const std::size_t next = jr.job_index + st.arrival->width;
  if (next >= st.jobs.size()) return;
  JobRun* nj = &st.jobs[next];
  const sim::Duration think = st.arrival->think;
  if (think.ps() > 0) {
    st.sim->schedule_in(think, [&st, nj] {
      nj->arrival = st.sim->now();
      nj->gate->open();
    });
  } else {
    nj->arrival = st.sim->now();
    nj->gate->open();
  }
}

/// One process of one job. Runs the class's collective schedule with
/// compute phases in between, recording the latency of every collective it
/// observes. Mirrors coll::runner's member_proc for the barrier-only path:
/// with no arrival delay, skew, or compute, the awaited operations — and
/// therefore the simulated timeline — are identical.
sim::Task member_proc(RunState& st, JobRun& jr, std::size_t m) {
  MemberRun& me = jr.members[m];
  const JobClass& k = *jr.klass;

  if (st.arrival->kind == ArrivalKind::kClosedLoop) {
    co_await jr.gate->wait();
  } else {
    co_await st.sim->wait_until(jr.arrival);
  }
  if (!k.start_skew.is_zero()) {
    co_await st.sim->delay(sim::Duration{
        static_cast<std::int64_t>(me.rng.uniform() * static_cast<double>(k.start_skew.ps()))});
  }

  // Managed lifecycle: the group must exist before the first barrier. A
  // failed create (member died mid-handshake) skips the iteration loop but
  // still runs the destroy below, so local NIC state is released.
  bool lifecycle_ok = true;
  if (me.gmember != nullptr) {
    const coll::BarrierStatus cst = co_await me.gmember->run_create();
    if (!coll::is_success(cst)) {
      ++jr.failures;
      lifecycle_ok = false;
    } else if (m == 0) {
      jr.group_created = true;
    }
  }
  me.start = st.sim->now();

  for (int it = 0; lifecycle_ok && it < k.iterations; ++it) {
    if (!k.compute_mean.is_zero()) {
      sim::Duration d = k.compute_mean;
      if (k.compute_imbalance > 0.0) {
        d = sim::Duration{static_cast<std::int64_t>(
            static_cast<double>(d.ps()) *
            me.rng.uniform(1.0 - k.compute_imbalance, 1.0 + k.compute_imbalance))};
      }
      co_await me.port->compute(d);
    }

    const CollectiveKind kind = jr.schedule[static_cast<std::size_t>(it)];
    const sim::SimTime t0 = st.sim->now();
    coll::BarrierStatus status = coll::BarrierStatus::kOk;
    switch (kind) {
      case CollectiveKind::kBarrier:
        status = me.gmember  ? co_await me.gmember->run_barrier()
                 : me.member ? co_await me.member->run()
                             : co_await me.comm->barrier();
        break;
      case CollectiveKind::kFuzzyBarrier:
        (void)co_await me.member->run_fuzzy(k.fuzzy_chunk);
        break;
      case CollectiveKind::kAllreduce:
        (void)co_await me.comm->allreduce(static_cast<std::int64_t>(m), nic::ReduceOp::kSum);
        break;
      case CollectiveKind::kBroadcast:
        (void)co_await me.comm->bcast(static_cast<std::int64_t>(it));
        break;
    }
    const double us = (st.sim->now() - t0).us();
    jr.latency->add(us);
    st.per_kind[static_cast<std::size_t>(kind)]->add(us);
    st.overall->add(us);
    if (!k.slo.is_zero()) jr.slo_samples.push_back(SloSample{st.sim->now().us(), us});
    if (status == coll::BarrierStatus::kOkDegraded) ++jr.degraded;

    if (!coll::is_success(status) || (me.comm && me.comm->failed())) {
      // The group is broken (dead peer or expired deadline): stop looping
      // rather than spinning out `iterations` instant failures.
      ++jr.failures;
      break;
    }
  }

  if (me.gmember != nullptr) {
    // Always destroy — even after a failed create or an aborted barrier —
    // so NIC slots are released and late packets are fenced, not delivered.
    const coll::BarrierStatus dst = co_await me.gmember->run_destroy();
    if (m == 0) {
      jr.group_destroyed = dst == coll::BarrierStatus::kOk;
      jr.group_promotions = me.gmember->promotions();
    }
  }

  me.end = st.sim->now();
  me.finished = true;
  if (--jr.remaining == 0) on_job_done(st, jr);
}

}  // namespace

std::uint64_t substream(std::uint64_t seed, std::uint64_t purpose, std::uint64_t idx) {
  std::uint64_t z = seed ^ (purpose * 0x9e3779b97f4a7c15ULL) ^ (idx * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Driver::Driver(WorkloadSpec spec) : spec_(std::move(spec)) { validate(spec_); }

Report Driver::run() { return run_impl(nullptr); }

std::pair<Report, SloReport> Driver::run_with_slo() {
  SloReport slo;
  Report rep = run_impl(&slo);
  return {std::move(rep), std::move(slo)};
}

Report Driver::run_impl(SloReport* slo_out) {
  const std::vector<std::vector<net::NodeId>> node_sets = place_jobs(spec_);
  const std::size_t job_count = node_sets.size();

  // Per-node GM port allocation: co-located jobs get successive user ports
  // (GM reserves 0-1). All members of a disjoint/strided job land on port 2
  // — the figure benches' convention.
  std::vector<nic::PortId> next_port(spec_.cluster_nodes, 2);
  std::vector<std::vector<nic::PortId>> job_ports(job_count);
  int max_ports_needed = 0;
  for (std::size_t j = 0; j < job_count; ++j) {
    job_ports[j].reserve(node_sets[j].size());
    for (const net::NodeId node : node_sets[j]) {
      if (next_port[node] == 0) {  // wrapped past 255
        throw std::invalid_argument("workload spec: more than 253 jobs co-located on node " +
                                    std::to_string(node));
      }
      job_ports[j].push_back(next_port[node]++);
      if (next_port[node] > max_ports_needed) max_ports_needed = next_port[node];
    }
  }

  host::ClusterParams cp = spec_.cluster;
  cp.nodes = spec_.cluster_nodes;
  if (max_ports_needed > cp.nic.max_ports) cp.nic.max_ports = max_ports_needed;
  if (!cp.faults.empty() && cp.nic.barrier_reliability == nic::BarrierReliability::kUnreliable) {
    // A lost barrier packet is never retransmitted in the unreliable mode. A
    // plain barrier then stalls harmlessly (events run dry), but a fuzzy
    // barrier spins compute chunks forever waiting for a completion that
    // cannot arrive — a livelock, not a finite simulation. Refuse up front.
    for (const JobClass& c : spec_.classes) {
      if (c.mix.fuzzy > 0.0) {
        throw std::invalid_argument(
            "workload spec: class '" + c.name +
            "' uses fuzzy barriers on a faulty fabric with unreliable barrier "
            "delivery; set `reliability shared` (or separate) in the spec");
      }
    }
  }
  sim::telemetry::Telemetry own_telemetry;
  if (cp.telemetry == nullptr) cp.telemetry = &own_telemetry;
  if (slo_out != nullptr && wants_slo(spec_)) {
    // Causal spans give the SLO report its per-segment critical-path
    // attribution. Must precede cluster construction (pointers are cached).
    cp.telemetry->enable_causal();
  }
  host::Cluster cluster(cp);

  RunState st;
  st.arrival = &spec_.arrival;
  st.sim = &cluster.sim();
  st.overall = std::make_unique<TailCollector>(spec_.hist_max_us, spec_.hist_bins);
  for (std::size_t k = 0; k < kCollectiveKindCount; ++k) {
    st.per_kind.push_back(std::make_unique<TailCollector>(spec_.hist_max_us, spec_.hist_bins));
  }

  // Arrival times (fixed/poisson) are precomputed; closed-loop jobs get a
  // gate instead, pre-opened for the first `width` of them.
  sim::Rng arrival_rng(substream(spec_.seed, kArrivalStream, 0));
  st.jobs.resize(job_count);
  {
    std::size_t j = 0;
    sim::SimTime at{0};
    for (const JobClass& klass : spec_.classes) {
      for (std::size_t inst = 0; inst < klass.count; ++inst, ++j) {
        JobRun& jr = st.jobs[j];
        jr.klass = &klass;
        jr.job_index = j;
        jr.node_set = node_sets[j];
        jr.latency = std::make_unique<TailCollector>(spec_.hist_max_us, spec_.hist_bins);
        switch (spec_.arrival.kind) {
          case ArrivalKind::kFixed:
            jr.arrival = sim::SimTime{0} + spec_.arrival.interval * static_cast<std::int64_t>(j);
            break;
          case ArrivalKind::kPoisson:
            // Job 0 arrives at t=0; each later job after an exponential gap.
            if (j > 0) at += sim::microseconds(arrival_rng.exponential(spec_.arrival.interval.us()));
            jr.arrival = at;
            break;
          case ArrivalKind::kClosedLoop:
            jr.gate = std::make_unique<sim::Gate>(cluster.sim());
            if (j < spec_.arrival.width) jr.gate->open();  // no waiters yet: no events
            break;
        }

        // The collective schedule is shared by every member (they must agree
        // on what iteration k is, or the group deadlocks).
        sim::Rng sched_rng(substream(spec_.seed, kScheduleStream, j));
        jr.schedule.reserve(static_cast<std::size_t>(klass.iterations));
        for (int it = 0; it < klass.iterations; ++it) {
          jr.schedule.push_back(draw_kind(klass.mix, sched_rng));
        }

        std::vector<nic::Endpoint> group;
        group.reserve(klass.nodes);
        for (std::size_t m = 0; m < klass.nodes; ++m) {
          group.push_back(nic::Endpoint{jr.node_set[m], job_ports[j][m]});
        }
        jr.endpoints = group;

        jr.members.resize(klass.nodes);
        jr.remaining = klass.nodes;
        for (std::size_t m = 0; m < klass.nodes; ++m) {
          MemberRun& me = jr.members[m];
          me.port = cluster.open_port(jr.node_set[m], job_ports[j][m]);
          me.rng.reseed(substream(substream(spec_.seed, kMemberStream, j), kMemberStream, m));
          // Hierarchical classes block by the fabric's leaf population; on a
          // flat topology (no fabric) the group degenerates to one block.
          const std::size_t hier_block =
              klass.hierarchical && cluster.fabric() != nullptr ? cluster.fabric()->hosts_per_leaf
                                                                : 0;
          if (klass.managed) {
            coll::GroupConfig gc;
            gc.id = static_cast<std::uint64_t>(j) + 1;  // fabric-unique per job
            gc.algorithm = klass.algorithm;
            gc.gb_dimension = klass.gb_dimension;
            gc.hierarchical = klass.hierarchical;
            gc.hier_block = hier_block;
            gc.deadline = klass.deadline;
            // The barrier deadline doubles as the handshake liveness backstop
            // (a coordinator waiting on a crashed member may have no traffic
            // in flight to it, so no kPeerDead ever arrives).
            gc.ctrl_deadline = klass.deadline;
            gc.promote_every = klass.promote_every;
            me.gmember = std::make_unique<coll::GroupMember>(*me.port, group, gc);
          } else if (klass.mix.barrier_only()) {
            coll::BarrierSpec bspec;
            bspec.location = klass.location;
            bspec.algorithm = klass.algorithm;
            bspec.gb_dimension = klass.gb_dimension;
            bspec.rdma = klass.rdma;  // host-RDMA family (validate() confines
                                      // it to this barrier-only branch)
            bspec.hierarchical = klass.hierarchical;
            bspec.hier_block = hier_block;
            bspec.deadline = klass.deadline;
            me.member = std::make_unique<coll::BarrierMember>(*me.port, group, bspec);
          } else {
            mpi::CommConfig cfg;
            cfg.per_call_overhead = klass.layer_overhead;
            cfg.collective_location = klass.location;
            cfg.barrier_algorithm = klass.algorithm;
            cfg.gb_dimension = klass.gb_dimension;
            cfg.barrier_deadline = klass.deadline;
            me.comm = std::make_unique<mpi::Communicator>(*me.port, group, cfg);
          }
        }
      }
    }
  }

  for (JobRun& jr : st.jobs) {
    for (std::size_t m = 0; m < jr.members.size(); ++m) {
      cluster.sim().spawn(member_proc(st, jr, m));
    }
  }
  cluster.sim().run();
  cluster.snapshot_metrics();

  // --- Reduce into the Report -------------------------------------------------
  Report rep;
  rep.jobs.reserve(job_count);
  sim::SimTime makespan{0};
  for (const JobRun& jr : st.jobs) {
    JobReport j;
    j.klass = jr.klass->name;
    j.job = jr.job_index;
    j.nodes = jr.klass->nodes;
    j.arrival_us = jr.arrival.us();
    sim::SimTime begin{0}, end{0};
    for (const MemberRun& me : jr.members) {
      if (me.start > begin) begin = me.start;
      if (me.end > end) end = me.end;
      if (!me.finished) ++j.failures;  // stalled member (hung collective)
    }
    j.start_us = begin.us();
    j.end_us = end.us();
    j.experiment_mean_us = (end - begin).us() / jr.klass->iterations;
    j.latency = jr.latency->stats();
    j.failures += jr.failures;
    j.degraded_collectives = jr.degraded;
    j.group_created = jr.group_created;
    j.group_destroyed = jr.group_destroyed;
    j.group_promotions = jr.group_promotions;
    for (const CollectiveKind k : jr.schedule) {
      ++j.collectives[static_cast<std::size_t>(k)];
    }
    rep.total_failures += j.failures;
    rep.degraded_collectives += j.degraded_collectives;
    rep.group_promotions += j.group_promotions;
    if (j.group_created) ++rep.groups_created;
    if (j.group_destroyed) ++rep.groups_destroyed;
    if (jr.end > makespan) makespan = jr.end;
    if (end > makespan) makespan = end;
    rep.jobs.push_back(std::move(j));
  }
  rep.makespan_us = makespan.us();
  for (std::size_t k = 0; k < kCollectiveKindCount; ++k) {
    rep.per_kind[k] = st.per_kind[k]->stats();
  }
  rep.overall = st.overall->stats();

  // Fabric / NIC occupancy out of the metrics registry.
  const sim::telemetry::MetricsRegistry& m = cp.telemetry->metrics();
  sim::Accumulator link_util, nic_util, pci_util;
  for (const auto& [name, value] : m.gauges()) {
    const bool util = name.size() > 12 && name.rfind(".utilisation") == name.size() - 12;
    if (!util) continue;
    if (name.rfind("link.", 0) == 0) {
      link_util.add(value);
      if (value > rep.max_link_utilisation) rep.max_link_utilisation = value;
    } else if (name.rfind("nic", 0) == 0 && name.find(".proc.") != std::string::npos) {
      nic_util.add(value);
      if (value > rep.max_nic_occupancy) rep.max_nic_occupancy = value;
    } else if (name.rfind("node", 0) == 0 && name.find(".pci.") != std::string::npos) {
      pci_util.add(value);
    }
  }
  rep.mean_link_utilisation = link_util.mean();
  rep.mean_nic_occupancy = nic_util.mean();
  rep.mean_pci_utilisation = pci_util.mean();
  for (const auto& [name, value] : m.counters()) {
    auto ends_with = [&name](const char* suffix) {
      const std::string s = suffix;
      return name.size() > s.size() && name.rfind(s) == name.size() - s.size();
    };
    if (name.rfind("link.", 0) == 0) {
      if (ends_with(".stalls")) rep.link_stalls += value;
      if (ends_with(".dropped")) rep.link_packets_dropped += value;
    } else if (name.rfind("nic", 0) == 0) {
      if (ends_with(".barriers_completed")) rep.barriers_completed += value;
      if (ends_with(".reduces_completed")) rep.reduces_completed += value;
      if (ends_with(".retransmissions")) rep.retransmissions += value;
      if (ends_with(".slots.allocations")) rep.slot_allocations += value;
      if (ends_with(".slots.rejections")) rep.slot_rejections += value;
      if (ends_with(".slots.frees")) rep.slot_frees += value;
      if (ends_with(".slots.high_water") && value > rep.slot_high_water) {
        rep.slot_high_water = value;
      }
      if (ends_with(".stale_group_fenced")) rep.stale_group_fenced += value;
    }
  }

  if (slo_out != nullptr) {
    std::vector<std::vector<SloSample>> samples(job_count);
    std::vector<std::vector<nic::Endpoint>> endpoints(job_count);
    for (std::size_t j = 0; j < job_count; ++j) {
      samples[j] = std::move(st.jobs[j].slo_samples);
      endpoints[j] = std::move(st.jobs[j].endpoints);
    }
    *slo_out = compute_slo(spec_, samples, endpoints, cp.telemetry->causal());
  }
  return rep;
}

Report run_workload(const WorkloadSpec& spec) { return Driver(spec).run(); }

}  // namespace nicbar::wl
