#include "wl/report.hpp"

#include <ostream>
#include <sstream>

namespace nicbar::wl {

namespace {

void write_tail(std::ostream& os, const TailStats& t) {
  os << "{\"count\": " << t.count << ", \"mean_us\": " << t.mean_us
     << ", \"p50_us\": " << t.p50_us << ", \"p95_us\": " << t.p95_us
     << ", \"p99_us\": " << t.p99_us << ", \"max_us\": " << t.max_us << "}";
}

}  // namespace

void Report::write_json(std::ostream& os) const {
  os << "{\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobReport& j = jobs[i];
    os << "    {\"job\": " << j.job << ", \"class\": \"" << j.klass
       << "\", \"nodes\": " << j.nodes << ", \"arrival_us\": " << j.arrival_us
       << ", \"start_us\": " << j.start_us << ", \"end_us\": " << j.end_us
       << ", \"experiment_mean_us\": " << j.experiment_mean_us << ",\n     \"latency\": ";
    write_tail(os, j.latency);
    os << ",\n     \"collectives\": {";
    for (std::size_t k = 0; k < kCollectiveKindCount; ++k) {
      os << (k == 0 ? "" : ", ") << '"' << to_string(static_cast<CollectiveKind>(k))
         << "\": " << j.collectives[k];
    }
    os << "}, \"failures\": " << j.failures << ", \"degraded_collectives\": "
       << j.degraded_collectives << ", \"group_created\": " << (j.group_created ? 1 : 0)
       << ", \"group_destroyed\": " << (j.group_destroyed ? 1 : 0)
       << ", \"group_promotions\": " << j.group_promotions << "}";
    os << (i + 1 < jobs.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"per_kind\": {";
  for (std::size_t k = 0; k < kCollectiveKindCount; ++k) {
    os << (k == 0 ? "" : ", ") << '"' << to_string(static_cast<CollectiveKind>(k)) << "\": ";
    write_tail(os, per_kind[k]);
  }
  os << "},\n  \"overall\": ";
  write_tail(os, overall);
  os << ",\n  \"makespan_us\": " << makespan_us << ", \"total_failures\": " << total_failures
     << ",\n  \"fabric\": {\"mean_link_utilisation\": " << mean_link_utilisation
     << ", \"max_link_utilisation\": " << max_link_utilisation
     << ", \"mean_nic_occupancy\": " << mean_nic_occupancy
     << ", \"max_nic_occupancy\": " << max_nic_occupancy
     << ", \"mean_pci_utilisation\": " << mean_pci_utilisation
     << ", \"link_stalls\": " << link_stalls << "},\n  \"counters\": {\"barriers_completed\": "
     << barriers_completed << ", \"reduces_completed\": " << reduces_completed
     << ", \"retransmissions\": " << retransmissions
     << ", \"link_packets_dropped\": " << link_packets_dropped
     << "},\n  \"lifecycle\": {\"groups_created\": " << groups_created
     << ", \"groups_destroyed\": " << groups_destroyed
     << ", \"degraded_collectives\": " << degraded_collectives
     << ", \"group_promotions\": " << group_promotions
     << ", \"slot_allocations\": " << slot_allocations
     << ", \"slot_rejections\": " << slot_rejections << ", \"slot_frees\": " << slot_frees
     << ", \"slot_high_water\": " << slot_high_water
     << ", \"stale_group_fenced\": " << stale_group_fenced << "}\n}\n";
}

std::string Report::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace nicbar::wl
