// Property/fuzz harness: metamorphic properties of the simulator plus a
// seeded generator of random (topology, fault plan, workload) cases.
//
// Deterministic metamorphic properties (run once per suite):
//   - barrier latency is non-decreasing in group size, per variant
//   - doubling the NIC clock (LANai 4.3 -> 7.2) strictly reduces latency
//   - latency is invariant under rank permutation on a symmetric fabric
//     (exact, to the picosecond)
//   - a SweepPlan produces bit-identical results for any --jobs value
//   - workload specs survive a print -> parse round trip structurally
//
// Randomised fuzz cases: each case derives every choice (group size,
// topology, variant, fault plan, skew) from one 64-bit case seed, runs the
// experiment with the sim::check invariants armed, and asserts the run's
// accounting. A failing case is reproducible from its seed alone:
//
//   nicbar_run check --case-seed <seed>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coll/runner.hpp"

namespace nicbar::sim::check {

struct PropertyOptions {
  std::uint64_t seed = 1;
  /// Number of randomised fuzz cases (the deterministic metamorphic
  /// properties always run once each).
  std::size_t cases = 50;
};

struct PropertyFailure {
  std::string property;   // which property tripped
  std::uint64_t case_seed = 0;  // 0 for deterministic properties
  std::string detail;
};

struct PropertyReport {
  std::size_t properties_run = 0;
  std::size_t fuzz_cases_run = 0;
  std::vector<PropertyFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// The case seed for fuzz case `index` of a suite (splitmix64 over the
/// suite seed), exposed so a failure printed by one invocation can be
/// replayed by another.
[[nodiscard]] std::uint64_t fuzz_case_seed(std::uint64_t suite_seed, std::size_t index);

/// Builds the fully-expanded experiment for one fuzz case seed.
[[nodiscard]] coll::ExperimentParams generate_fuzz_case(std::uint64_t case_seed,
                                                        std::string* summary = nullptr);

/// Runs exactly one fuzz case (reproduction path for `--case-seed`).
[[nodiscard]] PropertyReport run_fuzz_case(std::uint64_t case_seed);

/// Runs the deterministic properties plus `opts.cases` random fuzz cases.
[[nodiscard]] PropertyReport run_property_suite(const PropertyOptions& opts);

}  // namespace nicbar::sim::check
