#include "check/property.hpp"

#include <cstdarg>
#include <cstdio>
#include <exception>
#include <numeric>
#include <utility>

#include "coll/sweep.hpp"
#include "sim/check.hpp"
#include "sim/random.hpp"
#include "wl/spec.hpp"

namespace nicbar::sim::check {

namespace {

__attribute__((format(printf, 1, 2))) std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

void fail(PropertyReport& rep, std::string property, std::uint64_t case_seed, std::string detail) {
  rep.failures.push_back({std::move(property), case_seed, std::move(detail)});
}

coll::ExperimentParams make_params(std::size_t nodes, coll::Location loc,
                                   nic::BarrierAlgorithm alg, std::size_t dim,
                                   const nic::NicConfig& cfg, int reps) {
  coll::ExperimentParams p;
  p.nodes = nodes;
  p.reps = reps;
  p.spec.location = loc;
  p.spec.algorithm = alg;
  p.spec.gb_dimension = dim;
  p.cluster.nic = cfg;
  return p;
}

const char* loc_name(coll::Location loc) { return loc == coll::Location::kNic ? "nic" : "host"; }
const char* alg_name(nic::BarrierAlgorithm alg) {
  return alg == nic::BarrierAlgorithm::kPairwiseExchange ? "pe" : "gb";
}

constexpr coll::Location kLocations[] = {coll::Location::kHost, coll::Location::kNic};
constexpr nic::BarrierAlgorithm kAlgorithms[] = {nic::BarrierAlgorithm::kPairwiseExchange,
                                                 nic::BarrierAlgorithm::kGatherBroadcast};

// --- Deterministic metamorphic properties ----------------------------------

/// P1: per variant, one barrier can only get slower as the group grows (more
/// rounds / deeper trees, same per-hop costs).
void prop_latency_monotone_in_n(PropertyReport& rep) {
  ++rep.properties_run;
  for (const auto loc : kLocations) {
    for (const auto alg : kAlgorithms) {
      Duration prev{0};
      std::size_t prev_n = 0;
      for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
        const std::size_t dim = n < 3 ? 1 : 2;
        const auto res =
            coll::run_barrier_experiment(make_params(n, loc, alg, dim, nic::lanai43(), 8));
        if (prev_n != 0 && res.total < prev) {
          fail(rep, "latency-monotone-in-n", 0,
               fmt("%s-%s: total(n=%zu)=%lld ps < total(n=%zu)=%lld ps", loc_name(loc),
                   alg_name(alg), n, static_cast<long long>(res.total.ps()), prev_n,
                   static_cast<long long>(prev.ps())));
        }
        prev = res.total;
        prev_n = n;
      }
    }
  }
}

/// P2: doubling the NIC clock and PCI bandwidth (LANai 4.3 -> 7.2) must
/// strictly reduce latency for every variant.
void prop_clock_scaling_direction(PropertyReport& rep) {
  ++rep.properties_run;
  for (const auto loc : kLocations) {
    for (const auto alg : kAlgorithms) {
      const auto slow =
          coll::run_barrier_experiment(make_params(8, loc, alg, 2, nic::lanai43(), 8));
      const auto fast =
          coll::run_barrier_experiment(make_params(8, loc, alg, 2, nic::lanai72(), 8));
      if (!(fast.total < slow.total)) {
        fail(rep, "clock-scaling-direction", 0,
             fmt("%s-%s n=8: LANai-7.2 total %lld ps is not below LANai-4.3 total %lld ps",
                 loc_name(loc), alg_name(alg), static_cast<long long>(fast.total.ps()),
                 static_cast<long long>(slow.total.ps())));
      }
    }
  }
}

/// P3: on a symmetric single-switch fabric the latency of a lockstep PE
/// barrier is invariant — to the picosecond — under permuting which node
/// hosts which member rank.
void prop_rank_permutation_invariance(PropertyReport& rep, std::uint64_t suite_seed) {
  ++rep.properties_run;
  Rng rng(suite_seed ^ 0xa5a5a5a5ULL);
  std::vector<net::NodeId> perm(8);
  std::iota(perm.begin(), perm.end(), net::NodeId{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(static_cast<std::uint32_t>(i))]);
  }
  for (const auto loc : kLocations) {
    auto p = make_params(8, loc, nic::BarrierAlgorithm::kPairwiseExchange, 1, nic::lanai43(), 8);
    const auto identity = coll::run_barrier_experiment(p);
    p.node_order = perm;
    const auto permuted = coll::run_barrier_experiment(p);
    if (identity.total != permuted.total) {
      fail(rep, "rank-permutation-invariance", 0,
           fmt("%s-pe n=8: identity total %lld ps != permuted total %lld ps", loc_name(loc),
               static_cast<long long>(identity.total.ps()),
               static_cast<long long>(permuted.total.ps())));
    }
  }
}

/// P4: a SweepPlan must produce bit-identical results for any worker count
/// (the --jobs contract).
void prop_parallel_sweep_bit_equality(PropertyReport& rep) {
  ++rep.properties_run;
  coll::SweepPlan plan;
  plan.add("nic-pe-n4",
           make_params(4, coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange, 1,
                       nic::lanai43(), 6));
  plan.add("host-pe-n3",
           make_params(3, coll::Location::kHost, nic::BarrierAlgorithm::kPairwiseExchange, 1,
                       nic::lanai43(), 5));
  plan.add_gb_sweep("nic-gb-n5",
                    make_params(5, coll::Location::kNic,
                                nic::BarrierAlgorithm::kGatherBroadcast, 2, nic::lanai72(), 5));
  const auto serial = plan.run({.workers = 1});
  const auto sharded = plan.run({.workers = 4});
  for (std::size_t i = 0; i < serial.cases.size(); ++i) {
    const auto& a = serial.cases[i];
    const auto& b = sharded.cases[i];
    if (a.result.total != b.result.total || a.result.mean_us != b.result.mean_us ||
        a.gb_dimension != b.gb_dimension) {
      fail(rep, "parallel-sweep-bit-equality", 0,
           fmt("case '%s': serial (total=%lld ps, dim=%zu) != 4-worker (total=%lld ps, dim=%zu)",
               a.label.c_str(), static_cast<long long>(a.result.total.ps()), a.gb_dimension,
               static_cast<long long>(b.result.total.ps()), b.gb_dimension));
    }
  }
}

/// Random — but always-valid — workload spec for the round-trip property.
/// Durations stay at integer microseconds and weights at one decimal place so
/// the text form is lossless.
wl::WorkloadSpec random_spec(Rng& rng) {
  wl::WorkloadSpec s;
  s.cluster_nodes = 32;
  s.placement = static_cast<wl::Placement>(rng.below(3));
  switch (rng.below(3)) {
    case 0:
      s.arrival.kind = wl::ArrivalKind::kFixed;
      s.arrival.interval = microseconds(rng.below(500));
      break;
    case 1:
      s.arrival.kind = wl::ArrivalKind::kPoisson;
      s.arrival.interval = microseconds(1 + rng.below(500));
      break;
    default:
      s.arrival.kind = wl::ArrivalKind::kClosedLoop;
      s.arrival.width = 1 + rng.below(4);
      s.arrival.think = microseconds(rng.below(100));
      break;
  }
  s.seed = rng.next_u64() & ((std::uint64_t{1} << 53) - 1);
  s.hist_max_us = static_cast<double>(1000 + rng.below(20000));
  s.cluster.nic = rng.chance(0.5) ? nic::lanai72() : nic::lanai43();
  s.cluster.nic.barrier_reliability = static_cast<nic::BarrierReliability>(rng.below(3));
  s.cluster.topology = static_cast<host::Topology>(rng.below(3));
  const std::size_t classes = 1 + rng.below(2);
  for (std::size_t i = 0; i < classes; ++i) {
    wl::JobClass c;
    c.name = fmt("c%zu", i);
    c.count = 1 + rng.below(2);
    c.nodes = 2 + rng.below(7);  // 2 classes x 2 jobs x 8 nodes still fit 32
    c.iterations = 1 + static_cast<int>(rng.below(200));
    c.location = rng.chance(0.5) ? coll::Location::kNic : coll::Location::kHost;
    c.mix.barrier = static_cast<double>(1 + rng.below(10)) / 10.0;
    if (c.location == coll::Location::kNic && rng.chance(0.3)) {
      // Fuzzy barriers must be barrier-only and NIC-based (validate()).
      c.mix.fuzzy = static_cast<double>(1 + rng.below(5)) / 10.0;
    } else {
      c.mix.broadcast = static_cast<double>(rng.below(4)) / 10.0;
      c.mix.allreduce = static_cast<double>(rng.below(4)) / 10.0;
      if (!c.mix.barrier_only() && rng.chance(0.5)) {
        c.layer_overhead = microseconds(1 + rng.below(5));
      }
    }
    c.compute_mean = microseconds(rng.below(100));
    c.compute_imbalance = static_cast<double>(rng.below(10)) / 10.0;
    c.start_skew = microseconds(rng.below(20));
    c.fuzzy_chunk = microseconds(1 + rng.below(10));
    c.algorithm = rng.chance(0.5) ? nic::BarrierAlgorithm::kPairwiseExchange
                                  : nic::BarrierAlgorithm::kGatherBroadcast;
    c.gb_dimension = 1 + rng.below(static_cast<std::uint32_t>(c.nodes - 1));
    if (rng.chance(0.3)) c.deadline = microseconds(1000 + rng.below(1000));
    s.classes.push_back(std::move(c));
  }
  return s;
}

/// P5: print(spec) must re-parse to a structurally equal spec, and the text
/// form must be a fixed point (print(parse(print(s))) == print(s)).
void prop_spec_round_trip(PropertyReport& rep, std::uint64_t suite_seed) {
  ++rep.properties_run;
  Rng rng(suite_seed ^ 0x0ddba115eedULL);
  for (int i = 0; i < 20; ++i) {
    const wl::WorkloadSpec spec = random_spec(rng);
    const std::string text = wl::print_spec(spec);
    try {
      const wl::WorkloadSpec back = wl::parse_workload_spec(text);
      if (!wl::spec_equal(spec, back)) {
        fail(rep, "spec-round-trip", 0,
             fmt("case %d: re-parsed spec differs structurally; text:\n%s", i, text.c_str()));
      } else if (wl::print_spec(back) != text) {
        fail(rep, "spec-round-trip", 0,
             fmt("case %d: print(parse(text)) is not a fixed point; text:\n%s", i, text.c_str()));
      }
    } catch (const std::exception& e) {
      fail(rep, "spec-round-trip", 0,
           fmt("case %d: printed spec failed to re-parse (%s); text:\n%s", i, e.what(),
               text.c_str()));
    }
  }
}

// --- Randomised fuzz cases --------------------------------------------------

void run_one_fuzz(std::uint64_t case_seed, PropertyReport& rep, bool recheck_determinism) {
  std::string summary;
  coll::ExperimentParams p;
  try {
    p = generate_fuzz_case(case_seed, &summary);
  } catch (const std::exception& e) {
    fail(rep, "fuzz.generator", case_seed, e.what());
    return;
  }
  try {
    const auto res = coll::run_barrier_experiment(p);
    const bool faulty = !p.cluster.faults.empty();
    if (!faulty) {
      if (res.barrier_failures != 0 || res.stalled_members != 0) {
        fail(rep, "fuzz.fault-free-completion", case_seed,
             fmt("%s: %llu failures, %llu stalled members on a fault-free fabric",
                 summary.c_str(), static_cast<unsigned long long>(res.barrier_failures),
                 static_cast<unsigned long long>(res.stalled_members)));
      }
      const auto expected = static_cast<std::uint64_t>(p.nodes) * static_cast<std::uint64_t>(p.reps);
      if (p.spec.location == coll::Location::kNic && res.barriers_completed != expected) {
        fail(rep, "fuzz.barrier-accounting", case_seed,
             fmt("%s: %llu NIC barrier completions, expected %llu", summary.c_str(),
                 static_cast<unsigned long long>(res.barriers_completed),
                 static_cast<unsigned long long>(expected)));
      }
      if (res.total.ps() <= 0) {
        fail(rep, "fuzz.time-advanced", case_seed,
             fmt("%s: loop consumed %lld ps of simulated time", summary.c_str(),
                 static_cast<long long>(res.total.ps())));
      }
    }
    if (recheck_determinism) {
      const auto again = coll::run_barrier_experiment(p);
      if (again.total != res.total || again.barriers_completed != res.barriers_completed) {
        fail(rep, "fuzz.determinism", case_seed,
             fmt("%s: re-run diverged (total %lld vs %lld ps)", summary.c_str(),
                 static_cast<long long>(res.total.ps()),
                 static_cast<long long>(again.total.ps())));
      }
    }
    if (p.cluster.pdes_partitions > 1) {
      // Partitioned case: the serial engine must produce the identical
      // timeline (total, per-member completions, NIC counters) — the
      // random partition boundaries above must be unobservable.
      coll::ExperimentParams serial = p;
      serial.cluster.pdes_partitions = 1;
      serial.cluster.pdes_workers = 0;
      const auto sres = coll::run_barrier_experiment(serial);
      if (sres.total != res.total || sres.member_end_times != res.member_end_times ||
          sres.barriers_completed != res.barriers_completed ||
          sres.retransmissions != res.retransmissions ||
          sres.link_packets_dropped != res.link_packets_dropped) {
        fail(rep, "fuzz.pdes-bit-identity", case_seed,
             fmt("%s: partitioned total %lld ps (%llu retx, %llu drops) != serial %lld ps "
                 "(%llu retx, %llu drops)",
                 summary.c_str(), static_cast<long long>(res.total.ps()),
                 static_cast<unsigned long long>(res.retransmissions),
                 static_cast<unsigned long long>(res.link_packets_dropped),
                 static_cast<long long>(sres.total.ps()),
                 static_cast<unsigned long long>(sres.retransmissions),
                 static_cast<unsigned long long>(sres.link_packets_dropped)));
      }
    }
  } catch (const InvariantViolation& v) {
    fail(rep, "fuzz.invariant-violation", case_seed, fmt("%s: %s", summary.c_str(), v.what()));
  } catch (const std::exception& e) {
    fail(rep, "fuzz.exception", case_seed, fmt("%s: %s", summary.c_str(), e.what()));
  }
  ++rep.fuzz_cases_run;
}

}  // namespace

std::uint64_t fuzz_case_seed(std::uint64_t suite_seed, std::size_t index) {
  // splitmix64 finaliser over a golden-ratio stride: any (suite, index) pair
  // gets an independent, stateless 64-bit stream seed.
  std::uint64_t x = suite_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

coll::ExperimentParams generate_fuzz_case(std::uint64_t case_seed, std::string* summary) {
  Rng rng(case_seed);
  coll::ExperimentParams p;
  p.nodes = 2 + rng.below(9);  // 2..10: covers pow2, odd folds, multi-switch
  p.reps = 3 + static_cast<int>(rng.below(10));
  p.seed = case_seed | 1;
  p.spec.location = rng.chance(0.5) ? coll::Location::kNic : coll::Location::kHost;
  p.spec.algorithm = rng.chance(0.5) ? nic::BarrierAlgorithm::kPairwiseExchange
                                     : nic::BarrierAlgorithm::kGatherBroadcast;
  p.spec.gb_dimension = 1 + rng.below(static_cast<std::uint32_t>(p.nodes - 1));
  p.cluster.nic = rng.chance(0.5) ? nic::lanai72() : nic::lanai43();
  p.cluster.topology = static_cast<host::Topology>(rng.below(3));
  p.max_start_skew = microseconds(rng.below(201));

  auto& fp = p.cluster.faults;
  if (rng.chance(0.5)) {
    fp.seed = case_seed ^ 0x5bd1e995U;
    if (rng.chance(0.7)) fp.loss.push_back({"", rng.uniform(0.001, 0.15)});
    if (rng.chance(0.3)) fp.corruption.push_back({"", rng.uniform(0.001, 0.05)});
    if (rng.chance(0.3)) {
      fp.bursts.push_back({"", rng.uniform(0.01, 0.2), rng.uniform(0.1, 0.5), 0.0,
                           rng.uniform(0.5, 1.0)});
    }
    if (rng.chance(0.2)) {
      const SimTime from{microseconds(rng.below(500)).ps()};
      fp.link_down.push_back({"", from, from + microseconds(1 + rng.below(200))});
    }
  }
  if (!fp.empty() && p.spec.location == coll::Location::kNic) {
    // Unreliable NIC barriers deadlock under loss by design; a lossy fuzz
    // case must run one of the reliable modes so stalls are real bugs.
    p.cluster.nic.barrier_reliability = rng.chance(0.5)
                                            ? nic::BarrierReliability::kSharedStream
                                            : nic::BarrierReliability::kSeparateAcks;
  }

  // Half the cases run on the partitioned engine with a random partition
  // count (clamped to the node count inside the cluster) and an unrelated
  // worker count, so the partition boundaries sweep every block shape the
  // leaf-aligned assignment can produce. The engine's own invariants
  // (pdes.safe_time horizon monotonicity, pdes.straggler window containment)
  // throw InvariantViolation, which the harness records as a failure; the
  // driver additionally re-runs the case serially and diffs the timelines.
  if (rng.chance(0.5)) {
    p.cluster.pdes_partitions = 2 + rng.below(7);  // 2..8
    p.cluster.pdes_workers = 1 + rng.below(4);     // 1..4
  }

  if (summary != nullptr) {
    *summary = fmt("case %llu: %s-%s n=%zu dim=%zu reps=%d %s topo=%d skew=%lldps pdes=%zu/%u "
                   "faults[%zu loss, %zu burst, %zu corrupt, %zu down]",
                   static_cast<unsigned long long>(case_seed), loc_name(p.spec.location),
                   alg_name(p.spec.algorithm), p.nodes, p.spec.gb_dimension, p.reps,
                   p.cluster.nic.model.c_str(), static_cast<int>(p.cluster.topology),
                   static_cast<long long>(p.max_start_skew.ps()), p.cluster.pdes_partitions,
                   p.cluster.pdes_workers, fp.loss.size(), fp.bursts.size(),
                   fp.corruption.size(), fp.link_down.size());
  }
  return p;
}

PropertyReport run_fuzz_case(std::uint64_t case_seed) {
  PropertyReport rep;
  run_one_fuzz(case_seed, rep, /*recheck_determinism=*/true);
  return rep;
}

PropertyReport run_property_suite(const PropertyOptions& opts) {
  PropertyReport rep;
  prop_latency_monotone_in_n(rep);
  prop_clock_scaling_direction(rep);
  prop_rank_permutation_invariance(rep, opts.seed);
  prop_parallel_sweep_bit_equality(rep);
  prop_spec_round_trip(rep, opts.seed);
  for (std::size_t i = 0; i < opts.cases; ++i) {
    run_one_fuzz(fuzz_case_seed(opts.seed, i), rep, /*recheck_determinism=*/i % 5 == 0);
  }
  return rep;
}

}  // namespace nicbar::sim::check
