#include "check/oracle.hpp"

#include <cmath>
#include <cstdio>

#include "coll/schedule.hpp"

namespace nicbar::sim::check {

namespace {

// Every cost below is truncated to integer picoseconds PER JOB, exactly as
// the simulator charges it: each firmware handler is one CycleServer job,
// each bus occupancy one BusyServer job. Summing pre-truncated terms is what
// makes the closed form bit-exact, not just close.

Duration cyc(const nic::NicConfig& c, std::int64_t n) { return cycles_at_mhz(n, c.clock_mhz); }

/// One PCI crossing of a barrier-sized token: bus setup + payload transfer.
Duration pci_xfer(const nic::NicConfig& c) {
  return c.pci_setup + transfer_time(c.barrier_payload_bytes, c.pci_bandwidth_mbps);
}

/// One-way NIC-to-NIC flight through the single switch: uplink
/// serialisation + propagation, switch routing, downlink serialisation +
/// propagation. The source route is one byte per switch hop and is carried
/// (not stripped) on every hop, so both serialisations cover the same
/// header + route + payload bytes.
Duration flight(const nic::NicConfig& c, const net::LinkParams& l, const net::SwitchParams& sw) {
  const std::int64_t wire_bytes = l.header_bytes + 1 + c.barrier_payload_bytes;
  const Duration wire = transfer_time(wire_bytes, l.bandwidth_mbps);
  return wire + l.propagation + sw.routing_latency + wire + l.propagation;
}

/// Eq. 1 building block — one host-based PE round, i.e. one full GM message
/// from host call to host event (the Fig. 2 phase chain):
///   Send:   gm_send_with_callback + the SDMA engine noticing the token and
///           programming the host->NIC DMA
///   SDMA:   PCI crossing + packet prep + hand-off to the wire
///   Net:    flight through the switch
///   Recv:   receive/verify processing, plus the ack TX job the reliable
///           data stream queues on the processor *before* the RDMA job
///   RDMA:   NIC->host DMA programming + PCI crossing
///   HRecv:  host event processing + replenishing the consumed recv buffer
Duration host_pe_round(const nic::NicConfig& c, const gm::GmConfig& gm,
                       const net::LinkParams& l, const net::SwitchParams& sw) {
  const Duration layer = gm.layer_overhead;
  return gm.host_send_overhead + layer                               // Send (host)
         + cyc(c, c.sdma_detect_cycles) + cyc(c, c.sdma_setup_cycles)  // Send (NIC)
         + pci_xfer(c)                                               // SDMA: DMA in
         + cyc(c, c.sdma_prepare_cycles) + cyc(c, c.send_cycles)     // SDMA: prep + TX
         + flight(c, l, sw)                                          // Network
         + cyc(c, c.recv_cycles)                                     // Recv
         + cyc(c, c.send_cycles)                                     // ack TX before RDMA
         + cyc(c, c.rdma_setup_cycles) + pci_xfer(c)                 // RDMA
         + gm.host_recv_overhead + layer                             // HRecv
         + gm.host_provide_overhead;                                 // buffer replenish
}

/// Eq. 2 — one steady-state NIC-based PE barrier: the host pays Send once,
/// the NIC runs all R rounds back to back, and one RDMA + HRecv closes it.
Duration nic_pe_barrier(const nic::NicConfig& c, const gm::GmConfig& gm,
                        const net::LinkParams& l, const net::SwitchParams& sw, std::size_t r) {
  const Duration layer = gm.layer_overhead;
  const Duration round = cyc(c, c.barrier_send_cycles) + flight(c, l, sw) +
                         cyc(c, c.recv_cycles) + cyc(c, c.barrier_pe_cycles);
  return gm.host_provide_overhead                    // re-post the barrier buffer
         + gm.host_barrier_overhead + layer          // post the barrier token
         + cyc(c, c.sdma_detect_cycles) + cyc(c, c.barrier_init_cycles)
         + static_cast<std::int64_t>(r) * round
         + cyc(c, c.rdma_setup_cycles) + pci_xfer(c)
         + gm.host_recv_overhead + layer;
}

/// GB analogue of Eq. 2 (approximate): gather D levels up the tree,
/// broadcast D levels back down, with the GB per-message firmware cost.
/// Queueing of sibling gathers at inner nodes is not modelled — tolerance.
Duration nic_gb_barrier(const nic::NicConfig& c, const gm::GmConfig& gm,
                        const net::LinkParams& l, const net::SwitchParams& sw,
                        std::size_t nodes, std::size_t dim) {
  const Duration layer = gm.layer_overhead;
  const std::size_t depth = coll::gb_tree_depth(nodes, dim);
  const Duration hop = cyc(c, c.barrier_send_cycles) + flight(c, l, sw) +
                       cyc(c, c.recv_cycles) + cyc(c, c.barrier_gb_cycles);
  return gm.host_provide_overhead + gm.host_barrier_overhead + layer +
         cyc(c, c.sdma_detect_cycles) +
         cyc(c, c.barrier_init_cycles + c.barrier_gb_init_cycles) +
         static_cast<std::int64_t>(2 * depth) * hop +
         cyc(c, c.rdma_setup_cycles) + pci_xfer(c) + gm.host_recv_overhead + layer;
}

/// GB analogue of Eq. 1 (approximate): 2D full host messages on the
/// deepest-leaf critical path.
Duration host_gb_barrier(const nic::NicConfig& c, const gm::GmConfig& gm,
                         const net::LinkParams& l, const net::SwitchParams& sw,
                         std::size_t nodes, std::size_t dim) {
  const std::size_t depth = coll::gb_tree_depth(nodes, dim);
  return static_cast<std::int64_t>(2 * depth) * host_pe_round(c, gm, l, sw);
}

/// PE round count on the critical path. For a power of two every member runs
/// log2(N) exchanges in lockstep. With a non-power-of-two tail the members
/// folding an extra run two exchanges more than their neighbours, and that
/// skew COMPOUNDS: a member's hypercube partner may itself be waiting on a
/// skewed partner, so the last completion is far later than (rounds + 2).
/// Model it exactly at round granularity: rebuild the per-member schedules
/// (the same pairing rule as coll::pe_schedule, over indices) and evaluate
/// the exchange dependency DAG, where exchange j of member m completes one
/// round after both m and its matched partner finished their previous
/// exchanges. Queueing *within* a round (shared wires) is still ignored —
/// that is what the non-exact tolerance covers.
std::size_t pe_critical_rounds(std::size_t nodes) {
  if (nodes <= 1) return 0;
  std::size_t p2 = 1;
  while (p2 * 2 <= nodes) p2 *= 2;
  const std::size_t extras = nodes - p2;

  std::vector<std::vector<std::size_t>> sched(nodes);
  for (std::size_t m = 0; m < nodes; ++m) {
    if (m >= p2) {
      sched[m] = {m - p2, m - p2};  // enter through the partner, get released
      continue;
    }
    if (m < extras) sched[m].push_back(m + p2);
    for (std::size_t bit = 1; bit < p2; bit <<= 1) sched[m].push_back(m ^ bit);
    if (m < extras) sched[m].push_back(m + p2);
  }

  // match[m][j] = index of the exchange in the partner's schedule paired with
  // (m, j): the i-th occurrence of q in sched[m] pairs with the i-th
  // occurrence of m in sched[q].
  std::vector<std::vector<std::size_t>> match(nodes);
  for (std::size_t m = 0; m < nodes; ++m) {
    match[m].resize(sched[m].size());
    for (std::size_t j = 0; j < sched[m].size(); ++j) {
      const std::size_t q = sched[m][j];
      std::size_t occ = 0;
      for (std::size_t i = 0; i < j; ++i) occ += sched[m][i] == q ? 1 : 0;
      std::size_t seen = 0;
      for (std::size_t k = 0; k < sched[q].size(); ++k) {
        if (sched[q][k] != m) continue;
        if (seen == occ) {
          match[m][j] = k;
          break;
        }
        ++seen;
      }
    }
  }

  // T[m][j] = round count when exchange j of m completes. The graph is a
  // DAG, so repeated sweeps reach the fixpoint in a few passes.
  std::vector<std::vector<std::size_t>> t(nodes);
  for (std::size_t m = 0; m < nodes; ++m) t[m].assign(sched[m].size(), 0);
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t m = 0; m < nodes; ++m) {
      for (std::size_t j = 0; j < sched[m].size(); ++j) {
        const std::size_t q = sched[m][j];
        const std::size_t k = match[m][j];
        const std::size_t mine = j > 0 ? t[m][j - 1] : 0;
        const std::size_t theirs = k > 0 ? t[q][k - 1] : 0;
        const std::size_t done = (mine > theirs ? mine : theirs) + 1;
        if (done != t[m][j]) {
          t[m][j] = done;
          changed = true;
        }
      }
    }
  }
  std::size_t crit = 0;
  for (std::size_t m = 0; m < nodes; ++m) {
    if (!t[m].empty() && t[m].back() > crit) crit = t[m].back();
  }
  return crit;
}

}  // namespace

bool contention_free(nic::BarrierAlgorithm alg, std::size_t nodes) {
  if (alg != nic::BarrierAlgorithm::kPairwiseExchange) return false;
  return nodes >= 2 && (nodes & (nodes - 1)) == 0;
}

Duration predict_barrier(const OracleCase& c, const gm::GmConfig& gm,
                         const net::LinkParams& link, const net::SwitchParams& sw) {
  if (c.algorithm == nic::BarrierAlgorithm::kPairwiseExchange) {
    const std::size_t r = pe_critical_rounds(c.nodes);
    if (c.location == coll::Location::kHost) {
      return static_cast<std::int64_t>(r) * host_pe_round(c.nic, gm, link, sw);
    }
    return nic_pe_barrier(c.nic, gm, link, sw, r);
  }
  if (c.location == coll::Location::kHost) {
    return host_gb_barrier(c.nic, gm, link, sw, c.nodes, c.gb_dimension);
  }
  return nic_gb_barrier(c.nic, gm, link, sw, c.nodes, c.gb_dimension);
}

Duration measure_barrier(const OracleCase& c) {
  coll::ExperimentParams p;
  p.nodes = c.nodes;
  p.spec.location = c.location;
  p.spec.algorithm = c.algorithm;
  p.spec.gb_dimension = c.gb_dimension;
  p.cluster.nic = c.nic;
  const int r = 6;
  p.reps = r;
  const Duration total_r = coll::run_barrier_experiment(p).total;
  p.reps = 2 * r;
  const Duration total_2r = coll::run_barrier_experiment(p).total;
  return (total_2r - total_r) / r;
}

OracleOutcome run_oracle_case(const OracleCase& c) {
  OracleOutcome out;
  char label[128];
  std::snprintf(label, sizeof label, "%s-%s-n%zu-%s",
                c.location == coll::Location::kNic ? "nic" : "host",
                c.algorithm == nic::BarrierAlgorithm::kPairwiseExchange ? "pe" : "gb", c.nodes,
                c.nic.model.c_str());
  out.label = label;
  const gm::GmConfig gm;
  const net::LinkParams link;
  const net::SwitchParams sw;
  out.predicted = predict_barrier(c, gm, link, sw);
  out.simulated = measure_barrier(c);
  out.exact = contention_free(c.algorithm, c.nodes);
  out.rel_error = out.predicted.ps() == 0
                      ? 1.0
                      : std::fabs(static_cast<double>(out.simulated.ps() - out.predicted.ps())) /
                            static_cast<double>(out.predicted.ps());
  const double tolerance = c.algorithm == nic::BarrierAlgorithm::kGatherBroadcast
                               ? kGbOracleTolerance
                               : kPeFoldOracleTolerance;
  out.pass = out.exact ? out.simulated == out.predicted : out.rel_error <= tolerance;
  return out;
}

OracleReport run_differential_oracle() {
  OracleReport rep;
  for (const bool lanai72 : {false, true}) {
    for (const coll::Location loc : {coll::Location::kHost, coll::Location::kNic}) {
      for (const nic::BarrierAlgorithm alg :
           {nic::BarrierAlgorithm::kPairwiseExchange, nic::BarrierAlgorithm::kGatherBroadcast}) {
        for (std::size_t n = 2; n <= 16; ++n) {
          OracleCase c;
          c.location = loc;
          c.algorithm = alg;
          c.nodes = n;
          c.nic = lanai72 ? nic::lanai72() : nic::lanai43();
          const OracleOutcome out = run_oracle_case(c);
          ++rep.checked;
          if (out.exact) ++rep.exact_cases;
          if (!out.pass) ++rep.failures;
          if (!out.exact && out.rel_error > rep.max_rel_error) {
            rep.max_rel_error = out.rel_error;
          }
          rep.outcomes.push_back(out);
        }
      }
    }
  }
  return rep;
}

}  // namespace nicbar::sim::check
