// Differential oracle: an independent re-implementation of the paper's
// Eq. 1-2 closed forms, compared against the simulator's exact integer
// output.
//
// The simulator computes barrier latency by executing millions of discrete
// events; the oracle computes the same quantity by summing the per-phase
// costs (Fig. 2) straight from the configuration structs — two code paths
// that share nothing but the config values. In the contention-free regime
// (pairwise exchange, power-of-two group, every round in lockstep so no FIFO
// ever queues) the two must agree to the exact picosecond; everywhere else
// (gather/broadcast trees, non-power-of-two folds) queueing makes the closed
// form an approximation and the oracle asserts agreement within a stated
// tolerance instead.
//
// Steady-state extraction: run_barrier_experiment() with r and 2r
// repetitions, per-barrier cost = (total(2r) - total(r)) / r. The
// subtraction cancels the one-time transients (first-barrier connection
// setup, final completion skew), leaving the pure per-repetition increment
// in integer picoseconds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/runner.hpp"
#include "sim/time.hpp"

namespace nicbar::sim::check {

struct OracleCase {
  coll::Location location = coll::Location::kNic;
  nic::BarrierAlgorithm algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  std::size_t nodes = 2;
  nic::NicConfig nic = nic::lanai43();
  std::size_t gb_dimension = 2;  // GB only
};

struct OracleOutcome {
  std::string label;
  Duration predicted{0};  // closed-form per-barrier latency
  Duration simulated{0};  // steady-state per-barrier latency from the sim
  double rel_error = 0.0;
  bool exact = false;  // contention-free regime: must match to the ps
  bool pass = false;
};

struct OracleReport {
  std::vector<OracleOutcome> outcomes;
  std::size_t checked = 0;
  std::size_t exact_cases = 0;
  std::size_t failures = 0;
  double max_rel_error = 0.0;  // over the non-exact (tolerance) cases

  [[nodiscard]] bool ok() const { return failures == 0; }
};

/// Relative tolerances for the approximate (non-contention-free) cases,
/// chosen per family from the observed worst case of the full sweep with
/// ~30% margin (tests/check/oracle_test.cpp pins the observed max so drift
/// in either direction is caught):
///
///  - GB trees: sibling gathers queue at inner nodes; worst observed 0.42
///    (nic-gb-n15 on LANai 4.3).
///  - Non-power-of-two PE folds: the two extra fold exchanges desynchronise
///    the rounds, and the resulting pipeline stalls compound across the
///    steady-state repetitions far beyond the round-granularity critical
///    path; worst observed 0.72 (host-pe-n15/-n13 on LANai 4.3).
inline constexpr double kGbOracleTolerance = 0.55;
inline constexpr double kPeFoldOracleTolerance = 0.95;

/// True when (algorithm, nodes) is in the contention-free regime where the
/// closed form is exact: pairwise exchange over a power-of-two group.
[[nodiscard]] bool contention_free(nic::BarrierAlgorithm alg, std::size_t nodes);

/// Eq. 1 (host-based PE) / Eq. 2 (NIC-based PE) and their GB analogues,
/// re-derived from the raw config structs in exact integer picoseconds.
[[nodiscard]] Duration predict_barrier(const OracleCase& c, const gm::GmConfig& gm,
                                       const net::LinkParams& link, const net::SwitchParams& sw);

/// Steady-state per-barrier latency measured from two simulator runs.
[[nodiscard]] Duration measure_barrier(const OracleCase& c);

/// Runs one oracle comparison.
[[nodiscard]] OracleOutcome run_oracle_case(const OracleCase& c);

/// Full sweep: algorithm x location x N in [2,16] x {LANai 4.3, LANai 7.2}.
[[nodiscard]] OracleReport run_differential_oracle();

}  // namespace nicbar::sim::check
