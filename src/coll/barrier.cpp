#include "coll/barrier.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace nicbar::coll {

using nic::BarrierAlgorithm;
using nic::GmEvent;
using nic::GmEventType;

BarrierMember::BarrierMember(gm::Port& port, std::vector<Endpoint> group, BarrierSpec spec)
    : port_(port), group_(std::move(group)), spec_(spec) {
  bool found = false;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == port_.endpoint()) {
      my_index_ = i;
      found = true;
      break;
    }
  }
  if (!found) throw std::invalid_argument("port's endpoint is not in the barrier group");
  if (spec_.rdma != RdmaAlgorithm::kNone) {
    if (spec_.group != 0) {
      throw std::invalid_argument("host-RDMA barriers cannot join a managed group");
    }
    // The port must already be open: registration and the sink binding live
    // in the NIC's per-port state, which opening resets.
    rdma_domain_ = std::make_unique<rma::Domain>(port_);
    if (spec_.rdma == RdmaAlgorithm::kDissemination) {
      const std::uint64_t words =
          std::max<std::uint64_t>(1, rma::DisseminationBarrier::rounds_for(group_.size()));
      rma::Segment& seg = rdma_domain_->register_segment(words);
      rdma_barrier_ =
          std::make_unique<rma::DisseminationBarrier>(*rdma_domain_, seg, group_, my_index_);
    } else {
      const std::size_t radix = std::max<std::size_t>(1, spec_.gb_dimension);
      rma::Segment& seg =
          rdma_domain_->register_segment(rma::TreePutBarrier::words_for(radix));
      rdma_barrier_ =
          std::make_unique<rma::TreePutBarrier>(*rdma_domain_, seg, group_, my_index_, radix);
    }
    return;
  }
  if (spec_.hierarchical) {
    if (spec_.location != Location::kNic) {
      throw std::invalid_argument("hierarchical barriers require the NIC-based location");
    }
    const std::size_t n = group_.size();
    const std::size_t block =
        (spec_.hier_block == 0 || spec_.hier_block > n) ? n : spec_.hier_block;
    const std::size_t b = my_index_ / block;
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(lo + block, n);
    hier_block_size_ = hi - lo;
    hier_num_blocks_ = (n + block - 1) / block;
    hier_is_rep_ = my_index_ == lo;
    const std::vector<Endpoint> mates(group_.begin() + static_cast<std::ptrdiff_t>(lo),
                                      group_.begin() + static_cast<std::ptrdiff_t>(hi));
    hier_gb_ = gb_tree(mates, my_index_ - lo, spec_.gb_dimension);
    if (hier_is_rep_) {
      // Multidestination release fan-out: every block mate, directly.
      hier_release_.assign(mates.begin() + 1, mates.end());
    } else {
      // Where our release will come from.
      hier_release_.assign(1, mates.front());
    }
    if (hier_is_rep_ && hier_num_blocks_ > 1) {
      std::vector<Endpoint> reps;
      reps.reserve(hier_num_blocks_);
      for (std::size_t r = 0; r < hier_num_blocks_; ++r) reps.push_back(group_[r * block]);
      hier_rep_peers_ = pe_schedule(reps, b);
    }
    return;
  }
  if (spec_.algorithm == BarrierAlgorithm::kPairwiseExchange) {
    pe_peers_ = pe_schedule(group_, my_index_);
  } else {
    gb_ = gb_tree(group_, my_index_, spec_.gb_dimension);
  }
}

bool BarrierMember::group_contains(net::NodeId node) const {
  for (const Endpoint& ep : group_) {
    if (ep.node == node) return true;
  }
  return false;
}

sim::ValueTask<BarrierStatus> BarrierMember::run() {
  if (peer_dead_) co_return BarrierStatus::kPeerDead;
  deadline_at_ = spec_.deadline.is_zero() ? sim::SimTime::max()
                                          : port_.simulator().now() + spec_.deadline;
  if (spec_.rdma != RdmaAlgorithm::kNone) {
    const BarrierStatus st = co_await rdma_barrier_->run(deadline_at_);
    if (st == BarrierStatus::kPeerDead) peer_dead_ = true;
    co_return st;
  }
  if (spec_.hierarchical) {
    const BarrierStatus st = co_await run_hier();
    co_return st;
  }
  if (spec_.location == Location::kHost) {
    BarrierStatus st;
    if (spec_.algorithm == BarrierAlgorithm::kPairwiseExchange) {
      st = co_await run_host_pe();
    } else {
      st = co_await run_host_gb();
    }
    co_return st;
  }
  const gm::Epoch epoch = co_await start_nic_barrier();
  const BarrierStatus st = co_await wait_barrier_complete(epoch);
  if (st != BarrierStatus::kOk) port_.barrier_cancel();
  co_return st;
}

/// Bounded receive: nullopt means the deadline passed (or was already past).
sim::ValueTask<std::optional<GmEvent>> BarrierMember::next_event() {
  if (deadline_at_ == sim::SimTime::max()) {
    GmEvent ev = co_await port_.receive();
    co_return ev;
  }
  const sim::SimTime now = port_.simulator().now();
  if (now >= deadline_at_) co_return std::nullopt;
  co_return co_await port_.receive_for(deadline_at_ - now);
}

// --- Host-based barriers ------------------------------------------------------

sim::Task BarrierMember::ensure_provisioned() {
  if (provisioned_) co_return;
  provisioned_ = true;
  // Enough pinned buffers for every message of this barrier plus early
  // arrivals from the next one (each peer can be at most one barrier ahead).
  std::size_t expected = 0;
  if (spec_.algorithm == BarrierAlgorithm::kPairwiseExchange) {
    expected = pe_peers_.size();
  } else {
    expected = gb_.children.size() + (gb_.is_root() ? 0 : 1);
  }
  for (std::size_t i = 0; i < 2 * expected + 2; ++i) {
    co_await port_.provide_receive_buffer(msg_bytes_);
  }
}

sim::ValueTask<BarrierStatus> BarrierMember::wait_msg_from(Endpoint peer) {
  auto it = pending_msgs_.find(peer);
  if (it != pending_msgs_.end() && it->second > 0) {
    if (--it->second == 0) pending_msgs_.erase(it);
    co_return BarrierStatus::kOk;
  }
  for (;;) {
    if (peer_dead_) co_return BarrierStatus::kPeerDead;
    std::optional<GmEvent> evo = co_await next_event();
    if (!evo.has_value()) co_return BarrierStatus::kDeadline;
    GmEvent& ev = *evo;
    switch (ev.type) {
      case GmEventType::kRecv:
        if (ev.tag != nic::kBarrierMsgTag) {
          // Application traffic sharing the port: hand it to the higher
          // layer (which owns the buffer pool), or drop it if nobody cares.
          if (sink_) {
            sink_(ev);
          } else {
            co_await port_.provide_receive_buffer(msg_bytes_);
          }
          break;
        }
        co_await port_.provide_receive_buffer(msg_bytes_);  // replenish the pool
        if (ev.peer == peer) co_return BarrierStatus::kOk;
        ++pending_msgs_[ev.peer];
        break;
      case GmEventType::kBarrierComplete:
        ++pending_completions_;
        break;
      case GmEventType::kPeerDead:
        if (sink_) sink_(ev);  // the layer above needs to see the failure too
        if (group_contains(ev.peer.node)) {
          peer_dead_ = true;
          co_return BarrierStatus::kPeerDead;
        }
        break;
      default:
        if (sink_) sink_(ev);
        break;
    }
  }
}

sim::ValueTask<BarrierStatus> BarrierMember::run_host_pe() {
  co_await ensure_provisioned();
  for (const Endpoint& peer : pe_peers_) {
    co_await port_.send(peer, msg_bytes_, nic::kBarrierMsgTag);
    const BarrierStatus st = co_await wait_msg_from(peer);
    if (st != BarrierStatus::kOk) co_return st;
  }
  co_return BarrierStatus::kOk;
}

sim::ValueTask<BarrierStatus> BarrierMember::run_host_gb() {
  co_await ensure_provisioned();
  // Gather phase: wait for every child, then report to the parent.
  for (const Endpoint& child : gb_.children) {
    const BarrierStatus st = co_await wait_msg_from(child);
    if (st != BarrierStatus::kOk) co_return st;
  }
  if (!gb_.is_root()) {
    co_await port_.send(gb_.parent, msg_bytes_, nic::kBarrierMsgTag);
    const BarrierStatus st = co_await wait_msg_from(gb_.parent);  // broadcast release
    if (st != BarrierStatus::kOk) co_return st;
  }
  // Broadcast phase: release the subtree. The host pipelines these sends —
  // the NIC is still processing one while the host posts the next (the
  // pipelining the paper credits for host-GB's relative strength, §6).
  for (const Endpoint& child : gb_.children) {
    co_await port_.send(child, msg_bytes_, nic::kBarrierMsgTag);
  }
  co_return BarrierStatus::kOk;
}

// --- NIC-based barriers -----------------------------------------------------------

// --- Hierarchical barrier (two-level: intra-block gather, rep PE, release) --------

sim::ValueTask<gm::Epoch> BarrierMember::start_hier() {
  // Every member posts exactly one kHierarchical token per barrier. The
  // representative's is firmware-resident across all three phases: the NIC
  // advances gather -> inter-representative exchange -> multidestination
  // release with zero host hand-offs — the same philosophy the paper
  // applies to the flat algorithms (§4.2). Everyone else gathers up the
  // block tree and completes on the representative's direct release.
  nic::BarrierToken token;
  token.group = spec_.group;
  token.algorithm = BarrierAlgorithm::kHierarchical;
  token.children = hier_gb_.children;
  token.release = hier_release_;
  if (hier_is_rep_) {
    token.peers = hier_rep_peers_;
    // parent stays invalid: the representative roots its block tree.
  } else {
    token.parent = hier_gb_.parent;
  }
  co_await port_.provide_barrier_buffer();
  co_return co_await port_.barrier_send(std::move(token));
}

sim::ValueTask<BarrierStatus> BarrierMember::run_hier() {
  const gm::Epoch epoch = co_await start_hier();
  const BarrierStatus st = co_await wait_barrier_complete(epoch);
  if (st != BarrierStatus::kOk) port_.barrier_cancel();
  co_return st;
}

sim::ValueTask<gm::Epoch> BarrierMember::start_nic_barrier() {
  nic::BarrierToken token;
  token.algorithm = spec_.algorithm;
  token.group = spec_.group;
  if (spec_.algorithm == BarrierAlgorithm::kPairwiseExchange) {
    token.peers = pe_peers_;
  } else {
    token.parent = gb_.parent;
    token.children = gb_.children;
  }
  co_await port_.provide_barrier_buffer();
  co_return co_await port_.barrier_send(std::move(token));
}

sim::ValueTask<BarrierStatus> BarrierMember::wait_barrier_complete(gm::Epoch epoch) {
  if (pending_completions_ > 0) {
    // Drained by a sharing layer; the event's causal id is gone, so a
    // representative hand-off starting here has no provenance parent.
    --pending_completions_;
    last_completion_causal_ = 0;
    co_return BarrierStatus::kOk;
  }
  for (;;) {
    if (peer_dead_) co_return BarrierStatus::kPeerDead;
    std::optional<GmEvent> evo = co_await next_event();
    if (!evo.has_value()) co_return BarrierStatus::kDeadline;
    GmEvent& ev = *evo;
    switch (ev.type) {
      case GmEventType::kBarrierComplete:
        // A completion from an earlier, aborted epoch can still surface if
        // the fabric healed after we cancelled; only ours ends this wait.
        if (epoch.matches(ev.barrier_epoch)) {
          last_completion_causal_ = ev.causal;
          last_completion_at_ = port_.simulator().now();
          co_return BarrierStatus::kOk;
        }
        port_.count_stale_completion();
        break;
      case GmEventType::kRecv:
        if (sink_) {
          sink_(ev);  // a higher layer owns data traffic and its buffers
          break;
        }
        co_await port_.provide_receive_buffer(msg_bytes_);
        ++pending_msgs_[ev.peer];
        break;
      case GmEventType::kPeerDead:
        if (sink_) sink_(ev);
        if (group_contains(ev.peer.node)) {
          peer_dead_ = true;
          co_return BarrierStatus::kPeerDead;
        }
        break;
      default:
        if (sink_) sink_(ev);
        break;
    }
  }
}

sim::ValueTask<std::uint64_t> BarrierMember::run_fuzzy(sim::Duration chunk) {
  // Validate eagerly: a lazy coroutine would defer the throw until awaited.
  if (spec_.location != Location::kNic || spec_.rdma != RdmaAlgorithm::kNone ||
      spec_.hierarchical) {
    throw std::logic_error("fuzzy barrier requires the flat NIC-based implementation");
  }
  return run_fuzzy_impl(chunk);
}

sim::ValueTask<std::uint64_t> BarrierMember::run_fuzzy_impl(sim::Duration chunk) {
  const gm::Epoch epoch = co_await start_nic_barrier();
  std::uint64_t chunks = 0;
  if (pending_completions_ > 0) {
    --pending_completions_;
    co_return chunks;
  }
  for (;;) {
    std::optional<GmEvent> ev = co_await port_.poll();
    if (!ev.has_value()) {
      co_await port_.compute(chunk);
      ++chunks;
      continue;
    }
    switch (ev->type) {
      case GmEventType::kBarrierComplete:
        if (epoch.matches(ev->barrier_epoch)) co_return chunks;
        port_.count_stale_completion();
        break;
      case GmEventType::kRecv:
        if (sink_) {
          sink_(*ev);
          break;
        }
        co_await port_.provide_receive_buffer(msg_bytes_);
        if (ev->tag == nic::kBarrierMsgTag) ++pending_msgs_[ev->peer];
        break;
      case GmEventType::kPeerDead:
        if (sink_) sink_(*ev);
        if (group_contains(ev->peer.node)) {
          // Abort: the caller learns via peer_failed(); the chunk count is
          // still meaningful (work completed before the failure).
          peer_dead_ = true;
          port_.barrier_cancel();
          co_return chunks;
        }
        break;
      default:
        if (sink_) sink_(*ev);
        break;
    }
  }
}

}  // namespace nicbar::coll
