// Managed barrier groups: the lifecycle layer the paper's §3 design issues
// point at ("initialization and cleanup of the barrier state on the NIC",
// "support for concurrent barriers") but its prototype never builds.
//
// A GroupMember is one participant's handle of a *managed* barrier group: a
// group that is dynamically created, runs some barriers, and is destroyed —
// releasing its NIC state for reuse. The lifecycle state machine:
//
//         create()                 barrier()xN              destroy()
//   kNew ─────────► kActive ◄──────────────────► kDegraded ─────────► kDraining ─► kFreed
//                      │        (slot admission /      │
//                      │         re-promotion)         │
//                      └──────────► kFailed ◄──────────┘  (peer died / deadline)
//
// create() is a two-phase handshake over ordinary reliable GM sends (tag
// kGroupCtrlMsgTag): every member tries to allocate a NIC barrier-state slot
// locally, members report slot success to the coordinator (members[0]), and
// the coordinator broadcasts the commit — NIC-offloaded mode iff *every*
// member got a slot. Admission rejection is not an error: the group comes up
// degraded, runs host-driven barriers over plain gm:: sends, and returns
// kOkDegraded from every barrier() until a periodic re-promotion handshake
// finds slots free on every NIC, at which point it transparently switches
// back to NIC offload (and barrier() returns kOk again).
//
// destroy() drains in-flight rounds by construction — a member only sends
// its destroy-ack after its last barrier() returned, and barrier semantics
// guarantee every within-group message addressed to a member was consumed
// before that member's own completion — then the commit releases each
// member's slot. Packets that outlive the group (late retransmits) are
// fenced by the NIC using the group id stamped on every barrier packet (see
// nic::SlotTable).
//
// Failure semantics match coll::BarrierMember: kPeerDead/kDeadline abort a
// handshake or barrier cleanly (never hang, provided ctrl_deadline is set
// when peers can die silently), the group transitions to kFailed, and
// destroy() still releases local NIC state — slots never leak.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "coll/barrier.hpp"
#include "gm/port.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::coll {

enum class GroupState : std::uint8_t {
  kNew,       // constructed; create() not yet run
  kActive,    // created, NIC-offloaded barriers
  kDegraded,  // created, host-fallback barriers (slot admission rejected)
  kDraining,  // destroy() in progress
  kFreed,     // destroyed; all local NIC state released
  kFailed,    // a handshake or barrier aborted (peer dead / deadline)
};

[[nodiscard]] const char* to_string(GroupState s);

/// Group id encoded in a control message's 64-bit value (kGroupCtrlMsgTag).
/// Lets a layer that owns the port's event stream (mpi::Communicator) route
/// drained control messages to the right GroupMember's note_ctrl().
[[nodiscard]] std::uint64_t ctrl_message_group(std::int64_t value);

struct GroupConfig {
  /// Fabric-unique group id. Must be non-zero (0 is the legacy anonymous
  /// group) and fit in 47 bits (it shares the control-message value field
  /// with the handshake opcode).
  std::uint64_t id = 0;

  nic::BarrierAlgorithm algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  std::size_t gb_dimension = 2;

  /// Run the two-level hierarchical NIC family while offloaded (`algorithm`
  /// is then ignored; the host fallback stays flat). See BarrierSpec.
  bool hierarchical = false;
  std::size_t hier_block = 0;  // members per leaf block; 0 = one block

  /// Deadline for each barrier() run (0 = wait forever); see BarrierSpec.
  sim::Duration deadline{0};

  /// Backstop for the create/promote/destroy handshakes (0 = wait forever).
  /// REQUIRED for liveness under member crashes: a coordinator waiting for
  /// an ack from a crashed member may have no in-flight traffic to it, so no
  /// kPeerDead ever arrives — only this deadline ends the wait.
  sim::Duration ctrl_deadline{0};

  /// Attempt re-promotion to NIC offload after every this many degraded
  /// barriers (0 = never re-promote). All members count identically —
  /// barrier() is collective — so the attempts line up without extra
  /// synchronisation.
  int promote_every = 4;
};

class GroupMember {
 public:
  /// `members` lists every participating endpoint; this member is the entry
  /// whose endpoint equals port.endpoint(). members[0] coordinates.
  GroupMember(gm::Port& port, std::vector<Endpoint> members, GroupConfig config);

  /// Phase 1+2 group creation. Returns kOk (NIC-offloaded), kOkDegraded
  /// (slot admission rejected somewhere — host fallback), or a failure
  /// status (group is kFailed and must still be destroy()ed to release any
  /// local state).
  [[nodiscard]] sim::ValueTask<BarrierStatus> run_create();

  /// One barrier over the group's current mode. kOk (NIC), kOkDegraded
  /// (host fallback), or a failure status. A degraded group periodically
  /// retries slot allocation (see GroupConfig::promote_every).
  [[nodiscard]] sim::ValueTask<BarrierStatus> run_barrier();

  /// Drains and destroys the group, releasing this member's NIC slot. On a
  /// kFailed group this skips the handshake (peers may be dead) and just
  /// releases local state, returning kOk.
  [[nodiscard]] sim::ValueTask<BarrierStatus> run_destroy();

  [[nodiscard]] GroupState state() const { return state_; }
  [[nodiscard]] std::uint64_t id() const { return config_.id; }
  [[nodiscard]] bool is_coordinator() const { return my_index_ == 0; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// Lifetime counters for reports and tests.
  [[nodiscard]] std::uint64_t barriers_run() const { return barriers_run_; }
  [[nodiscard]] std::uint64_t degraded_barriers() const { return degraded_barriers_; }
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }

  /// Events that are not this group's business (foreign data traffic, other
  /// groups' control messages) are handed here when a higher layer shares
  /// the port (mpi::Communicator installs its funnel).
  void set_event_sink(std::function<void(const nic::GmEvent&)> sink);

  /// Higher layer drained one of this group's control messages from a
  /// stream it owns (mpi::Communicator routes by the group id encoded in
  /// the message value).
  void note_ctrl(const nic::GmEvent& ev);

  /// Higher layer drained a kPeerDead for `node` from the shared stream.
  void note_peer_dead(net::NodeId node);

 private:
  struct CtrlWait {
    BarrierStatus status = BarrierStatus::kOk;
    bool all_flags = true;  // AND of the flag bits of the collected messages
  };

  /// Collect `need` control messages of `kind` for this group (early
  /// arrivals in pending_ctrl_ count), bounded by ctrl_deadline.
  sim::ValueTask<CtrlWait> collect_ctrl(std::uint8_t kind, std::size_t need);
  sim::Task send_ctrl(Endpoint dst, std::uint8_t kind, bool flag);
  /// The shared shape of create() and the re-promotion attempt: local slot
  /// try, ack to the coordinator, commit broadcast. On success *mode_out* is
  /// the committed decision (true = NIC offload).
  sim::ValueTask<BarrierStatus> admission_handshake(std::uint8_t ack_kind,
                                                    std::uint8_t commit_kind, bool* nic_out);
  sim::ValueTask<BarrierStatus> attempt_promotion();
  sim::Task ensure_provisioned();
  void release_local_slot();
  [[nodiscard]] bool group_contains(net::NodeId node) const;

  gm::Port& port_;
  std::vector<Endpoint> members_;
  GroupConfig config_;
  std::size_t my_index_ = 0;

  GroupState state_ = GroupState::kNew;
  BarrierStatus failed_status_ = BarrierStatus::kOk;
  bool slot_held_ = false;

  std::unique_ptr<BarrierMember> nic_bm_;   // Location::kNic, group = id
  std::unique_ptr<BarrierMember> host_bm_;  // Location::kHost fallback

  struct CtrlMsg {
    Endpoint from;
    std::uint8_t kind = 0;
    bool flag = false;
  };
  std::deque<CtrlMsg> pending_ctrl_;  // early arrivals for this group
  std::function<void(const nic::GmEvent&)> sink_;
  int owed_buffers_ = 0;  // sunk control messages whose buffer we still owe
  bool provisioned_ = false;
  bool peer_dead_ = false;

  std::uint64_t barriers_run_ = 0;
  std::uint64_t degraded_barriers_ = 0;
  std::uint64_t promotions_ = 0;
  int degraded_since_promote_ = 0;

  std::int64_t ctrl_bytes_ = 16;
};

}  // namespace nicbar::coll
