#include "coll/runner.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "coll/sweep.hpp"
#include "sim/random.hpp"

namespace nicbar::coll {

namespace {

sim::Task member_proc(sim::Simulator& sim, BarrierMember& member, int reps,
                      sim::Duration skew, sim::SimTime* t_start, sim::SimTime* t_end,
                      std::uint64_t* failures, std::uint64_t* finished) {
  if (!skew.is_zero()) co_await sim.delay(skew);
  if (t_start != nullptr) *t_start = sim.now();
  for (int r = 0; r < reps; ++r) {
    const BarrierStatus st = co_await member.run();
    if (st != BarrierStatus::kOk) {
      // The group is broken (dead peer or expired deadline): stop looping
      // rather than spinning out `reps` instant failures.
      if (failures != nullptr) ++*failures;
      break;
    }
  }
  if (t_end != nullptr) *t_end = sim.now();
  if (finished != nullptr) ++*finished;
}

}  // namespace

ExperimentResult run_barrier_experiment(const ExperimentParams& params) {
  if (params.nodes == 0) throw std::invalid_argument("need at least one node");
  host::ClusterParams cp = params.cluster;
  cp.nodes = params.nodes;
  host::Cluster cluster(cp);

  std::vector<Endpoint> group;
  group.reserve(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    group.push_back(Endpoint{static_cast<net::NodeId>(i), params.port});
  }

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<BarrierMember>> members;
  ports.reserve(params.nodes);
  members.reserve(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), params.port));
    members.push_back(std::make_unique<BarrierMember>(*ports.back(), group, params.spec));
  }

  sim::Rng rng(params.seed);
  std::vector<sim::SimTime> starts(params.nodes), ends(params.nodes);
  std::uint64_t failures = 0;
  std::uint64_t finished = 0;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    sim::Duration skew{0};
    if (!params.max_start_skew.is_zero()) {
      skew = sim::Duration{static_cast<std::int64_t>(
          rng.uniform() * static_cast<double>(params.max_start_skew.ps()))};
    }
    cluster.sim().spawn(member_proc(cluster.sim(), *members[i], params.reps, skew,
                                    &starts[i], &ends[i], &failures, &finished));
  }
  cluster.sim().run();
  cluster.snapshot_metrics();  // no-op unless params.cluster.telemetry is set

  // The barrier loop is over when the *last* member finishes its last
  // barrier; it began when the last member started (all members must be in
  // before any barrier can complete).
  sim::SimTime begin{0}, end{0};
  for (std::size_t i = 0; i < params.nodes; ++i) {
    if (starts[i] > begin) begin = starts[i];
    if (ends[i] > end) end = ends[i];
  }

  ExperimentResult res;
  res.reps = params.reps;
  res.nodes = params.nodes;
  res.total_us = (end - begin).us();
  res.mean_us = res.total_us / params.reps;
  res.barrier_failures = failures;
  res.stalled_members = params.nodes - finished;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    const nic::NicStats& s = cluster.nic(static_cast<net::NodeId>(i)).stats();
    res.barrier_packets_sent += s.barrier_packets_sent;
    res.retransmissions += s.retransmissions;
    res.unexpected_recorded += s.unexpected_recorded;
    res.bit_collisions += s.bit_collisions;
    res.barriers_completed += s.barriers_completed;
    res.retransmit_timeouts += s.retransmit_timeouts;
    res.rto_backoffs += s.rto_backoffs;
    res.rtt_samples += s.rtt_samples;
    res.crc_drops += s.crc_drops;
    res.connections_failed += s.connections_failed;
    res.nic_crashes += s.nic_crashes;
    res.nic_restarts += s.nic_restarts;
  }
  cluster.network().for_each_link(
      [&res](net::Link& l) { res.link_packets_dropped += l.packets_dropped(); });
  return res;
}

std::pair<std::size_t, double> best_gb_dimension(ExperimentParams params, unsigned workers) {
  if (params.spec.algorithm != nic::BarrierAlgorithm::kGatherBroadcast) {
    throw std::invalid_argument("dimension sweep requires the GB algorithm");
  }
  SweepPlan plan;
  plan.add_gb_sweep("gb-dim-sweep", std::move(params));
  SweepOptions opts;
  opts.workers = workers;
  const SweepResult r = plan.run(opts);
  const CaseResult& c = r.cases.front();
  return {c.gb_dimension, c.result.mean_us};
}

}  // namespace nicbar::coll
