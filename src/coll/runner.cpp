#include "coll/runner.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "coll/sweep.hpp"
#include "sim/check.hpp"
#include "sim/random.hpp"

namespace nicbar::coll {

namespace {

// `failed` / `finished` are this member's private slots (summed by the
// driver after the run): members on different PDES lanes execute
// concurrently, so a shared counter would be a data race.
sim::Task member_proc(sim::Simulator& sim, BarrierMember& member, int reps,
                      sim::Duration skew, sim::SimTime* t_start, sim::SimTime* t_end,
                      std::uint8_t* failed, std::uint8_t* finished,
                      sim::check::BarrierSafetyMonitor* monitor, std::size_t member_index) {
  if (!skew.is_zero()) co_await sim.delay(skew);
  if (t_start != nullptr) *t_start = sim.now();
  for (int r = 0; r < reps; ++r) {
    if (monitor != nullptr) monitor->arrive(member_index, sim.now());
    const BarrierStatus st = co_await member.run();
    if (st != BarrierStatus::kOk) {
      // The group is broken (dead peer or expired deadline): stop looping
      // rather than spinning out `reps` instant failures.
      if (failed != nullptr) *failed = 1;
      break;
    }
    if (monitor != nullptr) monitor->complete(member_index, sim.now());
  }
  if (t_end != nullptr) *t_end = sim.now();
  if (finished != nullptr) *finished = 1;
}

std::vector<net::NodeId> resolve_node_order(const ExperimentParams& params) {
  std::vector<net::NodeId> order = params.node_order;
  if (order.empty()) {
    order.reserve(params.nodes);
    for (std::size_t i = 0; i < params.nodes; ++i) order.push_back(static_cast<net::NodeId>(i));
    return order;
  }
  if (order.size() != params.nodes) {
    throw std::invalid_argument("node_order must have exactly `nodes` entries");
  }
  std::vector<bool> seen(params.nodes, false);
  for (net::NodeId n : order) {
    const auto idx = static_cast<std::size_t>(n);
    if (idx >= params.nodes || seen[idx]) {
      throw std::invalid_argument("node_order must be a permutation of 0..nodes-1");
    }
    seen[idx] = true;
  }
  return order;
}

}  // namespace

ExperimentResult run_barrier_experiment(const ExperimentParams& params) {
  if (params.nodes == 0) throw std::invalid_argument("need at least one node");
  host::ClusterParams cp = params.cluster;
  cp.nodes = params.nodes;
  host::Cluster cluster(cp);

  const std::vector<net::NodeId> order = resolve_node_order(params);

  // The hierarchical family's block size defaults to the fabric's leaf
  // population, so "one block" really is "one leaf switch" under the
  // in-order placement below. Explicit hier_block (tests, flat topologies)
  // wins.
  BarrierSpec spec = params.spec;
  if (spec.hierarchical && spec.hier_block == 0) {
    if (const fabric::Fabric* f = cluster.fabric()) spec.hier_block = f->hosts_per_leaf;
  }

  std::vector<Endpoint> group;
  group.reserve(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    group.push_back(Endpoint{order[i], params.port});
  }

  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<BarrierMember>> members;
  ports.reserve(params.nodes);
  members.reserve(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    ports.push_back(cluster.open_port(order[i], params.port));
    members.push_back(std::make_unique<BarrierMember>(*ports.back(), group, spec));
  }

  sim::Rng rng(params.seed);
  std::vector<sim::SimTime> starts(params.nodes), ends(params.nodes);
  std::vector<std::uint8_t> failed(params.nodes, 0);
  std::vector<std::uint8_t> finished_flags(params.nodes, 0);
  std::unique_ptr<sim::check::BarrierSafetyMonitor> monitor;
  if (params.check_invariants) {
    monitor = std::make_unique<sim::check::BarrierSafetyMonitor>(params.nodes);
  }
  for (std::size_t i = 0; i < params.nodes; ++i) {
    sim::Duration skew{0};
    if (!params.max_start_skew.is_zero()) {
      skew = sim::Duration{static_cast<std::int64_t>(
          rng.uniform() * static_cast<double>(params.max_start_skew.ps()))};
    }
    // Each member runs on the simulator lane that owns its node — the serial
    // engine when the cluster is unpartitioned.
    sim::Simulator& lane = cluster.sim_for(order[i]);
    lane.spawn(member_proc(lane, *members[i], params.reps, skew, &starts[i], &ends[i],
                           &failed[i], &finished_flags[i], monitor.get(), i));
  }
  cluster.run_all();
  cluster.snapshot_metrics();  // no-op unless params.cluster.telemetry is set

  std::uint64_t failures = 0;
  std::uint64_t finished = 0;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    failures += failed[i];
    finished += finished_flags[i];
  }

  if (params.check_invariants) {
    // The event queue is drained, so the fabric is quiescent: every packet
    // ever injected must now be accounted for on each link and switch.
    cluster.network().for_each_link([](net::Link& l) { l.verify_conservation(); });
    for (std::size_t s = 0; s < cluster.network().switch_count(); ++s) {
      cluster.network().switch_at(static_cast<int>(s)).verify_conservation();
    }
  }

  // The barrier loop is over when the *last* member finishes its last
  // barrier; it began when the last member started (all members must be in
  // before any barrier can complete).
  sim::SimTime begin{0}, end{0};
  for (std::size_t i = 0; i < params.nodes; ++i) {
    if (starts[i] > begin) begin = starts[i];
    if (ends[i] > end) end = ends[i];
  }

  ExperimentResult res;
  res.reps = params.reps;
  res.nodes = params.nodes;
  res.total = end - begin;
  res.total_us = res.total.us();
  res.mean_us = res.total_us / params.reps;
  res.barrier_failures = failures;
  res.stalled_members = params.nodes - finished;
  res.member_end_times = ends;
  for (std::size_t i = 0; i < params.nodes; ++i) {
    const nic::NicStats& s = cluster.nic(static_cast<net::NodeId>(i)).stats();
    res.barrier_packets_sent += s.barrier_packets_sent;
    res.retransmissions += s.retransmissions;
    res.unexpected_recorded += s.unexpected_recorded;
    res.bit_collisions += s.bit_collisions;
    res.barriers_completed += s.barriers_completed;
    res.retransmit_timeouts += s.retransmit_timeouts;
    res.rto_backoffs += s.rto_backoffs;
    res.rtt_samples += s.rtt_samples;
    res.crc_drops += s.crc_drops;
    res.connections_failed += s.connections_failed;
    res.nic_crashes += s.nic_crashes;
    res.nic_restarts += s.nic_restarts;
  }
  cluster.network().for_each_link(
      [&res](net::Link& l) { res.link_packets_dropped += l.packets_dropped(); });
  return res;
}

std::pair<std::size_t, double> best_gb_dimension(ExperimentParams params, unsigned workers) {
  if (params.spec.algorithm != nic::BarrierAlgorithm::kGatherBroadcast) {
    throw std::invalid_argument("dimension sweep requires the GB algorithm");
  }
  SweepPlan plan;
  plan.add_gb_sweep("gb-dim-sweep", std::move(params));
  SweepOptions opts;
  opts.workers = workers;
  const SweepResult r = plan.run(opts);
  const CaseResult& c = r.cases.front();
  return {c.gb_dimension, c.result.mean_us};
}

}  // namespace nicbar::coll
