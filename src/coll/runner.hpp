// Experiment driver: the paper's measurement loop.
//
// Builds a cluster, opens one GM port per node, spawns one process per node,
// and runs `reps` consecutive barriers (the paper ran 100 000 and averaged;
// our simulator is deterministic so a few hundred repetitions give the same
// mean). Reports the mean per-barrier latency in simulated microseconds plus
// aggregate NIC counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"
#include "sim/time.hpp"

namespace nicbar::coll {

struct ExperimentParams {
  std::size_t nodes = 8;
  int reps = 200;
  BarrierSpec spec;
  host::ClusterParams cluster;  // cluster.nodes is overridden by `nodes`
  nic::PortId port = 2;         // GM reserves low ports; user traffic uses 2+
  /// Random per-node delay before the first barrier (models asynchronous
  /// arrival; 0 = all nodes start together as in the paper's benchmark).
  sim::Duration max_start_skew{0};
  std::uint64_t seed = 1;
  /// Runs the sim::check validation pass: barrier-safety monitoring while
  /// the loop runs, plus end-of-run packet-conservation verification on
  /// every link and switch. Costs a few counters; never perturbs timing.
  bool check_invariants = true;
  /// Optional permutation of the node ids 0..nodes-1: member i of the group
  /// runs on node node_order[i]. Empty = identity. Barrier latency must be
  /// invariant under this permutation on a symmetric fabric (a property the
  /// check harness exercises).
  std::vector<net::NodeId> node_order;
};

struct ExperimentResult {
  double mean_us = 0.0;   // mean latency of one barrier
  double total_us = 0.0;  // wall (simulated) time of the whole loop
  /// Same as total_us but in exact integer picoseconds — the quantity the
  /// differential oracle compares against closed-form predictions.
  sim::Duration total{0};
  int reps = 0;
  std::size_t nodes = 0;
  // Aggregated over all NICs:
  std::uint64_t barrier_packets_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t unexpected_recorded = 0;
  std::uint64_t bit_collisions = 0;
  std::uint64_t barriers_completed = 0;
  // Fault / recovery aggregates (all zero on a lossless fabric):
  std::uint64_t barrier_failures = 0;  // members whose run() aborted (dead peer / deadline)
  std::uint64_t stalled_members = 0;   // members still suspended when events ran dry (hung barrier)
  std::uint64_t retransmit_timeouts = 0;
  std::uint64_t rto_backoffs = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t connections_failed = 0;
  std::uint64_t nic_crashes = 0;
  std::uint64_t nic_restarts = 0;
  std::uint64_t link_packets_dropped = 0;
  /// Exact simulated time each member finished its barrier loop (index =
  /// member, not node: member i runs on node node_order[i]). The PDES
  /// bit-identity suite diffs these integers across engine configurations.
  std::vector<sim::SimTime> member_end_times;
};

/// Runs the measurement loop; deterministic for fixed params.
[[nodiscard]] ExperimentResult run_barrier_experiment(const ExperimentParams& params);

/// Sweeps the GB tree dimension 1..N-1 (the paper's methodology) and returns
/// {best dimension, its mean latency in us}. `params.spec.algorithm` must be
/// kGatherBroadcast. The dimensions are independent runs, sharded across
/// `workers` threads (see sim::exec); the result is identical for any count.
[[nodiscard]] std::pair<std::size_t, double> best_gb_dimension(ExperimentParams params,
                                                               unsigned workers = 1);

}  // namespace nicbar::coll
