#include "coll/group.hpp"

#include <stdexcept>
#include <utility>

namespace nicbar::coll {

using nic::GmEvent;
using nic::GmEventType;

namespace {

// Handshake opcodes, carried in the low byte of the control-message value.
constexpr std::uint8_t kCreateAck = 1;
constexpr std::uint8_t kCreateCommit = 2;
constexpr std::uint8_t kPromoteAck = 3;
constexpr std::uint8_t kPromoteCommit = 4;
constexpr std::uint8_t kDestroyAck = 5;
constexpr std::uint8_t kDestroyCommit = 6;

// Control messages are ordinary reliable GM sends; the 64-bit value packs
// (group id | flag | opcode) because GM messages carry no payload arrays.
constexpr std::uint64_t kMaxGroupId = (1ull << 47) - 1;

std::int64_t encode_ctrl(std::uint64_t group, std::uint8_t kind, bool flag) {
  return static_cast<std::int64_t>((group << 16) | (static_cast<std::uint64_t>(flag) << 8) |
                                   kind);
}

std::uint64_t ctrl_group(std::int64_t value) {
  return static_cast<std::uint64_t>(value) >> 16;
}
std::uint8_t ctrl_kind(std::int64_t value) {
  return static_cast<std::uint8_t>(static_cast<std::uint64_t>(value) & 0xff);
}
bool ctrl_flag(std::int64_t value) {
  return ((static_cast<std::uint64_t>(value) >> 8) & 0xff) != 0;
}

}  // namespace

std::uint64_t ctrl_message_group(std::int64_t value) { return ctrl_group(value); }

const char* to_string(GroupState s) {
  switch (s) {
    case GroupState::kNew: return "new";
    case GroupState::kActive: return "active";
    case GroupState::kDegraded: return "degraded";
    case GroupState::kDraining: return "draining";
    case GroupState::kFreed: return "freed";
    case GroupState::kFailed: return "failed";
  }
  return "?";
}

GroupMember::GroupMember(gm::Port& port, std::vector<Endpoint> members, GroupConfig config)
    : port_(port), members_(std::move(members)), config_(config) {
  if (config_.id == 0 || config_.id > kMaxGroupId) {
    throw std::invalid_argument("group id must be non-zero and fit in 47 bits");
  }
  bool found = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == port_.endpoint()) {
      my_index_ = i;
      found = true;
      break;
    }
  }
  if (!found) throw std::invalid_argument("port's endpoint is not in the group");

  BarrierSpec nic_spec;
  nic_spec.location = Location::kNic;
  nic_spec.algorithm = config_.algorithm;
  nic_spec.gb_dimension = config_.gb_dimension;
  nic_spec.deadline = config_.deadline;
  nic_spec.group = config_.id;
  nic_spec.hierarchical = config_.hierarchical;
  nic_spec.hier_block = config_.hier_block;
  nic_bm_ = std::make_unique<BarrierMember>(port_, members_, nic_spec);

  BarrierSpec host_spec = nic_spec;
  host_spec.location = Location::kHost;
  // The degraded path is host software: it runs the flat algorithm (the
  // hierarchical composition only pays off on NIC offload).
  host_spec.hierarchical = false;
  host_spec.hier_block = 0;
  host_bm_ = std::make_unique<BarrierMember>(port_, members_, host_spec);

  // Both barrier paths share the port's event stream with the handshakes:
  // control messages drained during a barrier wait are parked here (their
  // receive buffer is repaid at the next handshake), everything else goes to
  // the outer layer's sink.
  auto funnel = [this](const GmEvent& ev) {
    if (ev.type == GmEventType::kRecv && ev.tag == nic::kGroupCtrlMsgTag) {
      ++owed_buffers_;
      note_ctrl(ev);
      return;
    }
    if (ev.type == GmEventType::kPeerDead) {
      nic_bm_->note_peer_dead(ev.peer.node);
      host_bm_->note_peer_dead(ev.peer.node);
      if (group_contains(ev.peer.node)) peer_dead_ = true;
    }
    if (sink_) sink_(ev);
  };
  nic_bm_->set_event_sink(funnel);
  host_bm_->set_event_sink(funnel);
}

void GroupMember::set_event_sink(std::function<void(const nic::GmEvent&)> sink) {
  sink_ = std::move(sink);
}

bool GroupMember::group_contains(net::NodeId node) const {
  for (const Endpoint& ep : members_) {
    if (ep.node == node) return true;
  }
  return false;
}

void GroupMember::note_ctrl(const GmEvent& ev) {
  if (ctrl_group(ev.value) != config_.id) {
    // Another group's handshake sharing this port: the layer above owns the
    // routing (mpi::Communicator keeps a registry of its child groups).
    if (sink_) sink_(ev);
    return;
  }
  pending_ctrl_.push_back(CtrlMsg{ev.peer, ctrl_kind(ev.value), ctrl_flag(ev.value)});
}

void GroupMember::note_peer_dead(net::NodeId node) {
  nic_bm_->note_peer_dead(node);
  host_bm_->note_peer_dead(node);
  if (group_contains(node)) peer_dead_ = true;
}

void GroupMember::release_local_slot() {
  if (!slot_held_) return;
  slot_held_ = false;
  port_.nic().slot_free(config_.id, port_.id());
}

sim::Task GroupMember::ensure_provisioned() {
  if (provisioned_) co_return;
  provisioned_ = true;
  // Each member sends us at most one ack per handshake phase (and the
  // coordinator one commit); double it for cross-phase overlap, plus slack.
  for (std::size_t i = 0; i < 2 * members_.size() + 4; ++i) {
    co_await port_.provide_receive_buffer(ctrl_bytes_);
  }
}

sim::Task GroupMember::send_ctrl(Endpoint dst, std::uint8_t kind, bool flag) {
  return port_.send(dst, ctrl_bytes_, nic::kGroupCtrlMsgTag,
                    encode_ctrl(config_.id, kind, flag));
}

sim::ValueTask<GroupMember::CtrlWait> GroupMember::collect_ctrl(std::uint8_t kind,
                                                                std::size_t need) {
  CtrlWait r;
  std::size_t got = 0;
  const sim::SimTime deadline_at = config_.ctrl_deadline.is_zero()
                                       ? sim::SimTime::max()
                                       : port_.simulator().now() + config_.ctrl_deadline;
  for (;;) {
    // Repay receive buffers for control messages captured during barrier
    // waits (the funnel cannot co_await; this loop can).
    while (owed_buffers_ > 0) {
      --owed_buffers_;
      co_await port_.provide_receive_buffer(ctrl_bytes_);
    }
    for (auto it = pending_ctrl_.begin(); it != pending_ctrl_.end() && got < need;) {
      if (it->kind == kind) {
        r.all_flags = r.all_flags && it->flag;
        ++got;
        it = pending_ctrl_.erase(it);
      } else {
        ++it;
      }
    }
    if (got >= need) co_return r;
    if (peer_dead_) {
      r.status = BarrierStatus::kPeerDead;
      co_return r;
    }

    std::optional<GmEvent> evo;
    if (deadline_at == sim::SimTime::max()) {
      evo = co_await port_.receive();
    } else {
      const sim::SimTime now = port_.simulator().now();
      if (now >= deadline_at) {
        r.status = BarrierStatus::kDeadline;
        co_return r;
      }
      evo = co_await port_.receive_for(deadline_at - now);
      if (!evo.has_value()) {
        r.status = BarrierStatus::kDeadline;
        co_return r;
      }
    }
    GmEvent& ev = *evo;
    switch (ev.type) {
      case GmEventType::kRecv:
        if (ev.tag == nic::kGroupCtrlMsgTag) {
          co_await port_.provide_receive_buffer(ctrl_bytes_);
          note_ctrl(ev);
        } else if (ev.tag == nic::kBarrierMsgTag) {
          // A peer that already got its commit raced ahead into the first
          // host-fallback round; park the message for the barrier layer.
          co_await port_.provide_receive_buffer(ctrl_bytes_);
          host_bm_->note_msg(ev.peer);
        } else if (sink_) {
          sink_(ev);  // the layer above owns data traffic and its buffers
        } else {
          co_await port_.provide_receive_buffer(ctrl_bytes_);
        }
        break;
      case GmEventType::kPeerDead:
        if (sink_) sink_(ev);
        nic_bm_->note_peer_dead(ev.peer.node);
        host_bm_->note_peer_dead(ev.peer.node);
        if (group_contains(ev.peer.node)) {
          peer_dead_ = true;
          r.status = BarrierStatus::kPeerDead;
          co_return r;
        }
        break;
      case GmEventType::kBarrierComplete:
        // No barrier of ours is in flight during a handshake: a completion
        // here is stale (an aborted epoch's event already through RDMA/PCI).
        if (sink_) {
          sink_(ev);
        } else {
          port_.count_stale_completion();
        }
        break;
      default:
        if (sink_) sink_(ev);
        break;
    }
  }
}

sim::ValueTask<BarrierStatus> GroupMember::admission_handshake(std::uint8_t ack_kind,
                                                               std::uint8_t commit_kind,
                                                               bool* nic_out) {
  // Phase 0: local slot admission on this member's NIC. Rejection is not an
  // error — it just votes "degraded" in the commit decision.
  slot_held_ = port_.nic().slot_allocate(config_.id, port_.id());

  if (my_index_ == 0) {
    // Phase 1 (coordinator): collect every member's vote.
    const CtrlWait acks = co_await collect_ctrl(ack_kind, members_.size() - 1);
    if (acks.status != BarrierStatus::kOk) {
      release_local_slot();
      co_return acks.status;
    }
    const bool nic_mode = slot_held_ && acks.all_flags;
    // Phase 2: broadcast the commit; NIC offload only if *everyone* holds a
    // slot — a half-offloaded barrier would deadlock (host members never
    // answer NIC barrier packets).
    for (std::size_t i = 1; i < members_.size(); ++i) {
      co_await send_ctrl(members_[i], commit_kind, nic_mode);
    }
    if (!nic_mode) release_local_slot();
    *nic_out = nic_mode;
    co_return BarrierStatus::kOk;
  }

  // Phase 1 (member): vote, then wait for the commit.
  co_await send_ctrl(members_[0], ack_kind, slot_held_);
  const CtrlWait commit = co_await collect_ctrl(commit_kind, 1);
  if (commit.status != BarrierStatus::kOk) {
    release_local_slot();
    co_return commit.status;
  }
  if (!commit.all_flags) release_local_slot();
  *nic_out = commit.all_flags;
  co_return BarrierStatus::kOk;
}

sim::ValueTask<BarrierStatus> GroupMember::run_create() {
  if (state_ != GroupState::kNew) throw std::logic_error("group already created");
  co_await ensure_provisioned();
  bool nic_mode = false;
  const BarrierStatus st =
      co_await admission_handshake(kCreateAck, kCreateCommit, &nic_mode);
  if (st != BarrierStatus::kOk) {
    state_ = GroupState::kFailed;
    failed_status_ = st;
    co_return st;
  }
  state_ = nic_mode ? GroupState::kActive : GroupState::kDegraded;
  co_return nic_mode ? BarrierStatus::kOk : BarrierStatus::kOkDegraded;
}

sim::ValueTask<BarrierStatus> GroupMember::attempt_promotion() {
  bool nic_mode = false;
  const BarrierStatus st =
      co_await admission_handshake(kPromoteAck, kPromoteCommit, &nic_mode);
  if (st != BarrierStatus::kOk) co_return st;
  if (nic_mode) {
    state_ = GroupState::kActive;
    ++promotions_;
  }
  co_return BarrierStatus::kOk;
}

sim::ValueTask<BarrierStatus> GroupMember::run_barrier() {
  switch (state_) {
    case GroupState::kFailed:
      co_return failed_status_;
    case GroupState::kActive: {
      ++barriers_run_;
      const BarrierStatus st = co_await nic_bm_->run();
      if (st != BarrierStatus::kOk) {
        state_ = GroupState::kFailed;
        failed_status_ = st;
      }
      co_return st;
    }
    case GroupState::kDegraded: {
      ++barriers_run_;
      ++degraded_barriers_;
      const BarrierStatus st = co_await host_bm_->run();
      if (st != BarrierStatus::kOk) {
        state_ = GroupState::kFailed;
        failed_status_ = st;
        co_return st;
      }
      if (config_.promote_every > 0 && ++degraded_since_promote_ >= config_.promote_every) {
        // Every member runs the same collective sequence, so the attempt
        // fires on the same barrier index everywhere — the handshake needs
        // no extra synchronisation. This barrier still ran degraded.
        degraded_since_promote_ = 0;
        const BarrierStatus pst = co_await attempt_promotion();
        if (pst != BarrierStatus::kOk) {
          state_ = GroupState::kFailed;
          failed_status_ = pst;
          co_return pst;
        }
      }
      co_return BarrierStatus::kOkDegraded;
    }
    default:
      throw std::logic_error("barrier on a group that is not created");
  }
}

sim::ValueTask<BarrierStatus> GroupMember::run_destroy() {
  if (state_ == GroupState::kFreed) co_return BarrierStatus::kOk;  // idempotent
  if (state_ == GroupState::kNew) {
    state_ = GroupState::kFreed;
    co_return BarrierStatus::kOk;
  }
  if (state_ == GroupState::kFailed) {
    // Peers may be dead or already gone — no handshake can complete. Local
    // cleanup only; the fence handles whatever is still in flight.
    release_local_slot();
    state_ = GroupState::kFreed;
    co_return BarrierStatus::kOk;
  }
  if (state_ == GroupState::kDraining) throw std::logic_error("destroy already in progress");

  state_ = GroupState::kDraining;
  co_await ensure_provisioned();
  // Drain-by-construction: a member only reaches this ack after its last
  // barrier() returned, and barrier completion implies every within-group
  // message addressed to it was consumed. Once the coordinator holds all
  // acks, no in-flight round remains anywhere.
  BarrierStatus st = BarrierStatus::kOk;
  if (my_index_ == 0) {
    const CtrlWait acks = co_await collect_ctrl(kDestroyAck, members_.size() - 1);
    st = acks.status;
    if (st == BarrierStatus::kOk) {
      for (std::size_t i = 1; i < members_.size(); ++i) {
        co_await send_ctrl(members_[i], kDestroyCommit, true);
      }
    }
  } else {
    co_await send_ctrl(members_[0], kDestroyAck, true);
    const CtrlWait commit = co_await collect_ctrl(kDestroyCommit, 1);
    st = commit.status;
  }
  // The slot is released whatever happened: resources must not leak just
  // because a peer died mid-destroy. Late packets are fenced from here on.
  release_local_slot();
  state_ = GroupState::kFreed;
  if (st != BarrierStatus::kOk) failed_status_ = st;
  co_return st;
}

}  // namespace nicbar::coll
