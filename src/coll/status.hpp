// The one collective-outcome vocabulary, shared by every layer.
//
// Historically BarrierStatus lived in coll/barrier.hpp and its semantics
// were re-described at each consumer (mpi:: surfaced it through failed(),
// wl:: reports counted it, and the rma:: one-sided layer needs the same
// kPeerDead/kDeadline error paths for rput give-up). This header is the
// single definition; coll/barrier.hpp aliases `BarrierStatus = Status` for
// backward compatibility, so existing call sites compile unchanged.
//
// Header-only on purpose: rma:: links below coll:: (gm:: only) and must be
// able to name these statuses without a library edge.
#pragma once

#include <cstdint>

namespace nicbar::coll {

/// How one collective (or one-sided operation) ended. Any failure status
/// means the operation did NOT complete and the group must be considered
/// broken: a member that aborted may still hold stale unexpected-record
/// bits at its peers, so reusing the group without tearing it down is
/// undefined (see DESIGN.md, "Failure semantics"). kOkDegraded is a
/// *success*: the collective completed, but over the host-driven fallback
/// path because NIC slot admission was rejected (see coll::GroupMember) —
/// callers that only care whether the rendezvous happened should test
/// is_success(), not == kOk.
enum class Status : std::uint8_t {
  kOk = 0,
  kPeerDead,    // a group member's connection was declared dead (give-up)
  kDeadline,    // the configured deadline expired before completion
  kOkDegraded,  // completed, but host-driven: NIC slots were exhausted
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kPeerDead:
      return "peer-dead";
    case Status::kDeadline:
      return "deadline";
    case Status::kOkDegraded:
      return "ok-degraded";
  }
  return "?";
}

/// True for the statuses that mean the rendezvous actually happened.
[[nodiscard]] constexpr bool is_success(Status s) {
  return s == Status::kOk || s == Status::kOkDegraded;
}

}  // namespace nicbar::coll
