#include "coll/schedule.hpp"

#include <cassert>
#include <stdexcept>

namespace nicbar::coll {

namespace {

std::size_t floor_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

std::vector<Endpoint> pe_schedule(const std::vector<Endpoint>& group, std::size_t me) {
  const std::size_t n = group.size();
  if (n == 0) throw std::invalid_argument("empty barrier group");
  if (me >= n) throw std::invalid_argument("member index out of range");
  std::vector<Endpoint> peers;
  if (n == 1) return peers;

  const std::size_t p2 = floor_pow2(n);
  const std::size_t extras = n - p2;

  if (me >= p2) {
    // Extra member: enter through the partner, get released by it.
    const std::size_t partner = me - p2;
    peers.push_back(group[partner]);
    peers.push_back(group[partner]);
    return peers;
  }

  const bool has_extra = me < extras;
  if (has_extra) peers.push_back(group[me + p2]);  // absorb the extra's entry
  for (std::size_t bit = 1; bit < p2; bit <<= 1) {
    peers.push_back(group[me ^ bit]);
  }
  if (has_extra) peers.push_back(group[me + p2]);  // release the extra
  return peers;
}

std::size_t pe_round_count(std::size_t n, std::size_t me) {
  if (n <= 1) return 0;
  const std::size_t p2 = floor_pow2(n);
  const std::size_t extras = n - p2;
  std::size_t rounds = 0;
  for (std::size_t bit = 1; bit < p2; bit <<= 1) ++rounds;
  if (me >= p2) return 2;
  return rounds + (me < extras ? 2 : 0);
}

GbTreeSlice gb_tree(const std::vector<Endpoint>& group, std::size_t me,
                    std::size_t dimension) {
  const std::size_t n = group.size();
  if (n == 0) throw std::invalid_argument("empty barrier group");
  if (me >= n) throw std::invalid_argument("member index out of range");
  if (dimension < 1) throw std::invalid_argument("tree dimension must be >= 1");

  GbTreeSlice slice;
  if (me > 0) slice.parent = group[(me - 1) / dimension];
  for (std::size_t c = me * dimension + 1; c <= me * dimension + dimension && c < n; ++c) {
    slice.children.push_back(group[c]);
  }
  return slice;
}

std::size_t gb_tree_depth(std::size_t n, std::size_t dimension) {
  if (n <= 1) return 0;
  assert(dimension >= 1);
  // Depth of the deepest member (heap layout): follow parents from n-1.
  std::size_t depth = 0;
  std::size_t i = n - 1;
  while (i > 0) {
    i = (i - 1) / dimension;
    ++depth;
  }
  return depth;
}

}  // namespace nicbar::coll
