// Allreduce over GM — host-based and NIC-based (the §8 extension).
//
// Both variants use a k-ary GB tree: partial values combine going up, the
// root's result is broadcast down. The host-based variant drives every hop
// through ordinary GM messages (the value rides in the message tag); the
// NIC-based variant posts one reduce token and the firmware does the rest.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "coll/barrier.hpp"
#include "coll/schedule.hpp"
#include "gm/port.hpp"
#include "sim/task.hpp"

namespace nicbar::coll {

class ReduceMember {
 public:
  ReduceMember(gm::Port& port, std::vector<Endpoint> group, Location location,
               nic::ReduceOp op, std::size_t dimension = 2);

  /// Runs one allreduce; every member gets the combined value.
  [[nodiscard]] sim::ValueTask<std::int64_t> allreduce(std::int64_t contribution);

  [[nodiscard]] const GbTreeSlice& tree() const { return gb_; }
  [[nodiscard]] std::size_t my_index() const { return my_index_; }

  /// Event-sharing hooks for a higher layer (see BarrierMember::set_event_sink).
  void set_event_sink(std::function<void(const nic::GmEvent&)> sink) {
    sink_ = std::move(sink);
  }
  void note_result(std::int64_t v) { pending_results_.push_back(v); }

 private:
  sim::ValueTask<std::int64_t> allreduce_host(std::int64_t contribution);
  sim::ValueTask<std::int64_t> allreduce_nic(std::int64_t contribution);
  sim::ValueTask<std::int64_t> wait_value_from(Endpoint peer, std::uint64_t tag);
  sim::Task ensure_provisioned();

  gm::Port& port_;
  std::vector<Endpoint> group_;
  Location location_;
  nic::ReduceOp op_;
  std::size_t my_index_ = 0;
  GbTreeSlice gb_;

  std::map<std::pair<Endpoint, std::uint64_t>, std::vector<std::int64_t>> pending_values_;
  std::vector<std::int64_t> pending_results_;
  bool provisioned_ = false;
  std::int64_t msg_bytes_ = 16;
  std::function<void(const nic::GmEvent&)> sink_;
};

}  // namespace nicbar::coll
