// Barrier communication schedules, computed on the host (paper §5.1 argues
// the host should compute these — it is much faster than the NIC processor
// and only the local node's slice needs shipping to the NIC).
//
//   pe_schedule  — pairwise-exchange peer list (MPICH-style recursive
//                  pairing), extended to non-power-of-two group sizes.
//   gb_tree      — k-ary ("dimension k") gather/broadcast tree slice:
//                  this member's parent and children.
#pragma once

#include <cstddef>
#include <vector>

#include "nic/tokens.hpp"

namespace nicbar::coll {

using nic::Endpoint;

/// Pairwise-exchange schedule for member `me` of `group` (paper §5.1).
///
/// Power-of-two sizes: log2(N) rounds, partner in round r is index me^(1<<r).
/// Non-power-of-two extension: let p2 be the largest power of two <= N. The
/// tail members ("extras", indices >= p2) each fold into a partner in the
/// low part: an extra exchanges twice with its partner (enter + release); the
/// partner exchanges with its extra before and after the power-of-two rounds.
/// This preserves the invariant that a member's exchange with peer k only
/// completes after all members have entered the barrier.
[[nodiscard]] std::vector<Endpoint> pe_schedule(const std::vector<Endpoint>& group,
                                                std::size_t me);

/// This member's slice of a `dimension`-ary gather/broadcast tree laid out
/// heap-style over `group` (member 0 is the root).
struct GbTreeSlice {
  Endpoint parent;  // node == net::kInvalidNode at the root
  std::vector<Endpoint> children;
  [[nodiscard]] bool is_root() const { return parent.node == net::kInvalidNode; }
};

[[nodiscard]] GbTreeSlice gb_tree(const std::vector<Endpoint>& group, std::size_t me,
                                  std::size_t dimension);

/// Number of PE rounds for a group of size n (log2 ceiling + extra folds).
[[nodiscard]] std::size_t pe_round_count(std::size_t n, std::size_t me);

/// Depth of the k-ary GB tree over n members.
[[nodiscard]] std::size_t gb_tree_depth(std::size_t n, std::size_t dimension);

}  // namespace nicbar::coll
