#include "coll/reduce.hpp"

#include <stdexcept>
#include <utility>

namespace nicbar::coll {

using nic::GmEvent;
using nic::GmEventType;

ReduceMember::ReduceMember(gm::Port& port, std::vector<Endpoint> group, Location location,
                           nic::ReduceOp op, std::size_t dimension)
    : port_(port), group_(std::move(group)), location_(location), op_(op) {
  bool found = false;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == port_.endpoint()) {
      my_index_ = i;
      found = true;
      break;
    }
  }
  if (!found) throw std::invalid_argument("port's endpoint is not in the reduce group");
  gb_ = gb_tree(group_, my_index_, dimension);
}

sim::ValueTask<std::int64_t> ReduceMember::allreduce(std::int64_t contribution) {
  if (location_ == Location::kHost) return allreduce_host(contribution);
  return allreduce_nic(contribution);
}

// --- NIC-based ---------------------------------------------------------------------

sim::ValueTask<std::int64_t> ReduceMember::allreduce_nic(std::int64_t contribution) {
  nic::ReduceToken token;
  token.parent = gb_.parent;
  token.children = gb_.children;
  token.op = op_;
  token.contribution = contribution;
  co_await port_.provide_barrier_buffer();
  (void)co_await port_.reduce_send(std::move(token));

  if (!pending_results_.empty()) {
    const std::int64_t r = pending_results_.front();
    pending_results_.erase(pending_results_.begin());
    co_return r;
  }
  for (;;) {
    const GmEvent ev = co_await port_.receive();
    switch (ev.type) {
      case GmEventType::kReduceComplete:
        co_return ev.value;
      case GmEventType::kRecv:
        if (sink_) {
          sink_(ev);
          break;
        }
        co_await port_.provide_receive_buffer(msg_bytes_);
        break;
      default:
        if (sink_) sink_(ev);
        break;
    }
  }
}

// --- Host-based ---------------------------------------------------------------------

sim::Task ReduceMember::ensure_provisioned() {
  if (provisioned_) co_return;
  provisioned_ = true;
  const std::size_t expected = gb_.children.size() + (gb_.is_root() ? 0 : 1);
  for (std::size_t i = 0; i < 2 * expected + 2; ++i) {
    co_await port_.provide_receive_buffer(msg_bytes_);
  }
}

sim::ValueTask<std::int64_t> ReduceMember::wait_value_from(Endpoint peer, std::uint64_t tag) {
  const auto key = std::make_pair(peer, tag);
  auto it = pending_values_.find(key);
  if (it != pending_values_.end() && !it->second.empty()) {
    const std::int64_t v = it->second.front();
    it->second.erase(it->second.begin());
    if (it->second.empty()) pending_values_.erase(it);
    co_return v;
  }
  for (;;) {
    const GmEvent ev = co_await port_.receive();
    switch (ev.type) {
      case GmEventType::kRecv: {
        if (ev.tag != nic::kReduceUpMsgTag && ev.tag != nic::kReduceDownMsgTag) {
          if (sink_) {
            sink_(ev);
          } else {
            co_await port_.provide_receive_buffer(msg_bytes_);
          }
          break;
        }
        co_await port_.provide_receive_buffer(msg_bytes_);
        if (ev.peer == peer && ev.tag == tag) co_return ev.value;
        pending_values_[{ev.peer, ev.tag}].push_back(ev.value);
        break;
      }
      case GmEventType::kReduceComplete:
        pending_results_.push_back(ev.value);
        break;
      default:
        if (sink_) sink_(ev);
        break;
    }
  }
}

sim::ValueTask<std::int64_t> ReduceMember::allreduce_host(std::int64_t contribution) {
  co_await ensure_provisioned();
  std::int64_t acc = contribution;
  // Combine child partials (the value rides in the message's value field).
  for (const Endpoint& child : gb_.children) {
    const std::int64_t v = co_await wait_value_from(child, nic::kReduceUpMsgTag);
    acc = nic::apply_reduce_op(op_, acc, v);
  }
  std::int64_t result = acc;
  if (!gb_.is_root()) {
    co_await port_.send(gb_.parent, msg_bytes_, nic::kReduceUpMsgTag, acc);
    result = co_await wait_value_from(gb_.parent, nic::kReduceDownMsgTag);
  }
  for (const Endpoint& child : gb_.children) {
    co_await port_.send(child, msg_bytes_, nic::kReduceDownMsgTag, result);
  }
  co_return result;
}

}  // namespace nicbar::coll
