// The unified experiment API: declarative sweeps over independent runs.
//
// Every figure bench, the GB-dimension search, the topology/scalability
// sweeps, and the CLI driver used to hand-roll the same serial loop around
// run_barrier_experiment, each with its own env-var sniffing for metrics
// output. SweepPlan replaces those loops with one entry point:
//
//   SweepPlan plan;
//   plan.add("nic-pe-n16", experiment(nic::lanai43(), 16)
//                              .with_spec(spec(Location::kNic, ...)));
//   plan.add_gb_sweep("nic-gb-n16", ...);    // dims 1..N-1, keep the minimum
//   SweepResult r = plan.run({.workers = 8});
//
// run() expands the plan into independent (config, dimension) runs, shards
// them across a sim::exec worker pool — one private Simulator/Cluster per
// run, so every run is exactly the deterministic simulation it would be
// serially — and reduces per case. Results are bit-identical for any worker
// count; only wall-clock changes. Instrumentation is an explicit option
// (SweepOptions::instrument + a mutex-guarded MetricsSink), not an env var:
// library code never reads the environment.
#pragma once

#include <cstddef>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "coll/runner.hpp"

namespace nicbar::sim::telemetry {
class Telemetry;
}  // namespace nicbar::sim::telemetry

namespace nicbar::coll {

/// Thread-safe metrics sink: a stream of concatenated JSON documents. Each
/// write_line() appends one complete document (plus a trailing newline)
/// under a mutex, so concurrent writers (parallel instrumented runs, or
/// several plans sharing one sink) can never interleave partial documents.
class MetricsSink {
 public:
  /// Opens `path` for appending (the historical bench behaviour: successive
  /// runs accumulate documents).
  explicit MetricsSink(const std::string& path);

  /// False if the file could not be opened; write_line() is then a no-op.
  [[nodiscard]] bool ok() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends one document plus a newline, atomically w.r.t. other writers.
  void write_line(const std::string& line);

 private:
  std::mutex mu_;
  std::ofstream out_;
  std::string path_;
};

/// A user-supplied experiment body for cases the ExperimentParams vocabulary
/// cannot express (multi-job workloads, mixed-collective runs, ...). Called
/// once per run on a worker thread; must build its own private
/// Simulator/Cluster so runs stay independent. When the plan is instrumented
/// `telemetry` points at a per-run bundle whose counters the engine
/// serialises after the call; otherwise it is null. The body must be
/// deterministic and self-contained — it is the bit-reproducibility contract
/// of run(), extended to arbitrary experiments.
using CustomExperiment = std::function<ExperimentResult(sim::telemetry::Telemetry* telemetry)>;

/// One experiment in a plan. `sweep_gb_dimension` applies the paper's §6
/// methodology: run every GB tree dimension from 1 to N-1 and keep the
/// minimum (requires the GB algorithm). When `custom` is set, `params` is
/// ignored and the body runs instead (custom cases cannot be GB-swept).
struct SweepCase {
  std::string label;
  ExperimentParams params;
  bool sweep_gb_dimension = false;
  CustomExperiment custom;
};

struct SweepOptions {
  /// Worker threads to shard runs across: 1 = serial (the reference
  /// timeline), 0 = one per hardware thread.
  unsigned workers = 1;
  /// Attach a telemetry registry to each case's final configuration and
  /// append its counters to `sink` as one JSON line per case, in plan order
  /// regardless of worker count. Telemetry never perturbs the simulated
  /// timeline, so instrumented results stay bit-identical.
  bool instrument = false;
  MetricsSink* sink = nullptr;  // required when instrument is true
};

struct CaseResult {
  std::string label;
  ExperimentResult result;
  /// The GB dimension actually run: the winner for swept cases, the
  /// requested spec.gb_dimension otherwise (0 for non-GB algorithms).
  std::size_t gb_dimension = 0;
};

struct SweepResult {
  std::vector<CaseResult> cases;  // plan order
  double wall_ms = 0.0;           // real (not simulated) time of run()

  /// Mean latency of the case with `label`; throws std::out_of_range if no
  /// such case exists.
  [[nodiscard]] double mean_us(const std::string& label) const;
  [[nodiscard]] const CaseResult& find(const std::string& label) const;
};

class SweepPlan {
 public:
  /// Adds a plain single-run case. Returns it for further tweaking.
  SweepCase& add(std::string label, ExperimentParams params);

  /// Adds a GB best-dimension case (dims 1..N-1, minimum kept).
  SweepCase& add_gb_sweep(std::string label, ExperimentParams params);

  /// Adds a case whose body is arbitrary user code (see CustomExperiment).
  /// Shares the scheduling, instrumentation, and reduction machinery with
  /// declarative cases, so benches with bespoke experiments still get
  /// parallel sharding and deterministic metrics emission for free.
  SweepCase& add_custom(std::string label, CustomExperiment body);

  [[nodiscard]] std::size_t size() const { return cases_.size(); }
  [[nodiscard]] bool empty() const { return cases_.empty(); }
  [[nodiscard]] const std::vector<SweepCase>& cases() const { return cases_; }

  /// Executes every case, sharding the expanded runs across
  /// opts.workers threads. Throws std::invalid_argument for a malformed plan
  /// (GB sweep on a non-GB spec, instrument without a sink).
  [[nodiscard]] SweepResult run(const SweepOptions& opts = {}) const;

 private:
  std::vector<SweepCase> cases_;
};

// --- Declarative builders ----------------------------------------------------
// Replacements for the old bench/common.hpp base_params/make_spec helpers,
// available to every client of the library (benches, tools, tests).

[[nodiscard]] ExperimentParams experiment(const nic::NicConfig& nic_cfg, std::size_t nodes,
                                          int reps = 500);
[[nodiscard]] BarrierSpec spec(Location loc, nic::BarrierAlgorithm alg, std::size_t dim = 2);

/// Spec for the host-RDMA family (`alg` must not be kNone); `radix` is the
/// tree radix for kTreePut, ignored for kDissemination.
[[nodiscard]] BarrierSpec rdma_spec(RdmaAlgorithm alg, std::size_t radix = 2);

/// Spec for the hierarchical NIC family. `intra_dim` shapes the intra-block
/// GB trees; `block` = 0 lets the runner derive the block size from the
/// cluster's fabric (hosts per leaf switch).
[[nodiscard]] BarrierSpec hier_spec(std::size_t intra_dim = 2, std::size_t block = 0);

/// Canonical case label: "<nic|host>-<pe|gb>-n<N>-<model>" — the naming the
/// metrics JSON has always used — "rdma-<dissem|tree>-n<N>-<model>" for the
/// host-RDMA family, or "nic-hier-n<N>-<model>" for the hierarchical family.
[[nodiscard]] std::string variant_label(const ExperimentParams& p);

}  // namespace nicbar::coll
