#include "coll/sweep.hpp"

#include <chrono>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sim/exec.hpp"
#include "sim/telemetry.hpp"

namespace nicbar::coll {

namespace {

/// One expanded unit of work: a case at a concrete GB dimension (or the
/// case's own spec for non-swept cases).
struct Run {
  std::size_t case_idx;
  std::size_t dim;         // 0 = keep the case's spec untouched
  bool instrumented;       // attach telemetry and serialise its counters
};

struct RunOutput {
  ExperimentResult result;
  std::string metrics_json;  // empty unless instrumented
};

std::string serialise_metrics(const std::string& label,
                              const sim::telemetry::Telemetry& telemetry) {
  std::ostringstream os;
  os << "{\"bench\": \"" << sim::telemetry::json_escape(label) << "\", \"metrics\": ";
  telemetry.metrics().write_json(os);
  os << "}";
  return os.str();
}

RunOutput execute(const SweepCase& c, std::size_t dim, bool instrumented) {
  RunOutput out;
  if (!instrumented) {
    if (c.custom) {
      out.result = c.custom(nullptr);
    } else {
      ExperimentParams p = c.params;
      if (dim != 0) p.spec.gb_dimension = dim;
      out.result = run_barrier_experiment(p);
    }
    return out;
  }
  // Telemetry hooks are untaken branches on the simulated timeline, so an
  // instrumented run reports exactly the numbers an uninstrumented one would.
  sim::telemetry::Telemetry telemetry;
  telemetry.enable_breakdown();
  if (c.custom) {
    out.result = c.custom(&telemetry);
  } else {
    ExperimentParams p = c.params;
    if (dim != 0) p.spec.gb_dimension = dim;
    p.cluster.telemetry = &telemetry;
    out.result = run_barrier_experiment(p);
  }
  out.metrics_json = serialise_metrics(c.label, telemetry);
  return out;
}

std::size_t gb_max_dim(const ExperimentParams& p) {
  return p.nodes > 1 ? p.nodes - 1 : 1;
}

}  // namespace

// --- MetricsSink --------------------------------------------------------------

MetricsSink::MetricsSink(const std::string& path)
    : out_(path, std::ios::app), path_(path) {}

void MetricsSink::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_ << line << '\n' << std::flush;
}

// --- SweepResult --------------------------------------------------------------

const CaseResult& SweepResult::find(const std::string& label) const {
  for (const CaseResult& c : cases) {
    if (c.label == label) return c;
  }
  throw std::out_of_range("no sweep case labelled '" + label + "'");
}

double SweepResult::mean_us(const std::string& label) const {
  return find(label).result.mean_us;
}

// --- SweepPlan ----------------------------------------------------------------

SweepCase& SweepPlan::add(std::string label, ExperimentParams params) {
  cases_.push_back(SweepCase{std::move(label), std::move(params), false, {}});
  return cases_.back();
}

SweepCase& SweepPlan::add_gb_sweep(std::string label, ExperimentParams params) {
  cases_.push_back(SweepCase{std::move(label), std::move(params), true, {}});
  return cases_.back();
}

SweepCase& SweepPlan::add_custom(std::string label, CustomExperiment body) {
  if (!body) throw std::invalid_argument("add_custom requires a callable body");
  SweepCase c;
  c.label = std::move(label);
  c.custom = std::move(body);
  cases_.push_back(std::move(c));
  return cases_.back();
}

SweepResult SweepPlan::run(const SweepOptions& opts) const {
  if (opts.instrument && opts.sink == nullptr) {
    throw std::invalid_argument("SweepOptions::instrument requires a MetricsSink");
  }
  for (const SweepCase& c : cases_) {
    if (c.sweep_gb_dimension && c.custom) {
      throw std::invalid_argument("a custom case cannot be GB-swept ('" + c.label + "')");
    }
    if (c.sweep_gb_dimension &&
        c.params.spec.algorithm != nic::BarrierAlgorithm::kGatherBroadcast) {
      throw std::invalid_argument("GB dimension sweep requires the GB algorithm ('" +
                                  c.label + "')");
    }
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Expand cases into independent runs. A swept case measures every
  // dimension uninstrumented (the winner is re-run instrumented afterwards,
  // once it is known); a plain case is measured — and, when requested,
  // instrumented — in a single run.
  std::vector<Run> runs;
  for (std::size_t i = 0; i < cases_.size(); ++i) {
    const SweepCase& c = cases_[i];
    if (c.sweep_gb_dimension) {
      for (std::size_t dim = 1; dim <= gb_max_dim(c.params); ++dim) {
        runs.push_back(Run{i, dim, false});
      }
    } else {
      runs.push_back(Run{i, 0, opts.instrument});
    }
  }

  // Shard: every run owns a private Simulator/Cluster and writes only its
  // own output slot, so results are bit-identical for any worker count.
  std::vector<RunOutput> outputs(runs.size());
  sim::exec::parallel_for(runs.size(), opts.workers, [&](std::size_t r) {
    outputs[r] = execute(cases_[runs[r].case_idx], runs[r].dim, runs[r].instrumented);
  });

  // Reduce in plan order: for swept cases keep the minimum-latency dimension
  // (first wins ties, matching the paper's 1..N-1 scan).
  SweepResult res;
  res.cases.resize(cases_.size());
  std::vector<std::string> metrics_lines(cases_.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const Run& run = runs[r];
    CaseResult& cr = res.cases[run.case_idx];
    const SweepCase& c = cases_[run.case_idx];
    cr.label = c.label;
    if (!c.sweep_gb_dimension) {
      cr.result = outputs[r].result;
      cr.gb_dimension = c.params.spec.algorithm == nic::BarrierAlgorithm::kGatherBroadcast
                            ? c.params.spec.gb_dimension
                            : 0;
      metrics_lines[run.case_idx] = std::move(outputs[r].metrics_json);
    } else if (cr.gb_dimension == 0 || outputs[r].result.mean_us < cr.result.mean_us) {
      cr.result = outputs[r].result;
      cr.gb_dimension = run.dim;  // runs are expanded in ascending dim order
    }
  }

  // Instrument the winners of swept cases now that they are known — an
  // explicit re-run, where the old bench helper re-ran the winner only when
  // an env var happened to be set.
  if (opts.instrument) {
    std::vector<std::size_t> swept;
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      if (cases_[i].sweep_gb_dimension) swept.push_back(i);
    }
    sim::exec::parallel_for(swept.size(), opts.workers, [&](std::size_t s) {
      const std::size_t i = swept[s];
      metrics_lines[i] = execute(cases_[i], res.cases[i].gb_dimension, true).metrics_json;
    });
    // Plan-order emission: the sink's lock makes each line atomic, the
    // ordered loop makes the whole file deterministic for any worker count.
    for (const std::string& line : metrics_lines) {
      if (!line.empty()) opts.sink->write_line(line);
    }
  }

  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0).count();
  return res;
}

// --- Declarative builders -----------------------------------------------------

ExperimentParams experiment(const nic::NicConfig& nic_cfg, std::size_t nodes, int reps) {
  ExperimentParams p;
  p.nodes = nodes;
  p.reps = reps;
  p.cluster.nic = nic_cfg;
  return p;
}

BarrierSpec spec(Location loc, nic::BarrierAlgorithm alg, std::size_t dim) {
  BarrierSpec s;
  s.location = loc;
  s.algorithm = alg;
  s.gb_dimension = dim;
  return s;
}

BarrierSpec rdma_spec(RdmaAlgorithm alg, std::size_t radix) {
  BarrierSpec s;
  s.rdma = alg;
  s.gb_dimension = radix;
  return s;
}

BarrierSpec hier_spec(std::size_t intra_dim, std::size_t block) {
  BarrierSpec s;
  s.location = Location::kNic;
  s.hierarchical = true;
  s.gb_dimension = intra_dim;
  s.hier_block = block;
  return s;
}

std::string variant_label(const ExperimentParams& p) {
  if (p.spec.rdma != RdmaAlgorithm::kNone) {
    return std::string("rdma-") +
           (p.spec.rdma == RdmaAlgorithm::kDissemination ? "dissem" : "tree") + "-n" +
           std::to_string(p.nodes) + "-" + p.cluster.nic.model;
  }
  if (p.spec.hierarchical) {
    return "nic-hier-n" + std::to_string(p.nodes) + "-" + p.cluster.nic.model;
  }
  return std::string(p.spec.location == Location::kNic ? "nic" : "host") + "-" +
         (p.spec.algorithm == nic::BarrierAlgorithm::kPairwiseExchange ? "pe" : "gb") + "-n" +
         std::to_string(p.nodes) + "-" + p.cluster.nic.model;
}

}  // namespace nicbar::coll
