// Barrier implementations over GM: the four variants the paper evaluates.
//
//   Location::kHost  +  PE/GB — classic host-based software barriers built
//                               from ordinary GM send/receive.
//   Location::kNic   +  PE/GB — the paper's contribution: the host computes
//                               its schedule slice, posts one barrier token,
//                               and polls for GM_BARRIER_COMPLETED_EVENT
//                               while the NIC firmware runs the algorithm.
//
// A BarrierMember is one participant's per-process state. It owns the
// buffered-event bookkeeping a host-based barrier needs (messages from
// future rounds or the next barrier can arrive early and must be stashed,
// mirroring the unexpected-message discussion of §3.1 at host level).
#pragma once

#include <functional>
#include <cstdint>
#include <map>
#include <vector>

#include <memory>

#include "coll/schedule.hpp"
#include "coll/status.hpp"
#include "gm/port.hpp"
#include "rma/barrier.hpp"
#include "rma/domain.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::coll {

enum class Location : std::uint8_t { kHost, kNic };

/// The third algorithm family: host-driven barriers over the rma:: one-sided
/// layer (rput + flag words; see src/rma/barrier.hpp). kNone selects the
/// classic location/algorithm pair below; any other value overrides it.
enum class RdmaAlgorithm : std::uint8_t { kNone = 0, kDissemination, kTreePut };

[[nodiscard]] constexpr const char* to_string(RdmaAlgorithm a) {
  switch (a) {
    case RdmaAlgorithm::kNone:
      return "none";
    case RdmaAlgorithm::kDissemination:
      return "host-dissem";
    case RdmaAlgorithm::kTreePut:
      return "host-tree";
  }
  return "?";
}

/// The status vocabulary lives in coll/status.hpp (shared with mpi::, wl::
/// and the rma:: one-sided layer); BarrierStatus is the historical name.
using BarrierStatus = Status;

struct BarrierSpec {
  Location location = Location::kNic;
  nic::BarrierAlgorithm algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  /// GB only: tree dimension (fanout). The paper sweeps 1..N-1 and reports
  /// the best.
  std::size_t gb_dimension = 2;
  /// Abort with BarrierStatus::kDeadline if one run() has not completed
  /// within this much simulated time of starting. Zero = wait forever. This
  /// is the backstop for members with no direct connection to a dead peer
  /// (kPeerDead only reaches nodes whose own reliability gave up).
  sim::Duration deadline{0};
  /// Managed barrier-group id stamped on every NIC barrier packet (0 = the
  /// legacy anonymous group). Set by coll::GroupMember, which owns the
  /// matching NIC slot bindings; see nic::SlotTable.
  std::uint64_t group = 0;
  /// When not kNone, the barrier runs on the host-RDMA family instead of
  /// `location`/`algorithm` (which are then ignored). kTreePut reuses
  /// `gb_dimension` as the tree radix. Incompatible with managed groups
  /// (`group` must stay 0) and with run_fuzzy().
  RdmaAlgorithm rdma = RdmaAlgorithm::kNone;
  /// The hierarchical NIC family for multi-switch fabrics: members are cut
  /// into blocks of `hier_block` consecutive indices (one block per leaf
  /// switch under the in-order placement the runners use). Each barrier is
  /// (A) an intra-block gather up the block tree, (B) pairwise exchange
  /// among the block representatives (member 0 of each block), (C) a
  /// multidestination release sent by the representative straight to every
  /// block mate (SEND-side replication — one packet hop, no tree descent).
  /// Phases A/C stay leaf-local — one switch hop, no fabric contention — so
  /// only the R = N/hier_block representatives cross the core; and every
  /// phase transition happens *inside the NIC firmware* (one kHierarchical
  /// token per member, no host hand-offs between phases). Requires
  /// Location::kNic and rdma == kNone; `algorithm` is ignored;
  /// `gb_dimension` shapes the intra-block trees. Degenerate shapes
  /// collapse cleanly: one block -> a flat gather tree with a star release,
  /// one-member blocks -> flat PE among representatives.
  bool hierarchical = false;
  /// Members per block. 0 = one block spanning the whole group.
  std::size_t hier_block = 0;
};

class BarrierMember {
 public:
  /// `group` lists every participating endpoint; this member is the entry
  /// whose endpoint equals port.endpoint().
  BarrierMember(gm::Port& port, std::vector<Endpoint> group, BarrierSpec spec);

  /// Runs one barrier. Returns kOk on completion; kPeerDead/kDeadline mean
  /// the barrier was aborted cleanly (the NIC token is cancelled, the
  /// coroutine returns — it never hangs). Await sites that ignore the value
  /// keep working; error-aware callers check it.
  [[nodiscard]] sim::ValueTask<BarrierStatus> run();

  /// NIC-based only: initiates the barrier, then performs `chunk`-sized
  /// pieces of host computation while polling (the fuzzy barrier of §2.1).
  /// Returns the number of chunks completed before the barrier finished.
  [[nodiscard]] sim::ValueTask<std::uint64_t> run_fuzzy(sim::Duration chunk);

  [[nodiscard]] const std::vector<Endpoint>& pe_peers() const { return pe_peers_; }
  [[nodiscard]] const GbTreeSlice& gb_slice() const { return gb_; }
  [[nodiscard]] std::size_t my_index() const { return my_index_; }
  [[nodiscard]] const BarrierSpec& spec() const { return spec_; }

  /// Hierarchical family only: is this member its block's representative,
  /// and what are the resolved sub-schedules (for tests/introspection).
  [[nodiscard]] bool is_representative() const { return hier_is_rep_; }
  [[nodiscard]] const GbTreeSlice& hier_intra_slice() const { return hier_gb_; }
  [[nodiscard]] const std::vector<Endpoint>& hier_rep_peers() const { return hier_rep_peers_; }

  /// When a higher layer (e.g. mpi::Communicator) shares the port's event
  /// stream, it installs a sink here: events that are not this barrier's
  /// business (kRecv, kSent, foreign completions) are handed to the sink
  /// instead of being stashed, and buffer replenishment is left to the
  /// layer. Conversely the layer calls note_completion() when it drains a
  /// kBarrierComplete meant for us.
  void set_event_sink(std::function<void(const nic::GmEvent&)> sink) {
    sink_ = std::move(sink);
  }
  void note_completion() { ++pending_completions_; }

  /// Higher layer drained a host-barrier message (kBarrierMsgTag) from the
  /// shared stream that belongs to this member's next wait — e.g. a peer
  /// raced ahead into the first barrier while we were still finishing the
  /// group-create handshake (coll::GroupMember).
  void note_msg(Endpoint peer) { ++pending_msgs_[peer]; }

  /// Higher layer drained a kPeerDead for `node` from the shared stream.
  void note_peer_dead(net::NodeId node) {
    if (group_contains(node)) peer_dead_ = true;
  }

  /// True once any group member's connection has been declared dead; every
  /// subsequent run() returns kPeerDead immediately.
  [[nodiscard]] bool peer_failed() const { return peer_dead_; }

  /// Host-RDMA family only: the one-sided domain backing this member (null
  /// for the classic families). Exposed for stats (inflight, stale replies).
  [[nodiscard]] rma::Domain* rdma_domain() { return rdma_domain_.get(); }

 private:
  sim::ValueTask<std::uint64_t> run_fuzzy_impl(sim::Duration chunk);
  sim::ValueTask<BarrierStatus> run_host_pe();
  sim::ValueTask<BarrierStatus> run_host_gb();
  sim::ValueTask<BarrierStatus> run_hier();
  sim::ValueTask<gm::Epoch> start_nic_barrier();  // returns the epoch
  /// Posts this member's single kHierarchical token (representative:
  /// gather + exchange + multidestination release, all firmware-resident;
  /// everyone else: gather up the block tree, complete on the release).
  sim::ValueTask<gm::Epoch> start_hier();
  sim::ValueTask<BarrierStatus> wait_barrier_complete(gm::Epoch epoch);
  sim::ValueTask<BarrierStatus> wait_msg_from(Endpoint peer);
  /// Next port event, bounded by the current deadline (nullopt = expired).
  sim::ValueTask<std::optional<nic::GmEvent>> next_event();
  [[nodiscard]] bool group_contains(net::NodeId node) const;
  sim::Task ensure_provisioned();

  gm::Port& port_;
  std::vector<Endpoint> group_;
  BarrierSpec spec_;
  std::size_t my_index_ = 0;
  std::vector<Endpoint> pe_peers_;
  GbTreeSlice gb_;

  // Hierarchical family (empty/default unless spec.hierarchical).
  GbTreeSlice hier_gb_;                  // my slice of the intra-block tree
  std::vector<Endpoint> hier_rep_peers_; // rep only: PE schedule over reps
  /// Rep: all block mates (the multidestination release fan-out).
  /// Non-rep: one entry, the representative (the release source).
  std::vector<Endpoint> hier_release_;
  std::size_t hier_block_size_ = 0;      // my block's member count
  bool hier_is_rep_ = false;
  std::size_t hier_num_blocks_ = 1;
  /// Causal id and consumption time of the latest matched completion event
  /// (0 when unknown); feeds the representative hand-off span between phases.
  std::uint64_t last_completion_causal_ = 0;
  sim::SimTime last_completion_at_{};

  // Early-arrival bookkeeping (host-based path).
  std::map<Endpoint, int> pending_msgs_;
  int pending_completions_ = 0;
  bool provisioned_ = false;
  std::int64_t msg_bytes_ = 8;
  std::function<void(const nic::GmEvent&)> sink_;

  // Host-RDMA family state (null unless spec.rdma != kNone). The Domain
  // installs itself as the port's RmaSink, so at most one rdma-family member
  // may exist per port.
  std::unique_ptr<rma::Domain> rdma_domain_;
  std::unique_ptr<rma::HostBarrier> rdma_barrier_;

  // Failure bookkeeping.
  sim::SimTime deadline_at_ = sim::SimTime::max();
  bool peer_dead_ = false;
};

}  // namespace nicbar::coll
