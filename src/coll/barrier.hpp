// Barrier implementations over GM: the four variants the paper evaluates.
//
//   Location::kHost  +  PE/GB — classic host-based software barriers built
//                               from ordinary GM send/receive.
//   Location::kNic   +  PE/GB — the paper's contribution: the host computes
//                               its schedule slice, posts one barrier token,
//                               and polls for GM_BARRIER_COMPLETED_EVENT
//                               while the NIC firmware runs the algorithm.
//
// A BarrierMember is one participant's per-process state. It owns the
// buffered-event bookkeeping a host-based barrier needs (messages from
// future rounds or the next barrier can arrive early and must be stashed,
// mirroring the unexpected-message discussion of §3.1 at host level).
#pragma once

#include <functional>
#include <cstdint>
#include <map>
#include <vector>

#include "coll/schedule.hpp"
#include "gm/port.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::coll {

enum class Location : std::uint8_t { kHost, kNic };

/// How one barrier invocation ended. Any failure status means the barrier
/// did NOT complete and the group must be considered broken: a member that
/// aborted may still hold stale unexpected-record bits at its peers, so
/// reusing the group without tearing it down is undefined (see DESIGN.md,
/// "Failure semantics"). kOkDegraded is a *success*: the barrier completed,
/// but over the host-driven fallback path because NIC slot admission was
/// rejected (see coll::GroupMember) — callers that only care whether the
/// rendezvous happened should test is_success(), not == kOk.
enum class BarrierStatus : std::uint8_t {
  kOk = 0,
  kPeerDead,    // a group member's connection was declared dead (give-up)
  kDeadline,    // the configured deadline expired before completion
  kOkDegraded,  // completed, but host-driven: NIC slots were exhausted
};

[[nodiscard]] const char* to_string(BarrierStatus s);

/// True for the statuses that mean the rendezvous actually happened.
[[nodiscard]] constexpr bool is_success(BarrierStatus s) {
  return s == BarrierStatus::kOk || s == BarrierStatus::kOkDegraded;
}

struct BarrierSpec {
  Location location = Location::kNic;
  nic::BarrierAlgorithm algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  /// GB only: tree dimension (fanout). The paper sweeps 1..N-1 and reports
  /// the best.
  std::size_t gb_dimension = 2;
  /// Abort with BarrierStatus::kDeadline if one run() has not completed
  /// within this much simulated time of starting. Zero = wait forever. This
  /// is the backstop for members with no direct connection to a dead peer
  /// (kPeerDead only reaches nodes whose own reliability gave up).
  sim::Duration deadline{0};
  /// Managed barrier-group id stamped on every NIC barrier packet (0 = the
  /// legacy anonymous group). Set by coll::GroupMember, which owns the
  /// matching NIC slot bindings; see nic::SlotTable.
  std::uint64_t group = 0;
};

class BarrierMember {
 public:
  /// `group` lists every participating endpoint; this member is the entry
  /// whose endpoint equals port.endpoint().
  BarrierMember(gm::Port& port, std::vector<Endpoint> group, BarrierSpec spec);

  /// Runs one barrier. Returns kOk on completion; kPeerDead/kDeadline mean
  /// the barrier was aborted cleanly (the NIC token is cancelled, the
  /// coroutine returns — it never hangs). Await sites that ignore the value
  /// keep working; error-aware callers check it.
  [[nodiscard]] sim::ValueTask<BarrierStatus> run();

  /// NIC-based only: initiates the barrier, then performs `chunk`-sized
  /// pieces of host computation while polling (the fuzzy barrier of §2.1).
  /// Returns the number of chunks completed before the barrier finished.
  [[nodiscard]] sim::ValueTask<std::uint64_t> run_fuzzy(sim::Duration chunk);

  [[nodiscard]] const std::vector<Endpoint>& pe_peers() const { return pe_peers_; }
  [[nodiscard]] const GbTreeSlice& gb_slice() const { return gb_; }
  [[nodiscard]] std::size_t my_index() const { return my_index_; }
  [[nodiscard]] const BarrierSpec& spec() const { return spec_; }

  /// When a higher layer (e.g. mpi::Communicator) shares the port's event
  /// stream, it installs a sink here: events that are not this barrier's
  /// business (kRecv, kSent, foreign completions) are handed to the sink
  /// instead of being stashed, and buffer replenishment is left to the
  /// layer. Conversely the layer calls note_completion() when it drains a
  /// kBarrierComplete meant for us.
  void set_event_sink(std::function<void(const nic::GmEvent&)> sink) {
    sink_ = std::move(sink);
  }
  void note_completion() { ++pending_completions_; }

  /// Higher layer drained a host-barrier message (kBarrierMsgTag) from the
  /// shared stream that belongs to this member's next wait — e.g. a peer
  /// raced ahead into the first barrier while we were still finishing the
  /// group-create handshake (coll::GroupMember).
  void note_msg(Endpoint peer) { ++pending_msgs_[peer]; }

  /// Higher layer drained a kPeerDead for `node` from the shared stream.
  void note_peer_dead(net::NodeId node) {
    if (group_contains(node)) peer_dead_ = true;
  }

  /// True once any group member's connection has been declared dead; every
  /// subsequent run() returns kPeerDead immediately.
  [[nodiscard]] bool peer_failed() const { return peer_dead_; }

 private:
  sim::ValueTask<std::uint64_t> run_fuzzy_impl(sim::Duration chunk);
  sim::ValueTask<BarrierStatus> run_host_pe();
  sim::ValueTask<BarrierStatus> run_host_gb();
  sim::ValueTask<std::uint32_t> start_nic_barrier();  // returns the epoch
  sim::ValueTask<BarrierStatus> wait_barrier_complete(std::uint32_t epoch);
  sim::ValueTask<BarrierStatus> wait_msg_from(Endpoint peer);
  /// Next port event, bounded by the current deadline (nullopt = expired).
  sim::ValueTask<std::optional<nic::GmEvent>> next_event();
  [[nodiscard]] bool group_contains(net::NodeId node) const;
  sim::Task ensure_provisioned();

  gm::Port& port_;
  std::vector<Endpoint> group_;
  BarrierSpec spec_;
  std::size_t my_index_ = 0;
  std::vector<Endpoint> pe_peers_;
  GbTreeSlice gb_;

  // Early-arrival bookkeeping (host-based path).
  std::map<Endpoint, int> pending_msgs_;
  int pending_completions_ = 0;
  bool provisioned_ = false;
  std::int64_t msg_bytes_ = 8;
  std::function<void(const nic::GmEvent&)> sink_;

  // Failure bookkeeping.
  sim::SimTime deadline_at_ = sim::SimTime::max();
  bool peer_dead_ = false;
};

}  // namespace nicbar::coll
