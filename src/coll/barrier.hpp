// Barrier implementations over GM: the four variants the paper evaluates.
//
//   Location::kHost  +  PE/GB — classic host-based software barriers built
//                               from ordinary GM send/receive.
//   Location::kNic   +  PE/GB — the paper's contribution: the host computes
//                               its schedule slice, posts one barrier token,
//                               and polls for GM_BARRIER_COMPLETED_EVENT
//                               while the NIC firmware runs the algorithm.
//
// A BarrierMember is one participant's per-process state. It owns the
// buffered-event bookkeeping a host-based barrier needs (messages from
// future rounds or the next barrier can arrive early and must be stashed,
// mirroring the unexpected-message discussion of §3.1 at host level).
#pragma once

#include <functional>
#include <cstdint>
#include <map>
#include <vector>

#include "coll/schedule.hpp"
#include "gm/port.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nicbar::coll {

enum class Location : std::uint8_t { kHost, kNic };

struct BarrierSpec {
  Location location = Location::kNic;
  nic::BarrierAlgorithm algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  /// GB only: tree dimension (fanout). The paper sweeps 1..N-1 and reports
  /// the best.
  std::size_t gb_dimension = 2;
};

class BarrierMember {
 public:
  /// `group` lists every participating endpoint; this member is the entry
  /// whose endpoint equals port.endpoint().
  BarrierMember(gm::Port& port, std::vector<Endpoint> group, BarrierSpec spec);

  /// Runs one barrier to completion.
  [[nodiscard]] sim::Task run();

  /// NIC-based only: initiates the barrier, then performs `chunk`-sized
  /// pieces of host computation while polling (the fuzzy barrier of §2.1).
  /// Returns the number of chunks completed before the barrier finished.
  [[nodiscard]] sim::ValueTask<std::uint64_t> run_fuzzy(sim::Duration chunk);

  [[nodiscard]] const std::vector<Endpoint>& pe_peers() const { return pe_peers_; }
  [[nodiscard]] const GbTreeSlice& gb_slice() const { return gb_; }
  [[nodiscard]] std::size_t my_index() const { return my_index_; }
  [[nodiscard]] const BarrierSpec& spec() const { return spec_; }

  /// When a higher layer (e.g. mpi::Communicator) shares the port's event
  /// stream, it installs a sink here: events that are not this barrier's
  /// business (kRecv, kSent, foreign completions) are handed to the sink
  /// instead of being stashed, and buffer replenishment is left to the
  /// layer. Conversely the layer calls note_completion() when it drains a
  /// kBarrierComplete meant for us.
  void set_event_sink(std::function<void(const nic::GmEvent&)> sink) {
    sink_ = std::move(sink);
  }
  void note_completion() { ++pending_completions_; }

 private:
  sim::ValueTask<std::uint64_t> run_fuzzy_impl(sim::Duration chunk);
  sim::Task run_host_pe();
  sim::Task run_host_gb();
  sim::Task start_nic_barrier();
  sim::Task wait_barrier_complete();
  sim::Task wait_msg_from(Endpoint peer);
  sim::Task ensure_provisioned();

  gm::Port& port_;
  std::vector<Endpoint> group_;
  BarrierSpec spec_;
  std::size_t my_index_ = 0;
  std::vector<Endpoint> pe_peers_;
  GbTreeSlice gb_;

  // Early-arrival bookkeeping (host-based path).
  std::map<Endpoint, int> pending_msgs_;
  int pending_completions_ = 0;
  bool provisioned_ = false;
  std::int64_t msg_bytes_ = 8;
  std::function<void(const nic::GmEvent&)> sink_;
};

}  // namespace nicbar::coll
