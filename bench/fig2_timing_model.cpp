// Figure 2 / Equations 1-3: the analytic timing model vs the simulator.
//
// Prints the derived per-message phase breakdown (Send, SDMA, Network, Recv,
// RDMA, HRecv), then predicted (Eq. 1/2) vs simulated PE barrier latency for
// both NIC generations, and the predicted improvement (Eq. 3).
#include <cstdio>

#include "common.hpp"
#include "model/timing.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  for (const nic::NicConfig& cfg : {nic::lanai43(), nic::lanai72()}) {
    gm::GmConfig gmc;
    net::LinkParams link;
    net::SwitchParams sw;
    const model::PhaseTimes t = model::derive_phases(cfg, gmc, link, sw);

    bench::print_header("Figure 2 timing model: " + cfg.model);
    std::printf("phases (us): Send=%.2f SDMA=%.2f Network=%.2f Recv=%.2f Recv_nicPE=%.2f "
                "RDMA=%.2f HRecv=%.2f\n",
                t.send_us, t.sdma_us, t.network_us, t.recv_us, t.recv_nic_pe_us, t.rdma_us,
                t.hrecv_us);
    std::printf("one-way host message: %.2f us\n", t.host_message_us());

    // One sweep covers every simulated point; larger sizes are model-only.
    coll::SweepPlan plan;
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
      for (const Location loc : {Location::kHost, Location::kNic}) {
        coll::ExperimentParams p = coll::experiment(cfg, n, 200);
        p.spec = coll::spec(loc, BarrierAlgorithm::kPairwiseExchange);
        plan.add(coll::variant_label(p), p);
      }
    }
    const coll::SweepResult r = bench::run(plan);

    std::printf("%6s %14s %14s %14s %14s %8s\n", "nodes", "Eq1 host", "sim host",
                "Eq2 NIC", "sim NIC", "Eq3");
    std::size_t next = 0;
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
      const double eq1 = model::host_barrier_us(t, n);
      const double eq2 = model::nic_barrier_us(t, n);
      double sim_host = 0, sim_nic = 0;
      if (n <= 16) {
        sim_host = r.cases[next++].result.mean_us;
        sim_nic = r.cases[next++].result.mean_us;
      }
      std::printf("%6zu %14.2f %14.2f %14.2f %14.2f %8.2f\n", n, eq1, sim_host, eq2, sim_nic,
                  model::improvement_factor(t, n));
    }
  }
  std::printf("\nEq.3 predicts improvement grows with node count and NIC speed.\n");
  return 0;
}
