// PDES speedup: wall-clock of the partitioned engine vs the serial engine
// on the tentpole workload — sustained hierarchical barriers on the
// radix-18 / 8:1-oversubscribed fat-tree (the hier_barrier fabric), N = 256
// .. 4096.
//
// Two claims are measured, and both land in the JSON artifact
// (BENCH_pdes_speedup.json, schema "nicbar-pdes-v1"):
//
//   1. Correctness is free: every (partitions, workers) point reports the
//      same simulated total as the serial run, to the picosecond
//      (`bit_identical` per row; the tier-1 suite enforces the full
//      counter/causal version of this).
//   2. Wall-clock scales with workers — on hosts that have them. The
//      artifact records `hw_threads` so the checker can tell a genuine
//      speedup regime from a single-CPU container, where threads timeshare
//      one core and the honest result is speedup <= 1 with the
//      partition-count overhead still characterized (see EXPERIMENTS.md).
//
// Env knobs: NICBAR_PDES_MAX_NODES caps the grid (default 4096),
// NICBAR_PDES_REPS overrides the per-case repetition count (default 10),
// and NICBAR_BENCH_JSON_DIR applies as usual (common.hpp).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "coll/runner.hpp"

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

int main() {
  using namespace nicbar;
  constexpr std::size_t kRadix = 18;
  constexpr std::size_t kOversub = 8;
  constexpr std::size_t kHierDim = 3;
  const std::size_t max_nodes = env_or("NICBAR_PDES_MAX_NODES", 4096);
  const int reps = static_cast<int>(env_or("NICBAR_PDES_REPS", 10));
  const unsigned hw = std::thread::hardware_concurrency();

  std::vector<std::size_t> node_counts;
  for (const std::size_t n :
       {std::size_t{256}, std::size_t{1024}, std::size_t{4096}}) {
    if (n <= max_nodes) node_counts.push_back(n);
  }
  const std::size_t workers[] = {1, 2, 4, 8};

  bench::print_header("PDES speedup: sustained hier barriers, radix-18 fat-tree 8:1");
  std::printf("host: %u hardware thread(s); %d consecutive barriers per case\n\n", hw, reps);
  std::printf("%6s %8s %12s %12s %10s %10s\n", "nodes", "workers", "sim_us", "wall_ms",
              "speedup", "identical");

  bench::BenchSummary summary("pdes_speedup", "nicbar-pdes-v1");
  summary.add("host", {{"hw_threads", static_cast<double>(hw)}});
  double best_speedup = 0.0;

  for (const std::size_t n : node_counts) {
    double serial_wall_ms = 0.0;
    std::int64_t serial_total_ps = 0;
    for (const std::size_t w : workers) {
      coll::ExperimentParams p = coll::experiment(nic::lanai43(), n, reps);
      p.cluster.topology = host::Topology::kFatTree;
      p.cluster.fabric_radix = kRadix;
      p.cluster.fabric_oversub = kOversub;
      p.spec = coll::hier_spec(kHierDim, 0);  // one block per leaf switch
      p.cluster.pdes_partitions = w;
      p.cluster.pdes_workers = static_cast<unsigned>(w);

      const auto t0 = std::chrono::steady_clock::now();
      const coll::ExperimentResult r = coll::run_barrier_experiment(p);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();

      if (w == 1) {
        serial_wall_ms = wall_ms;
        serial_total_ps = r.total.ps();
      }
      const bool identical = r.total.ps() == serial_total_ps;
      const double speedup = wall_ms > 0.0 ? serial_wall_ms / wall_ms : 0.0;
      if (w >= 4 && speedup > best_speedup) best_speedup = speedup;
      std::printf("%6zu %8zu %12.1f %12.2f %10.3f %10s\n", n, w, r.total_us, wall_ms,
                  speedup, identical ? "yes" : "NO");
      summary.add("n" + std::to_string(n) + "_w" + std::to_string(w),
                  {{"nodes", static_cast<double>(n)},
                   {"workers", static_cast<double>(w)},
                   {"partitions", static_cast<double>(w)},
                   {"sim_total_us", r.total_us},
                   {"wall_ms", wall_ms},
                   {"speedup", speedup},
                   {"bit_identical", identical ? 1.0 : 0.0}});
      if (!identical) {
        std::fprintf(stderr, "error: n=%zu w=%zu diverged from the serial timeline\n", n, w);
        return 1;
      }
    }
  }
  summary.write();

  if (hw >= 4 && best_speedup > 1.0) {
    std::printf("\nspeedup: %.3fx at >= 4 workers on %u hardware threads.\n", best_speedup, hw);
  } else {
    std::printf("\nspeedup: not expected here — %u hardware thread(s) timeshare every\n"
                "worker, so the measurement characterizes partition-count overhead\n"
                "(window barriers + channel drains) rather than parallel gain. Re-run\n"
                "on a multi-core host for the speedup figure (see EXPERIMENTS.md).\n",
                hw);
  }
  return 0;
}
