// Wall-clock performance of the simulation engine itself (google-benchmark):
// event throughput, coroutine switching, and end-to-end barrier simulation
// rate. These are the only benches that measure real time, not simulated.
#include <benchmark/benchmark.h>

#include "coll/runner.hpp"
#include "host/cluster.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace {

using namespace nicbar;

// Raw EventQueue hot path: schedule a batch, then drain. No simulator, no
// coroutines — isolates the heap + callable-storage cost.
void BM_QueueScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule(sim::SimTime{(i * 7919) % 1000}, [&sink] { ++sink; });
    }
    sim::SimTime at;
    while (!q.empty()) q.pop(at)();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueueScheduleDrain)->Arg(1000)->Arg(100000);

// The reliability-timer pattern: nearly every scheduled event is cancelled
// before it fires (a retransmission timer cancelled by its ack) while a
// steady trickle of live events drains. Dominated by cancel() bookkeeping.
void BM_QueueScheduleCancelChurn(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    sim::SimTime at;
    for (int i = 0; i < n; ++i) {
      const sim::EventId timer = q.schedule(sim::SimTime{i + 1000}, [&sink] { ++sink; });
      q.schedule(sim::SimTime{i}, [&sink] { ++sink; });
      q.cancel(timer);  // the "ack" arrives before the timer fires
      q.pop(at)();
    }
    while (!q.empty()) q.pop(at)();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueueScheduleCancelChurn)->Arg(100000);

void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const auto n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_in(sim::nanoseconds(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventScheduling)->Arg(1000)->Arg(100000);

sim::Task ping(sim::Simulator& sim, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.delay(sim::nanoseconds(1));
}

void BM_CoroutineSwitches(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn(ping(sim, static_cast<int>(state.range(0))));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSwitches)->Arg(1000)->Arg(100000);

void BM_MailboxThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Mailbox<int> mb(sim);
    const int n = static_cast<int>(state.range(0));
    sim.spawn([](sim::Mailbox<int>& box, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) benchmark::DoNotOptimize(co_await box.recv());
    }(mb, n));
    for (int i = 0; i < n; ++i) mb.send(i);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MailboxThroughput)->Arg(10000);

// The partition-boundary fast path: a PDES window barrier drains every
// cross-partition channel into the destination lane's queue in one
// schedule_batch call. Modeled here exactly as PartitionedSimulator does it —
// a lane queue already holding `heap` pending events absorbs a `batch`-sized
// channel drain, then the window runs dry. Compare _Batch against _Single
// (the same arrivals scheduled one at a time) to see the bottom-up heap
// rebuild pay off when batch >= heap.
void BM_PartitionBoundaryDrain(benchmark::State& state, bool batched) {
  const auto heap = static_cast<int>(state.range(0));
  const auto batch = static_cast<int>(state.range(1));
  std::uint64_t sink = 0;
  std::vector<sim::EventQueue::BatchItem> channel;
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < heap; ++i) {
      q.schedule(sim::SimTime{(i * 7919) % 1000 + 1000}, [&sink] { ++sink; });
    }
    channel.clear();
    for (int i = 0; i < batch; ++i) {
      // Keyed like a real link delivery: k1 = serialisation-finish ps,
      // k2 = (link uid << 32) | per-link seq.
      sim::EventQueue::BatchItem item;
      item.at = sim::SimTime{(i * 4391) % 1000 + 1000};
      item.key = sim::EventKey{static_cast<std::uint64_t>(item.at.ps()),
                               (std::uint64_t{7} << 32) | static_cast<std::uint64_t>(i)};
      item.action = [&sink] { ++sink; };
      channel.push_back(std::move(item));
    }
    if (batched) {
      q.schedule_batch(channel);
    } else {
      for (auto& item : channel) q.schedule_keyed(item.at, item.key, std::move(item.action));
    }
    sim::SimTime at;
    while (!q.empty()) q.pop(at)();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * (state.range(0) + state.range(1)));
}
void BM_PartitionBoundaryDrain_Batch(benchmark::State& state) {
  BM_PartitionBoundaryDrain(state, true);
}
void BM_PartitionBoundaryDrain_Single(benchmark::State& state) {
  BM_PartitionBoundaryDrain(state, false);
}
BENCHMARK(BM_PartitionBoundaryDrain_Batch)->Args({1000, 10000})->Args({10000, 1000});
BENCHMARK(BM_PartitionBoundaryDrain_Single)->Args({1000, 10000})->Args({10000, 1000});

// Frame-arena recycling under spawn churn: waves of short-lived coroutines
// whose frames all land in the same size class, so after the first wave
// every allocation is a freelist pop. This is the serial-core win the PDES
// issue pins: before the arena, every spawn was a malloc/free round trip.
void BM_FrameArenaSpawnChurn(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int wave = 0; wave < 10; ++wave) {
      for (int i = 0; i < n; ++i) sim.spawn(ping(sim, 1));
      sim.run();
    }
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10 * state.range(0));
}
BENCHMARK(BM_FrameArenaSpawnChurn)->Arg(1000);

void BM_BarrierSimulation(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    coll::ExperimentParams p;
    p.nodes = nodes;
    p.reps = 10;
    p.spec.location = coll::Location::kNic;
    p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
    benchmark::DoNotOptimize(coll::run_barrier_experiment(p).mean_us);
  }
  state.SetItemsProcessed(state.iterations() * 10);  // barriers per iteration
}
BENCHMARK(BM_BarrierSimulation)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
