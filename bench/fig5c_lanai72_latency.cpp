// Figure 5(c): barrier latency vs nodes, LANai 7.2 (66 MHz), 8-port switch.
// Paper anchors: 8-node NIC-PE = 49.25us vs host-PE = 90.24us.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  bench::print_header("Figure 5(c): barrier latency, LANai 7.2 (us)");
  std::printf("%6s %10s %10s %10s %10s\n", "nodes", "NIC-PE", "NIC-GB", "host-PE", "host-GB");
  const std::vector<std::size_t> nodes{2, 4, 8};
  const std::vector<bench::FourWay> rows = bench::measure_grid(nic::lanai72(), nodes);
  bench::BenchSummary summary("fig5c");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bench::FourWay& f = rows[i];
    std::printf("%6zu %10.2f %10.2f %10.2f %10.2f\n", nodes[i], f.nic_pe, f.nic_gb, f.host_pe,
                f.host_gb);
    summary.add(std::string("n") + std::to_string(nodes[i]),
                {{"nic_pe_us", f.nic_pe},
                 {"nic_gb_us", f.nic_gb},
                 {"host_pe_us", f.host_pe},
                 {"host_gb_us", f.host_gb}});
  }
  std::printf("\npaper (8 nodes): NIC-PE 49.25, host-PE 90.24\n");
  summary.write();
  return 0;
}
