// §1/§2.2 end-to-end: "We expect that the factor of improvement will also
// increase if an additional programming layer, such as MPI, is added over
// GM". This bench measures the barrier at three levels — raw GM host-based,
// raw GM NIC-based, and both under the MPI-like layer — and shows the
// layer widens the NIC advantage (it inflates Send/HRecv but not the
// NIC-resident exchange).
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "mpi/communicator.hpp"

namespace {

using namespace nicbar;

double run_mpi(std::size_t nodes, coll::Location loc, sim::Duration layer, int reps) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic = nic::lanai43();
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < nodes; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  mpi::CommConfig cfg;
  cfg.collective_location = loc;
  cfg.per_call_overhead = layer;
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;
  for (std::size_t i = 0; i < nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    comms.push_back(std::make_unique<mpi::Communicator>(*ports.back(), group, cfg));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.sim().spawn([](mpi::Communicator& c, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await c.barrier();
    }(*comms[i], reps));
  }
  cluster.sim().run();
  return cluster.sim().now().us() / reps;
}

}  // namespace

int main() {
  using namespace nicbar;
  bench::print_header("MPI layering: 16-node PE barrier, LANai 4.3 (us)");

  const double gm_host =
      bench::measure(nic::lanai43(), 16, coll::Location::kHost,
                     nic::BarrierAlgorithm::kPairwiseExchange);
  const double gm_nic =
      bench::measure(nic::lanai43(), 16, coll::Location::kNic,
                     nic::BarrierAlgorithm::kPairwiseExchange);
  std::printf("%24s %12s %12s %12s\n", "level", "host-based", "NIC-based", "improvement");
  std::printf("%24s %12.2f %12.2f %12.2f\n", "raw GM", gm_host, gm_nic, gm_host / gm_nic);
  for (double layer_us : {4.0, 8.0, 16.0}) {
    const sim::Duration layer = sim::microseconds(layer_us);
    const double mpi_host = run_mpi(16, coll::Location::kHost, layer, 300);
    const double mpi_nic = run_mpi(16, coll::Location::kNic, layer, 300);
    char label[64];
    std::snprintf(label, sizeof label, "MPI (+%.0fus/call)", layer_us);
    std::printf("%24s %12.2f %12.2f %12.2f\n", label, mpi_host, mpi_nic,
                mpi_host / mpi_nic);
  }
  std::printf("\nexpected: the MPI layer's per-call cost inflates the host-based barrier\n"
              "by log2(N) x overhead but the NIC-based one only by ~1 x overhead, so the\n"
              "factor of improvement grows with layering (paper §1, §2.2)\n");
  return 0;
}
