// §1/§2.2 end-to-end: "We expect that the factor of improvement will also
// increase if an additional programming layer, such as MPI, is added over
// GM". This bench measures the barrier at three levels — raw GM host-based,
// raw GM NIC-based, and both under the MPI-like layer — and shows the
// layer widens the NIC advantage (it inflates Send/HRecv but not the
// NIC-resident exchange).
//
// One SweepPlan holds the raw-GM rows (declarative cases) and the layered
// rows (custom cases) side by side, so the whole table shards across
// NICBAR_JOBS and instruments uniformly.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "mpi/communicator.hpp"

namespace {

using namespace nicbar;

coll::ExperimentResult run_mpi(std::size_t nodes, coll::Location loc, sim::Duration layer,
                               int reps, sim::telemetry::Telemetry* telemetry) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic = nic::lanai43();
  cp.telemetry = telemetry;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < nodes; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  mpi::CommConfig cfg;
  cfg.collective_location = loc;
  cfg.per_call_overhead = layer;
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<mpi::Communicator>> comms;
  for (std::size_t i = 0; i < nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    comms.push_back(std::make_unique<mpi::Communicator>(*ports.back(), group, cfg));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.sim().spawn([](mpi::Communicator& c, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await c.barrier();
    }(*comms[i], reps));
  }
  cluster.sim().run();
  cluster.snapshot_metrics();
  coll::ExperimentResult res;
  res.nodes = nodes;
  res.reps = reps;
  res.total_us = cluster.sim().now().us();
  res.mean_us = res.total_us / reps;
  return res;
}

}  // namespace

int main() {
  using namespace nicbar;
  bench::print_header("MPI layering: 16-node PE barrier, LANai 4.3 (us)");
  const std::vector<double> layers_us{4.0, 8.0, 16.0};

  coll::SweepPlan plan;
  for (const coll::Location loc : {coll::Location::kHost, coll::Location::kNic}) {
    coll::ExperimentParams p = coll::experiment(nic::lanai43(), 16);
    p.spec = coll::spec(loc, nic::BarrierAlgorithm::kPairwiseExchange);
    plan.add(coll::variant_label(p), p);
  }
  for (const double layer_us : layers_us) {
    for (const coll::Location loc : {coll::Location::kHost, coll::Location::kNic}) {
      const std::string label = std::string("mpi-") +
                                (loc == coll::Location::kNic ? "nic" : "host") + "-pe-n16-layer" +
                                std::to_string(static_cast<int>(layer_us)) + "us";
      plan.add_custom(label, [loc, layer_us](sim::telemetry::Telemetry* t) {
        return run_mpi(16, loc, sim::microseconds(layer_us), 300, t);
      });
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::BenchSummary summary("mpi_layer");
  const double gm_host = r.cases[0].result.mean_us;
  const double gm_nic = r.cases[1].result.mean_us;
  std::printf("%24s %12s %12s %12s\n", "level", "host-based", "NIC-based", "improvement");
  std::printf("%24s %12.2f %12.2f %12.2f\n", "raw GM", gm_host, gm_nic, gm_host / gm_nic);
  summary.add("raw-gm", {{"host_us", gm_host}, {"nic_us", gm_nic},
                         {"improvement", gm_host / gm_nic}});
  std::size_t c = 2;
  for (const double layer_us : layers_us) {
    const double mpi_host = r.cases[c++].result.mean_us;
    const double mpi_nic = r.cases[c++].result.mean_us;
    char label[64];
    std::snprintf(label, sizeof label, "MPI (+%.0fus/call)", layer_us);
    std::printf("%24s %12.2f %12.2f %12.2f\n", label, mpi_host, mpi_nic,
                mpi_host / mpi_nic);
    summary.add(std::string("mpi-layer") + std::to_string(static_cast<int>(layer_us)) + "us",
                {{"host_us", mpi_host}, {"nic_us", mpi_nic},
                 {"improvement", mpi_host / mpi_nic}});
  }
  std::printf("\nexpected: the MPI layer's per-call cost inflates the host-based barrier\n"
              "by log2(N) x overhead but the NIC-based one only by ~1 x overhead, so the\n"
              "factor of improvement grows with layering (paper §1, §2.2)\n");
  summary.write();
  return 0;
}
