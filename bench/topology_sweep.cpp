// Topology ablation: the paper's Network term is tiny on one switch; this
// quantifies how multi-switch fabrics (longer routes, trunk sharing) stretch
// both barrier variants at 16 nodes. The NIC advantage persists because the
// NIC-resident Recv term, not the wire, dominates either way.
#include <cstdio>

#include "common.hpp"

namespace {

using namespace nicbar;

double mean_for(host::Topology t, coll::Location loc) {
  coll::ExperimentParams p = bench::base_params(nic::lanai43(), 16, 300);
  p.spec = bench::make_spec(loc, nic::BarrierAlgorithm::kPairwiseExchange);
  p.cluster.topology = t;
  p.cluster.chain_per_switch = 4;
  p.cluster.tree_radix = 8;
  return coll::run_barrier_experiment(p).mean_us;
}

}  // namespace

int main() {
  using namespace nicbar;
  bench::print_header("Topology sweep: 16-node PE barrier, LANai 4.3 (us)");
  std::printf("%16s %12s %12s %12s\n", "topology", "host", "NIC", "improvement");
  struct Row {
    const char* name;
    host::Topology t;
  } rows[] = {{"single switch", host::Topology::kSingleSwitch},
              {"chain (4x4)", host::Topology::kSwitchChain},
              {"tree (radix 8)", host::Topology::kSwitchTree}};
  for (const Row& r : rows) {
    const double host_us = mean_for(r.t, coll::Location::kHost);
    const double nic_us = mean_for(r.t, coll::Location::kNic);
    std::printf("%16s %12.2f %12.2f %12.2f\n", r.name, host_us, nic_us, host_us / nic_us);
  }
  std::printf("\nexpected: deeper fabrics add Network time to both variants; the NIC\n"
              "advantage persists since Recv processing, not the wire, dominates\n");
  return 0;
}
