// Topology ablation: the paper's Network term is tiny on one switch; this
// quantifies how multi-switch fabrics (longer routes, trunk sharing) stretch
// both barrier variants at 16 nodes. The NIC advantage persists because the
// NIC-resident Recv term, not the wire, dominates either way.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  struct Row {
    const char* name;
    host::Topology t;
  } rows[] = {{"single switch", host::Topology::kSingleSwitch},
              {"chain (4x4)", host::Topology::kSwitchChain},
              {"tree (radix 8)", host::Topology::kSwitchTree}};

  coll::SweepPlan plan;
  for (const Row& row : rows) {
    for (const coll::Location loc : {coll::Location::kHost, coll::Location::kNic}) {
      coll::ExperimentParams p = coll::experiment(nic::lanai43(), 16, 300);
      p.spec = coll::spec(loc, nic::BarrierAlgorithm::kPairwiseExchange);
      p.cluster.topology = row.t;
      p.cluster.chain_per_switch = 4;
      p.cluster.tree_radix = 8;
      plan.add(std::string(row.name) + "/" + coll::variant_label(p), p);
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::print_header("Topology sweep: 16-node PE barrier, LANai 4.3 (us)");
  std::printf("%16s %12s %12s %12s\n", "topology", "host", "NIC", "improvement");
  bench::BenchSummary summary("topology_sweep");
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const double host_us = r.cases[2 * i].result.mean_us;
    const double nic_us = r.cases[2 * i + 1].result.mean_us;
    std::printf("%16s %12.2f %12.2f %12.2f\n", rows[i].name, host_us, nic_us,
                host_us / nic_us);
    summary.add(rows[i].name, {{"host_us", host_us},
                               {"nic_us", nic_us},
                               {"improvement", host_us / nic_us}});
  }
  summary.write();
  std::printf("\nexpected: deeper fabrics add Network time to both variants; the NIC\n"
              "advantage persists since Recv processing, not the wire, dominates\n");
  return 0;
}
