// Figure 5(b): factor of improvement (host/NIC) vs nodes, LANai 4.3.
// Paper anchors: PE 1.78x and GB 1.46x at 16 nodes; PE 1.66x at 8 nodes;
// GB < 1 at 2 nodes (NIC-GB loses there).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  bench::print_header("Figure 5(b): factor of improvement, LANai 4.3");
  std::printf("%6s %12s %12s\n", "nodes", "PE", "GB");
  const std::vector<std::size_t> nodes{2, 4, 8, 16};
  const std::vector<bench::FourWay> rows = bench::measure_grid(nic::lanai43(), nodes);
  bench::BenchSummary summary("fig5b");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bench::FourWay& f = rows[i];
    std::printf("%6zu %12.2f %12.2f\n", nodes[i], f.host_pe / f.nic_pe, f.host_gb / f.nic_gb);
    summary.add(std::string("n") + std::to_string(nodes[i]),
                {{"pe_improvement", f.host_pe / f.nic_pe},
                 {"gb_improvement", f.host_gb / f.nic_gb}});
  }
  std::printf("\npaper: PE 1.78 / GB 1.46 at 16 nodes; PE 1.66 at 8; GB < 1 at 2 nodes\n");
  summary.write();
  return 0;
}
