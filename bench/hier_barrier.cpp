// Hierarchical barrier at scale: four families on one oversubscribed
// fat-tree, N = 64 .. 4096, with the PE/hierarchical crossover reported.
//
// The fabric is the fixed cluster design a site would actually buy for 4096
// hosts: a radix-18 folded Clos at 8:1 leaf oversubscription. That shape
// puts h = 16 hosts under every leaf (power-of-two blocks, so the
// inter-representative exchange never folds) and caps at 18*16*16 = 4608
// hosts on three levels. Against it we run:
//
//   flat NIC-PE       every round crosses the trunk; hop-optimal (log2 N)
//   flat NIC-GB       k-ary tree (fixed dimension 3; the full 1..N-1 sweep
//                     of the paper's methodology is out of wall-clock reach
//                     at 4096 nodes and never changes the ordering here)
//   host-dissem       host-driven dissemination over the rma:: layer
//   hierarchical      leaf-local gather + release, only representatives
//                     cross the core (one kHierarchical token per member)
//
// The interesting regime is *sustained* barriers (reps back to back, the
// paper's own measurement loop): flat PE's cross-fabric traffic accumulates
// queueing on the oversubscribed trunk round after round, while the
// hierarchical family's trunk load is one packet per block per barrier.
// The crossover lands between 512 and 1024 nodes; below it the flat
// algorithm's lower per-hop cost wins, above it the trunk does.
//
// Env knobs (CI trimming): NICBAR_HIER_MAX_NODES caps the grid,
// NICBAR_HIER_REPS overrides the per-case repetition count, and the usual
// NICBAR_JOBS / NICBAR_BENCH_JSON_DIR apply (see common.hpp).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  constexpr std::size_t kRadix = 18;
  constexpr std::size_t kOversub = 8;
  constexpr std::size_t kHierDim = 3;  // intra-block tree dimension
  const std::size_t max_nodes = env_or("NICBAR_HIER_MAX_NODES", 4096);
  const int reps = static_cast<int>(env_or("NICBAR_HIER_REPS", 15));

  std::vector<std::size_t> node_counts;
  for (const std::size_t n : {std::size_t{64}, std::size_t{256}, std::size_t{1024},
                              std::size_t{4096}}) {
    if (n <= max_nodes) node_counts.push_back(n);
  }

  auto base = [&](std::size_t n) {
    coll::ExperimentParams p = coll::experiment(nic::lanai43(), n, reps);
    p.cluster.topology = host::Topology::kFatTree;
    p.cluster.fabric_radix = kRadix;
    p.cluster.fabric_oversub = kOversub;
    return p;
  };

  coll::SweepPlan plan;
  for (const std::size_t n : node_counts) {
    coll::ExperimentParams pe = base(n);
    pe.spec = coll::spec(Location::kNic, BarrierAlgorithm::kPairwiseExchange);
    plan.add(coll::variant_label(pe), pe);

    coll::ExperimentParams gb = base(n);
    gb.spec = coll::spec(Location::kNic, BarrierAlgorithm::kGatherBroadcast, kHierDim);
    plan.add(coll::variant_label(gb), gb);

    coll::ExperimentParams dissem = base(n);
    dissem.spec = coll::rdma_spec(coll::RdmaAlgorithm::kDissemination);
    plan.add(coll::variant_label(dissem), dissem);

    coll::ExperimentParams hier = base(n);
    // hier_block 0: the runner derives one block per leaf switch (h hosts).
    hier.spec = coll::hier_spec(kHierDim, 0);
    plan.add(coll::variant_label(hier), hier);
  }
  const coll::SweepResult r = bench::run(plan);

  // Mirror fabric::resolve_shape's leaf split for the header line.
  const std::size_t uplinks = std::max<std::size_t>(1, kRadix / (1 + kOversub));
  const std::size_t hosts_per_leaf = kRadix - uplinks;
  bench::print_header("Hierarchical barrier: radix-18 fat-tree, 8:1 oversubscription, LANai 4.3");
  std::printf("fabric: %zu hosts/leaf, %zu uplinks/leaf; %d consecutive barriers per case\n\n",
              hosts_per_leaf, uplinks, reps);
  std::printf("%6s %12s %12s %12s %12s %10s\n", "nodes", "NIC-PE(us)", "NIC-GB(us)",
              "dissem(us)", "hier(us)", "hier/PE");

  bench::BenchSummary summary("hier_barrier", "nicbar-hier-v1");
  std::size_t crossover_nodes = 0;
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const std::size_t n = node_counts[i];
    const double pe_us = r.cases[4 * i + 0].result.mean_us;
    const double gb_us = r.cases[4 * i + 1].result.mean_us;
    const double dissem_us = r.cases[4 * i + 2].result.mean_us;
    const double hier_us = r.cases[4 * i + 3].result.mean_us;
    std::printf("%6zu %12.2f %12.2f %12.2f %12.2f %10.3f\n", n, pe_us, gb_us, dissem_us,
                hier_us, hier_us / pe_us);
    if (crossover_nodes == 0 && hier_us < pe_us) crossover_nodes = n;
    summary.add("n" + std::to_string(n),
                {{"nodes", static_cast<double>(n)},
                 {"nic_pe_us", pe_us},
                 {"nic_gb_us", gb_us},
                 {"host_dissem_us", dissem_us},
                 {"hier_us", hier_us},
                 {"hier_vs_pe_improvement", pe_us / hier_us}});
  }
  summary.add("crossover", {{"crossover_nodes", static_cast<double>(crossover_nodes)}});
  summary.write();

  if (crossover_nodes != 0) {
    std::printf("\ncrossover: the hierarchical family beats flat NIC-PE from %zu nodes up\n"
                "on this fabric (sustained barriers; see EXPERIMENTS.md for the\n"
                "single-shot and non-blocking-fabric caveats).\n",
                crossover_nodes);
  } else {
    std::printf("\ncrossover: not reached on this grid — flat NIC-PE stayed ahead at every\n"
                "measured size (expected when the grid is capped below 1024 nodes).\n");
  }
  return 0;
}
