// §3.4 ablation: multiple concurrent barriers per NIC. K disjoint groups
// share the same 8 nodes through different ports; barrier state lives in the
// per-port send token, so the NIC runs K barriers at once. Reports per-
// barrier latency vs K (the NIC processor is shared, so latency rises), and
// the §3.4 same-NIC loopback optimisation for a two-port intra-node group.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

namespace {

using namespace nicbar;

double run_concurrent(std::size_t nodes, int groups, int reps) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic = nic::lanai43();
  host::Cluster cluster(cp);
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (int g = 0; g < groups; ++g) {
    const auto port_id = static_cast<nic::PortId>(2 + g);
    std::vector<gm::Endpoint> group;
    for (std::size_t i = 0; i < nodes; ++i) {
      group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), port_id});
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), port_id));
      members.push_back(std::make_unique<coll::BarrierMember>(
          *ports.back(), group,
          coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
    }
  }
  for (auto& m : members) {
    cluster.sim().spawn([](coll::BarrierMember& mem, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await mem.run();
    }(*m, reps));
  }
  cluster.sim().run();
  return cluster.sim().now().us() / reps;
}

double run_intra_node(bool loopback, int reps) {
  host::ClusterParams cp;
  cp.nodes = 2;
  cp.nic = nic::lanai43();
  cp.nic.barrier_loopback = loopback;
  host::Cluster cluster(cp);
  // Four endpoints: two ports on each of two nodes.
  std::vector<gm::Endpoint> group{{0, 2}, {0, 3}, {1, 2}, {1, 3}};
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (const gm::Endpoint& e : group) {
    ports.push_back(cluster.open_port(e.node, e.port));
    members.push_back(std::make_unique<coll::BarrierMember>(
        *ports.back(), group,
        coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
  }
  for (auto& m : members) {
    cluster.sim().spawn([](coll::BarrierMember& mem, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await mem.run();
    }(*m, reps));
  }
  cluster.sim().run();
  return cluster.sim().now().us() / reps;
}

}  // namespace

int main() {
  using namespace nicbar;
  bench::print_header("Concurrent barriers per NIC (8 nodes, PE, LANai 4.3)");
  std::printf("%8s %16s\n", "groups", "per-barrier(us)");
  for (int g : {1, 2, 4, 6}) {
    std::printf("%8d %16.2f\n", g, run_concurrent(8, g, 200));
  }
  std::printf("\nexpected: latency grows with concurrent groups (shared NIC processor),\n"
              "but all groups make progress independently (§3.4)\n");

  bench::print_header("Same-NIC loopback optimisation (4 endpoints on 2 nodes)");
  const double off = run_intra_node(false, 300);
  const double on = run_intra_node(true, 300);
  std::printf("loopback off: %.2f us   on: %.2f us   (%.0f%% faster)\n", off, on,
              100.0 * (off - on) / off);
  return 0;
}
