// Critical-path attribution validated against the differential oracle's
// closed forms.
//
// Contention-free regime (NIC PE barrier, power-of-two group, lockstep): the
// causal tracer's per-segment attribution of a steady-state barrier must
// equal the Eq. 2 terms EXACTLY — the same integer-picosecond bookkeeping
// the oracle uses, just sliced by segment instead of summed:
//
//   host     = host_barrier + layer + host_recv + layer    (post + wakeup)
//   sdma     = cyc(sdma_detect)
//   firmware = cyc(barrier_init) + r * cyc(barrier_pe)
//   send     = r * cyc(barrier_send)
//   wire     = r * 2 * (serialisation + propagation)
//   switch   = r * routing
//   recv     = r * cyc(recv)
//   rdma     = cyc(rdma_setup) + pci_setup + transfer(payload)
//
// with r = log2(N) and every queue term zero (no FIFO ever has to wait).
// host_provide is deliberately absent: replenishing the barrier buffer
// happens off the causal chain, between iterations.
//
// Under start skew or packet loss the same machinery reports *where* the
// extra time lands (queue terms, retransmission rounds); those rows are
// reported as attribution shares rather than asserted, since contention has
// no closed form. Non-zero exit if any exact check fails.
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "sim/causal.hpp"

namespace {

using namespace nicbar;
using sim::causal::kSegmentCount;
using sim::causal::Segment;
using sim::Duration;

Duration cyc(const nic::NicConfig& c, std::int64_t n) {
  return sim::cycles_at_mhz(n, c.clock_mhz);
}

/// The Eq. 2 terms of one steady-state contention-free NIC PE barrier,
/// sliced by causal segment (same pre-truncated integer arithmetic as
/// check/oracle.cpp, so equality is exact, not approximate).
std::array<Duration, kSegmentCount> expected_pe_segments(const host::ClusterParams& cl,
                                                         std::int64_t r) {
  const nic::NicConfig& c = cl.nic;
  const gm::GmConfig& gm = cl.gm;
  const Duration wire =
      sim::transfer_time(cl.link.header_bytes + 1 + c.barrier_payload_bytes,
                         cl.link.bandwidth_mbps);
  std::array<Duration, kSegmentCount> e{};
  e[static_cast<std::size_t>(Segment::kHost)] =
      gm.host_barrier_overhead + gm.layer_overhead + gm.host_recv_overhead + gm.layer_overhead;
  e[static_cast<std::size_t>(Segment::kSdma)] = cyc(c, c.sdma_detect_cycles);
  e[static_cast<std::size_t>(Segment::kFirmware)] =
      cyc(c, c.barrier_init_cycles) + r * cyc(c, c.barrier_pe_cycles);
  e[static_cast<std::size_t>(Segment::kSend)] = r * cyc(c, c.barrier_send_cycles);
  e[static_cast<std::size_t>(Segment::kWire)] = r * 2 * (wire + cl.link.propagation);
  e[static_cast<std::size_t>(Segment::kSwitch)] = r * cl.sw.routing_latency;
  e[static_cast<std::size_t>(Segment::kRecv)] = r * cyc(c, c.recv_cycles);
  e[static_cast<std::size_t>(Segment::kRdma)] =
      cyc(c, c.rdma_setup_cycles) + c.pci_setup +
      sim::transfer_time(c.barrier_payload_bytes, c.pci_bandwidth_mbps);
  return e;
}

/// Runs one experiment with causal tracing attached and returns the tracer's
/// view via `tele` (the caller keeps it alive across the inspection).
coll::ExperimentResult run_traced(coll::ExperimentParams p, sim::telemetry::Telemetry& tele) {
  tele.enable_causal();
  p.cluster.telemetry = &tele;
  return coll::run_barrier_experiment(p);
}

int check_exact(std::size_t nodes, bench::BenchSummary& summary) {
  std::int64_t r = 0;
  for (std::size_t n = nodes; n > 1; n /= 2) ++r;

  coll::ExperimentParams p = coll::experiment(nic::lanai43(), nodes, 50);
  p.spec = coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  sim::telemetry::Telemetry tele;
  (void)run_traced(p, tele);
  const sim::causal::CausalTracer& causal = *tele.causal();

  int failures = 0;
  if (!causal.verify_acyclic()) {
    std::printf("  N=%-3zu FAIL: span graph is not acyclic\n", nodes);
    return 1;
  }
  // The last completed barrier is deep in steady state; its critical path is
  // the pure Eq. 2 chain.
  const sim::causal::CriticalPath path = causal.critical_path(causal.completed().back().sink);
  const std::array<Duration, kSegmentCount> want = expected_pe_segments(p.cluster, r);

  Duration predicted{0};
  std::vector<std::pair<std::string, double>> metrics;
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    predicted += want[s];
    const char* name = sim::causal::to_string(static_cast<Segment>(s));
    if (path.self[s] != want[s]) {
      std::printf("  N=%-3zu FAIL: %-8s self %lld ps, closed form %lld ps\n", nodes, name,
                  static_cast<long long>(path.self[s].ps()),
                  static_cast<long long>(want[s].ps()));
      ++failures;
    }
    if (!path.queue[s].is_zero()) {
      std::printf("  N=%-3zu FAIL: %-8s queue %lld ps in the contention-free regime\n", nodes,
                  name, static_cast<long long>(path.queue[s].ps()));
      ++failures;
    }
    metrics.emplace_back(std::string(name) + "_us", path.self[s].us());
  }
  if (path.attributed() != path.total) {
    std::printf("  N=%-3zu FAIL: attribution %lld ps != total %lld ps\n", nodes,
                static_cast<long long>(path.attributed().ps()),
                static_cast<long long>(path.total.ps()));
    ++failures;
  }
  if (path.total != predicted) {
    std::printf("  N=%-3zu FAIL: path total %lld ps != Eq. 2 sum %lld ps\n", nodes,
                static_cast<long long>(path.total.ps()),
                static_cast<long long>(predicted.ps()));
    ++failures;
  }
  if (failures == 0) {
    std::printf("  N=%-3zu ok: %2zu-span path, %8.3f us, all 8 segments match to the ps\n",
                nodes, path.steps.size(), path.total.us());
  }
  metrics.emplace_back("total_us", path.total.us());
  metrics.emplace_back("predicted_us", predicted.us());
  metrics.emplace_back("exact_match", failures == 0 ? 1.0 : 0.0);
  summary.add("nic-pe-N" + std::to_string(nodes), std::move(metrics));
  return failures;
}

/// Aggregated attribution shares of a (possibly contended/lossy) run: where
/// the critical path spends its time, self + queue, as a percentage.
void report_profile(const char* title, const std::string& label,
                    const coll::ExperimentParams& p, bench::BenchSummary& summary) {
  sim::telemetry::Telemetry tele;
  const coll::ExperimentResult res = run_traced(p, tele);
  const sim::causal::PathProfile prof = tele.causal()->profile();
  std::printf("  %-22s", title);
  std::vector<std::pair<std::string, double>> metrics;
  Duration queue_total{0};
  for (std::size_t s = 0; s < kSegmentCount; ++s) {
    const Duration d = prof.self[s] + prof.queue[s];
    const double share = prof.total.is_zero() ? 0.0 : 100.0 * d.us() / prof.total.us();
    std::printf(" %s=%4.1f%%", sim::causal::to_string(static_cast<Segment>(s)), share);
    metrics.emplace_back(std::string(sim::causal::to_string(static_cast<Segment>(s))) +
                             "_share_pct",
                         share);
    queue_total += prof.queue[s];
  }
  const double n = prof.barriers > 0 ? static_cast<double>(prof.barriers) : 1.0;
  std::printf("  (queue %.2f us/barrier, %llu retrans)\n", queue_total.us() / n,
              static_cast<unsigned long long>(res.retransmissions));
  metrics.emplace_back("mean_total_us", prof.total.us() / n);
  metrics.emplace_back("mean_queue_us", queue_total.us() / n);
  metrics.emplace_back("retransmissions", static_cast<double>(res.retransmissions));
  summary.add(label, std::move(metrics));
}

}  // namespace

int main() {
  bench::BenchSummary summary("critical_path");
  bench::print_header("critical-path attribution vs Eq. 2 closed forms (NIC PE, lanai43)");

  int failures = 0;
  for (const std::size_t nodes : {2UL, 4UL, 8UL, 16UL}) {
    failures += check_exact(nodes, summary);
  }

  bench::print_header("attribution shift under contention and loss (16 nodes)");
  {
    coll::ExperimentParams p = coll::experiment(nic::lanai43(), 16, 50);
    p.spec = coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
    p.max_start_skew = sim::microseconds(50.0);
    report_profile("start skew 50us:", "skew-50us", p, summary);
  }
  {
    coll::ExperimentParams p = coll::experiment(nic::lanai43(), 16, 50);
    p.spec = coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
    p.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
    p.cluster.faults.loss.push_back({"", 0.02});
    p.cluster.faults.seed = p.seed;
    report_profile("loss 2% (shared):", "loss-2pct-shared", p, summary);
  }

  summary.write();
  if (failures > 0) {
    std::printf("\n%d attribution check(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall contention-free attribution checks exact to the picosecond\n");
  return 0;
}
