// §3.3/§4.4 ablation: barrier reliability mechanisms under packet loss.
//
// The paper measured with unreliable barrier packets on a lossless fabric
// and sketched two reliable designs. This bench injects loss on every link
// and compares: kUnreliable (hangs — barriers stop completing), kSharedStream
// (data-stream acks recover), kSeparateAcks (dedicated barrier acks recover).
// On a lossless fabric it also reports the overhead each mechanism adds.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

namespace {

using namespace nicbar;

struct ModeResult {
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  double mean_us = 0;
};

ModeResult run_mode(nic::BarrierReliability mode, double loss, int reps) {
  host::ClusterParams cp;
  cp.nodes = 8;
  cp.nic = nic::lanai43();
  cp.nic.barrier_reliability = mode;
  cp.nic.retransmit_timeout = sim::microseconds(400.0);  // snappier recovery
  host::Cluster cluster(cp);
  if (loss > 0) {
    std::uint64_t seed = 7;
    cluster.network().for_each_link([&](net::Link& l) {
      l.set_drop_probability(loss, seed++);
    });
  }
  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < 8; ++i) group.push_back(gm::Endpoint{i, 2});
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (net::NodeId i = 0; i < 8; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(
        *ports.back(), group,
        coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
  }
  std::vector<sim::SimTime> ends(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    cluster.sim().spawn([](sim::Simulator& s, coll::BarrierMember& mem, int r,
                           sim::SimTime* end) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await mem.run();
      *end = s.now();
    }(cluster.sim(), *members[i], reps, &ends[i]));
  }
  // Bound the run: a hung (unreliable + loss) configuration never drains.
  cluster.sim().run(sim::SimTime{0} + sim::seconds(2.0));

  ModeResult res;
  res.expected = 8ull * static_cast<std::uint64_t>(reps);
  for (net::NodeId i = 0; i < 8; ++i) {
    res.completed += cluster.nic(i).stats().barriers_completed;
  }
  sim::SimTime last{0};
  for (const sim::SimTime& e : ends) {
    if (e > last) last = e;
  }
  res.mean_us = last.us() / reps;  // zero if nothing ever finished
  return res;
}

const char* mode_name(nic::BarrierReliability m) {
  switch (m) {
    case nic::BarrierReliability::kUnreliable: return "unreliable";
    case nic::BarrierReliability::kSharedStream: return "shared-stream";
    case nic::BarrierReliability::kSeparateAcks: return "separate-acks";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace nicbar;
  const auto modes = {nic::BarrierReliability::kUnreliable,
                      nic::BarrierReliability::kSharedStream,
                      nic::BarrierReliability::kSeparateAcks};

  bench::print_header("Barrier reliability modes, lossless fabric (8-node PE, 200 reps)");
  std::printf("%16s %12s %14s\n", "mode", "completed", "mean(us)");
  for (nic::BarrierReliability m : modes) {
    const ModeResult r = run_mode(m, 0.0, 200);
    std::printf("%16s %6llu/%-6llu %14.2f\n", mode_name(m),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.expected), r.mean_us);
  }

  bench::print_header("Barrier reliability modes, 2% loss on every link (8-node PE, 50 reps)");
  std::printf("%16s %12s\n", "mode", "completed");
  for (nic::BarrierReliability m : modes) {
    const ModeResult r = run_mode(m, 0.02, 50);
    std::printf("%16s %6llu/%-6llu%s\n", mode_name(m),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.expected),
                r.completed < r.expected ? "   <- HANGS (lost barrier msg, §3.3)" : "");
  }
  std::printf("\nexpected: unreliable hangs under loss; both reliable modes finish;\n"
              "reliable modes cost a little extra on a lossless fabric (ack traffic)\n");
  return 0;
}
