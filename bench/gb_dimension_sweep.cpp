// §6 methodology: GB tree-dimension sweep. The paper ran every dimension
// from 1 to N-1 and reported the minimum; this bench prints the whole curve
// for NIC-based and host-based GB so the optimum is visible.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  const nic::NicConfig cfg = nic::lanai43();
  for (std::size_t n : {8u, 16u}) {
    bench::print_header("GB dimension sweep, LANai 4.3, " + std::to_string(n) + " nodes (us)");
    std::printf("%6s %12s %12s\n", "dim", "NIC-GB", "host-GB");
    std::size_t best_nic_dim = 1, best_host_dim = 1;
    double best_nic = 1e18, best_host = 1e18;
    for (std::size_t dim = 1; dim < n; ++dim) {
      coll::ExperimentParams p = bench::base_params(cfg, n);
      p.spec = bench::make_spec(Location::kNic, BarrierAlgorithm::kGatherBroadcast, dim);
      const double nic_us = coll::run_barrier_experiment(p).mean_us;
      p.spec.location = Location::kHost;
      const double host_us = coll::run_barrier_experiment(p).mean_us;
      std::printf("%6zu %12.2f %12.2f\n", dim, nic_us, host_us);
      if (nic_us < best_nic) { best_nic = nic_us; best_nic_dim = dim; }
      if (host_us < best_host) { best_host = host_us; best_host_dim = dim; }
    }
    std::printf("best: NIC-GB dim=%zu (%.2fus), host-GB dim=%zu (%.2fus)\n", best_nic_dim,
                best_nic, best_host_dim, best_host);
  }
  return 0;
}
