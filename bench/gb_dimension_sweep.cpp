// §6 methodology: GB tree-dimension sweep. The paper ran every dimension
// from 1 to N-1 and reported the minimum; this bench prints the whole curve
// for NIC-based and host-based GB so the optimum is visible. The full
// (node-count x dimension x location) grid is one declarative sweep.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  const nic::NicConfig cfg = nic::lanai43();
  const std::vector<std::size_t> node_counts{8, 16};

  coll::SweepPlan plan;
  for (const std::size_t n : node_counts) {
    for (std::size_t dim = 1; dim < n; ++dim) {
      for (const Location loc : {Location::kNic, Location::kHost}) {
        coll::ExperimentParams p = coll::experiment(cfg, n);
        p.spec = coll::spec(loc, BarrierAlgorithm::kGatherBroadcast, dim);
        plan.add(coll::variant_label(p) + "-d" + std::to_string(dim), p);
      }
    }
  }
  const coll::SweepResult r = bench::run(plan);

  std::size_t next = 0;
  for (const std::size_t n : node_counts) {
    bench::print_header("GB dimension sweep, LANai 4.3, " + std::to_string(n) + " nodes (us)");
    std::printf("%6s %12s %12s\n", "dim", "NIC-GB", "host-GB");
    std::size_t best_nic_dim = 1, best_host_dim = 1;
    double best_nic = 1e18, best_host = 1e18;
    for (std::size_t dim = 1; dim < n; ++dim) {
      const double nic_us = r.cases[next++].result.mean_us;
      const double host_us = r.cases[next++].result.mean_us;
      std::printf("%6zu %12.2f %12.2f\n", dim, nic_us, host_us);
      if (nic_us < best_nic) { best_nic = nic_us; best_nic_dim = dim; }
      if (host_us < best_host) { best_host = host_us; best_host_dim = dim; }
    }
    std::printf("best: NIC-GB dim=%zu (%.2fus), host-GB dim=%zu (%.2fus)\n", best_nic_dim,
                best_nic, best_host_dim, best_host);
  }
  return 0;
}
