// PR 2 robustness bench: barrier latency under packet loss, and time-to-
// recover after a fabric outage, comparing the fixed 1 ms retransmission
// timeout against the adaptive (Jacobson/Karels) RTO.
//
// The paper measured on a lossless Myrinet; this bench answers the follow-up
// question a production deployment would ask: how gracefully does the NIC
// barrier degrade when the fabric misbehaves? Two experiments:
//
//   1. Degradation curve — mean 8-node PE barrier latency (shared-stream
//      reliability) as i.i.d. loss sweeps 0 .. 5%, fixed vs adaptive RTO.
//   2. Time-to-recover — every link goes down for a window mid-run; report
//      how long after the fabric heals the first barrier completes.
//
// The adaptive RTO should strictly beat the fixed timeout at 1% loss: a
// measured RTT of tens of microseconds makes a 1 ms stall per drop absurd.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "sim/fault.hpp"

namespace {

using namespace nicbar;

coll::ExperimentResult run_lossy(double loss, bool adaptive, int reps) {
  coll::ExperimentParams p = coll::experiment(nic::lanai43(), 8, reps);
  p.spec = coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange);
  p.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  p.cluster.nic.adaptive_rto = adaptive;
  if (loss > 0.0) {
    p.cluster.faults.loss.push_back({"", loss});
    p.cluster.faults.seed = 7;
  }
  return coll::run_barrier_experiment(p);
}

/// All links down during [from, until); barriers loop continuously. Returns
/// the gap between the fabric healing and the first barrier completion after
/// it (us), or a negative value if nothing ever completed post-outage.
double time_to_recover_us(bool adaptive, sim::SimTime from, sim::SimTime until) {
  host::ClusterParams cp;
  cp.nodes = 8;
  cp.nic = nic::lanai43();
  cp.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  cp.nic.adaptive_rto = adaptive;
  cp.faults.link_down.push_back({"", from, until});
  host::Cluster cluster(cp);

  std::vector<gm::Endpoint> group;
  for (net::NodeId i = 0; i < 8; ++i) group.push_back(gm::Endpoint{i, 2});
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (net::NodeId i = 0; i < 8; ++i) {
    ports.push_back(cluster.open_port(i, 2));
    members.push_back(std::make_unique<coll::BarrierMember>(
        *ports.back(), group,
        coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
  }
  // Member 0's completion times stand in for the group (a barrier completes
  // everywhere within one round-trip of completing anywhere).
  std::vector<sim::SimTime> completions;
  for (std::size_t i = 0; i < members.size(); ++i) {
    cluster.sim().spawn([](sim::Simulator& s, coll::BarrierMember& mem,
                           std::vector<sim::SimTime>* out) -> sim::Task {
      for (int k = 0; k < 400; ++k) {
        const coll::BarrierStatus st = co_await mem.run();
        if (st != coll::BarrierStatus::kOk) break;
        if (out != nullptr) out->push_back(s.now());
      }
    }(cluster.sim(), *members[i], i == 0 ? &completions : nullptr));
  }
  cluster.sim().run(sim::SimTime{0} + sim::seconds(1.0));

  for (const sim::SimTime& t : completions) {
    if (t >= until) return (t - until).us();
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace nicbar;

  bench::print_header("Degradation curve: 8-node NIC-PE, shared-stream reliability, 200 reps");
  std::printf("%8s | %14s %10s | %14s %10s\n", "loss", "fixed-RTO(us)", "timeouts",
              "adaptive(us)", "timeouts");
  const double losses[] = {0.0, 0.001, 0.005, 0.01, 0.02, 0.05};
  double fixed_1pct = 0.0, adaptive_1pct = 0.0;
  for (double loss : losses) {
    const coll::ExperimentResult rf = run_lossy(loss, /*adaptive=*/false, 200);
    const coll::ExperimentResult ra = run_lossy(loss, /*adaptive=*/true, 200);
    std::printf("%7.1f%% | %14.2f %10llu | %14.2f %10llu\n", loss * 100.0, rf.mean_us,
                static_cast<unsigned long long>(rf.retransmit_timeouts), ra.mean_us,
                static_cast<unsigned long long>(ra.retransmit_timeouts));
    if (loss == 0.01) {
      fixed_1pct = rf.mean_us;
      adaptive_1pct = ra.mean_us;
    }
  }
  std::printf("\nat 1%% loss the adaptive RTO %s the fixed 1 ms timeout "
              "(%.2f us vs %.2f us per barrier)\n",
              adaptive_1pct < fixed_1pct ? "beats" : "DOES NOT BEAT", adaptive_1pct,
              fixed_1pct);

  bench::print_header("Time-to-recover: all links down for 500 us mid-run (8-node NIC-PE)");
  const sim::SimTime from = sim::SimTime{0} + sim::microseconds(200.0);
  const sim::SimTime until = from + sim::microseconds(500.0);
  const double ttr_fixed = time_to_recover_us(/*adaptive=*/false, from, until);
  const double ttr_adaptive = time_to_recover_us(/*adaptive=*/true, from, until);
  std::printf("  fixed RTO    : first barrier %8.2f us after the fabric heals\n", ttr_fixed);
  std::printf("  adaptive RTO : first barrier %8.2f us after the fabric heals\n", ttr_adaptive);
  std::printf("\nexpected: adaptive recovers faster on both counts — its RTO tracks the\n"
              "~10 us measured RTT instead of stalling a full (backed-off) millisecond\n");
  return 0;
}
