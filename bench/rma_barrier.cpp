// Host-RDMA barriers (rma:: dissemination / tree-put) vs the NIC firmware
// families, LANai 4.3, same axes as Figure 5(a). The study asks where the
// paper's NIC-resident barrier actually earns its keep once the host can
// drive one-sided puts itself: the host-RDMA algorithms pay a PCI DMA + GM
// round per flag write but no host recv interrupt, so they land between
// host-PE message loops and the NIC firmware.
//
// The NIC-PE column re-runs the exact Fig. 5(a) grid configuration and is
// additionally re-measured through the single-case path; the two must agree
// to the last bit (determinism contract), reported as the exact_match
// metric and enforced by the exit code.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::RdmaAlgorithm;
  bench::print_header("Host-RDMA barriers vs NIC firmware, LANai 4.3 (us)");
  std::printf("%6s %10s %10s %12s %10s %12s\n", "nodes", "NIC-PE", "NIC-GB", "host-dissem",
              "host-tree", "exact_match");

  const nic::NicConfig cfg = nic::lanai43();
  const std::vector<std::size_t> nodes{2, 4, 8, 16};

  // NIC families through the very grid path fig5a uses.
  const std::vector<bench::FourWay> nic_rows = bench::measure_grid(cfg, nodes);

  // Both host-RDMA families as one sweep spanning the grid.
  coll::SweepPlan plan;
  for (const std::size_t n : nodes) {
    for (const RdmaAlgorithm alg : {RdmaAlgorithm::kDissemination, RdmaAlgorithm::kTreePut}) {
      coll::ExperimentParams p = coll::experiment(cfg, n, 500);
      p.spec = coll::rdma_spec(alg, /*radix=*/2);
      plan.add(coll::variant_label(p), p);
    }
  }
  const coll::SweepResult rdma = bench::run(plan);

  bench::BenchSummary summary("rma_barrier", "nicbar-rma-v1");
  bool all_exact = true;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double nic_pe = nic_rows[i].nic_pe;
    const double nic_gb = nic_rows[i].nic_gb;
    const double dissem = rdma.cases[2 * i + 0].result.mean_us;
    const double tree = rdma.cases[2 * i + 1].result.mean_us;
    // Contention-free NIC-PE must be bit-identical between the fig5a grid
    // and an independently built single-case plan.
    const double pe_again = bench::measure(cfg, nodes[i], coll::Location::kNic,
                                           nic::BarrierAlgorithm::kPairwiseExchange);
    const bool exact = pe_again == nic_pe;
    all_exact = all_exact && exact;
    std::printf("%6zu %10.2f %10.2f %12.2f %10.2f %12s\n", nodes[i], nic_pe, nic_gb, dissem,
                tree, exact ? "yes" : "NO");
    summary.add("n" + std::to_string(nodes[i]), {{"nic_pe_us", nic_pe},
                                                 {"nic_gb_us", nic_gb},
                                                 {"host_dissem_us", dissem},
                                                 {"host_tree_us", tree},
                                                 {"exact_match", exact ? 1.0 : 0.0}});
  }
  std::printf("\ncrossover: host-RDMA beats the NIC families only where the flag-wait\n"
              "round count stays flat while the firmware pays per-member work; see\n"
              "EXPERIMENTS.md for the paper-vs-measured discussion.\n");
  summary.write();
  return all_exact ? 0 : 1;
}
