// §3.1 worst case: a slow process runs consecutive two-party barriers with
// every other process; the fast peers all fire their barrier messages first,
// so the slow node's NIC must absorb N-1 unexpected messages in its
// per-connection bit records. Verifies the bound (at most one unexpected
// message per remote endpoint — zero bit collisions) and reports the cost.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

namespace {

using namespace nicbar;

sim::Task pair_barrier_proc(coll::BarrierMember& m, int reps) {
  for (int r = 0; r < reps; ++r) co_await m.run();
}

}  // namespace

int main() {
  using namespace nicbar;
  bench::print_header("Unexpected-message stress: consecutive pairwise barriers (§3.1)");
  std::printf("%6s %14s %14s %14s\n", "nodes", "unexpected", "collisions", "total(us)");

  for (std::size_t n : {4u, 8u, 16u}) {
    host::ClusterParams cp;
    cp.nodes = n;
    cp.nic = nic::lanai43();
    host::Cluster cluster(cp);

    // Node 0 is the slow one: it delays before each two-party barrier.
    // Each peer i runs exactly one barrier with node 0 and fires immediately.
    std::vector<std::unique_ptr<gm::Port>> ports;
    std::vector<std::unique_ptr<coll::BarrierMember>> members;
    auto p0 = cluster.open_port(0, 2);

    std::vector<std::unique_ptr<coll::BarrierMember>> node0_members;
    for (net::NodeId i = 1; i < n; ++i) {
      std::vector<gm::Endpoint> pair{{0, 2}, {i, 2}};
      node0_members.push_back(std::make_unique<coll::BarrierMember>(
          *p0, pair,
          coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
      ports.push_back(cluster.open_port(i, 2));
      members.push_back(std::make_unique<coll::BarrierMember>(
          *ports.back(), pair,
          coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
      cluster.sim().spawn(pair_barrier_proc(*members.back(), 1));
    }
    // The slow node enters its barriers only after everyone has fired.
    cluster.sim().spawn([](sim::Simulator& sim,
                           std::vector<std::unique_ptr<coll::BarrierMember>>* ms)
                            -> sim::Task {
      co_await sim.delay(sim::milliseconds(1.0));
      for (auto& m : *ms) co_await m->run();
    }(cluster.sim(), &node0_members));
    cluster.sim().run();

    const nic::NicStats& s = cluster.nic(0).stats();
    std::printf("%6zu %14llu %14llu %14.2f\n", n,
                static_cast<unsigned long long>(s.unexpected_recorded),
                static_cast<unsigned long long>(s.bit_collisions),
                cluster.sim().now().us());
  }
  std::printf("\nexpected: node 0 records exactly N-1 unexpected messages, zero collisions\n");
  return 0;
}
