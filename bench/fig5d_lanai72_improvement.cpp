// Figure 5(d): factor of improvement vs nodes, LANai 7.2.
// Paper anchor: PE 1.83x at 8 nodes (vs 1.66x on LANai 4.3 — a faster NIC
// processor raises the improvement, the paper's Eq. 3 prediction).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  bench::print_header("Figure 5(d): factor of improvement, LANai 7.2");
  std::printf("%6s %12s %12s\n", "nodes", "PE", "GB");
  const std::vector<std::size_t> nodes{2, 4, 8};
  const std::vector<bench::FourWay> rows = bench::measure_grid(nic::lanai72(), nodes);
  bench::BenchSummary summary("fig5d");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bench::FourWay& f = rows[i];
    std::printf("%6zu %12.2f %12.2f\n", nodes[i], f.host_pe / f.nic_pe, f.host_gb / f.nic_gb);
    summary.add(std::string("n") + std::to_string(nodes[i]),
                {{"pe_improvement", f.host_pe / f.nic_pe},
                 {"gb_improvement", f.host_gb / f.nic_gb}});
  }

  // The headline cross-card comparison.
  const bench::FourWay f43 = bench::measure_all(nic::lanai43(), 8);
  const bench::FourWay f72 = bench::measure_all(nic::lanai72(), 8);
  std::printf("\n8-node PE improvement: LANai 4.3 %.2fx -> LANai 7.2 %.2fx (paper: 1.66 -> 1.83)\n",
              f43.host_pe / f43.nic_pe, f72.host_pe / f72.nic_pe);
  summary.add("crosscard-n8", {{"lanai43_pe_improvement", f43.host_pe / f43.nic_pe},
                               {"lanai72_pe_improvement", f72.host_pe / f72.nic_pe}});
  summary.write();
  return 0;
}
