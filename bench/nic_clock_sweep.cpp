// §1/§8 ablation: "This factor of improvement is expected to increase ...
// with the speed of the NIC processor." Sweeps the NIC clock from the
// paper's 33 MHz LANai 4.3 through 66 MHz LANai 7.2 up to a hypothetical
// 200 MHz part (the real LANai 9 reached 132 MHz).
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  const std::vector<double> clocks{33.0, 50.0, 66.0, 100.0, 132.0, 200.0};

  coll::SweepPlan plan;
  for (const double mhz : clocks) {
    for (const Location loc : {Location::kHost, Location::kNic}) {
      nic::NicConfig cfg = nic::lanai43();
      cfg.clock_mhz = mhz;
      coll::ExperimentParams p = coll::experiment(cfg, 8);
      p.spec = coll::spec(loc, BarrierAlgorithm::kPairwiseExchange);
      plan.add(coll::variant_label(p) + "@" + std::to_string(static_cast<int>(mhz)), p);
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::print_header("NIC clock sweep, 8-node PE barrier");
  std::printf("%10s %12s %12s %12s\n", "clock_mhz", "host(us)", "NIC(us)", "improvement");
  for (std::size_t i = 0; i < clocks.size(); ++i) {
    const double host_us = r.cases[2 * i].result.mean_us;
    const double nic_us = r.cases[2 * i + 1].result.mean_us;
    std::printf("%10.0f %12.2f %12.2f %12.2f\n", clocks[i], host_us, nic_us, host_us / nic_us);
  }
  std::printf("\nexpected: improvement rises with NIC clock (paper: 1.66 @33 -> 1.83 @66)\n");
  return 0;
}
