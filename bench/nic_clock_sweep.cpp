// §1/§8 ablation: "This factor of improvement is expected to increase ...
// with the speed of the NIC processor." Sweeps the NIC clock from the
// paper's 33 MHz LANai 4.3 through 66 MHz LANai 7.2 up to a hypothetical
// 200 MHz part (the real LANai 9 reached 132 MHz).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  bench::print_header("NIC clock sweep, 8-node PE barrier");
  std::printf("%10s %12s %12s %12s\n", "clock_mhz", "host(us)", "NIC(us)", "improvement");
  for (double mhz : {33.0, 50.0, 66.0, 100.0, 132.0, 200.0}) {
    nic::NicConfig cfg = nic::lanai43();
    cfg.clock_mhz = mhz;
    coll::ExperimentParams p = bench::base_params(cfg, 8);
    p.spec = bench::make_spec(Location::kHost, BarrierAlgorithm::kPairwiseExchange);
    const double host_us = coll::run_barrier_experiment(p).mean_us;
    p.spec.location = Location::kNic;
    const double nic_us = coll::run_barrier_experiment(p).mean_us;
    std::printf("%10.0f %12.2f %12.2f %12.2f\n", mhz, host_us, nic_us, host_us / nic_us);
  }
  std::printf("\nexpected: improvement rises with NIC clock (paper: 1.66 @33 -> 1.83 @66)\n");
  return 0;
}
