// Figure 5(a): barrier latency vs nodes, LANai 4.3 (33 MHz), 16-port switch.
// Four series: NIC-based and host-based, PE and GB (GB at best dimension).
//
// Paper anchors: 16-node NIC-PE = 102.14us, NIC-GB = 152.27us; host-PE is
// 1.78x NIC-PE (~182us), host-GB 1.46x NIC-GB (~222us); NIC-GB loses to
// host-GB at N=2 only.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  bench::print_header("Figure 5(a): barrier latency, LANai 4.3 (us)");
  std::printf("%6s %10s %10s %10s %10s\n", "nodes", "NIC-PE", "NIC-GB", "host-PE", "host-GB");
  const std::vector<std::size_t> nodes{2, 4, 8, 16};
  const std::vector<bench::FourWay> rows = bench::measure_grid(nic::lanai43(), nodes);
  bench::BenchSummary summary("fig5a");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const bench::FourWay& f = rows[i];
    std::printf("%6zu %10.2f %10.2f %10.2f %10.2f\n", nodes[i], f.nic_pe, f.nic_gb, f.host_pe,
                f.host_gb);
    summary.add(std::string("n") + std::to_string(nodes[i]),
                {{"nic_pe_us", f.nic_pe},
                 {"nic_gb_us", f.nic_gb},
                 {"host_pe_us", f.host_pe},
                 {"host_gb_us", f.host_gb}});
  }
  std::printf("\npaper (16 nodes): NIC-PE 102.14, NIC-GB 152.27, host-PE ~182, host-GB ~222\n");
  summary.write();
  return 0;
}
