// Scalability extension (§8: "scalable fine-grained parallel computation"):
// PE barrier latency up to 1024 nodes on a tree of 16-port switches, NIC vs
// host. log2(N) growth means the NIC advantage compounds with size. The
// whole (node-count x location) grid is one declarative sweep — the largest
// runs dominate wall-clock, so NICBAR_JOBS pays off most here.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  const std::vector<std::size_t> node_counts{16, 32, 64, 128, 256, 512, 1024};

  coll::SweepPlan plan;
  for (const std::size_t n : node_counts) {
    for (const Location loc : {Location::kHost, Location::kNic}) {
      coll::ExperimentParams p = coll::experiment(nic::lanai43(), n, n >= 256 ? 20 : 100);
      p.cluster.topology = host::Topology::kSwitchTree;
      p.cluster.tree_radix = 16;
      p.spec = coll::spec(loc, BarrierAlgorithm::kPairwiseExchange);
      plan.add(coll::variant_label(p), p);
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::print_header("Scalability: PE barrier on a 16-port switch tree, LANai 4.3");
  std::printf("%6s %12s %12s %12s\n", "nodes", "host(us)", "NIC(us)", "improvement");
  bench::BenchSummary summary("scalability_sweep");
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const double host_us = r.cases[2 * i].result.mean_us;
    const double nic_us = r.cases[2 * i + 1].result.mean_us;
    std::printf("%6zu %12.2f %12.2f %12.2f\n", node_counts[i], host_us, nic_us,
                host_us / nic_us);
    summary.add("n" + std::to_string(node_counts[i]),
                {{"nodes", static_cast<double>(node_counts[i])},
                 {"host_us", host_us},
                 {"nic_us", nic_us},
                 {"improvement", host_us / nic_us}});
  }
  summary.write();
  std::printf(
      "\nexpected: both grow ~log2(N); improvement keeps rising with N (Eq. 3).\n"
      "note: the switch tree has constant bisection bandwidth, so at >=512\n"
      "nodes trunk-link contention (not log2 N) starts to dominate both\n"
      "variants — visible as a flattening/dip in the improvement column.\n");
  return 0;
}
