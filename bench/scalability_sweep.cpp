// Scalability extension (§8: "scalable fine-grained parallel computation"):
// PE barrier latency up to 1024 nodes on a tree of 16-port switches, NIC vs
// host. log2(N) growth means the NIC advantage compounds with size.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  bench::print_header("Scalability: PE barrier on a 16-port switch tree, LANai 4.3");
  std::printf("%6s %12s %12s %12s\n", "nodes", "host(us)", "NIC(us)", "improvement");
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    coll::ExperimentParams p = bench::base_params(nic::lanai43(), n, n >= 256 ? 20 : 100);
    p.cluster.topology = host::Topology::kSwitchTree;
    p.cluster.tree_radix = 16;
    p.spec = bench::make_spec(Location::kHost, BarrierAlgorithm::kPairwiseExchange);
    const double host_us = coll::run_barrier_experiment(p).mean_us;
    p.spec.location = Location::kNic;
    const double nic_us = coll::run_barrier_experiment(p).mean_us;
    std::printf("%6zu %12.2f %12.2f %12.2f\n", n, host_us, nic_us, host_us / nic_us);
  }
  std::printf(
      "\nexpected: both grow ~log2(N); improvement keeps rising with N (Eq. 3).\n"
      "note: the switch tree has constant bisection bandwidth, so at >=512\n"
      "nodes trunk-link contention (not log2 N) starts to dominate both\n"
      "variants — visible as a flattening/dip in the improvement column.\n");
  return 0;
}
