// §8 future-work extension bench: NIC-based allreduce vs host-based
// allreduce (same GB tree, dimension 2), LANai 4.3 and 7.2. The paper
// predicts reductions "could benefit from similar NIC-level
// implementations"; this quantifies the benefit in our model.
//
// One SweepPlan of custom cases covers the (nic, nodes, location) grid, so
// NICBAR_JOBS shards it and NICBAR_METRICS_JSON instruments it like every
// declarative bench.
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/reduce.hpp"
#include "common.hpp"

namespace {

using namespace nicbar;

coll::ExperimentResult run(const nic::NicConfig& cfg, std::size_t nodes, coll::Location loc,
                           int reps, sim::telemetry::Telemetry* telemetry) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic = cfg;
  cp.telemetry = telemetry;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < nodes; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::ReduceMember>> members;
  for (std::size_t i = 0; i < nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    members.push_back(std::make_unique<coll::ReduceMember>(*ports.back(), group, loc,
                                                           nic::ReduceOp::kSum, 2));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.sim().spawn([](coll::ReduceMember& m, std::int64_t v, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) {
        (void)co_await m.allreduce(v);
      }
    }(*members[i], static_cast<std::int64_t>(i), reps));
  }
  cluster.sim().run();
  cluster.snapshot_metrics();
  coll::ExperimentResult res;
  res.nodes = nodes;
  res.reps = reps;
  res.total_us = cluster.sim().now().us();
  res.mean_us = res.total_us / reps;
  return res;
}

}  // namespace

int main() {
  using namespace nicbar;
  const std::vector<nic::NicConfig> nics{nic::lanai43(), nic::lanai72()};
  const std::vector<std::size_t> node_counts{2, 4, 8, 16};

  coll::SweepPlan plan;
  for (const nic::NicConfig& cfg : nics) {
    for (const std::size_t n : node_counts) {
      for (const coll::Location loc : {coll::Location::kHost, coll::Location::kNic}) {
        const std::string label = std::string(loc == coll::Location::kNic ? "nic" : "host") +
                                  "-allreduce-n" + std::to_string(n) + "-" + cfg.model;
        plan.add_custom(label, [cfg, n, loc](sim::telemetry::Telemetry* t) {
          return run(cfg, n, loc, 300, t);
        });
      }
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::BenchSummary summary("allreduce");
  std::size_t c = 0;
  for (const nic::NicConfig& cfg : nics) {
    bench::print_header("Allreduce (sum, GB dim 2): " + cfg.model + " (us)");
    std::printf("%6s %12s %12s %12s\n", "nodes", "host", "NIC", "improvement");
    for (const std::size_t n : node_counts) {
      const double host_us = r.cases[c++].result.mean_us;
      const double nic_us = r.cases[c++].result.mean_us;
      std::printf("%6zu %12.2f %12.2f %12.2f\n", n, host_us, nic_us, host_us / nic_us);
      summary.add(cfg.model + "-n" + std::to_string(n),
                  {{"host_us", host_us}, {"nic_us", nic_us}, {"improvement", host_us / nic_us}});
    }
  }
  std::printf("\nexpected: NIC-based allreduce beats host-based at every size >= 4,\n"
              "mirroring the barrier result (§8: reductions benefit similarly)\n");
  summary.write();
  return 0;
}
