// §8 future-work extension bench: NIC-based allreduce vs host-based
// allreduce (same GB tree, dimension 2), LANai 4.3 and 7.2. The paper
// predicts reductions "could benefit from similar NIC-level
// implementations"; this quantifies the benefit in our model.
#include <cstdio>
#include <memory>
#include <vector>

#include "coll/reduce.hpp"
#include "common.hpp"

namespace {

using namespace nicbar;

double run(const nic::NicConfig& cfg, std::size_t nodes, coll::Location loc, int reps) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic = cfg;
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < nodes; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::ReduceMember>> members;
  for (std::size_t i = 0; i < nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    members.push_back(std::make_unique<coll::ReduceMember>(*ports.back(), group, loc,
                                                           nic::ReduceOp::kSum, 2));
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.sim().spawn([](coll::ReduceMember& m, std::int64_t v, int r) -> sim::Task {
      for (int k = 0; k < r; ++k) {
        (void)co_await m.allreduce(v);
      }
    }(*members[i], static_cast<std::int64_t>(i), reps));
  }
  cluster.sim().run();
  return cluster.sim().now().us() / reps;
}

}  // namespace

int main() {
  using namespace nicbar;
  for (const nic::NicConfig& cfg : {nic::lanai43(), nic::lanai72()}) {
    bench::print_header("Allreduce (sum, GB dim 2): " + cfg.model + " (us)");
    std::printf("%6s %12s %12s %12s\n", "nodes", "host", "NIC", "improvement");
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
      const double host_us = run(cfg, n, coll::Location::kHost, 300);
      const double nic_us = run(cfg, n, coll::Location::kNic, 300);
      std::printf("%6zu %12.2f %12.2f %12.2f\n", n, host_us, nic_us, host_us / nic_us);
    }
  }
  std::printf("\nexpected: NIC-based allreduce beats host-based at every size >= 4,\n"
              "mirroring the barrier result (§8: reductions benefit similarly)\n");
  return 0;
}
