// Multi-tenant tail latency: p50/p95/p99 of per-collective latency as the
// offered load rises, for disjoint vs overlapping job placement on one
// shared fabric. Single-tenant barriers are deterministic — every rep costs
// the same — so any p99/p50 separation here is pure cross-job interference:
// overlapping placements share LANai processors and wires, and the paper's
// NIC-resident barrier has no way to hide a neighbour's occupancy.
//
// Offered load is varied through the Poisson arrival rate; each (placement,
// load) grid point is one wl::Driver run wrapped in a SweepPlan custom case,
// so NICBAR_JOBS shards the grid and NICBAR_METRICS_JSON instruments it.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "wl/driver.hpp"

namespace {

using namespace nicbar;

wl::WorkloadSpec make_spec(wl::Placement placement, double mean_gap_us) {
  wl::WorkloadSpec spec;
  spec.cluster_nodes = 32;
  spec.placement = placement;
  // gap 0 = every job at t=0 (full contention); Poisson needs a positive mean.
  spec.arrival.kind = mean_gap_us > 0.0 ? wl::ArrivalKind::kPoisson : wl::ArrivalKind::kFixed;
  spec.arrival.interval = sim::microseconds(mean_gap_us);
  spec.seed = 7;
  spec.hist_max_us = 4000.0;
  spec.hist_bins = 4000;
  spec.cluster.nic = nic::lanai43();

  wl::JobClass job;
  job.name = "tenant";
  job.count = 4;
  job.nodes = 8;
  job.iterations = 200;
  job.mix.barrier = 1.0;
  job.compute_mean = sim::microseconds(30.0);
  job.compute_imbalance = 0.4;
  spec.classes.push_back(job);
  return spec;
}

}  // namespace

int main() {
  using namespace nicbar;
  // Mean inter-arrival gaps, densest last: one job runs ~30ms, so at a 40ms
  // mean gap the tenants mostly run alone (baseline); at 0 all four collide
  // at t=0 (full contention).
  const std::vector<double> gaps_us{40000.0, 10000.0, 2000.0, 0.0};
  const std::vector<wl::Placement> placements{wl::Placement::kDisjoint,
                                              wl::Placement::kOverlapping};

  coll::SweepPlan plan;
  std::vector<wl::Report> reports(placements.size() * gaps_us.size());
  std::size_t slot = 0;
  for (const wl::Placement placement : placements) {
    for (const double gap : gaps_us) {
      const std::string label = std::string("workload-") + wl::to_string(placement) + "-gap" +
                                std::to_string(static_cast<int>(gap)) + "us";
      wl::Report* out = &reports[slot++];
      plan.add_custom(label, [placement, gap, out](sim::telemetry::Telemetry* t) {
        wl::WorkloadSpec spec = make_spec(placement, gap);
        spec.cluster.telemetry = t;  // null when uninstrumented: private bundle
        *out = wl::run_workload(spec);
        coll::ExperimentResult res;
        res.nodes = spec.cluster_nodes;
        res.reps = spec.classes.front().iterations;
        res.mean_us = out->overall.mean_us;
        res.total_us = out->makespan_us;
        res.barrier_failures = out->total_failures;
        return res;
      });
    }
  }
  (void)bench::run(plan);

  bench::BenchSummary summary("workload");
  slot = 0;
  for (const wl::Placement placement : placements) {
    bench::print_header(std::string("Tail latency under load: 4x8-process tenants, ") +
                        wl::to_string(placement) + " placement, 32 nodes, LANai 4.3 (us)");
    std::printf("%12s %10s %10s %10s %10s %12s %10s\n", "mean gap us", "p50", "p95", "p99",
                "p99/p50", "max NIC occ", "makespan");
    for (const double gap : gaps_us) {
      const wl::Report& r = reports[slot++];
      std::printf("%12.0f %10.2f %10.2f %10.2f %10.2f %12.3f %10.0f\n", gap, r.overall.p50_us,
                  r.overall.p95_us, r.overall.p99_us, r.overall.p99_us / r.overall.p50_us,
                  r.max_nic_occupancy, r.makespan_us);
      summary.add(std::string(wl::to_string(placement)) + "-gap" +
                      std::to_string(static_cast<int>(gap)) + "us",
                  {{"p50_us", r.overall.p50_us},
                   {"p95_us", r.overall.p95_us},
                   {"p99_us", r.overall.p99_us},
                   {"tail_ratio", r.overall.p99_us / r.overall.p50_us},
                   {"max_nic_occupancy", r.max_nic_occupancy},
                   {"makespan_us", r.makespan_us}});
    }
  }
  std::printf("\nexpected: disjoint tenants never notice each other (identical percentiles\n"
              "at every load); overlapping tenants share LANai processors, so every\n"
              "percentile inflates and p99 keeps climbing as the arrival gap shrinks\n"
              "and more jobs pile onto the same NICs\n");
  summary.write();
  return 0;
}
