// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench prints a self-contained table of *simulated* time. The paper's
// numbers came from real LANai 4.3/7.2 hardware; we reproduce the shape
// (ordering, approximate factors, crossovers) rather than exact values —
// see EXPERIMENTS.md for paper-vs-measured.
//
// Benches build declarative coll::SweepPlans and run them through the shared
// sweep engine. Two environment variables are honoured here — and only here,
// at the bench-binary edge; the library API is explicit options throughout:
//
//   NICBAR_JOBS=N            shard each sweep across N worker threads
//                            (0 = one per hardware thread; unset = serial)
//   NICBAR_METRICS_JSON=F    instrument every case and append its counters
//                            to F, one JSON document per line
//   NICBAR_BENCH_JSON_DIR=D  write the BENCH_<name>.json summary into D
//                            instead of the current directory
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "coll/sweep.hpp"
#include "host/cluster.hpp"
#include "nic/config.hpp"
#include "sim/telemetry.hpp"

namespace nicbar::bench {

/// Sweep options for every bench in this directory, from the environment.
inline coll::SweepOptions sweep_options() {
  coll::SweepOptions o;
  if (const char* jobs = std::getenv("NICBAR_JOBS"); jobs != nullptr && *jobs != '\0') {
    o.workers = static_cast<unsigned>(std::strtoul(jobs, nullptr, 10));
  }
  if (const char* path = std::getenv("NICBAR_METRICS_JSON"); path != nullptr && *path != '\0') {
    static coll::MetricsSink sink{std::string(path)};
    if (!sink.ok()) {
      std::fprintf(stderr, "warning: cannot append metrics to %s\n", path);
    }
    o.instrument = true;
    o.sink = &sink;
  }
  return o;
}

/// Runs a plan with the environment-derived options above.
inline coll::SweepResult run(const coll::SweepPlan& plan) { return plan.run(sweep_options()); }

/// The four paper variants at one node count (GB at its best dimension).
struct FourWay {
  double nic_pe, nic_gb, host_pe, host_gb;
};

/// Adds the four paper variants at `nodes` to `plan` (labels come from
/// coll::variant_label); read back with four_way() at the same grid index.
inline void add_four_way(coll::SweepPlan& plan, const nic::NicConfig& cfg, std::size_t nodes,
                         int reps = 500) {
  using coll::Location;
  using nic::BarrierAlgorithm;
  for (const Location loc : {Location::kNic, Location::kHost}) {
    coll::ExperimentParams pe = coll::experiment(cfg, nodes, reps);
    pe.spec = coll::spec(loc, BarrierAlgorithm::kPairwiseExchange);
    plan.add(coll::variant_label(pe), pe);
    coll::ExperimentParams gb = coll::experiment(cfg, nodes, reps);
    gb.spec = coll::spec(loc, BarrierAlgorithm::kGatherBroadcast);
    plan.add_gb_sweep(coll::variant_label(gb), gb);
  }
}

/// The i-th four-way group of a plan built with add_four_way.
inline FourWay four_way(const coll::SweepResult& r, std::size_t i) {
  return FourWay{r.cases[4 * i + 0].result.mean_us, r.cases[4 * i + 1].result.mean_us,
                 r.cases[4 * i + 2].result.mean_us, r.cases[4 * i + 3].result.mean_us};
}

/// Measures the four variants at every node count as ONE sweep, so a
/// parallel run (NICBAR_JOBS) spans the whole figure grid at once.
inline std::vector<FourWay> measure_grid(const nic::NicConfig& cfg,
                                         const std::vector<std::size_t>& node_counts,
                                         int reps = 500) {
  coll::SweepPlan plan;
  for (const std::size_t n : node_counts) add_four_way(plan, cfg, n, reps);
  const coll::SweepResult r = run(plan);
  std::vector<FourWay> rows;
  rows.reserve(node_counts.size());
  for (std::size_t i = 0; i < node_counts.size(); ++i) rows.push_back(four_way(r, i));
  return rows;
}

inline FourWay measure_all(const nic::NicConfig& cfg, std::size_t nodes, int reps = 500) {
  return measure_grid(cfg, {nodes}, reps).front();
}

/// Mean barrier latency (us) for one variant; GB runs at its best dimension
/// (the paper's methodology: sweep 1..N-1, take the minimum).
inline double measure(const nic::NicConfig& cfg, std::size_t nodes, coll::Location loc,
                      nic::BarrierAlgorithm alg, int reps = 500) {
  coll::ExperimentParams p = coll::experiment(cfg, nodes, reps);
  p.spec = coll::spec(loc, alg);
  coll::SweepPlan plan;
  if (alg == nic::BarrierAlgorithm::kGatherBroadcast) {
    plan.add_gb_sweep(coll::variant_label(p), p);
  } else {
    plan.add(coll::variant_label(p), p);
  }
  return run(plan).cases.front().result.mean_us;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Machine-readable companion to a bench's human table: one
/// `BENCH_<name>.json` document per binary (schema "nicbar-bench-v1"),
/// overwritten on every run so CI can diff trajectories and detect schema
/// drift. Rows mirror the printed table: one labelled grid point each, with
/// a flat map of numeric metrics. Written to $NICBAR_BENCH_JSON_DIR (when
/// set) or the current directory.
class BenchSummary {
 public:
  /// `schema` names the row contract check_bench_json.py validates against;
  /// benches whose rows carry a different metric set (e.g. the rma_barrier
  /// crossover study) pass their own identifier.
  explicit BenchSummary(std::string name, std::string schema = "nicbar-bench-v1")
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Appends one labelled row. Metric keys should be stable identifiers
  /// (snake_case, unit-suffixed: "mean_us", "p99_us", "improvement").
  void add(const std::string& label, std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back(Row{label, std::move(metrics)});
  }

  /// Writes BENCH_<name>.json. Returns false (after a stderr warning) when
  /// the file cannot be written; benches still exit 0 — the table on stdout
  /// remains the primary artifact.
  bool write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("NICBAR_BENCH_JSON_DIR"); dir != nullptr && *dir != '\0') {
      path = std::string(dir) + "/" + path;
    }
    std::ofstream out(path);
    if (!out.is_open()) {
      std::fprintf(stderr, "warning: cannot write bench summary to %s\n", path.c_str());
      return false;
    }
    using sim::telemetry::json_escape;
    out << "{\n  \"schema\": \"" << json_escape(schema_) << "\",\n  \"bench\": \""
        << json_escape(name_) << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "    {\"label\": \"" << json_escape(r.label) << "\", \"metrics\": {";
      for (std::size_t m = 0; m < r.metrics.size(); ++m) {
        out << (m == 0 ? "" : ", ") << '"' << json_escape(r.metrics[m].first)
            << "\": " << r.metrics[m].second;
      }
      out << "}}" << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return true;
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  std::string schema_;
  std::vector<Row> rows_;
};

}  // namespace nicbar::bench
