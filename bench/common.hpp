// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench prints a self-contained table of *simulated* time. The paper's
// numbers came from real LANai 4.3/7.2 hardware; we reproduce the shape
// (ordering, approximate factors, crossovers) rather than exact values —
// see EXPERIMENTS.md for paper-vs-measured.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "coll/runner.hpp"
#include "host/cluster.hpp"
#include "nic/config.hpp"
#include "sim/telemetry.hpp"

namespace nicbar::bench {

inline coll::ExperimentParams base_params(const nic::NicConfig& nic_cfg, std::size_t nodes,
                                          int reps = 500) {
  coll::ExperimentParams p;
  p.nodes = nodes;
  p.reps = reps;
  p.cluster.nic = nic_cfg;
  return p;
}

inline coll::BarrierSpec make_spec(coll::Location loc, nic::BarrierAlgorithm alg,
                                   std::size_t dim = 2) {
  coll::BarrierSpec s;
  s.location = loc;
  s.algorithm = alg;
  s.gb_dimension = dim;
  return s;
}

coll::ExperimentResult run_with_metrics(coll::ExperimentParams p, const std::string& label);

/// Mean barrier latency (us) for the given variant; GB runs at its best
/// dimension (the paper's methodology: sweep 1..N-1, take the minimum).
inline double measure(const nic::NicConfig& nic_cfg, std::size_t nodes, coll::Location loc,
                      nic::BarrierAlgorithm alg, int reps = 500) {
  coll::ExperimentParams p = base_params(nic_cfg, nodes, reps);
  p.spec = make_spec(loc, alg);
  if (alg == nic::BarrierAlgorithm::kGatherBroadcast && nodes > 2) {
    const auto [best, us] = coll::best_gb_dimension(p);
    if (std::getenv("NICBAR_METRICS_JSON") == nullptr) return us;
    p.spec.gb_dimension = best;  // re-run the winner instrumented
  } else if (alg == nic::BarrierAlgorithm::kGatherBroadcast) {
    p.spec.gb_dimension = 1;
  }
  const std::string label = std::string(loc == coll::Location::kNic ? "nic" : "host") + "-" +
                            (alg == nic::BarrierAlgorithm::kPairwiseExchange ? "pe" : "gb") +
                            "-n" + std::to_string(nodes) + "-" + nic_cfg.model;
  return run_with_metrics(p, label).mean_us;
}

struct FourWay {
  double nic_pe, nic_gb, host_pe, host_gb;
};

inline FourWay measure_all(const nic::NicConfig& nic_cfg, std::size_t nodes, int reps = 500) {
  using coll::Location;
  using nic::BarrierAlgorithm;
  FourWay f{};
  f.nic_pe = measure(nic_cfg, nodes, Location::kNic, BarrierAlgorithm::kPairwiseExchange, reps);
  f.nic_gb = measure(nic_cfg, nodes, Location::kNic, BarrierAlgorithm::kGatherBroadcast, reps);
  f.host_pe =
      measure(nic_cfg, nodes, Location::kHost, BarrierAlgorithm::kPairwiseExchange, reps);
  f.host_gb =
      measure(nic_cfg, nodes, Location::kHost, BarrierAlgorithm::kGatherBroadcast, reps);
  return f;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Instrumented variant of run_barrier_experiment: when NICBAR_METRICS_JSON
/// is set in the environment, the run is executed with a metrics registry
/// attached and the counters are appended (one JSON document per call) to
/// that file. With the variable unset — the default for every figure bench —
/// no telemetry is attached and the simulated timeline is identical to the
/// plain runner.
inline coll::ExperimentResult run_with_metrics(coll::ExperimentParams p,
                                               const std::string& label) {
  const char* path = std::getenv("NICBAR_METRICS_JSON");
  if (path == nullptr || *path == '\0') return coll::run_barrier_experiment(p);
  sim::telemetry::Telemetry telemetry;
  telemetry.enable_breakdown();
  p.cluster.telemetry = &telemetry;
  const coll::ExperimentResult r = coll::run_barrier_experiment(p);
  std::ofstream out(path, std::ios::app);
  if (out) {
    out << "{\"bench\": \"" << sim::telemetry::json_escape(label) << "\", \"metrics\": ";
    telemetry.metrics().write_json(out);
    out << "}\n";
  } else {
    std::fprintf(stderr, "warning: cannot append metrics to %s\n", path);
  }
  return r;
}

}  // namespace nicbar::bench
