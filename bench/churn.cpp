// Barrier-group churn under NIC-slot admission control: a 64-node cluster
// runs a stream of short managed jobs (each one creates a barrier group,
// runs its iterations, destroys it) while the per-NIC barrier-state slot
// capacity sweeps from scarce to plentiful. Overlapping placement co-locates
// tenants, so several live groups compete for each NIC's slots at once.
//
// Reported per capacity point: group throughput (create/destroy cycles per
// simulated second), the fraction of barriers that ran in host-fallback mode
// (kOkDegraded), admission rejections, the slot high-water mark, and
// re-promotions back to NIC offload. The expected shape: with ample slots
// nothing degrades; as capacity shrinks the fallback fraction rises while
// throughput holds (degradation is graceful — jobs slow down, they never
// fail) and at zero slots every barrier is host-driven.
//
// Writes BENCH_churn.json (schema "nicbar-churn-v1") next to the table.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/telemetry.hpp"
#include "wl/driver.hpp"

namespace {

using namespace nicbar;

constexpr std::size_t kClusterNodes = 64;

wl::WorkloadSpec make_spec(int barrier_slots) {
  wl::WorkloadSpec spec;
  spec.cluster_nodes = kClusterNodes;
  spec.placement = wl::Placement::kOverlapping;
  spec.arrival.kind = wl::ArrivalKind::kPoisson;
  spec.arrival.interval = sim::microseconds(150.0);
  spec.seed = 7;
  spec.cluster.nic = nic::lanai43();
  spec.cluster.nic.barrier_slots = barrier_slots;

  wl::JobClass job;
  job.name = "churn";
  job.count = 24;
  job.nodes = 8;
  job.iterations = 12;
  job.mix.barrier = 1.0;
  job.compute_mean = sim::microseconds(25.0);
  job.compute_imbalance = 0.3;
  job.managed = true;
  job.promote_every = 4;
  spec.classes.push_back(job);
  return spec;
}

struct ChurnPoint {
  int slots = 0;
  wl::Report report;
};

}  // namespace

int main() {
  const std::vector<int> capacities{8, 4, 2, 1, 0};

  coll::SweepPlan plan;
  std::vector<ChurnPoint> points(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    points[i].slots = capacities[i];
    ChurnPoint* out = &points[i];
    plan.add_custom("churn-slots" + std::to_string(capacities[i]),
                    [out](sim::telemetry::Telemetry* t) {
                      wl::WorkloadSpec spec = make_spec(out->slots);
                      spec.cluster.telemetry = t;
                      out->report = wl::run_workload(spec);
                      coll::ExperimentResult res;
                      res.nodes = kClusterNodes;
                      res.reps = spec.classes.front().iterations;
                      res.mean_us = out->report.overall.mean_us;
                      res.total_us = out->report.makespan_us;
                      res.barrier_failures = out->report.total_failures;
                      return res;
                    });
  }
  (void)bench::run(plan);

  // Per-process barrier count: 24 jobs x 8 members x 12 iterations — the
  // denominator of the fallback fraction (degraded is counted per process).
  const wl::WorkloadSpec shape = make_spec(8);
  const double barriers_total = static_cast<double>(
      shape.classes[0].count * shape.classes[0].nodes *
      static_cast<std::size_t>(shape.classes[0].iterations));

  bench::print_header(
      "Group churn vs NIC slot capacity: 24x8-process managed jobs, 64 nodes, LANai 4.3");
  std::printf("%6s %8s %12s %10s %12s %11s %10s %9s\n", "slots", "groups", "groups/sec",
              "fallback", "rejections", "high-water", "promoted", "failures");
  for (const ChurnPoint& p : points) {
    const wl::Report& r = p.report;
    const double secs = r.makespan_us * 1e-6;
    const double gps = secs > 0.0 ? static_cast<double>(r.groups_created) / secs : 0.0;
    const double fallback = static_cast<double>(r.degraded_collectives) / barriers_total;
    std::printf("%6d %8llu %12.0f %9.1f%% %12llu %11llu %10llu %9llu\n", p.slots,
                static_cast<unsigned long long>(r.groups_created), gps, 100.0 * fallback,
                static_cast<unsigned long long>(r.slot_rejections),
                static_cast<unsigned long long>(r.slot_high_water),
                static_cast<unsigned long long>(r.group_promotions),
                static_cast<unsigned long long>(r.total_failures));
  }
  std::printf("\nexpected: ample slots -> zero fallback; shrinking capacity degrades an\n"
              "increasing fraction of barriers to the host path (throughput holds — no\n"
              "job ever fails); at zero slots every barrier is host-driven. high-water\n"
              "stays at the capacity bound and groups/sec stays of the same order, the\n"
              "graceful-degradation property of the admission design.\n");

  // Machine-readable companion, schema "nicbar-churn-v1" (the lifecycle
  // counters do not fit the generic bench row vocabulary, so the churn bench
  // carries its own schema; tools/check_bench_json.py validates it).
  std::string path = "BENCH_churn.json";
  if (const char* dir = std::getenv("NICBAR_BENCH_JSON_DIR"); dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "warning: cannot write bench summary to %s\n", path.c_str());
    return 0;
  }
  out << "{\n  \"schema\": \"nicbar-churn-v1\",\n  \"bench\": \"churn\",\n"
      << "  \"cluster_nodes\": " << kClusterNodes << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const wl::Report& r = points[i].report;
    const double secs = r.makespan_us * 1e-6;
    const double gps = secs > 0.0 ? static_cast<double>(r.groups_created) / secs : 0.0;
    out << "    {\"label\": \"slots" << points[i].slots << "\", \"metrics\": {"
        << "\"slots\": " << points[i].slots << ", \"groups_created\": " << r.groups_created
        << ", \"groups_destroyed\": " << r.groups_destroyed << ", \"groups_per_sec\": " << gps
        << ", \"fallback_fraction\": "
        << static_cast<double>(r.degraded_collectives) / barriers_total
        << ", \"slot_rejections\": " << r.slot_rejections
        << ", \"slot_high_water\": " << r.slot_high_water
        << ", \"promotions\": " << r.group_promotions
        << ", \"stale_fenced\": " << r.stale_group_fenced
        << ", \"failures\": " << r.total_failures << "}}" << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return 0;
}
