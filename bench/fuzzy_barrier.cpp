// §2.1 fuzzy barrier: because the algorithm runs on the NIC, the host is
// free to compute while polling for completion (Gupta's fuzzy barrier).
// Each node initiates the NIC barrier and then executes compute chunks until
// completion; we report how much of the barrier latency was recovered as
// useful work, versus a host-based barrier where the host is busy driving
// the algorithm.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

namespace {

using namespace nicbar;

struct FuzzyResult {
  double barrier_us = 0;
  double work_us = 0;  // useful compute overlapped with the barrier, node 0
};

FuzzyResult run_fuzzy(std::size_t nodes, sim::Duration chunk, int reps) {
  host::ClusterParams cp;
  cp.nodes = nodes;
  cp.nic = nic::lanai43();
  host::Cluster cluster(cp);
  std::vector<gm::Endpoint> group;
  for (std::size_t i = 0; i < nodes; ++i) {
    group.push_back(gm::Endpoint{static_cast<net::NodeId>(i), 2});
  }
  std::vector<std::unique_ptr<gm::Port>> ports;
  std::vector<std::unique_ptr<coll::BarrierMember>> members;
  for (std::size_t i = 0; i < nodes; ++i) {
    ports.push_back(cluster.open_port(static_cast<net::NodeId>(i), 2));
    members.push_back(std::make_unique<coll::BarrierMember>(
        *ports.back(), group,
        coll::spec(coll::Location::kNic, nic::BarrierAlgorithm::kPairwiseExchange)));
  }
  std::vector<std::uint64_t> chunks(nodes, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.sim().spawn([](coll::BarrierMember& m, sim::Duration c, int r,
                           std::uint64_t* total) -> sim::Task {
      for (int k = 0; k < r; ++k) {
        *total += co_await m.run_fuzzy(c);
      }
    }(*members[i], chunk, reps, &chunks[i]));
  }
  cluster.sim().run();
  FuzzyResult res;
  res.barrier_us = cluster.sim().now().us() / reps;
  res.work_us = static_cast<double>(chunks[0]) * chunk.us() / reps;
  return res;
}

}  // namespace

int main() {
  using namespace nicbar;
  bench::print_header("Fuzzy barrier: compute overlapped with a 16-node NIC-PE barrier");
  std::printf("%12s %14s %16s %12s\n", "chunk(us)", "barrier(us)", "overlap(us/bar)",
              "recovered");
  for (double chunk_us : {1.0, 2.0, 5.0, 10.0, 25.0}) {
    const FuzzyResult r = run_fuzzy(16, sim::microseconds(chunk_us), 100);
    std::printf("%12.1f %14.2f %16.2f %11.0f%%\n", chunk_us, r.barrier_us, r.work_us,
                100.0 * r.work_us / r.barrier_us);
  }
  std::printf("\nexpected: most of the barrier latency is recoverable as host compute;\n"
              "smaller chunks poll more often (slightly longer barrier, finer overlap)\n");
  return 0;
}
