// §7-adjacent extension: NIC-assisted multicast (the authors' own prior
// line of work — "Broadcast/Multicast over Myrinet using NIC-Assisted
// Multidestination Messages"). Compares time-to-last-destination for a host
// send loop vs the NIC-replicated multicast, across fan-out.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

namespace {

using namespace nicbar;

double run(std::size_t fanout, bool use_multicast, std::int64_t bytes, int reps) {
  host::ClusterParams p;
  p.nodes = fanout + 1;
  p.nic = nic::lanai43();
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  std::vector<std::unique_ptr<gm::Port>> sinks;
  std::vector<gm::Endpoint> dests;
  std::vector<sim::SimTime> done(fanout + 1);
  for (net::NodeId i = 1; i <= fanout; ++i) {
    sinks.push_back(cluster.open_port(i, 2));
    dests.push_back(gm::Endpoint{i, 2});
    cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, int r, std::int64_t b,
                           sim::SimTime* when) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await port.provide_receive_buffer(b);
      for (int k = 0; k < r; ++k) (void)co_await port.receive();
      *when = sim.now();
    }(cluster.sim(), *sinks.back(), reps, bytes, &done[i]));
  }
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d, bool mc, int r,
                         std::int64_t b) -> sim::Task {
    for (int k = 0; k < r; ++k) {
      if (mc) {
        co_await port.multicast(d, b);
      } else {
        for (const gm::Endpoint& e : d) co_await port.send(e, b);
      }
    }
  }(*src, dests, use_multicast, reps, bytes));
  cluster.sim().run();
  sim::SimTime last{0};
  for (const sim::SimTime& t : done) {
    if (t > last) last = t;
  }
  return last.us() / reps;
}

}  // namespace

int main() {
  using namespace nicbar;
  for (std::int64_t bytes : {64ll, 2048ll}) {
    bench::print_header("NIC-assisted multicast, " + std::to_string(bytes) +
                        "B payload, LANai 4.3 (us to last destination)");
    std::printf("%8s %12s %12s %12s\n", "fanout", "host loop", "NIC mcast", "improvement");
    for (std::size_t fanout : {1u, 3u, 7u, 15u}) {
      const double host_us = run(fanout, false, bytes, 100);
      const double nic_us = run(fanout, true, bytes, 100);
      std::printf("%8zu %12.2f %12.2f %12.2f\n", fanout, host_us, nic_us, host_us / nic_us);
    }
  }
  std::printf("\nexpected: one PCI crossing + NIC replication beats a host send loop,\n"
              "with the gap widening with fan-out (cf. the authors' multicast papers)\n");
  return 0;
}
