// §7-adjacent extension: NIC-assisted multicast (the authors' own prior
// line of work — "Broadcast/Multicast over Myrinet using NIC-Assisted
// Multidestination Messages"). Compares time-to-last-destination for a host
// send loop vs the NIC-replicated multicast, across fan-out.
//
// One SweepPlan of custom cases covers the whole (payload, fanout, mode)
// grid, so NICBAR_JOBS shards it and NICBAR_METRICS_JSON instruments it like
// every declarative bench.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"

namespace {

using namespace nicbar;

coll::ExperimentResult run(std::size_t fanout, bool use_multicast, std::int64_t bytes, int reps,
                           sim::telemetry::Telemetry* telemetry) {
  host::ClusterParams p;
  p.nodes = fanout + 1;
  p.nic = nic::lanai43();
  p.telemetry = telemetry;
  host::Cluster cluster(p);
  auto src = cluster.open_port(0, 2);
  std::vector<std::unique_ptr<gm::Port>> sinks;
  std::vector<gm::Endpoint> dests;
  std::vector<sim::SimTime> done(fanout + 1);
  for (net::NodeId i = 1; i <= fanout; ++i) {
    sinks.push_back(cluster.open_port(i, 2));
    dests.push_back(gm::Endpoint{i, 2});
    cluster.sim().spawn([](sim::Simulator& sim, gm::Port& port, int r, std::int64_t b,
                           sim::SimTime* when) -> sim::Task {
      for (int k = 0; k < r; ++k) co_await port.provide_receive_buffer(b);
      for (int k = 0; k < r; ++k) (void)co_await port.receive();
      *when = sim.now();
    }(cluster.sim(), *sinks.back(), reps, bytes, &done[i]));
  }
  cluster.sim().spawn([](gm::Port& port, std::vector<gm::Endpoint> d, bool mc, int r,
                         std::int64_t b) -> sim::Task {
    for (int k = 0; k < r; ++k) {
      if (mc) {
        co_await port.multicast(d, b);
      } else {
        for (const gm::Endpoint& e : d) co_await port.send(e, b);
      }
    }
  }(*src, dests, use_multicast, reps, bytes));
  cluster.sim().run();
  cluster.snapshot_metrics();
  sim::SimTime last{0};
  for (const sim::SimTime& t : done) {
    if (t > last) last = t;
  }
  coll::ExperimentResult res;
  res.nodes = fanout + 1;
  res.reps = reps;
  res.total_us = last.us();
  res.mean_us = res.total_us / reps;
  return res;
}

}  // namespace

int main() {
  using namespace nicbar;
  const std::vector<std::int64_t> payloads{64, 2048};
  const std::vector<std::size_t> fanouts{1, 3, 7, 15};

  coll::SweepPlan plan;
  for (const std::int64_t bytes : payloads) {
    for (const std::size_t fanout : fanouts) {
      for (const bool mc : {false, true}) {
        const std::string label = std::string(mc ? "nic-mcast" : "host-loop") + "-" +
                                  std::to_string(bytes) + "B-f" + std::to_string(fanout);
        plan.add_custom(label, [fanout, mc, bytes](sim::telemetry::Telemetry* t) {
          return run(fanout, mc, bytes, 100, t);
        });
      }
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::BenchSummary summary("multicast");
  std::size_t c = 0;
  for (const std::int64_t bytes : payloads) {
    bench::print_header("NIC-assisted multicast, " + std::to_string(bytes) +
                        "B payload, LANai 4.3 (us to last destination)");
    std::printf("%8s %12s %12s %12s\n", "fanout", "host loop", "NIC mcast", "improvement");
    for (const std::size_t fanout : fanouts) {
      const double host_us = r.cases[c++].result.mean_us;
      const double nic_us = r.cases[c++].result.mean_us;
      std::printf("%8zu %12.2f %12.2f %12.2f\n", fanout, host_us, nic_us, host_us / nic_us);
      summary.add(std::to_string(bytes) + "B-f" + std::to_string(fanout),
                  {{"host_loop_us", host_us},
                   {"nic_mcast_us", nic_us},
                   {"improvement", host_us / nic_us}});
    }
  }
  std::printf("\nexpected: one PCI crossing + NIC replication beats a host send loop,\n"
              "with the gap widening with fan-out (cf. the authors' multicast papers)\n");
  summary.write();
  return 0;
}
