// Eq. 3 ablation: "as the host send overhead increases, say from the
// addition of another programming layer such as MPI, the factor of
// improvement will increase" (§2.2). Sweeps the per-call layer overhead
// (0 = raw GM, a few us = an MPI-like layer) and reports the measured
// improvement factor for the 8- and 16-node PE barrier.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  bench::print_header("Layer-overhead sweep (MPI-like layering), LANai 4.3, PE");
  std::printf("%14s %12s %12s %12s %12s\n", "layer_us/call", "host16(us)", "NIC16(us)",
              "improve16", "improve8");
  for (double layer : {0.0, 2.0, 5.0, 10.0, 15.0, 20.0}) {
    coll::ExperimentParams p = bench::base_params(nic::lanai43(), 16);
    p.cluster.gm.layer_overhead = sim::microseconds(layer);

    p.spec = bench::make_spec(Location::kHost, BarrierAlgorithm::kPairwiseExchange);
    const double host16 = coll::run_barrier_experiment(p).mean_us;
    p.spec.location = Location::kNic;
    const double nic16 = coll::run_barrier_experiment(p).mean_us;

    p.nodes = 8;
    p.spec.location = Location::kHost;
    const double host8 = coll::run_barrier_experiment(p).mean_us;
    p.spec.location = Location::kNic;
    const double nic8 = coll::run_barrier_experiment(p).mean_us;

    std::printf("%14.1f %12.2f %12.2f %12.2f %12.2f\n", layer, host16, nic16, host16 / nic16,
                host8 / nic8);
  }
  std::printf("\nexpected: improvement rises monotonically with layer overhead (Eq. 3)\n");
  return 0;
}
