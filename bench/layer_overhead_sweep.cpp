// Eq. 3 ablation: "as the host send overhead increases, say from the
// addition of another programming layer such as MPI, the factor of
// improvement will increase" (§2.2). Sweeps the per-call layer overhead
// (0 = raw GM, a few us = an MPI-like layer) and reports the measured
// improvement factor for the 8- and 16-node PE barrier.
#include <cstdio>
#include <vector>

#include "common.hpp"

int main() {
  using namespace nicbar;
  using coll::Location;
  using nic::BarrierAlgorithm;

  const std::vector<double> layers{0.0, 2.0, 5.0, 10.0, 15.0, 20.0};

  coll::SweepPlan plan;
  for (const double layer : layers) {
    for (const std::size_t nodes : {std::size_t{16}, std::size_t{8}}) {
      for (const Location loc : {Location::kHost, Location::kNic}) {
        coll::ExperimentParams p = coll::experiment(nic::lanai43(), nodes);
        p.cluster.gm.layer_overhead = sim::microseconds(layer);
        p.spec = coll::spec(loc, BarrierAlgorithm::kPairwiseExchange);
        plan.add(coll::variant_label(p) + "+l" + std::to_string(layer), p);
      }
    }
  }
  const coll::SweepResult r = bench::run(plan);

  bench::print_header("Layer-overhead sweep (MPI-like layering), LANai 4.3, PE");
  std::printf("%14s %12s %12s %12s %12s\n", "layer_us/call", "host16(us)", "NIC16(us)",
              "improve16", "improve8");
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const double host16 = r.cases[4 * i + 0].result.mean_us;
    const double nic16 = r.cases[4 * i + 1].result.mean_us;
    const double host8 = r.cases[4 * i + 2].result.mean_us;
    const double nic8 = r.cases[4 * i + 3].result.mean_us;
    std::printf("%14.1f %12.2f %12.2f %12.2f %12.2f\n", layers[i], host16, nic16,
                host16 / nic16, host8 / nic8);
  }
  std::printf("\nexpected: improvement rises monotonically with layer overhead (Eq. 3)\n");
  return 0;
}
