#include "wl/driver.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/runner.hpp"

namespace nicbar::wl {
namespace {

// --- Spec parser --------------------------------------------------------------

TEST(WorkloadSpecTest, ParserRoundTrip) {
  const WorkloadSpec s = parse_workload_spec(R"(
    # preamble
    cluster-nodes 32
    nic lanai72
    topology chain
    placement overlapping
    arrival poisson 500
    seed 7
    hist-max-us 4000

    job stencil
      count 4
      nodes 8
      iters 200
      mix barrier=0.7 allreduce=0.2 bcast=0.1
      compute-us 50
      imbalance 0.3
      skew-us 10
      layer-us 4

    job pipeline
      nodes 4
      iters 25
      mix fuzzy=1
      fuzzy-chunk-us 5
  )");
  EXPECT_EQ(s.cluster_nodes, 32u);
  EXPECT_EQ(s.cluster.nic.model, nic::lanai72().model);
  EXPECT_EQ(s.cluster.topology, host::Topology::kSwitchChain);
  EXPECT_EQ(s.placement, Placement::kOverlapping);
  EXPECT_EQ(s.arrival.kind, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(s.arrival.interval.us(), 500.0);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_DOUBLE_EQ(s.hist_max_us, 4000.0);

  ASSERT_EQ(s.classes.size(), 2u);
  const JobClass& stencil = s.classes[0];
  EXPECT_EQ(stencil.name, "stencil");
  EXPECT_EQ(stencil.count, 4u);
  EXPECT_EQ(stencil.nodes, 8u);
  EXPECT_EQ(stencil.iterations, 200);
  EXPECT_DOUBLE_EQ(stencil.mix.barrier, 0.7);
  EXPECT_DOUBLE_EQ(stencil.mix.allreduce, 0.2);
  EXPECT_DOUBLE_EQ(stencil.mix.broadcast, 0.1);
  EXPECT_DOUBLE_EQ(stencil.mix.fuzzy, 0.0);
  EXPECT_DOUBLE_EQ(stencil.compute_mean.us(), 50.0);
  EXPECT_DOUBLE_EQ(stencil.compute_imbalance, 0.3);
  EXPECT_DOUBLE_EQ(stencil.start_skew.us(), 10.0);
  EXPECT_DOUBLE_EQ(stencil.layer_overhead.us(), 4.0);

  const JobClass& pipeline = s.classes[1];
  EXPECT_EQ(pipeline.count, 1u);  // default
  EXPECT_DOUBLE_EQ(pipeline.mix.fuzzy, 1.0);
  EXPECT_DOUBLE_EQ(pipeline.mix.barrier, 0.0);  // first mix line resets defaults
  EXPECT_TRUE(pipeline.mix.barrier_only());
  EXPECT_EQ(s.total_jobs(), 5u);
}

TEST(WorkloadSpecTest, UnspecifiedMixIsBarrierOnly) {
  const WorkloadSpec s = parse_workload_spec("job solo\n  nodes 4\n");
  ASSERT_EQ(s.classes.size(), 1u);
  EXPECT_DOUBLE_EQ(s.classes[0].mix.barrier, 1.0);
  EXPECT_TRUE(s.classes[0].mix.barrier_only());
}

TEST(WorkloadSpecTest, ClosedLoopArrivalParsesWidthAndThink) {
  const WorkloadSpec s = parse_workload_spec(
      "cluster-nodes 8\narrival closed-loop 2 150\nplacement overlapping\n"
      "job j\n  count 3\n  nodes 4\n");
  EXPECT_EQ(s.arrival.kind, ArrivalKind::kClosedLoop);
  EXPECT_EQ(s.arrival.width, 2u);
  EXPECT_DOUBLE_EQ(s.arrival.think.us(), 150.0);
}

TEST(WorkloadSpecTest, ParserNamesTheOffendingLine) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      (void)parse_workload_spec(text);
      FAIL() << "no error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("frobnicate 3\n", "unknown key");
  expect_error("job j\n  frobnicate 3\n", "unknown job key");
  expect_error("arrival sometimes\n", "arrival must be");
  expect_error("nic lanai99\n", "lanai43 or lanai72");
  expect_error("job j\n  mix\n", "at least one");
  expect_error("job j\n  mix barrier\n", "kind=weight");
  expect_error("job j\n  mix scatter=1\n", "unknown collective");
  expect_error("cluster-nodes 8 extra\n", "trailing token");
  expect_error("cluster-nodes 4\njob j\n  nodes 8\n", "wider than the cluster");
  // Placement misfits surface at parse time too.
  expect_error("cluster-nodes 8\njob j\n  count 3\n  nodes 4\n", "disjoint placement");
  // Validation failures are rethrown as runtime_error with the field name.
  expect_error("job j\n  nodes 4\n  layer-us 4\n", "layer-us");
  expect_error("job j\n  nodes 4\n  imbalance 1.5\n", "imbalance");
  expect_error("job j\n  nodes 4\n  location host\n  mix fuzzy=1\n", "NIC-based");
  expect_error("job j\n  nodes 4\n  mix fuzzy=0.5 allreduce=0.5\n", "separate class");
}

TEST(WorkloadSpecTest, ReliabilityKeySelectsTheRetransmissionMode) {
  EXPECT_EQ(parse_workload_spec("reliability shared\njob j\n  nodes 4\n")
                .cluster.nic.barrier_reliability,
            nic::BarrierReliability::kSharedStream);
  EXPECT_EQ(parse_workload_spec("reliability separate\njob j\n  nodes 4\n")
                .cluster.nic.barrier_reliability,
            nic::BarrierReliability::kSeparateAcks);
  EXPECT_THROW((void)parse_workload_spec("reliability maybe\njob j\n  nodes 4\n"),
               std::runtime_error);
}

TEST(WorkloadDriverTest, FuzzyOnFaultyUnreliableFabricIsRejected) {
  // Without retransmission a lost barrier packet would make the fuzzy
  // barrier spin compute chunks forever — the driver must refuse to start
  // rather than livelock.
  WorkloadSpec s = parse_workload_spec("job j\n  nodes 4\n  mix fuzzy=1\n");
  s.cluster.faults.loss.push_back({"", 0.01});
  EXPECT_THROW((void)run_workload(s), std::invalid_argument);
  s.cluster.nic.barrier_reliability = nic::BarrierReliability::kSharedStream;
  EXPECT_EQ(run_workload(s).total_failures, 0u);
}

TEST(WorkloadSpecTest, ValidateRejectsEmptyAndDegenerateSpecs) {
  WorkloadSpec s;
  EXPECT_THROW(validate(s), std::invalid_argument);  // no classes

  s.classes.push_back(JobClass{});
  EXPECT_NO_THROW(validate(s));

  s.classes[0].mix = CollectiveMix{0.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(validate(s), std::invalid_argument);  // weightless mix

  s.classes[0].mix = CollectiveMix{};
  s.classes[0].algorithm = nic::BarrierAlgorithm::kGatherBroadcast;
  s.classes[0].gb_dimension = 0;
  EXPECT_THROW(validate(s), std::invalid_argument);  // GB without a dimension
}

TEST(WorkloadSpecTest, HostRdmaAlgorithmKeyParsesAndRoundTrips) {
  const WorkloadSpec s = parse_workload_spec(
      "job a\n  nodes 4\n  algorithm host-dissem\n"
      "job b\n  nodes 4\n  algorithm host-tree 3\n");
  ASSERT_EQ(s.classes.size(), 2u);
  EXPECT_EQ(s.classes[0].rdma, coll::RdmaAlgorithm::kDissemination);
  EXPECT_EQ(s.classes[1].rdma, coll::RdmaAlgorithm::kTreePut);
  EXPECT_EQ(s.classes[1].gb_dimension, 3u);  // host-tree radix
  EXPECT_TRUE(spec_equal(s, parse_workload_spec(print_spec(s))));
}

TEST(WorkloadSpecTest, HostRdmaRejectsMixedManagedAndZeroRadix) {
  WorkloadSpec s;
  s.classes.push_back(JobClass{});
  s.classes[0].rdma = coll::RdmaAlgorithm::kDissemination;
  EXPECT_NO_THROW(validate(s));

  s.classes[0].mix.allreduce = 0.5;  // reductions need the communicator path
  EXPECT_THROW(validate(s), std::invalid_argument);
  s.classes[0].mix = CollectiveMix{};

  s.classes[0].managed = true;
  EXPECT_THROW(validate(s), std::invalid_argument);
  s.classes[0].managed = false;

  s.classes[0].rdma = coll::RdmaAlgorithm::kTreePut;
  s.classes[0].gb_dimension = 0;
  EXPECT_THROW(validate(s), std::invalid_argument);
}

TEST(WorkloadDriverTest, HostRdmaClassesCompleteAlongsideNicClasses) {
  const WorkloadSpec s = parse_workload_spec(
      "cluster-nodes 8\n"
      "job nic\n  nodes 4\n  iters 20\n"
      "job rdma\n  nodes 4\n  iters 20\n  algorithm host-dissem\n");
  const Report rep = run_workload(s);
  EXPECT_EQ(rep.total_failures, 0u);
  ASSERT_EQ(rep.jobs.size(), 2u);
  for (const JobReport& jr : rep.jobs) EXPECT_GT(jr.latency.count, 0u);
}

// --- Placement ----------------------------------------------------------------

WorkloadSpec two_jobs(Placement placement, std::size_t cluster, std::size_t width) {
  WorkloadSpec s;
  s.cluster_nodes = cluster;
  s.placement = placement;
  JobClass c;
  c.count = 2;
  c.nodes = width;
  s.classes.push_back(c);
  return s;
}

TEST(PlacementTest, DisjointPacksConsecutiveNodes) {
  const auto sets = place_jobs(two_jobs(Placement::kDisjoint, 8, 4));
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<net::NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(sets[1], (std::vector<net::NodeId>{4, 5, 6, 7}));
  EXPECT_THROW((void)place_jobs(two_jobs(Placement::kDisjoint, 6, 4)), std::invalid_argument);
}

TEST(PlacementTest, StridedInterleavesAcrossTheCluster) {
  const auto sets = place_jobs(two_jobs(Placement::kStrided, 8, 4));
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<net::NodeId>{0, 2, 4, 6}));
  EXPECT_EQ(sets[1], (std::vector<net::NodeId>{1, 3, 5, 7}));
  EXPECT_THROW((void)place_jobs(two_jobs(Placement::kStrided, 6, 4)), std::invalid_argument);
}

TEST(PlacementTest, OverlappingSharesHalfAWindowBetweenConsecutiveJobs) {
  const auto sets = place_jobs(two_jobs(Placement::kOverlapping, 12, 8));
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<net::NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(sets[1], (std::vector<net::NodeId>{4, 5, 6, 7, 8, 9, 10, 11}));
  // Half the window is shared by construction.
  std::size_t shared = 0;
  for (const net::NodeId n : sets[0]) {
    for (const net::NodeId m : sets[1]) {
      if (n == m) ++shared;
    }
  }
  EXPECT_EQ(shared, 4u);
}

TEST(PlacementTest, OverlappingNeverNeedsMoreNodesThanTheCluster) {
  // Over-subscription is the point: 4 jobs x 8 nodes on a 16-node cluster.
  WorkloadSpec s = two_jobs(Placement::kOverlapping, 16, 8);
  s.classes[0].count = 4;
  const auto sets = place_jobs(s);
  ASSERT_EQ(sets.size(), 4u);
  for (const auto& set : sets) {
    ASSERT_EQ(set.size(), 8u);
    for (const net::NodeId n : set) EXPECT_LT(n, 16u);
  }
}

// --- Fig. 5 bit-identical reproduction ---------------------------------------

/// A single-job, barrier-only, no-jitter workload must run the exact member
/// loop of coll::run_barrier_experiment: same awaited operations, same
/// simulated timeline, bit-identical mean. This is the acceptance criterion
/// tying wl:: to the paper's Fig. 5 experiments.
void expect_fig5_identical(const nic::NicConfig& nic_cfg, std::size_t nodes) {
  coll::ExperimentParams p;
  p.nodes = nodes;
  p.reps = 500;
  p.spec.location = coll::Location::kNic;
  p.spec.algorithm = nic::BarrierAlgorithm::kPairwiseExchange;
  p.cluster.nic = nic_cfg;
  const coll::ExperimentResult direct = coll::run_barrier_experiment(p);

  WorkloadSpec s;
  s.cluster_nodes = nodes;
  s.cluster.nic = nic_cfg;
  JobClass c;
  c.name = "fig5";
  c.nodes = nodes;
  c.iterations = 500;
  s.classes.push_back(c);

  const Report rep = run_workload(s);
  ASSERT_EQ(rep.jobs.size(), 1u);
  // Exact double equality on purpose: this is the same simulation, not a
  // statistically similar one.
  EXPECT_EQ(rep.jobs[0].experiment_mean_us, direct.mean_us);
  EXPECT_EQ(rep.barriers_completed, direct.barriers_completed);
  EXPECT_EQ(rep.total_failures, 0u);
  EXPECT_EQ(rep.jobs[0].latency.count, nodes * 500u);
}

TEST(WorkloadFig5Test, SingleJobReproducesFig5aLanai43N16) {
  expect_fig5_identical(nic::lanai43(), 16);
}

TEST(WorkloadFig5Test, SingleJobReproducesFig5cLanai72N8) {
  expect_fig5_identical(nic::lanai72(), 8);
}

// --- Concurrency and epoch isolation -----------------------------------------

TEST(WorkloadDriverTest, OverlappingJobsCompleteWithEpochIsolation) {
  // Two 8-wide barrier-only jobs sharing four nodes, released together: the
  // co-located GM ports interleave barrier epochs on the shared NICs. Epoch
  // isolation means every barrier of both jobs still completes and no
  // member ever unblocks early or hangs.
  WorkloadSpec solo = two_jobs(Placement::kOverlapping, 12, 8);
  solo.classes[0].count = 1;
  solo.classes[0].iterations = 50;
  const Report alone = run_workload(solo);
  ASSERT_EQ(alone.jobs.size(), 1u);
  EXPECT_EQ(alone.total_failures, 0u);

  WorkloadSpec s = two_jobs(Placement::kOverlapping, 12, 8);
  s.classes[0].iterations = 50;
  const Report rep = run_workload(s);
  ASSERT_EQ(rep.jobs.size(), 2u);
  EXPECT_EQ(rep.total_failures, 0u);
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.latency.count, 8u * 50u);  // every member saw every barrier
    EXPECT_EQ(j.collectives[static_cast<std::size_t>(CollectiveKind::kBarrier)], 50u);
    EXPECT_GT(j.end_us, j.start_us);
  }
  // Both jobs ran all their barriers to completion on the shared fabric.
  EXPECT_EQ(rep.barriers_completed, 2 * alone.barriers_completed);
  // Contention can only slow a job down, never speed it up.
  EXPECT_GE(rep.jobs[0].experiment_mean_us, alone.jobs[0].experiment_mean_us);
  EXPECT_GE(rep.jobs[1].experiment_mean_us, alone.jobs[0].experiment_mean_us);
  EXPECT_GT(rep.max_nic_occupancy, 0.0);
}

TEST(WorkloadDriverTest, ClosedLoopWidthSerialisesJobs) {
  WorkloadSpec s = two_jobs(Placement::kOverlapping, 4, 4);
  s.classes[0].count = 3;
  s.classes[0].iterations = 20;
  s.arrival.kind = ArrivalKind::kClosedLoop;
  s.arrival.width = 1;
  s.arrival.think = sim::microseconds(150.0);

  const Report rep = run_workload(s);
  ASSERT_EQ(rep.jobs.size(), 3u);
  EXPECT_EQ(rep.total_failures, 0u);
  EXPECT_DOUBLE_EQ(rep.jobs[0].arrival_us, 0.0);
  // Width 1: job j+1 is released exactly `think` after job j finishes.
  EXPECT_DOUBLE_EQ(rep.jobs[1].arrival_us, rep.jobs[0].end_us + 150.0);
  EXPECT_DOUBLE_EQ(rep.jobs[2].arrival_us, rep.jobs[1].end_us + 150.0);
  EXPECT_GE(rep.makespan_us, rep.jobs[2].end_us);
}

TEST(WorkloadDriverTest, PoissonArrivalsAreOrderedAndSeeded) {
  WorkloadSpec s = two_jobs(Placement::kOverlapping, 16, 8);
  s.classes[0].count = 4;
  s.classes[0].iterations = 10;
  s.arrival.kind = ArrivalKind::kPoisson;
  s.arrival.interval = sim::microseconds(200.0);
  s.seed = 11;

  const Report a = run_workload(s);
  ASSERT_EQ(a.jobs.size(), 4u);
  EXPECT_DOUBLE_EQ(a.jobs[0].arrival_us, 0.0);
  for (std::size_t j = 1; j < a.jobs.size(); ++j) {
    EXPECT_GT(a.jobs[j].arrival_us, a.jobs[j - 1].arrival_us);
  }

  // Same seed => the very same arrival times; a different seed reshuffles
  // the gaps (with overwhelming probability for a continuous draw).
  const Report b = run_workload(s);
  s.seed = 12;
  const Report c = run_workload(s);
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].arrival_us, b.jobs[j].arrival_us);
  }
  EXPECT_NE(a.jobs[1].arrival_us, c.jobs[1].arrival_us);
}

// --- Deterministic replay -----------------------------------------------------

std::string mixed_workload_text() {
  return R"(
    cluster-nodes 16
    placement overlapping
    arrival poisson 300
    seed 5
    hist-max-us 5000
    job stencil
      count 2
      nodes 8
      iters 15
      mix barrier=1
      compute-us 40
      imbalance 0.3
      skew-us 10
    job solver
      count 2
      nodes 4
      iters 10
      mix barrier=0.5 allreduce=0.3 bcast=0.2
      compute-us 20
      layer-us 4
    job pipeline
      nodes 4
      iters 10
      mix fuzzy=1
      compute-us 15
  )";
}

TEST(WorkloadDriverTest, SameSeedReplaysByteIdenticalReports) {
  const WorkloadSpec s = parse_workload_spec(mixed_workload_text());
  Driver d(s);
  const std::string first = d.run().json();
  // Re-running the same Driver and a freshly parsed spec both replay the
  // identical timeline, down to every digit of the JSON document.
  EXPECT_EQ(first, d.run().json());
  EXPECT_EQ(first, Driver(parse_workload_spec(mixed_workload_text())).run().json());
  EXPECT_NE(first.find("\"makespan_us\""), std::string::npos);
}

TEST(WorkloadDriverTest, SeedChangesTheTimelineForStochasticSpecs) {
  WorkloadSpec s = parse_workload_spec(mixed_workload_text());
  const std::string base = run_workload(s).json();
  s.seed = 6;
  EXPECT_NE(base, run_workload(s).json());
}

TEST(WorkloadDriverTest, MixedClassesIssueEveryRequestedKind) {
  const Report rep = run_workload(parse_workload_spec(mixed_workload_text()));
  EXPECT_EQ(rep.total_failures, 0u);
  EXPECT_GT(rep.per_kind[static_cast<std::size_t>(CollectiveKind::kBarrier)].count, 0u);
  EXPECT_GT(rep.per_kind[static_cast<std::size_t>(CollectiveKind::kAllreduce)].count, 0u);
  EXPECT_GT(rep.per_kind[static_cast<std::size_t>(CollectiveKind::kBroadcast)].count, 0u);
  EXPECT_GT(rep.per_kind[static_cast<std::size_t>(CollectiveKind::kFuzzyBarrier)].count, 0u);
  EXPECT_GT(rep.reduces_completed, 0u);
  std::uint64_t scheduled = 0;
  for (const JobReport& j : rep.jobs) {
    for (const std::uint64_t n : j.collectives) scheduled += n;
  }
  // Every process of every job times every scheduled collective once.
  EXPECT_EQ(rep.overall.count, [&rep] {
    std::uint64_t per_member = 0;
    for (const JobReport& j : rep.jobs) {
      for (std::size_t k = 0; k < kCollectiveKindCount; ++k) {
        per_member += j.collectives[k] * j.nodes;
      }
    }
    return per_member;
  }());
  EXPECT_EQ(scheduled, 2u * 15u + 2u * 10u + 10u);
}

// --- Substreams ---------------------------------------------------------------

TEST(SubstreamTest, PurposeAndIndexDecorrelateStreams) {
  EXPECT_EQ(substream(1, 1, 0), substream(1, 1, 0));  // pure function
  EXPECT_NE(substream(1, 1, 0), substream(1, 1, 1));
  EXPECT_NE(substream(1, 1, 0), substream(1, 2, 0));
  EXPECT_NE(substream(1, 1, 0), substream(2, 1, 0));
  // Seed 0 with the real purpose tags still yields well-mixed streams.
  EXPECT_NE(substream(0, 1, 0), substream(0, 2, 0));
  EXPECT_NE(substream(0, 1, 0), 0u);
}

}  // namespace
}  // namespace nicbar::wl
