// Round-trips every checked-in workload spec through parse -> print -> parse:
// the printed form must reach a fixed point and describe the same workload.
// Guards the spec format against asymmetric parser/printer changes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "wl/spec.hpp"

#ifndef NICBAR_WORKLOADS_DIR
#error "NICBAR_WORKLOADS_DIR must point at examples/workloads"
#endif

namespace nicbar::wl {
namespace {

std::vector<std::filesystem::path> workload_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(NICBAR_WORKLOADS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(RoundTripTest, ExampleDirectoryIsNotEmpty) {
  EXPECT_GE(workload_files().size(), 2u);
}

TEST(RoundTripTest, EveryExampleSpecSurvivesParsePrintParse) {
  for (const auto& path : workload_files()) {
    SCOPED_TRACE(path.string());
    const WorkloadSpec original = parse_workload_spec(slurp(path));
    EXPECT_NO_THROW(validate(original));

    const std::string printed = print_spec(original);
    const WorkloadSpec reparsed = parse_workload_spec(printed);
    EXPECT_TRUE(spec_equal(original, reparsed)) << "printed form:\n" << printed;
    // One more cycle must be the identity on text: print is a fixed point.
    EXPECT_EQ(print_spec(reparsed), printed);
  }
}

}  // namespace
}  // namespace nicbar::wl
