// Managed barrier-group lifecycle through the workload layer: spec
// round-trip for the new keys, group create/destroy accounting in reports,
// degraded operation under slot exhaustion, and failure reporting when a
// fault plan kills a member's NIC mid-job.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "wl/driver.hpp"

namespace nicbar::wl {
namespace {

using namespace sim::literals;

// --- Spec format --------------------------------------------------------------

TEST(LifecycleSpecTest, ParsesManagedKeysAndNicSlots) {
  const WorkloadSpec s = parse_workload_spec(R"(
    cluster-nodes 8
    nic lanai43
    nic-slots 3
    job churn
      count 2
      nodes 4
      iters 10
      lifecycle managed
      promote-every 2
  )");
  EXPECT_EQ(s.cluster.nic.barrier_slots, 3);
  ASSERT_EQ(s.classes.size(), 1u);
  EXPECT_TRUE(s.classes[0].managed);
  EXPECT_EQ(s.classes[0].promote_every, 2);
}

TEST(LifecycleSpecTest, ManagedKeysRoundTripThroughPrint) {
  const WorkloadSpec a = parse_workload_spec(
      "cluster-nodes 8\nnic-slots 2\n"
      "job churn\n  count 2\n  nodes 4\n  iters 5\n  lifecycle managed\n  promote-every 3\n");
  const WorkloadSpec b = parse_workload_spec(print_spec(a));
  EXPECT_TRUE(spec_equal(a, b)) << print_spec(a);
}

TEST(LifecycleSpecTest, UnmanagedSpecPrintsNoLifecycleKeys) {
  // Old specs must keep printing byte-identically: the new keys only appear
  // when they deviate from the defaults.
  const WorkloadSpec s = parse_workload_spec("cluster-nodes 8\njob j\n  nodes 4\n  iters 5\n");
  const std::string text = print_spec(s);
  EXPECT_EQ(text.find("lifecycle"), std::string::npos) << text;
  EXPECT_EQ(text.find("nic-slots"), std::string::npos) << text;
  EXPECT_EQ(text.find("promote-every"), std::string::npos) << text;
}

TEST(LifecycleSpecTest, ManagedRequiresBarrierOnlyNicClass) {
  // The parser wraps validate()'s complaint in its own runtime_error.
  EXPECT_THROW((void)parse_workload_spec("cluster-nodes 8\njob j\n  nodes 4\n"
                                         "  mix barrier=0.5 allreduce=0.5\n"
                                         "  lifecycle managed\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_workload_spec("cluster-nodes 8\njob j\n  nodes 4\n"
                                         "  location host\n  lifecycle managed\n"),
               std::runtime_error);
}

// --- Driver -------------------------------------------------------------------

TEST(LifecycleDriverTest, ManagedJobsCreateAndDestroyGroups) {
  const WorkloadSpec s = parse_workload_spec(R"(
    cluster-nodes 16
    arrival fixed 200
    job churn
      count 4
      nodes 4
      iters 6
      lifecycle managed
  )");
  const Report r = run_workload(s);
  EXPECT_EQ(r.total_failures, 0u);
  EXPECT_EQ(r.groups_created, 4u);
  EXPECT_EQ(r.groups_destroyed, 4u);
  EXPECT_GT(r.slot_allocations, 0u);
  EXPECT_EQ(r.slot_allocations, r.slot_frees) << "every allocated slot must be freed";
  EXPECT_EQ(r.stale_group_fenced, 0u);
  for (const JobReport& j : r.jobs) {
    EXPECT_TRUE(j.group_created) << "job " << j.job;
    EXPECT_TRUE(j.group_destroyed) << "job " << j.job;
    EXPECT_EQ(j.failures, 0u) << "job " << j.job;
  }
}

TEST(LifecycleDriverTest, SlotExhaustionDegradesButCompletes) {
  const WorkloadSpec s = parse_workload_spec(R"(
    cluster-nodes 8
    nic-slots 0
    job churn
      count 2
      nodes 4
      iters 5
      lifecycle managed
      promote-every 0
  )");
  const Report r = run_workload(s);
  EXPECT_EQ(r.total_failures, 0u) << "degraded is a success, not a failure";
  EXPECT_EQ(r.groups_created, 2u);
  EXPECT_EQ(r.groups_destroyed, 2u);
  EXPECT_GT(r.slot_rejections, 0u);
  // Degraded barriers are counted per process: 2 jobs x 4 members x 5 iters.
  EXPECT_EQ(r.degraded_collectives, 2u * 4u * 5u) << "every barrier ran host-driven";
}

TEST(LifecycleDriverTest, ManagedAndLegacyReportsAreDeterministic) {
  const WorkloadSpec s = parse_workload_spec(R"(
    cluster-nodes 32
    nic-slots 1
    arrival poisson 300
    seed 11
    job churn
      count 4
      nodes 4
      iters 8
      compute-us 20
      imbalance 0.2
      lifecycle managed
      promote-every 2
    job legacy
      count 2
      nodes 8
      iters 8
  )");
  const Report a = run_workload(s);
  const Report b = run_workload(s);
  EXPECT_EQ(a.json(), b.json()) << "same spec+seed must reproduce bit-identically";
  EXPECT_EQ(a.groups_created, 4u) << "only the managed class creates groups";
}

TEST(LifecycleDriverTest, NicCrashMidJobRecordsFailuresForThatTenant) {
  // Two disjoint 4-node tenants; node 1 (inside job 0's node-set) dies at
  // t=2ms, mid-iterations. The fabric is unreliable, so no kPeerDead ever
  // fires: the per-collective deadline (which doubles as the lifecycle
  // ctrl_deadline) is what aborts the survivors — exercising
  // BarrierStatus::kDeadline. Job 1 never touches the dead node and must
  // finish clean.
  WorkloadSpec s = parse_workload_spec(R"(
    cluster-nodes 8
    arrival fixed 0
    job victim
      count 1
      nodes 4
      iters 400
      compute-us 30
      deadline-us 500
      lifecycle managed
    job bystander
      count 1
      nodes 4
      iters 40
      compute-us 10
      lifecycle managed
  )");
  sim::fault::NicCrash crash;
  crash.node = 1;
  crash.at = sim::SimTime{0} + 2_ms;
  s.cluster.faults.nic_crashes.push_back(crash);

  const Report r = run_workload(s);
  ASSERT_EQ(r.jobs.size(), 2u);
  const JobReport& victim = r.jobs[0];
  const JobReport& bystander = r.jobs[1];
  EXPECT_GT(victim.failures, 0u) << "survivors must record the aborted barriers";
  EXPECT_TRUE(victim.group_created) << "the group came up before the crash";
  EXPECT_EQ(bystander.failures, 0u) << "the other tenant is untouched";
  EXPECT_TRUE(bystander.group_created);
  EXPECT_TRUE(bystander.group_destroyed);
  EXPECT_EQ(r.total_failures, victim.failures);
}

}  // namespace
}  // namespace nicbar::wl
