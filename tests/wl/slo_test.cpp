// wl::slo — SLO spec keys, burn-rate arithmetic, windowing, and the driver
// integration (run_with_slo) including critical-path attribution of the
// offending tenant.
#include "wl/slo.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "wl/driver.hpp"
#include "wl/spec.hpp"

namespace nicbar::wl {
namespace {

constexpr const char* kSloSpec = R"(cluster-nodes 8
placement disjoint
seed 3

job latency
  count 1
  nodes 4
  iters 20
  mix barrier=1
  slo-us 150
  slo-target 0.9
  slo-window-us 500

job batch
  count 1
  nodes 4
  iters 20
  mix barrier=1
)";

TEST(SloSpecTest, ParsesSloKeys) {
  const WorkloadSpec spec = parse_workload_spec(std::string(kSloSpec));
  ASSERT_EQ(spec.classes.size(), 2u);
  EXPECT_EQ(spec.classes[0].slo, sim::microseconds(150.0));
  EXPECT_DOUBLE_EQ(spec.classes[0].slo_target, 0.9);
  EXPECT_EQ(spec.classes[0].slo_window, sim::microseconds(500.0));
  EXPECT_TRUE(spec.classes[1].slo.is_zero());
  EXPECT_TRUE(wants_slo(spec));
}

TEST(SloSpecTest, RoundTripsThroughPrintSpec) {
  const WorkloadSpec spec = parse_workload_spec(std::string(kSloSpec));
  const std::string printed = print_spec(spec);
  EXPECT_NE(printed.find("slo-us"), std::string::npos);
  const WorkloadSpec again = parse_workload_spec(printed);
  EXPECT_TRUE(spec_equal(spec, again));
  // And a spec with no SLO anywhere prints no slo-* lines at all (the
  // pre-SLO format is preserved byte for byte).
  WorkloadSpec plain = spec;
  plain.classes[0].slo = sim::Duration{0};
  EXPECT_EQ(print_spec(plain).find("slo-"), std::string::npos);
  EXPECT_FALSE(wants_slo(plain));
}

TEST(SloSpecTest, RejectsTargetOutsideUnitInterval) {
  std::string bad = kSloSpec;
  const std::size_t pos = bad.find("slo-target 0.9");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 14, "slo-target 1.5");
  // parse_workload_spec wraps validate()'s std::invalid_argument in a
  // runtime_error so parse and validation failures share one exception type.
  EXPECT_THROW((void)parse_workload_spec(bad), std::runtime_error);
}

TEST(SloComputeTest, BurnRateIsMissFractionOverErrorBudget) {
  WorkloadSpec spec = parse_workload_spec(std::string(kSloSpec));
  // Job 0 (slo 150us, target 0.9 => 10% error budget): 2 misses in 10
  // samples = 20% missing, burn rate 2.0 — violating. Job 1 has no SLO.
  std::vector<std::vector<SloSample>> samples(2);
  for (int i = 0; i < 8; ++i) {
    samples[0].push_back({100.0 * i, 100.0});
  }
  samples[0].push_back({800.0, 200.0});
  samples[0].push_back({900.0, 300.0});
  std::vector<std::vector<nic::Endpoint>> endpoints(2);

  const SloReport rep = compute_slo(spec, samples, endpoints, nullptr);
  ASSERT_EQ(rep.jobs.size(), 1u);  // only the class with an SLO
  const JobSlo& j = rep.jobs.front();
  EXPECT_EQ(j.job, 0u);
  EXPECT_EQ(j.samples, 10u);
  EXPECT_EQ(j.violations, 2u);
  EXPECT_DOUBLE_EQ(j.compliance, 0.8);
  EXPECT_DOUBLE_EQ(j.burn_rate, 2.0);
  EXPECT_TRUE(j.violating);
  EXPECT_EQ(rep.violating_jobs, 1u);
  EXPECT_EQ(j.dominant_segment, -1);  // no causal tracer attached

  // Windows are 500us wide; both misses landed in [500, 1000): that window
  // burns at 10x while the first window burns at 0.
  ASSERT_EQ(j.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(j.windows[0].burn_rate, 0.0);
  EXPECT_EQ(j.windows[1].samples, 5u);
  EXPECT_EQ(j.windows[1].violations, 2u);
  EXPECT_DOUBLE_EQ(j.windows[1].burn_rate, (2.0 / 5.0) / 0.1);
  EXPECT_DOUBLE_EQ(j.max_window_burn_rate, 4.0);
}

TEST(SloComputeTest, CompliantJobIsNotFlagged) {
  WorkloadSpec spec = parse_workload_spec(std::string(kSloSpec));
  std::vector<std::vector<SloSample>> samples(2);
  for (int i = 0; i < 20; ++i) samples[0].push_back({50.0 * i, 120.0});
  const SloReport rep = compute_slo(spec, samples, {}, nullptr);
  ASSERT_EQ(rep.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.jobs.front().burn_rate, 0.0);
  EXPECT_FALSE(rep.jobs.front().violating);
  EXPECT_EQ(rep.violating_jobs, 0u);
}

TEST(SloDriverTest, RunWithSloMatchesPlainRunBitForBit) {
  // Enabling causal tracing + SLO accounting must not perturb the simulated
  // timeline: the Report from run_with_slo equals the Report from run().
  const WorkloadSpec spec = parse_workload_spec(std::string(kSloSpec));
  const Report plain = Driver(spec).run();
  auto [rep, slo] = Driver(spec).run_with_slo();
  EXPECT_DOUBLE_EQ(plain.overall.mean_us, rep.overall.mean_us);
  EXPECT_DOUBLE_EQ(plain.makespan_us, rep.makespan_us);
  EXPECT_EQ(plain.barriers_completed, rep.barriers_completed);

  // The SLO side: one job with an SLO, fully attributed via causal tracing.
  ASSERT_EQ(slo.jobs.size(), 1u);
  const JobSlo& j = slo.jobs.front();
  EXPECT_EQ(j.samples, 20u * 4u);  // iters x members
  EXPECT_GT(j.barriers, 0u);
  EXPECT_GE(j.dominant_segment, 0);

  // Deterministic serialisation, both shapes.
  const std::string json = slo.json();
  EXPECT_NE(json.find("\"schema\": \"nicbar-slo-v1\""), std::string::npos);
  EXPECT_EQ(json, Driver(spec).run_with_slo().second.json());
  std::ostringstream ascii;
  slo.write_ascii(ascii);
  EXPECT_NE(ascii.str().find("latency"), std::string::npos);
}

TEST(SloDriverTest, SloFreeSpecYieldsEmptyReport) {
  WorkloadSpec spec = parse_workload_spec(std::string(kSloSpec));
  spec.classes[0].slo = sim::Duration{0};
  auto [rep, slo] = Driver(spec).run_with_slo();
  EXPECT_TRUE(slo.jobs.empty());
  EXPECT_EQ(slo.violating_jobs, 0u);
  EXPECT_GT(rep.barriers_completed, 0u);
}

}  // namespace
}  // namespace nicbar::wl
