#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace nicbar::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime{30}, [&] { order.push_back(3); });
  q.schedule(SimTime{10}, [&] { order.push_back(1); });
  q.schedule(SimTime{20}, [&] { order.push_back(2); });
  while (!q.empty()) {
    SimTime at;
    q.pop(at)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime{42}, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    SimTime at;
    q.pop(at)();
    EXPECT_EQ(at.ps(), 42);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReflectsEarliestLive) {
  EventQueue q;
  q.schedule(SimTime{50}, [] {});
  EventId early = q.schedule(SimTime{5}, [] {});
  EXPECT_EQ(q.next_time().ps(), 5);
  q.cancel(early);
  EXPECT_EQ(q.next_time().ps(), 50);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(SimTime{1}, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue q;
  EventId id = q.schedule(SimTime{1}, [] {});
  SimTime at;
  q.pop(at)();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueueTest, DoubleCancelCountsOnce) {
  EventQueue q;
  EventId id = q.schedule(SimTime{1}, [] {});
  q.schedule(SimTime{2}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.schedule(SimTime{1}, [] {});
  q.schedule(SimTime{2}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  SimTime at;
  q.pop(at)();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, ClearDiscardsEverything) {
  EventQueue q;
  bool ran = false;
  q.schedule(SimTime{1}, [&] { ran = true; });
  q.schedule(SimTime{2}, [&] { ran = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, InterleavedCancelAndPop) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(SimTime{i}, [&, i] { order.push_back(i); }));
  }
  // Cancel the odd ones.
  for (int i = 1; i < 100; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) {
    SimTime at;
    q.pop(at)();
  }
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(2 * i));
  }
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(SimTime{i}, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

TEST(EventQueueTest, StaleIdCannotCancelSlotReuse) {
  EventQueue q;
  EventId first = q.schedule(SimTime{1}, [] {});
  SimTime at;
  q.pop(at)();  // retires the slot; `first` is now stale
  bool ran = false;
  q.schedule(SimTime{2}, [&] { ran = true; });  // reuses the slot
  EXPECT_FALSE(q.cancel(first));                // generation mismatch: no-op
  EXPECT_EQ(q.size(), 1u);
  q.pop(at)();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, ClearInvalidatesOutstandingIds) {
  EventQueue q;
  EventId a = q.schedule(SimTime{1}, [] {});
  EventId b = q.schedule(SimTime{2}, [] {});
  q.clear();
  EXPECT_FALSE(q.cancel(a));
  EXPECT_FALSE(q.cancel(b));
  // Slots freed by clear() are reusable, and old ids still can't touch them.
  bool ran = false;
  q.schedule(SimTime{3}, [&] { ran = true; });
  EXPECT_FALSE(q.cancel(a));
  SimTime at;
  q.pop(at)();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, SlotReuseKeepsSameInstantFifo) {
  EventQueue q;
  SimTime at;
  // Churn slots so later schedules reuse freed ones, then check FIFO at one
  // instant is still by schedule order, not by slot index.
  for (int i = 0; i < 32; ++i) {
    q.schedule(SimTime{i}, [] {});
    q.pop(at)();
  }
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) q.schedule(SimTime{100}, [&, i] { order.push_back(i); });
  while (!q.empty()) q.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, LargeCaptureFallsBackToHeap) {
  EventQueue q;
  std::array<std::uint64_t, 32> payload{};  // 256 bytes: over any inline buffer
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 7919u;
  std::uint64_t sum = 0;
  q.schedule(SimTime{1}, [payload, &sum] {
    for (std::uint64_t v : payload) sum += v;
  });
  SimTime at;
  q.pop(at)();
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) want += i * 7919u;
  EXPECT_EQ(sum, want);
}

TEST(EventQueueTest, HeavyCancelChurnStaysOrdered) {
  // Exercises lazy-deletion compaction: most of the heap is dead entries.
  EventQueue q;
  std::vector<EventId> timers;
  std::vector<int> order;
  for (int i = 0; i < 2000; ++i) {
    timers.push_back(q.schedule(SimTime{1000000 + i}, [] { FAIL() << "cancelled timer fired"; }));
    q.schedule(SimTime{i}, [&, i] { order.push_back(i); });
    q.cancel(timers.back());
  }
  EXPECT_EQ(q.size(), 2000u);
  SimTime at;
  int expect = 0;
  while (!q.empty()) {
    q.pop(at)();
    EXPECT_EQ(at.ps(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 2000);
  for (EventId id : timers) EXPECT_FALSE(q.cancel(id));
}

}  // namespace
}  // namespace nicbar::sim
