#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicbar::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime{30}, [&] { order.push_back(3); });
  q.schedule(SimTime{10}, [&] { order.push_back(1); });
  q.schedule(SimTime{20}, [&] { order.push_back(2); });
  while (!q.empty()) {
    SimTime at;
    q.pop(at)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime{42}, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    SimTime at;
    q.pop(at)();
    EXPECT_EQ(at.ps(), 42);
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReflectsEarliestLive) {
  EventQueue q;
  q.schedule(SimTime{50}, [] {});
  EventId early = q.schedule(SimTime{5}, [] {});
  EXPECT_EQ(q.next_time().ps(), 5);
  q.cancel(early);
  EXPECT_EQ(q.next_time().ps(), 50);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(SimTime{1}, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelFiredEventIsNoop) {
  EventQueue q;
  EventId id = q.schedule(SimTime{1}, [] {});
  SimTime at;
  q.pop(at)();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueueTest, DoubleCancelCountsOnce) {
  EventQueue q;
  EventId id = q.schedule(SimTime{1}, [] {});
  q.schedule(SimTime{2}, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.schedule(SimTime{1}, [] {});
  q.schedule(SimTime{2}, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  SimTime at;
  q.pop(at)();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, ClearDiscardsEverything) {
  EventQueue q;
  bool ran = false;
  q.schedule(SimTime{1}, [&] { ran = true; });
  q.schedule(SimTime{2}, [&] { ran = true; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, InterleavedCancelAndPop) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(SimTime{i}, [&, i] { order.push_back(i); }));
  }
  // Cancel the odd ones.
  for (int i = 1; i < 100; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) {
    SimTime at;
    q.pop(at)();
  }
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(2 * i));
  }
}

TEST(EventQueueTest, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(SimTime{i}, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

}  // namespace
}  // namespace nicbar::sim
