// Randomized engine stress: heap ordering under interleaved schedule/cancel,
// and determinism of a randomized process soup.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace nicbar::sim {
namespace {

TEST(EngineStressTest, RandomScheduleCancelPreservesTimeOrder) {
  Simulator sim;
  Rng rng(2024);
  std::vector<EventId> live;
  std::vector<std::int64_t> fired;
  for (int i = 0; i < 5000; ++i) {
    const auto choice = rng.below(10);
    if (choice < 7 || live.empty()) {
      const auto at = static_cast<std::int64_t>(rng.below(1'000'000));
      live.push_back(
          sim.schedule_at(SimTime{at}, [&fired, at] { fired.push_back(at); }));
    } else {
      const std::size_t k = rng.below(static_cast<std::uint32_t>(live.size()));
      sim.cancel(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  sim.run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]) << "time order violated at " << i;
  }
  EXPECT_EQ(fired.size(), live.size());  // exactly the uncancelled ones fired
}

TEST(EngineStressTest, ProcessSoupIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    auto mb = std::make_unique<Mailbox<int>>(sim);
    std::vector<int> log;
    for (int i = 0; i < 64; ++i) {
      const auto jitter = static_cast<std::int64_t>(rng.below(1000));
      sim.spawn([](Simulator& s, Mailbox<int>& box, Duration d, int id,
                   std::vector<int>& l) -> Task {
        co_await s.delay(d);
        box.send(id);
        const int got = co_await box.recv();
        l.push_back(got);
      }(sim, *mb, nanoseconds(jitter), i, log));
    }
    sim.run();
    return log;
  };
  const std::vector<int> a = run_once(5);
  const std::vector<int> b = run_once(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
  const std::vector<int> c = run_once(6);
  EXPECT_NE(a, c);  // different jitter, different interleaving
}

TEST(EngineStressTest, DeepCoroutineNesting) {
  Simulator sim;
  int depth_reached = 0;
  // 500-deep co_await chain: frames must unwind cleanly.
  struct Helper {
    static Task descend(Simulator& s, int depth, int* out) {
      if (depth == 0) {
        co_await s.delay(Duration{1});
        *out = 1;
        co_return;
      }
      co_await descend(s, depth - 1, out);
      ++*out;
    }
  };
  sim.spawn(Helper::descend(sim, 500, &depth_reached));
  sim.run();
  EXPECT_EQ(depth_reached, 501);
}

TEST(EngineStressTest, MillionEventsComplete) {
  Simulator sim;
  std::uint64_t count = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    sim.schedule_in(nanoseconds(i % 997), [&count] { ++count; });
  }
  sim.run();
  EXPECT_EQ(count, 1'000'000u);
  EXPECT_EQ(sim.events_executed(), 1'000'000u);
}

}  // namespace
}  // namespace nicbar::sim
