// ValueTask<T>: value-returning coroutines used by the GM API.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace nicbar::sim {
namespace {

using namespace nicbar::sim::literals;

ValueTask<int> answer(Simulator& sim) {
  co_await sim.delay(3_us);
  co_return 42;
}

TEST(ValueTaskTest, ReturnsValueAfterDelay) {
  Simulator sim;
  int got = 0;
  sim.spawn([](Simulator& s, int* out) -> Task {
    *out = co_await answer(s);
  }(sim, &got));
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(sim.now().ps(), (3_us).ps());
}

ValueTask<std::string> greet(Simulator& sim, std::string who) {
  co_await sim.delay(1_us);
  co_return "hello " + who;
}

TEST(ValueTaskTest, NonTrivialValueType) {
  Simulator sim;
  std::string got;
  sim.spawn([](Simulator& s, std::string* out) -> Task {
    *out = co_await greet(s, "world");
  }(sim, &got));
  sim.run();
  EXPECT_EQ(got, "hello world");
}

ValueTask<std::unique_ptr<int>> boxed(Simulator& sim) {
  co_await sim.delay(1_us);
  co_return std::make_unique<int>(7);
}

TEST(ValueTaskTest, MoveOnlyValueType) {
  Simulator sim;
  std::unique_ptr<int> got;
  sim.spawn([](Simulator& s, std::unique_ptr<int>* out) -> Task {
    *out = co_await boxed(s);
  }(sim, &got));
  sim.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 7);
}

ValueTask<int> throws_after_delay(Simulator& sim) {
  co_await sim.delay(1_us);
  throw std::runtime_error("vt boom");
}

TEST(ValueTaskTest, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  sim.spawn([](Simulator& s, bool* out) -> Task {
    try {
      (void)co_await throws_after_delay(s);
    } catch (const std::runtime_error& e) {
      *out = std::string(e.what()) == "vt boom";
    }
  }(sim, &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

ValueTask<int> immediate() { co_return 5; }

TEST(ValueTaskTest, ImmediateCompletion) {
  Simulator sim;
  int got = 0;
  sim.spawn([](int* out) -> Task {
    *out = co_await immediate();
  }(&got));
  sim.run();
  EXPECT_EQ(got, 5);
}

ValueTask<int> chain(Simulator& sim, int depth) {
  if (depth == 0) co_return 1;
  const int below = co_await chain(sim, depth - 1);
  co_await sim.delay(1_us);
  co_return below + 1;
}

TEST(ValueTaskTest, RecursiveChaining) {
  Simulator sim;
  int got = 0;
  sim.spawn([](Simulator& s, int* out) -> Task {
    *out = co_await chain(s, 20);
  }(sim, &got));
  sim.run();
  EXPECT_EQ(got, 21);
  EXPECT_EQ(sim.now().ps(), (20_us).ps());
}

TEST(ValueTaskTest, DroppedUnstartedTaskIsSafe) {
  Simulator sim;
  {
    ValueTask<int> t = answer(sim);  // never awaited
    (void)t;
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(ValueTaskTest, MoveSemantics) {
  Simulator sim;
  ValueTask<int> a = immediate();
  ValueTask<int> b = std::move(a);
  int got = 0;
  sim.spawn([](ValueTask<int> t, int* out) -> Task {
    *out = co_await t;
  }(std::move(b), &got));
  sim.run();
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace nicbar::sim
