// Tracer: category filtering, formatting, integration with the NIC.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "coll/barrier.hpp"
#include "host/cluster.hpp"

namespace nicbar {
namespace {

using sim::TraceCategory;
using sim::Tracer;

TEST(TracerTest, DisabledByDefault) {
  Tracer t;
  EXPECT_FALSE(t.on(TraceCategory::kHost));
  EXPECT_FALSE(t.on(TraceCategory::kBarrier));
  t.log(TraceCategory::kBarrier, sim::SimTime{0}, "never seen");  // must not crash
}

TEST(TracerTest, MaskFiltersCategories) {
  std::ostringstream os;
  Tracer t;
  t.enable(&os, static_cast<std::uint32_t>(TraceCategory::kBarrier));
  EXPECT_TRUE(t.on(TraceCategory::kBarrier));
  EXPECT_FALSE(t.on(TraceCategory::kNet));
  t.log(TraceCategory::kBarrier, sim::SimTime{1'000'000}, "bar %d", 7);
  t.log(TraceCategory::kNet, sim::SimTime{2'000'000}, "net %d", 8);
  const std::string out = os.str();
  EXPECT_NE(out.find("bar 7"), std::string::npos);
  EXPECT_EQ(out.find("net 8"), std::string::npos);
}

TEST(TracerTest, NullStreamKeepsTheMaskForALaterEnable) {
  // Regression: enable(nullptr, mask) used to lose the mask, so a later
  // enable(&os, mask) caller had to re-supply it from scratch. The mask is
  // now stored as given; only on() gates on the stream.
  std::ostringstream os;
  Tracer t;
  t.enable(nullptr, static_cast<std::uint32_t>(TraceCategory::kReliab));
  EXPECT_FALSE(t.on(TraceCategory::kReliab));  // no stream -> off
  t.enable(&os, static_cast<std::uint32_t>(TraceCategory::kReliab));
  EXPECT_TRUE(t.on(TraceCategory::kReliab));
  EXPECT_FALSE(t.on(TraceCategory::kHost));
}

TEST(TraceMaskTest, ParsesSingleNamesAndLists) {
  EXPECT_EQ(sim::parse_trace_mask("host"),
            std::optional<std::uint32_t>(static_cast<std::uint32_t>(TraceCategory::kHost)));
  EXPECT_EQ(sim::parse_trace_mask("barrier,reliab"),
            std::optional<std::uint32_t>(static_cast<std::uint32_t>(TraceCategory::kBarrier) |
                                         static_cast<std::uint32_t>(TraceCategory::kReliab)));
  EXPECT_EQ(sim::parse_trace_mask("all"),
            std::optional<std::uint32_t>(static_cast<std::uint32_t>(TraceCategory::kAll)));
  // Every documented name parses to exactly one bit (or kAll).
  for (const char* name : {"host", "sdma", "send", "recv", "rdma", "net", "barrier", "reliab"}) {
    const auto m = sim::parse_trace_mask(name);
    ASSERT_TRUE(m.has_value()) << name;
    EXPECT_EQ(__builtin_popcount(*m), 1) << name;
  }
}

TEST(TraceMaskTest, RejectsUnknownAndEmptyElements) {
  EXPECT_FALSE(sim::parse_trace_mask("").has_value());
  EXPECT_FALSE(sim::parse_trace_mask("bogus").has_value());
  EXPECT_FALSE(sim::parse_trace_mask("host,").has_value());
  EXPECT_FALSE(sim::parse_trace_mask(",host").has_value());
  EXPECT_FALSE(sim::parse_trace_mask("host,,net").has_value());
  EXPECT_FALSE(sim::parse_trace_mask("Host").has_value());  // case-sensitive
  // The error-message helper names every accepted category.
  const std::string names = sim::trace_mask_names();
  for (const char* name : {"host", "sdma", "send", "recv", "rdma", "net", "barrier", "reliab",
                           "all"}) {
    EXPECT_NE(names.find(name), std::string::npos) << name;
  }
}

TEST(TracerTest, LinesCarrySimulatedTime) {
  std::ostringstream os;
  Tracer t;
  t.enable(&os);
  t.log(TraceCategory::kHost, sim::SimTime{0} + sim::microseconds(12.5), "x");
  EXPECT_NE(os.str().find("12.5"), std::string::npos);
}

TEST(TracerTest, CombinedMasksEnableEachMemberCategory) {
  std::ostringstream os;
  Tracer t;
  t.enable(&os, static_cast<std::uint32_t>(TraceCategory::kBarrier) |
                    static_cast<std::uint32_t>(TraceCategory::kReliab) |
                    static_cast<std::uint32_t>(TraceCategory::kSdma));
  EXPECT_TRUE(t.on(TraceCategory::kBarrier));
  EXPECT_TRUE(t.on(TraceCategory::kReliab));
  EXPECT_TRUE(t.on(TraceCategory::kSdma));
  EXPECT_FALSE(t.on(TraceCategory::kHost));
  EXPECT_FALSE(t.on(TraceCategory::kSend));
  EXPECT_FALSE(t.on(TraceCategory::kRecv));
  EXPECT_FALSE(t.on(TraceCategory::kRdma));
  EXPECT_FALSE(t.on(TraceCategory::kNet));
  t.log(TraceCategory::kReliab, sim::SimTime{0}, "kept");
  t.log(TraceCategory::kNet, sim::SimTime{0}, "filtered");
  EXPECT_NE(os.str().find("kept"), std::string::npos);
  EXPECT_EQ(os.str().find("filtered"), std::string::npos);
}

TEST(TracerTest, AllMaskEnablesEveryCategory) {
  std::ostringstream os;
  Tracer t;
  t.enable(&os);  // defaults to kAll
  for (TraceCategory c : {TraceCategory::kHost, TraceCategory::kSdma, TraceCategory::kSend,
                          TraceCategory::kRecv, TraceCategory::kRdma, TraceCategory::kNet,
                          TraceCategory::kBarrier, TraceCategory::kReliab}) {
    EXPECT_TRUE(t.on(c));
  }
}

TEST(TracerTest, NullStreamForcesMaskToZero) {
  // The disabled fast path: enable(nullptr, mask) must leave every category
  // off regardless of the mask, so call sites stay one untaken branch.
  Tracer t;
  t.enable(nullptr, static_cast<std::uint32_t>(TraceCategory::kAll));
  EXPECT_FALSE(t.on(TraceCategory::kBarrier));
  EXPECT_FALSE(t.on(TraceCategory::kHost));
  t.log(TraceCategory::kBarrier, sim::SimTime{0}, "never");  // must not crash
}

TEST(TracerTest, DisableStopsOutput) {
  std::ostringstream os;
  Tracer t;
  t.enable(&os);
  t.enable(nullptr);
  t.log(TraceCategory::kHost, sim::SimTime{0}, "gone");
  EXPECT_TRUE(os.str().empty());
}

TEST(TracerTest, NicBarrierRunEmitsTrace) {
  host::ClusterParams cp;
  cp.nodes = 2;
  host::Cluster cluster(cp);
  std::ostringstream os;
  Tracer tracer;
  tracer.enable(&os, static_cast<std::uint32_t>(TraceCategory::kBarrier));
  cluster.nic(0).set_tracer(&tracer);
  cluster.nic(1).set_tracer(&tracer);

  std::vector<gm::Endpoint> group{{0, 2}, {1, 2}};
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  coll::BarrierSpec spec;
  spec.location = coll::Location::kNic;
  coll::BarrierMember m0(*p0, group, spec);
  coll::BarrierMember m1(*p1, group, spec);
  cluster.sim().spawn([](coll::BarrierMember& m) -> sim::Task { co_await m.run(); }(m0));
  cluster.sim().spawn([](coll::BarrierMember& m) -> sim::Task { co_await m.run(); }(m1));
  cluster.sim().run();

  const std::string out = os.str();
  EXPECT_NE(out.find("start PE barrier"), std::string::npos);
  EXPECT_NE(out.find("complete"), std::string::npos);
  EXPECT_NE(out.find("nic0"), std::string::npos);
  EXPECT_NE(out.find("nic1"), std::string::npos);
}

TEST(TracerTest, ReliabilityTraceShowsRetransmissions) {
  host::ClusterParams cp;
  cp.nodes = 2;
  cp.nic.retransmit_timeout = sim::microseconds(200.0);
  host::Cluster cluster(cp);
  std::ostringstream os;
  Tracer tracer;
  tracer.enable(&os, static_cast<std::uint32_t>(TraceCategory::kReliab));
  cluster.nic(0).set_tracer(&tracer);
  bool dropped = false;
  cluster.network().uplink(0).set_drop_predicate([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  auto p0 = cluster.open_port(0, 2);
  auto p1 = cluster.open_port(1, 2);
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.provide_receive_buffer(64);
    (void)co_await port.receive();
  }(*p1));
  cluster.sim().spawn([](gm::Port& port) -> sim::Task {
    co_await port.send(gm::Endpoint{1, 2}, 64);
  }(*p0));
  cluster.sim().run(sim::SimTime{0} + sim::milliseconds(10.0));
  EXPECT_NE(os.str().find("retransmit"), std::string::npos);
}

}  // namespace
}  // namespace nicbar
