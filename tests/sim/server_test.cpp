#include "sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nicbar::sim {
namespace {

using namespace nicbar::sim::literals;

TEST(BusyServerTest, IdleServerStartsImmediately) {
  Simulator sim;
  BusyServer srv(sim, "srv");
  SimTime done = srv.submit(5_us);
  EXPECT_EQ(done.ps(), (5_us).ps());
  EXPECT_TRUE(srv.busy());
}

TEST(BusyServerTest, JobsQueueFifo) {
  Simulator sim;
  BusyServer srv(sim);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    srv.submit(10_us, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].ps(), (10_us).ps());
  EXPECT_EQ(completions[1].ps(), (20_us).ps());
  EXPECT_EQ(completions[2].ps(), (30_us).ps());
}

TEST(BusyServerTest, GapsLeaveServerIdle) {
  Simulator sim;
  BusyServer srv(sim);
  srv.submit(1_us);
  sim.run(SimTime{0} + 5_us);  // advance past the job
  EXPECT_FALSE(srv.busy());
  sim.schedule_in(5_us, [&] {
    const SimTime done = srv.submit(2_us);
    // Starts fresh at t=10us, not queued behind the old job.
    EXPECT_EQ(done.ps(), (12_us).ps());
  });
  sim.run();
}

TEST(BusyServerTest, StatisticsAccumulate) {
  Simulator sim;
  BusyServer srv(sim);
  srv.submit(4_us);
  srv.submit(6_us);  // queues 4us
  sim.run(SimTime{0} + 10_us);  // run exactly to the busy horizon
  EXPECT_EQ(srv.jobs(), 2u);
  EXPECT_EQ(srv.busy_total().ps(), (10_us).ps());
  EXPECT_EQ(srv.queue_delay_total().ps(), (4_us).ps());
  EXPECT_NEAR(srv.utilisation(), 1.0, 1e-9);
}

TEST(BusyServerTest, ZeroDurationJob) {
  Simulator sim;
  BusyServer srv(sim);
  bool ran = false;
  srv.submit(Duration{0}, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now().ps(), 0);
}

TEST(CycleServerTest, CyclesScaleWithClock) {
  Simulator sim;
  CycleServer slow(sim, 33.0, "lanai43");
  CycleServer fast(sim, 66.0, "lanai72");
  const SimTime a = slow.submit_cycles(660);
  const SimTime b = fast.submit_cycles(660);
  EXPECT_NEAR(a.us(), 20.0, 0.01);  // 660 cycles @33MHz = 20us
  EXPECT_NEAR(b.us(), 10.0, 0.01);  // exactly half at 66MHz
}

TEST(CycleServerTest, SerializedLikeARealProcessor) {
  Simulator sim;
  CycleServer proc(sim, 100.0);
  std::vector<SimTime> done;
  proc.submit_cycles(100, [&] { done.push_back(sim.now()); });  // 1us
  proc.submit_cycles(200, [&] { done.push_back(sim.now()); });  // +2us
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].ps(), (1_us).ps());
  EXPECT_EQ(done[1].ps(), (3_us).ps());
}

TEST(CycleServerTest, CyclesHelperMatchesSubmit) {
  Simulator sim;
  CycleServer proc(sim, 33.0);
  EXPECT_EQ(proc.cycles(33).ps(), cycles_at_mhz(33, 33.0).ps());
  EXPECT_NEAR(proc.cycles(33).us(), 1.0, 0.001);
}

}  // namespace
}  // namespace nicbar::sim
