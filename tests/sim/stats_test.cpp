#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nicbar::sim {
namespace {

using namespace nicbar::sim::literals;

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(AccumulatorTest, SingleSample) {
  Accumulator a;
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(AccumulatorTest, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(AccumulatorTest, ResetClears) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(DurationStatsTest, ReportsMicroseconds) {
  DurationStats s;
  s.add(100_us);
  s.add(300_us);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean_us(), 200.0);
  EXPECT_DOUBLE_EQ(s.min_us(), 100.0);
  EXPECT_DOUBLE_EQ(s.max_us(), 300.0);
}

TEST(HistogramTest, CountsIntoBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[1], 2u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

TEST(HistogramTest, PercentilesOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0), 0.0, 1.5);
  EXPECT_NEAR(h.percentile(100), 100.0, 1.5);
}

TEST(HistogramTest, EmptyPercentileIsLowerBound) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
}

TEST(HistogramTest, SingleSampleInterpolatesWithinItsBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.7);  // lands in [3, 4)
  EXPECT_EQ(h.count(), 1u);
  // A one-sample population: every percentile interpolates through the one
  // occupied bin, from its lower edge (p=0) to its upper edge (p=100).
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);
}

TEST(HistogramTest, AllSamplesInOneBinSpanThatBin) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 1000; ++i) h.add(55.0);  // all in [50, 60)
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 55.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 59.99);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 60.0);
}

TEST(HistogramTest, P999ResolvesASparseTail) {
  // 999 fast samples and 2 slow outliers: p99.8 stays in the fast bin but
  // p99.9 must cross into the tail — the resolution SLO reporting leans on.
  Histogram h(0.0, 1000.0, 1000);
  for (int i = 0; i < 999; ++i) h.add(10.5);
  h.add(900.5);
  h.add(900.5);
  EXPECT_LE(h.percentile(99.8), 11.0);
  EXPECT_GT(h.percentile(99.9), 900.0);
  EXPECT_LT(h.percentile(99.9), 901.0);
}

TEST(HistogramTest, BinGeometryAccessors) {
  Histogram h(10.0, 50.0, 8);
  EXPECT_DOUBLE_EQ(h.lo(), 10.0);
  EXPECT_DOUBLE_EQ(h.hi(), 50.0);
  EXPECT_EQ(h.bin_count(), 8u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 15.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(7), 45.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(7), 50.0);
}

// Regression: pins the interpolation exactly. With one sample per bin the
// p-th percentile is the upper edge of the bin holding the p-th sample; a
// regressed implementation that returns the bin's lower edge (or skips the
// within-bin interpolation) lands a full bin width away.
TEST(HistogramTest, PercentileInterpolationPinned) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  // A fractional target interpolates within the bin: the 10.5th of 100
  // samples sits half-way through bin 10.
  EXPECT_DOUBLE_EQ(h.percentile(10.5), 10.5);
}

TEST(HistogramTest, PercentileSkipsEmptyBins) {
  // Two occupied bins far apart; everything between is empty.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 10; ++i) h.add(5.5);   // bin 5
  for (int i = 0; i < 10; ++i) h.add(90.5);  // bin 90
  EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);    // lower edge of first occupied bin
  EXPECT_DOUBLE_EQ(h.percentile(25), 5.5);   // 5th of 10 samples in bin 5
  EXPECT_DOUBLE_EQ(h.percentile(50), 6.0);   // upper edge of bin 5
  EXPECT_DOUBLE_EQ(h.percentile(75), 90.5);  // 5th of 10 samples in bin 90
  EXPECT_DOUBLE_EQ(h.percentile(100), 91.0);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_NE(h.ascii().find("empty"), std::string::npos);
  h.add(1.0);
  h.add(1.2);
  h.add(3.0);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace nicbar::sim
